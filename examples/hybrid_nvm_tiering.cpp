/**
 * @file
 * Hybrid PAS: prediction-guided NVM write tiering.
 *
 * Scenario: a storage server pairs a small NVM (e.g. PCM) with an
 * SSD. The naive policy sends every write to the NVM until it fills,
 * then collapses onto the irregular SSD. Hybrid PAS (paper §IV-B)
 * asks SSDcheck for each write: predicted-slow writes go to the NVM,
 * the rest mostly to the SSD — keeping the NVM available and the
 * write stream consistent.
 */
#include <cstdio>

#include "core/ssdcheck.h"
#include "nvm/nvm_device.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "usecases/hybrid.h"
#include "usecases/runner.h"
#include "workload/synthetic.h"

using namespace ssdcheck;

namespace {

void
runMode(usecases::HybridMode mode)
{
    ssd::SsdDevice ssd(ssd::makePreset(ssd::SsdModel::C));
    core::DiagnosisRunner runner(ssd, core::DiagnosisConfig{});
    const core::FeatureSet fs = runner.extractFeatures();
    runner.precondition();
    core::SsdCheck check(fs);

    nvm::NvmConfig ncfg;
    ncfg.capacityPages = 4096; // 16 MB of PCM-class memory
    nvm::NvmDevice nvm(ncfg);

    usecases::HybridConfig hcfg;
    hcfg.bufferWeight = 0.05;
    hcfg.drainPeriod = sim::microseconds(800);
    hcfg.drainBatchPages = 1;
    usecases::HybridTier tier(
        ssd, nvm,
        mode == usecases::HybridMode::HybridPas ? &check : nullptr, mode,
        hcfg);

    const auto trace =
        workload::buildRandomWriteTrace(60000, 128 * 1024, 31);
    const auto res = usecases::runClosedLoop(tier, trace, 1,
                                             sim::microseconds(100),
                                             runner.now());

    std::printf("%s:\n", tier.name().c_str());
    const size_t w = res.timeline.numWindows();
    std::printf("  throughput (first 5 windows / last 5 windows): ");
    for (size_t i = 0; i < std::min<size_t>(5, w); ++i)
        std::printf("%.0f ", res.timeline.mbps(i));
    std::printf("/ ");
    for (size_t i = w >= 5 ? w - 5 : 0; i < w; ++i)
        std::printf("%.0f ", res.timeline.mbps(i));
    std::printf("MB/s\n");
    std::printf("  NVM pressure: %llu pages, backpressure events: %llu\n\n",
                static_cast<unsigned long long>(tier.nvmWritePages()),
                static_cast<unsigned long long>(tier.backpressureWrites()));
}

} // namespace

int
main()
{
    std::printf("Write-intensive workload through an NVM+SSD tier\n\n");
    runMode(usecases::HybridMode::Baseline);
    runMode(usecases::HybridMode::HybridPas);
    std::printf("The baseline rides the NVM and then collapses onto the "
                "SSD; Hybrid PAS stays consistent and keeps the NVM "
                "lightly loaded for the writes that need it.\n");
    return 0;
}
