/**
 * @file
 * Multi-tenant performance isolation with VA-LVM.
 *
 * Scenario: a cloud host colocates a latency-sensitive read service
 * with a write-heavy logging service on one SSD. With a conventional
 * linear split both tenants stripe across every internal volume, so
 * the logger's buffer flushes and GC stall the reader. VA-LVM uses
 * SSDcheck's diagnosed volume bits to pin each tenant to its own
 * internal volume (paper §IV-A / Fig. 9).
 */
#include <cstdio>

#include "core/diagnosis.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "usecases/lvm.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

namespace {

void
runScheme(bool volumeAware, const std::vector<uint32_t> &volumeBits)
{
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::D));
    dev.precondition();

    const uint64_t span = dev.capacityPages() / 4;
    const auto readTrace = workload::buildSniaTrace(
        workload::SniaWorkload::Exch, span, 0.008, 21);
    const auto writeTrace = workload::buildSniaTrace(
        workload::SniaWorkload::Web, span, 0.012, 22);

    auto vols = volumeAware
                    ? usecases::makeVolumeAwareVolumes(dev, volumeBits)
                    : usecases::makeLinearVolumes(dev, 2);
    std::vector<usecases::TenantSpec> tenants(2);
    tenants[0].trace = &readTrace;
    tenants[0].dev = vols[0].get();
    tenants[0].name = "read-service";
    tenants[1].trace = &writeTrace;
    tenants[1].dev = vols[1].get();
    tenants[1].name = "log-writer";
    tenants[1].loop = true;

    const auto res = usecases::runTenantsClosedLoop(tenants, sim::kTimeZero);
    std::printf("%s:\n", volumeAware ? "VA-LVM (volume-aware)"
                                     : "Linear-LVM (conventional)");
    for (const auto &r : res) {
        std::printf("  %-14s %7.1f MB/s   read p99.5 %-10s requests %llu\n",
                    r.name.c_str(), r.throughputMbps(),
                    r.readLatency.empty()
                        ? "-"
                        : sim::formatDuration(
                              r.readLatency.percentile(99.5))
                              .c_str(),
                    static_cast<unsigned long long>(r.requests));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    // Step 1: discover the internal volume layout (black-box).
    ssd::SsdDevice probe(ssd::makePreset(ssd::SsdModel::D));
    core::DiagnosisRunner runner(probe, core::DiagnosisConfig{});
    const auto scan = runner.scanAllocationVolumes();
    std::printf("Diagnosed %zu allocation-volume bit(s):",
                scan.volumeBits.size());
    for (const auto b : scan.volumeBits)
        std::printf(" %u", b);
    std::printf("\n\n");

    // Step 2: run the colocated tenants under both partitioners.
    runScheme(false, scan.volumeBits);
    runScheme(true, scan.volumeBits);

    std::printf("VA-LVM pins each tenant to its own internal volume: "
                "the read service no longer waits on the logger's "
                "flushes and GC.\n");
    return 0;
}
