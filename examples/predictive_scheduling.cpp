/**
 * @file
 * Prediction-aware I/O scheduling (SSD-only PAS).
 *
 * Scenario: a database on a cheap read-trigger-flush SSD suffers long
 * read tails whenever reads land behind buffered writes. PAS asks
 * SSDcheck whether the oldest queued read would be slow in its
 * arrival position and, if so, dispatches it ahead of the writes
 * (paper §IV-B / Fig. 10). This example compares the Linux-style
 * baselines against PAS on the same arrival-timed request stream.
 */
#include <cstdio>

#include "core/ssdcheck.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "usecases/pas.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

int
main()
{
    // The request stream: a mixed read/write build-server trace with
    // Poisson arrivals near the device's capacity.
    auto trace = workload::buildSniaTrace(workload::SniaWorkload::Build,
                                          32 * 1024, 0.08, 5);
    sim::Rng rng(6);
    trace.assignPoissonArrivals(5000.0, rng);

    std::printf("%-10s %-12s %-12s %-12s %-12s\n", "scheduler",
                "read mean", "read p99", "read p99.9", "throughput");
    std::printf("%s\n", std::string(62, '-').c_str());

    for (const std::string name : {"noop", "deadline", "cfq", "pas"}) {
        // Fresh device + fresh diagnosis per scheduler for a fair race.
        ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::G));
        core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
        const core::FeatureSet fs = runner.extractFeatures();
        core::SsdCheck check(fs);

        std::unique_ptr<usecases::Scheduler> sched;
        if (name == "noop")
            sched = std::make_unique<usecases::NoopScheduler>();
        else if (name == "deadline")
            sched = std::make_unique<usecases::DeadlineScheduler>();
        else if (name == "cfq")
            sched = std::make_unique<usecases::CfqScheduler>();
        else
            sched = std::make_unique<usecases::PasScheduler>(check);

        const auto res = usecases::runScheduled(dev, *sched, trace,
                                                runner.now(), &check);
        const auto &lat = res.stream.readLatency;
        std::printf("%-10s %-12s %-12s %-12s %6.1f MB/s\n", name.c_str(),
                    sim::formatDuration(
                        static_cast<sim::SimDuration>(lat.mean()))
                        .c_str(),
                    sim::formatDuration(lat.percentile(99)).c_str(),
                    sim::formatDuration(lat.percentile(99.9)).c_str(),
                    res.stream.throughputMbps());
    }

    std::printf("\nPAS hides the buffer-flush windows from reads by "
                "reordering around predicted-slow positions.\n");
    return 0;
}
