/**
 * @file
 * Fingerprint a fleet of black-box SSDs.
 *
 * Scenario: a storage team qualifying new devices wants each drive's
 * internal layout — how many allocation/GC volumes, which LBA bits
 * select them, and how the write buffer behaves — before deciding
 * placement and partitioning. This example runs the full SSDcheck
 * diagnosis against each (simulated) device and prints the fleet
 * report, i.e. it regenerates the paper's Table I from scratch.
 */
#include <cstdio>

#include "core/diagnosis.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"

using namespace ssdcheck;

int
main()
{
    std::printf("Fingerprinting 7 black-box devices...\n\n");
    std::printf("%-8s %-40s %s\n", "device", "diagnosed features",
                "diagnosis I/O (virtual time)");
    std::printf("%s\n", std::string(90, '-').c_str());

    for (const auto m : ssd::allModels()) {
        ssd::SsdDevice dev(ssd::makePreset(m));
        core::DiagnosisRunner runner(dev, core::DiagnosisConfig{});
        const core::FeatureSet fs = runner.extractFeatures();
        std::printf("%-8s %-40s %s\n", dev.name().c_str(),
                    fs.summary().c_str(),
                    sim::formatDuration(runner.now().ns()).c_str());
    }

    std::printf("\nVolume bits feed VA-LVM partitioning; buffer "
                "size/type/flush configure the runtime predictor.\n");
    return 0;
}
