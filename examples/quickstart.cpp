/**
 * @file
 * Quickstart: diagnose a black-box SSD, build the runtime model, and
 * predict per-request latencies on a small mixed workload.
 *
 * This is the whole SSDcheck flow in ~60 lines:
 *   1. create a (simulated) black-box device,
 *   2. run the diagnosis snippets -> FeatureSet,
 *   3. construct the runtime framework,
 *   4. replay I/O in predict-before-issue mode and report accuracy.
 */
#include <cstdio>

#include "core/accuracy.h"
#include "core/ssdcheck.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "workload/synthetic.h"

using namespace ssdcheck;

int
main()
{
    // 1. A black-box device. Swap the preset to explore Table I.
    ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A));
    std::printf("Device: %s (%llu MB)\n", dev.name().c_str(),
                static_cast<unsigned long long>(
                    dev.capacitySectors() * 512 / 1000000));

    // 2. Diagnosis: extract the internal features (paper SIII-B).
    core::DiagnosisConfig dcfg;
    core::DiagnosisRunner runner(dev, dcfg);
    const core::FeatureSet features = runner.extractFeatures();
    std::printf("Diagnosed: %s\n", features.summary().c_str());

    if (!features.bufferModelUsable()) {
        std::printf("No usable buffer model; prediction disabled.\n");
        return 0;
    }

    // 3. Runtime framework (paper SIII-C).
    core::SsdCheck check(features);

    // 4. Predict-before-issue replay of a random read/write mix.
    const auto trace = workload::buildRwMixedTrace(
        200000, dev.capacityPages(), /*seed=*/7);
    const core::AccuracyResult acc =
        core::evaluatePredictionAccuracy(dev, check, trace, runner.now());

    std::printf("Requests: %llu  (HL fraction %.2f%%)\n",
                static_cast<unsigned long long>(acc.nlTotal + acc.hlTotal),
                acc.hlFraction() * 100.0);
    std::printf("NL prediction accuracy: %.2f%%\n",
                acc.nlAccuracy() * 100.0);
    std::printf("HL prediction accuracy: %.2f%%\n",
                acc.hlAccuracy() * 100.0);
    return 0;
}
