/**
 * @file
 * SLO-enforcing resilience policy layer.
 *
 * PolicyDevice sits above blockdev::ResilientDevice and bounds every
 * request's fate before the retry machinery can spend unbounded time
 * on it:
 *
 *  - Deadline budgets: each forwarded request carries an absolute
 *    total-time cap (attempts + backoff + timeout waits), enforced by
 *    ResilientDevice::submitBounded. A request never consumes more
 *    sim time than its budget.
 *  - Hedged reads: when the caller predicts a slow read (or the
 *    rolling p95 says the device is slow), a backup read is issued
 *    after a delay; the first successful completion wins and the
 *    loser is cancelled (accounting only — the simulated device still
 *    did the work, as real hedging cancellation races do). Hedges
 *    draw from a token budget accrued per submission so hedging can
 *    never amplify load beyond a configured fraction.
 *  - Circuit breaker: Closed/Open/HalfOpen per device, driven by a
 *    rolling error+timeout window. Open sheds instantly; HalfOpen
 *    lets a few trial requests through — the HealthSupervisor's
 *    budgeted probe I/O, when the supervisor is stacked on this
 *    device, is exactly such a trial stream.
 *  - Admission control: when the device's completion horizon runs too
 *    far ahead of arrivals (queue buildup), new requests are shed
 *    with Rejected instead of queuing unboundedly.
 *  - Graceful-degradation ladder: Normal → HedgingOff →
 *    WritesDeferred → FailFast, evaluated from the SLO error budget
 *    and floored by the supervisor's health state.
 *
 * Everything is deterministic in sim time: no wall clock, no RNG —
 * the policy's decisions are a pure function of the request stream
 * and the device's (seeded) behavior, which is what lets chaos
 * campaigns assert bit-identical results across --jobs.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blockdev/resilient_device.h"
#include "core/health_supervisor.h"
#include "obs/sink.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::resilience {

/** Circuit-breaker state (exported as a uint8 gauge). */
enum class BreakerState : uint8_t
{
    Closed = 0,   ///< Normal forwarding.
    Open = 1,     ///< Shedding; waiting out the cooldown.
    HalfOpen = 2, ///< Probing with a bounded trial stream.
};

/** Human-readable name of a BreakerState. */
std::string toString(BreakerState s);

/** Graceful-degradation ladder rung (exported as a uint8 gauge). */
enum class DegradationLevel : uint8_t
{
    Normal = 0,        ///< SLO intact; all features on.
    HedgingOff = 1,    ///< Error budget half spent: stop hedging.
    WritesDeferred = 2, ///< Budget spent: shed writes, serve reads.
    FailFast = 3,      ///< Budget blown: shed everything, recover.
};

/** Human-readable name of a DegradationLevel. */
std::string toString(DegradationLevel l);

/** Why a request was shed (trace/report detail). */
enum class ShedReason : uint8_t
{
    Overload = 0,      ///< Admission control: backlog bound hit.
    BreakerOpen = 1,   ///< Circuit breaker open.
    WriteDeferred = 2, ///< Ladder at WritesDeferred, request is a write.
    FailFast = 3,      ///< Ladder at FailFast.
};

/** Tunables of one policy stack. All times are sim-time durations. */
struct ResiliencePolicy
{
    std::string name = "off";
    /** Master switch: disabled policies are pure pass-throughs. */
    bool enabled = false;

    // -- deadline budgets ---------------------------------------------
    /** Total-time cap per request, spanning retries (0 = unbounded). */
    sim::SimDuration deadlineBudget = sim::milliseconds(1500);

    // -- hedged reads -------------------------------------------------
    bool hedgeReads = true;
    /** Backup-read delay; 0 derives it from the rolling p95. */
    sim::SimDuration hedgeDelay = 0;
    /** Hedge tokens accrued per submission (1.0 token buys one
     *  hedge), i.e. the max steady-state fraction of hedged reads. */
    double hedgeBudgetFraction = 0.05;

    // -- circuit breaker ----------------------------------------------
    /** Rolling outcome window (clamped to kRingCapacity). */
    uint32_t breakerWindow = 64;
    /** Open when window error rate reaches this. */
    double breakerErrorThreshold = 0.5;
    /** Outcomes required before the rate is trusted. */
    uint32_t breakerMinSamples = 16;
    /** Open dwell before HalfOpen; doubles per reopen (capped 8x). */
    sim::SimDuration breakerCooldown = sim::milliseconds(250);
    /** Consecutive HalfOpen successes that re-close the breaker. */
    uint32_t breakerHalfOpenSuccesses = 4;

    // -- admission control --------------------------------------------
    /** Max device completion-horizon lead over arrivals before new
     *  requests are shed (0 = unbounded queueing). */
    sim::SimDuration maxBacklog = sim::milliseconds(50);

    // -- SLO / degradation ladder -------------------------------------
    /** A forwarded request violates the SLO when it fails or its
     *  exchange latency exceeds this. */
    sim::SimDuration sloLatencyTarget = sim::milliseconds(50);
    /** Fraction of requests allowed to violate (the error budget). */
    double sloErrorBudget = 0.05;
    /** Rolling violation window (clamped to kRingCapacity). */
    uint32_t sloWindow = 256;
    /** Ladder re-evaluation period, in forwarded completions. */
    uint32_t ladderEvalEvery = 64;
    /** FailFast dwell before retrying normal service. */
    sim::SimDuration failFastCooldown = sim::milliseconds(500);

    /** Empty when well-formed, else a message naming the field. */
    std::string validate() const;
};

/** Per-policy accounting (exported as pol_* counters). */
struct PolicyCounters
{
    uint64_t submissions = 0;     ///< Caller-visible requests.
    uint64_t forwarded = 0;       ///< Reached the resilient path.
    uint64_t shedOverload = 0;    ///< Admission-control rejections.
    uint64_t shedBreaker = 0;     ///< Breaker-open rejections.
    uint64_t shedWriteDeferred = 0; ///< Ladder write deferrals.
    uint64_t shedFailFast = 0;    ///< Ladder fail-fast rejections.
    uint64_t hedgesIssued = 0;    ///< Backup reads issued.
    uint64_t hedgeWins = 0;       ///< Backup read beat the primary.
    uint64_t hedgeCancelled = 0;  ///< Losing halves of hedge pairs.
    uint64_t hedgeTokenDenied = 0; ///< Hedge wanted, budget empty.
    uint64_t deadlineExpired = 0; ///< Forwarded requests that expired.
    uint64_t breakerOpens = 0;    ///< Closed/HalfOpen -> Open edges.
    uint64_t breakerReopens = 0;  ///< HalfOpen trial failures.
    uint64_t breakerCloses = 0;   ///< HalfOpen -> Closed recoveries.
    uint64_t breakerTrials = 0;   ///< Requests forwarded as trials.
    uint64_t sloViolations = 0;   ///< Window-fed violation events.
    uint64_t ladderTransitions = 0; ///< Degradation level changes.

    /** Total requests shed for any reason. */
    uint64_t shedTotal() const
    {
        return shedOverload + shedBreaker + shedWriteDeferred +
               shedFailFast;
    }
};

/** SLO-enforcing policy decorator over a ResilientDevice. */
class PolicyDevice : public blockdev::BlockDevice
{
  public:
    /** Rolling-window storage bound; configs clamp to this. */
    static constexpr uint32_t kRingCapacity = 256;
    /** Rolling ok-latency samples kept for the p95 hedge delay. */
    static constexpr uint32_t kLatencySamples = 64;

    /** @param inner the retry/backoff layer (not owned). */
    explicit PolicyDevice(blockdev::ResilientDevice &inner,
                          ResiliencePolicy cfg = {});

    // BlockDevice interface.
    [[nodiscard]] blockdev::IoResult submit(const blockdev::IoRequest &req,
                                            sim::SimTime now) override;
    uint64_t capacitySectors() const override
    {
        return inner_.capacitySectors();
    }
    void purge(sim::SimTime now) override { inner_.purge(now); }
    std::string name() const override { return inner_.name(); }

    /**
     * Submit with a latency hint: @p predictedLatency is the caller's
     * forecast for this request (a prediction-engine HL estimate, a
     * recent p95 — anything monotone in expected slowness; 0 = no
     * hint). Reads predicted slower than the hedge delay are hedged.
     */
    [[nodiscard]] blockdev::IoResult
    submitHinted(const blockdev::IoRequest &req, sim::SimTime now,
                 sim::SimDuration predictedLatency);

    /**
     * Feed the supervisor's health verdict: Degraded, Rediagnosing
     * and Disabled floor the ladder at HedgingOff (the model's
     * predictions are not trustworthy enough to hedge on), without
     * blocking the probe writes re-diagnosis needs.
     */
    void observeHealth(core::HealthState s);

    const ResiliencePolicy &config() const { return cfg_; }
    const PolicyCounters &counters() const { return counters_; }
    BreakerState breakerState() const
    {
        return static_cast<BreakerState>(breakerState_);
    }
    DegradationLevel ladderLevel() const
    {
        return static_cast<DegradationLevel>(ladder_);
    }
    /** Effective hedge delay (configured or p95-derived). */
    sim::SimDuration hedgeDelayEffective() const { return hedgeDelayEff_; }
    /** Largest single-exchange duration seen (budget-domination
     *  witness: never exceeds deadlineBudget when one is set). */
    sim::SimDuration maxExchange() const { return maxExchangeNs_; }
    /** Remaining SLO error budget in ppm of the window (gauge). */
    int64_t errorBudgetPpm() const { return errorBudgetPpm_; }

    /**
     * Attach observability (cold path, before the run): pol_*
     * counters and ladder/breaker/error-budget gauges on the
     * registry, res.shed / res.breaker / res.hedge events on the
     * host resilient trace track.
     */
    void attachObservability(const obs::Sink &sink);

    /** Serialize policy dynamic state (counters, breaker, rings,
     *  tokens, ladder). Config is not serialized — the snapshot's
     *  config hash pins it. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    [[nodiscard]] blockdev::IoResult shed(const blockdev::IoRequest &req,
                                          sim::SimTime now,
                                          ShedReason reason);
    void feedOutcome(const blockdev::IoResult &res, sim::SimTime now);
    void evalLadder(sim::SimTime now);
    void setLadder(uint8_t level, sim::SimTime now);
    void breakerTransition(uint8_t to, sim::SimTime now);
    sim::SimDuration latencyP95() const;

    blockdev::ResilientDevice &inner_; // snapshot:skip(ctor-wired reference to the wrapped device; the restore harness rebuilds the object graph)
    ResiliencePolicy cfg_; // snapshot:skip(construction-time config; loadState only validates it against the checkpoint)
    PolicyCounters counters_;

    // Breaker.
    uint8_t breakerState_ = 0; ///< BreakerState (uint8 for the gauge).
    sim::SimTime breakerOpenedAt_;
    sim::SimDuration breakerCooldownCur_ = 0;
    uint32_t halfOpenOk_ = 0;
    uint8_t outcomeRing_[kRingCapacity] = {};
    uint32_t outcomeHead_ = 0;
    uint32_t outcomeFilled_ = 0;
    uint32_t outcomeFailures_ = 0; ///< Running failure count in ring.

    // SLO / ladder.
    uint8_t ladder_ = 0; ///< DegradationLevel (uint8 for the gauge).
    uint8_t healthFloor_ = 0;
    uint8_t violationRing_[kRingCapacity] = {};
    uint32_t violationHead_ = 0;
    uint32_t violationFilled_ = 0;
    uint32_t violationCount_ = 0; ///< Running violation count in ring.
    uint32_t evalCountdown_ = 0;
    sim::SimTime failFastUntil_;
    int64_t errorBudgetPpm_ = 0;

    // Hedging.
    int64_t hedgeTokensMicro_ = 0; ///< Fixed-point: 1e6 = one hedge.
    sim::SimDuration hedgeDelayEff_ = 0;
    int64_t latencyRing_[kLatencySamples] = {};
    uint32_t latencyHead_ = 0;
    uint32_t latencyFilled_ = 0;

    // Admission.
    sim::SimTime horizon_; ///< Max completion time seen.
    sim::SimDuration maxExchangeNs_ = 0;

    // Observability (null until attachObservability()).
    obs::TraceRecorder *trace_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
    obs::StageProfiler *stages_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
};

/** Named policy presets for the CLI / chaos scenarios. */
std::vector<ResiliencePolicy> allResiliencePolicies();

/**
 * Look up a preset by name ("off", "guarded", "strict").
 * @return true and fill @p out when the name is known.
 */
bool resiliencePolicyByName(const std::string &name, ResiliencePolicy *out);

} // namespace ssdcheck::resilience
