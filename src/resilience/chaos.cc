#include "resilience/chaos.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "core/diagnosis.h"
#include "obs/exporter/telemetry.h"
#include "perf/thread_pool.h"
#include "recovery/state_io.h"
#include "ssd/presets.h"
#include "workload/snia_synth.h"

namespace ssdcheck::resilience {

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof buf, format, ap);
    va_end(ap);
    return buf;
}

/** Stable float rendering for canonical(): enough digits to round-trip
 *  every value a scenario file can express. */
std::string
fnum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

bool
parseU64(const std::string &s, uint64_t *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseF64(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
driftKindByName(const std::string &name, ssd::DriftKind *out)
{
    if (name == "none")
        *out = ssd::DriftKind::None;
    else if (name == "shrink-buffer")
        *out = ssd::DriftKind::ShrinkBuffer;
    else if (name == "grow-buffer")
        *out = ssd::DriftKind::GrowBuffer;
    else if (name == "toggle-read-trigger")
        *out = ssd::DriftKind::ToggleReadTrigger;
    else
        return false;
    return true;
}

} // namespace

uint64_t
chaosDigestFold(uint64_t digest, uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        digest ^= (value >> (8 * i)) & 0xffu;
        digest *= 1099511628211ULL;
    }
    return digest;
}

std::string
ChaosScenario::canonical() const
{
    std::ostringstream o;
    o << "chaos;name=" << name << ";device=" << device
      << ";workload=" << workload << ";scale=" << fnum(scale)
      << ";pacing=" << (pacing == Pacing::Closed ? "closed" : "open")
      << ";arrival=" << arrivalPeriod
      << ";supervisor=" << (supervisor ? 1 : 0);
    o << ";faults=" << fnum(faults.readUncProbability) << ","
      << faults.readRetryMax << "," << faults.readRetryCost << ","
      << fnum(faults.readUncHardFraction) << ","
      << fnum(faults.programFailProbability) << ","
      << fnum(faults.eraseFailProbability) << ","
      << fnum(faults.stallProbability) << "," << faults.stallMin << ","
      << faults.stallMax << "," << faults.driftAfterRequests << ","
      << static_cast<int>(faults.driftKind) << ","
      << fnum(faults.driftBufferFactor);
    o << ";regime=" << fnum(faults.regime.enterBurst) << ","
      << fnum(faults.regime.exitBurst) << ","
      << fnum(faults.regime.uncFactor) << ","
      << fnum(faults.regime.stallFactor);
    for (const ssd::FaultPhase &p : faults.phases)
        o << ";phase=" << p.fromRequest << "," << p.toRequest << ","
          << fnum(p.regime.enterBurst) << "," << fnum(p.regime.exitBurst)
          << "," << fnum(p.regime.uncFactor) << ","
          << fnum(p.regime.stallFactor);
    for (const ssd::UncCluster &c : faults.uncClusters)
        o << ";cluster=" << c.firstPage << "," << c.pages << ","
          << fnum(c.probability);
    o << ";policy=" << (policy.enabled ? 1 : 0) << ","
      << policy.deadlineBudget << "," << (policy.hedgeReads ? 1 : 0)
      << "," << policy.hedgeDelay << ","
      << fnum(policy.hedgeBudgetFraction) << "," << policy.breakerWindow
      << "," << fnum(policy.breakerErrorThreshold) << ","
      << policy.breakerMinSamples << "," << policy.breakerCooldown << ","
      << policy.breakerHalfOpenSuccesses << "," << policy.maxBacklog
      << "," << policy.sloLatencyTarget << ","
      << fnum(policy.sloErrorBudget) << "," << policy.sloWindow << ","
      << policy.ladderEvalEvery << "," << policy.failFastCooldown;
    return o.str();
}

bool
ChaosScenario::parse(const std::string &text, ChaosScenario *out,
                     std::string *err)
{
    auto fail = [&](int line, const std::string &why) {
        if (err != nullptr)
            *err = fmt("line %d: %s", line, why.c_str());
        return false;
    };

    ChaosScenario sc;
    // The scenario file's base presets: faults start from "none" and
    // policy from "guarded"; later keys override individual fields.
    // The struct's default seed list is for programmatic construction
    // only — a scenario file must name its seeds explicitly.
    sc.seeds.clear();
    (void)resiliencePolicyByName("guarded", &sc.policy);

    std::istringstream in(text);
    std::string lineText;
    int lineNo = 0;
    while (std::getline(in, lineText)) {
        ++lineNo;
        const size_t hash = lineText.find('#');
        if (hash != std::string::npos)
            lineText.erase(hash);
        std::istringstream line(lineText);
        std::string key;
        if (!(line >> key))
            continue;

        // Remainder-of-line values (workload names contain spaces).
        auto rest = [&]() {
            std::string v;
            std::getline(line, v);
            const size_t b = v.find_first_not_of(" \t");
            const size_t e = v.find_last_not_of(" \t");
            return b == std::string::npos ? std::string()
                                          : v.substr(b, e - b + 1);
        };
        // Single-token numeric values.
        auto u64 = [&](uint64_t *dst) {
            std::string tok;
            return bool(line >> tok) && parseU64(tok, dst);
        };
        auto f64 = [&](double *dst) {
            std::string tok;
            return bool(line >> tok) && parseF64(tok, dst);
        };
        auto durMs = [&](sim::SimDuration *dst) {
            uint64_t ms = 0;
            if (!u64(&ms))
                return false;
            *dst = sim::milliseconds(static_cast<int64_t>(ms));
            return true;
        };
        auto durUs = [&](sim::SimDuration *dst) {
            uint64_t us = 0;
            if (!u64(&us))
                return false;
            *dst = sim::microseconds(static_cast<int64_t>(us));
            return true;
        };
        auto flag = [&](bool *dst) {
            uint64_t v = 0;
            if (!u64(&v) || v > 1)
                return false;
            *dst = v != 0;
            return true;
        };
        bool good = true;

        // -- run shape ------------------------------------------------
        if (key == "name") {
            sc.name = rest();
            good = !sc.name.empty();
        } else if (key == "device") {
            sc.device = rest();
            good = !sc.device.empty();
        } else if (key == "workload") {
            sc.workload = rest();
            good = !sc.workload.empty();
        } else if (key == "scale") {
            good = f64(&sc.scale);
        } else if (key == "seeds") {
            sc.seeds.clear();
            std::string tok;
            while (good && (line >> tok)) {
                uint64_t s = 0;
                good = parseU64(tok, &s);
                if (good)
                    sc.seeds.push_back(s);
            }
            good = good && !sc.seeds.empty();
        } else if (key == "pacing") {
            const std::string v = rest();
            if (v == "open")
                sc.pacing = Pacing::Open;
            else if (v == "closed")
                sc.pacing = Pacing::Closed;
            else
                good = false;
        } else if (key == "arrival-us") {
            good = durUs(&sc.arrivalPeriod);
        } else if (key == "supervisor") {
            good = flag(&sc.supervisor);

            // -- fault schedule ---------------------------------------
        } else if (key == "faults") {
            good = ssd::faultProfileByName(rest(), &sc.faults);
        } else if (key == "unc-probability") {
            good = f64(&sc.faults.readUncProbability);
        } else if (key == "unc-hard-fraction") {
            good = f64(&sc.faults.readUncHardFraction);
        } else if (key == "read-retry-max") {
            uint64_t v = 0;
            good = u64(&v);
            sc.faults.readRetryMax = static_cast<uint32_t>(v);
        } else if (key == "program-fail-probability") {
            good = f64(&sc.faults.programFailProbability);
        } else if (key == "erase-fail-probability") {
            good = f64(&sc.faults.eraseFailProbability);
        } else if (key == "stall-probability") {
            good = f64(&sc.faults.stallProbability);
        } else if (key == "stall-min-ms") {
            good = durMs(&sc.faults.stallMin);
        } else if (key == "stall-max-ms") {
            good = durMs(&sc.faults.stallMax);
        } else if (key == "drift-after") {
            good = u64(&sc.faults.driftAfterRequests);
        } else if (key == "drift-kind") {
            good = driftKindByName(rest(), &sc.faults.driftKind);
        } else if (key == "burst-enter") {
            good = f64(&sc.faults.regime.enterBurst);
        } else if (key == "burst-exit") {
            good = f64(&sc.faults.regime.exitBurst);
        } else if (key == "burst-unc-factor") {
            good = f64(&sc.faults.regime.uncFactor);
        } else if (key == "burst-stall-factor") {
            good = f64(&sc.faults.regime.stallFactor);
        } else if (key == "phase") {
            ssd::FaultPhase p;
            good = u64(&p.fromRequest) && u64(&p.toRequest) &&
                   f64(&p.regime.enterBurst) && f64(&p.regime.exitBurst) &&
                   f64(&p.regime.uncFactor) && f64(&p.regime.stallFactor);
            if (good)
                sc.faults.phases.push_back(p);
        } else if (key == "unc-cluster") {
            ssd::UncCluster c;
            good = u64(&c.firstPage) && u64(&c.pages) &&
                   f64(&c.probability);
            if (good)
                sc.faults.uncClusters.push_back(c);

            // -- policy stack -----------------------------------------
        } else if (key == "policy") {
            good = resiliencePolicyByName(rest(), &sc.policy);
        } else if (key == "deadline-ms") {
            good = durMs(&sc.policy.deadlineBudget);
        } else if (key == "hedge-reads") {
            good = flag(&sc.policy.hedgeReads);
        } else if (key == "hedge-delay-us") {
            good = durUs(&sc.policy.hedgeDelay);
        } else if (key == "hedge-budget") {
            good = f64(&sc.policy.hedgeBudgetFraction);
        } else if (key == "breaker-window") {
            uint64_t v = 0;
            good = u64(&v);
            sc.policy.breakerWindow = static_cast<uint32_t>(v);
        } else if (key == "breaker-threshold") {
            good = f64(&sc.policy.breakerErrorThreshold);
        } else if (key == "breaker-min-samples") {
            uint64_t v = 0;
            good = u64(&v);
            sc.policy.breakerMinSamples = static_cast<uint32_t>(v);
        } else if (key == "breaker-cooldown-ms") {
            good = durMs(&sc.policy.breakerCooldown);
        } else if (key == "breaker-halfopen") {
            uint64_t v = 0;
            good = u64(&v);
            sc.policy.breakerHalfOpenSuccesses = static_cast<uint32_t>(v);
        } else if (key == "max-backlog-ms") {
            good = durMs(&sc.policy.maxBacklog);
        } else if (key == "slo-latency-ms") {
            good = durMs(&sc.policy.sloLatencyTarget);
        } else if (key == "slo-error-budget") {
            good = f64(&sc.policy.sloErrorBudget);
        } else if (key == "slo-window") {
            uint64_t v = 0;
            good = u64(&v);
            sc.policy.sloWindow = static_cast<uint32_t>(v);
        } else if (key == "ladder-eval-every") {
            uint64_t v = 0;
            good = u64(&v);
            sc.policy.ladderEvalEvery = static_cast<uint32_t>(v);
        } else if (key == "fail-fast-cooldown-ms") {
            good = durMs(&sc.policy.failFastCooldown);

            // -- assertions -------------------------------------------
        } else if (key == "assert-p999-ms") {
            good = durMs(&sc.assertP999);
        } else if (key == "assert-min-completed") {
            good = u64(&sc.assertMinCompleted);
        } else if (key == "assert-max-shed") {
            good = u64(&sc.assertMaxShed);
        } else if (key == "assert-breaker-opens") {
            good = u64(&sc.assertBreakerOpens);
        } else if (key == "assert-breaker-recloses") {
            good = flag(&sc.assertBreakerRecloses);
        } else {
            return fail(lineNo, "unknown key '" + key + "'");
        }
        if (!good)
            return fail(lineNo, "bad value for '" + key + "'");
    }

    if (sc.seeds.empty())
        return fail(lineNo, "no seeds configured");
    if (sc.scale <= 0)
        return fail(lineNo, "scale must be positive");
    const std::string fe = sc.faults.validate();
    if (!fe.empty())
        return fail(lineNo, "fault schedule: " + fe);
    const std::string pe = sc.policy.validate();
    if (!pe.empty())
        return fail(lineNo, "policy: " + pe);

    *out = sc;
    return true;
}

std::unique_ptr<ChaosShard>
ChaosShard::create(const ChaosScenario &scenario, uint64_t seed,
                   bool forResume, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err != nullptr)
            *err = why;
        return nullptr;
    };

    ssd::SsdConfig cfg;
    if (scenario.device == "nvm") {
        cfg = ssd::makeNvmBackedSsd();
    } else if (scenario.device.size() == 1 && scenario.device[0] >= 'A' &&
               scenario.device[0] <= 'G') {
        cfg = ssd::makePreset(
            static_cast<ssd::SsdModel>(scenario.device[0] - 'A'));
    } else {
        return fail("unknown device '" + scenario.device + "'");
    }
    cfg.faults = scenario.faults;
    cfg.seed = seed;

    bool workloadKnown = false;
    workload::SniaWorkload w = workload::SniaWorkload::RwMixed;
    for (const auto candidate : workload::allSniaWorkloads()) {
        if (toString(candidate) == scenario.workload) {
            w = candidate;
            workloadKnown = true;
            break;
        }
    }
    if (!workloadKnown)
        return fail("unknown workload '" + scenario.workload + "'");

    std::unique_ptr<ChaosShard> shard(new ChaosShard());
    shard->scenario_ = scenario;
    shard->seed_ = seed;
    shard->digest_ = kChaosDigestInit;
    shard->dev_ = std::make_unique<ssd::SsdDevice>(cfg);
    shard->rdev_ =
        std::make_unique<blockdev::ResilientDevice>(*shard->dev_);
    shard->pdev_ = std::make_unique<PolicyDevice>(*shard->rdev_,
                                                  scenario.policy);

    if (scenario.supervisor) {
        if (forResume) {
            shard->check_ =
                std::make_unique<core::SsdCheck>(core::FeatureSet{});
        } else {
            // Same clean-twin diagnosis as the accuracy run: features
            // come from a faultless replica so the fault budget lands
            // entirely on the measured shard.
            ssd::SsdConfig cleanCfg = cfg;
            cleanCfg.faults = ssd::FaultProfile{};
            ssd::SsdDevice cleanDev(cleanCfg);
            core::DiagnosisRunner runner(cleanDev, core::DiagnosisConfig{});
            const core::FeatureSet fs = runner.extractFeatures();
            if (!fs.bufferModelUsable())
                return fail("no usable buffer model for device '" +
                            scenario.device + "'");
            shard->check_ = std::make_unique<core::SsdCheck>(fs);
            shard->t_ = runner.now();
        }
        shard->sup_ = std::make_unique<core::HealthSupervisor>(
            *shard->check_, *shard->pdev_);
    }

    if (!forResume)
        shard->dev_->precondition();
    shard->trace_ = workload::buildSniaTrace(
        w, shard->dev_->capacityPages(), scenario.scale);
    shard->t0_ = shard->t_;
    return shard;
}

void
ChaosShard::step()
{
    const blockdev::IoRequest &req = trace_.records()[cursor_].req;
    const sim::SimTime arrival =
        t0_ + static_cast<sim::SimDuration>(cursor_) * scenario_.arrivalPeriod;
    // Open pacing: t_ is the host submit clock — it follows arrivals
    // even while the device's completion horizon runs ahead (that gap
    // is what admission control measures). Closed pacing folds the
    // previous completion into t_ below, so max() waits for it here.
    t_ = std::max(t_, arrival);
    if (sup_)
        t_ = sup_->pump(t_);

    core::Prediction pred{};
    if (check_) {
        pred = check_->predict(req, t_);
        check_->onSubmit(req, t_);
    }
    if (sup_)
        pdev_->observeHealth(sup_->state());
    // Without a model the last completed latency is the hedge hint: a
    // crude predictor, but deterministic and monotone in slowness.
    const sim::SimDuration hint = check_ ? pred.eet : lastLatency_;
    const blockdev::IoResult res = pdev_->submitHinted(req, t_, hint);
    if (check_) {
        const bool actualHl = check_->onComplete(
            req, pred, t_, res.completeTime, res.status, res.attempts);
        if (sup_)
            sup_->onCompletion(req, actualHl, res);
    }

    digest_ = chaosDigestFold(digest_, cursor_);
    digest_ = chaosDigestFold(digest_, static_cast<uint64_t>(res.status));
    digest_ = chaosDigestFold(digest_,
                              static_cast<uint64_t>(res.completeTime.ns()));
    digest_ = chaosDigestFold(digest_, res.attempts);
    if (res.ok()) {
        ++completedOk_;
        lastLatency_ = res.completeTime - t_;
        lat_.add(lastLatency_);
    }
    if (scenario_.pacing == Pacing::Closed)
        t_ = res.completeTime;
    ++cursor_;
}

uint64_t
ChaosShard::configHash() const
{
    return recovery::fnv1a(scenario_.canonical() +
                           ";seed=" + std::to_string(seed_));
}

recovery::Snapshot
ChaosShard::checkpoint() const
{
    using recovery::SectionId;
    using recovery::StateWriter;
    recovery::Snapshot snap;
    snap.begin(configHash(), cursor_, t_.ns());
    {
        StateWriter w;
        dev_->saveState(w);
        snap.addSection(SectionId::Device, w.take());
    }
    {
        StateWriter w;
        rdev_->saveState(w);
        snap.addSection(SectionId::Resilient, w.take());
    }
    {
        StateWriter w;
        pdev_->saveState(w);
        snap.addSection(SectionId::Resilience, w.take());
    }
    if (check_) {
        StateWriter w;
        check_->saveState(w);
        snap.addSection(SectionId::Model, w.take());
    }
    if (sup_) {
        StateWriter w;
        sup_->saveState(w);
        snap.addSection(SectionId::Supervisor, w.take());
    }
    {
        StateWriter w;
        w.u64(digest_);
        w.u64(completedOk_);
        w.i64(lastLatency_);
        w.i64(t0_.ns());
        w.u64(lat_.count());
        for (const sim::SimDuration s : lat_.sorted())
            w.i64(s);
        snap.addSection(SectionId::Chaos, w.take());
    }
    return snap;
}

recovery::LoadError
ChaosShard::restore(const recovery::Snapshot &snap, std::string *detail)
{
    using recovery::LoadError;
    using recovery::SectionId;
    using recovery::StateReader;
    auto explain = [&](const std::string &why) {
        if (detail != nullptr)
            *detail = why;
    };
    if (snap.configHash() != configHash()) {
        explain("snapshot was taken under a different chaos scenario "
                "or seed (this shard: " +
                scenario_.canonical() + ";seed=" + std::to_string(seed_) +
                ")");
        return LoadError::ConfigMismatch;
    }
    if (snap.requestIndex() > trace_.size()) {
        explain("snapshot resume point is beyond the end of the trace");
        return LoadError::Malformed;
    }

    auto load = [&](SectionId id, const char *name,
                    auto &&fn) -> LoadError {
        const std::vector<uint8_t> *payload = snap.section(id);
        if (payload == nullptr) {
            explain(std::string("required section '") + name +
                    "' is missing");
            return LoadError::MissingSection;
        }
        StateReader r(*payload);
        fn(r);
        if (!r.ok()) {
            explain(std::string("section '") + name + "': " + r.error());
            return LoadError::Malformed;
        }
        if (!r.atEnd()) {
            explain(std::string("section '") + name +
                    "' has trailing bytes");
            return LoadError::Malformed;
        }
        return LoadError::Ok;
    };

    LoadError e;
    e = load(SectionId::Device, "device",
             [&](StateReader &r) { dev_->loadState(r); });
    if (e != LoadError::Ok)
        return e;
    e = load(SectionId::Resilient, "resilient",
             [&](StateReader &r) { rdev_->loadState(r); });
    if (e != LoadError::Ok)
        return e;
    e = load(SectionId::Resilience, "resilience",
             [&](StateReader &r) { pdev_->loadState(r); });
    if (e != LoadError::Ok)
        return e;
    if (check_) {
        e = load(SectionId::Model, "model",
                 [&](StateReader &r) { check_->loadState(r); });
        if (e != LoadError::Ok)
            return e;
    }
    if (sup_) {
        e = load(SectionId::Supervisor, "supervisor",
                 [&](StateReader &r) { sup_->loadState(r); });
        if (e != LoadError::Ok)
            return e;
    }
    e = load(SectionId::Chaos, "chaos", [&](StateReader &r) {
        digest_ = r.u64();
        completedOk_ = r.u64();
        lastLatency_ = r.i64();
        t0_ = sim::SimTime{r.i64()};
        const uint64_t n = r.checkCount(r.u64(), sizeof(int64_t));
        lat_.clear();
        for (uint64_t i = 0; i < n && r.ok(); ++i)
            lat_.add(r.i64());
        if (r.ok() && lat_.count() != completedOk_)
            r.fail("latency sample count disagrees with completions");
    });
    if (e != LoadError::Ok)
        return e;

    cursor_ = snap.requestIndex();
    t_ = sim::SimTime{snap.simTimeNs()};
    return LoadError::Ok;
}

std::vector<std::string>
ChaosShard::checkInvariants() const
{
    std::vector<std::string> violations;
    const PolicyCounters &pc = pdev_->counters();
    const blockdev::ResilienceCounters &rc = rdev_->counters();
    const uint64_t probes =
        sup_ ? sup_->counters().probesIssued : 0;

    if (pdev_->config().enabled) {
        if (pc.submissions != cursor_ + probes)
            violations.push_back(
                fmt("policy saw %" PRIu64 " submissions but cursor "
                    "%" PRIu64 " + %" PRIu64 " probes were issued",
                    pc.submissions, cursor_, probes));
        if (pc.forwarded + pc.shedTotal() != pc.submissions)
            violations.push_back(
                fmt("policy forwarded %" PRIu64 " + shed %" PRIu64
                    " does not sum to %" PRIu64 " submissions",
                    pc.forwarded, pc.shedTotal(), pc.submissions));
        if (rc.submissions != pc.forwarded + pc.hedgesIssued)
            violations.push_back(
                fmt("resilient path saw %" PRIu64 " submissions but the "
                    "policy forwarded %" PRIu64 " + %" PRIu64 " hedges",
                    rc.submissions, pc.forwarded, pc.hedgesIssued));
        if (pc.hedgeCancelled != pc.hedgesIssued ||
            pc.hedgeWins > pc.hedgesIssued)
            violations.push_back("hedge accounting does not pair up "
                                 "with issued hedges");
        if (pc.breakerCloses > pc.breakerOpens + pc.breakerReopens)
            violations.push_back(
                "breaker closed more often than it opened");
        if (pdev_->config().deadlineBudget > 0 &&
            pdev_->maxExchange() > pdev_->config().deadlineBudget)
            violations.push_back(
                fmt("observed a %" PRId64 "ns exchange over the %" PRId64
                    "ns deadline budget",
                    pdev_->maxExchange(),
                    pdev_->config().deadlineBudget));
    } else if (rc.submissions != cursor_ + probes) {
        violations.push_back(
            fmt("resilient path saw %" PRIu64 " submissions but cursor "
                "%" PRIu64 " + %" PRIu64 " probes were issued",
                rc.submissions, cursor_, probes));
    }
    if (dev_->requestsServed() != rc.attemptsIssued)
        violations.push_back(
            fmt("device served %" PRIu64 " requests but the resilient "
                "path issued %" PRIu64 " attempts",
                dev_->requestsServed(), rc.attemptsIssued));
    if (lat_.count() != completedOk_)
        violations.push_back(
            fmt("recorded %zu ok latencies for %" PRIu64
                " ok completions",
                lat_.count(), completedOk_));
    return violations;
}

ChaosCampaignResult
runChaosCampaign(const ChaosScenario &scenario, unsigned jobs,
                 obs::TelemetryHub *telemetry)
{
    ChaosCampaignResult out;
    if (scenario.seeds.empty()) {
        out.error = "scenario has no seeds";
        return out;
    }

    const size_t n = scenario.seeds.size();
    out.shards.resize(n);

    // Campaign-progress state shared by shard tasks when a telemetry
    // hub is attached. One mutex guards both the counters and the
    // publish, so concurrent shard completions publish consistently.
    struct CampaignProgress
    {
        std::mutex mu;
        obs::Registry reg;
        uint64_t shardsDone = 0;
        uint64_t completedOk = 0;
        uint64_t shed = 0;
    };
    std::unique_ptr<CampaignProgress> progress;
    if (telemetry != nullptr) {
        progress = std::make_unique<CampaignProgress>();
        progress->reg.exportCounter("chaos_shards_done", {},
                                    &progress->shardsDone);
        progress->reg.exportCounter("chaos_completed_ok", {},
                                    &progress->completedOk);
        progress->reg.exportCounter("chaos_shed_total", {},
                                    &progress->shed);
    }
    CampaignProgress *prog = progress.get();

    perf::ThreadPool pool(jobs == 0 ? 1 : jobs);
    parallelFor(pool, n, [&](size_t i) {
        ChaosShardResult &r = out.shards[i];
        r.seed = scenario.seeds[i];
        std::string err;
        const std::unique_ptr<ChaosShard> shard =
            ChaosShard::create(scenario, r.seed, false, &err);
        if (shard == nullptr) {
            r.failures.push_back("shard construction failed: " + err);
            return;
        }
        while (!shard->done())
            shard->step();

        const PolicyCounters &pc = shard->policy().counters();
        r.digest = shard->digest();
        r.completedOk = shard->completedOk();
        r.shed = pc.shedTotal();
        r.deadlineExpired = pc.deadlineExpired;
        r.hedgesIssued = pc.hedgesIssued;
        r.hedgeWins = pc.hedgeWins;
        r.breakerOpens = pc.breakerOpens;
        r.breakerCloses = pc.breakerCloses;
        r.p999 = shard->latencies().percentile(99.9);
        r.maxExchange = shard->policy().maxExchange();
        r.finalTime = shard->now();

        // -- SLO assertions -------------------------------------------
        if (r.completedOk < scenario.assertMinCompleted)
            r.failures.push_back(
                fmt("liveness: %" PRIu64 " ok completions, floor is "
                    "%" PRIu64,
                    r.completedOk, scenario.assertMinCompleted));
        if (scenario.assertP999 > 0 && r.p999 > scenario.assertP999)
            r.failures.push_back(
                fmt("tail latency: p99.9 %" PRId64 "ns over the %" PRId64
                    "ns bound",
                    r.p999, scenario.assertP999));
        if (r.shed > scenario.assertMaxShed)
            r.failures.push_back(
                fmt("shed %" PRIu64 " requests, ceiling is %" PRIu64,
                    r.shed, scenario.assertMaxShed));
        if (r.breakerOpens < scenario.assertBreakerOpens)
            r.failures.push_back(
                fmt("breaker opened %" PRIu64 " times, expected at least "
                    "%" PRIu64,
                    r.breakerOpens, scenario.assertBreakerOpens));
        if (scenario.assertBreakerRecloses && r.breakerCloses == 0)
            r.failures.push_back(
                "breaker never recovered through the HalfOpen probe "
                "path");
        for (std::string &v : shard->checkInvariants())
            r.failures.push_back("invariant: " + std::move(v));

        if (prog != nullptr) {
            const std::lock_guard<std::mutex> lk(prog->mu);
            prog->shardsDone += 1;
            prog->completedOk += r.completedOk;
            prog->shed += r.shed;
            obs::RunStatus st;
            st.phase = "chaos";
            st.cursor = prog->shardsDone;
            st.totalRequests = n;
            st.simTimeNs = r.finalTime.ns();
            st.breakerState =
                static_cast<uint8_t>(shard->policy().breakerState());
            st.ladderLevel =
                static_cast<uint8_t>(shard->policy().ladderLevel());
            st.shedTotal = prog->shed;
            st.healthy = r.failures.empty();
            telemetry->publish(prog->reg, st);
        }
    });

    out.campaignDigest = kChaosDigestInit;
    out.pass = true;
    for (const ChaosShardResult &r : out.shards) {
        out.campaignDigest = chaosDigestFold(out.campaignDigest, r.digest);
        if (!r.failures.empty())
            out.pass = false;
    }

    // Deterministic final publish after the seed-order fold.
    if (prog != nullptr) {
        const std::lock_guard<std::mutex> lk(prog->mu);
        obs::RunStatus st;
        st.phase = "done";
        st.cursor = prog->shardsDone;
        st.totalRequests = n;
        st.shedTotal = prog->shed;
        st.healthy = out.pass;
        telemetry->publish(prog->reg, st);
    }
    return out;
}

} // namespace ssdcheck::resilience
