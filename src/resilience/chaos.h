/**
 * @file
 * Adversarial chaos campaigns for the resilience policy layer.
 *
 * A ChaosScenario (parsed from a small text file) composes a
 * correlated fault schedule — Markov burst/calm regimes, stall
 * storms, targeted-LBA UNC clusters, mid-run firmware drift — with a
 * workload, an arrival pacing mode, and a policy stack, then declares
 * the SLOs the stack must hold under that abuse: liveness, bounded
 * p99.9, no deadline-budget overrun, breaker recovery, shed ceilings.
 *
 * runChaosCampaign() replays the scenario once per seed (shards run
 * in parallel on perf::ThreadPool, bit-identical at any --jobs) and
 * folds each shard's per-request outcome stream into a digest; two
 * campaigns agree exactly when every request in every shard completed
 * with the same status at the same sim time. ChaosShard also speaks
 * the PR-6 snapshot protocol, so a campaign can be killed mid-shard
 * and resumed bit-exactly.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/resilient_device.h"
#include "core/health_supervisor.h"
#include "core/ssdcheck.h"
#include "recovery/snapshot.h"
#include "resilience/policy.h"
#include "ssd/ssd_device.h"
#include "stats/latency_recorder.h"
#include "workload/trace.h"

namespace ssdcheck::obs {
class TelemetryHub;
} // namespace ssdcheck::obs

namespace ssdcheck::resilience {

/** How the host clock advances between requests. */
enum class Pacing : uint8_t
{
    Open = 0,   ///< Fixed arrival period; queues can build (overload).
    Closed = 1, ///< Next request waits for the previous completion.
};

/** One parsed chaos scenario: faults + workload + policy + SLOs. */
struct ChaosScenario
{
    std::string name = "unnamed";
    std::string device = "A";       ///< Device preset ("A".."G"/"nvm").
    std::string workload = "RW Mixed";
    double scale = 0.02;            ///< Trace shrink factor.
    std::vector<uint64_t> seeds = {1, 2, 3, 4};
    Pacing pacing = Pacing::Open;
    sim::SimDuration arrivalPeriod = sim::microseconds(100);
    bool supervisor = false;        ///< Model + health supervisor on.

    ssd::FaultProfile faults;       ///< Assembled fault schedule.
    ResiliencePolicy policy;        ///< Assembled policy stack.

    // -- assertions (0 / max = not asserted) --------------------------
    sim::SimDuration assertP999 = 0;  ///< p99.9 of ok latencies <= this.
    uint64_t assertMinCompleted = 0;  ///< Liveness floor per shard.
    uint64_t assertMaxShed = UINT64_MAX; ///< Shed ceiling per shard.
    uint64_t assertBreakerOpens = 0;  ///< Breaker must open >= this.
    bool assertBreakerRecloses = false; ///< Breaker must re-close.

    /** Canonical text form (hashed into checkpoint identity). */
    std::string canonical() const;

    /**
     * Parse the scenario file format: one `key value...` pair per
     * line, `#` comments, unknown keys rejected. See the .chaos
     * files under examples/chaos/ for the vocabulary.
     * @return true on success; else fills @p err with line + reason.
     */
    static bool parse(const std::string &text, ChaosScenario *out,
                      std::string *err);
};

/** One seed's replay of a scenario (checkpointable, deterministic). */
class ChaosShard
{
  public:
    /**
     * Build the shard stack for (scenario, seed).
     * @param forResume skip diagnosis/preconditioning; restore()
     *        supplies every bit of state they would have produced.
     * @param err receives a description on failure.
     */
    static std::unique_ptr<ChaosShard>
    create(const ChaosScenario &scenario, uint64_t seed, bool forResume,
           std::string *err);

    bool done() const { return cursor_ >= trace_.size(); }
    void step();
    uint64_t cursor() const { return cursor_; }
    sim::SimTime now() const { return t_; }
    uint64_t seed() const { return seed_; }

    /** Running outcome digest (status/time/attempts per request). */
    uint64_t digest() const { return digest_; }
    uint64_t completedOk() const { return completedOk_; }
    const stats::LatencyRecorder &latencies() const { return lat_; }
    const PolicyDevice &policy() const { return *pdev_; }
    const blockdev::ResilientDevice &resilient() const { return *rdev_; }
    const ssd::SsdDevice &device() const { return *dev_; }
    const workload::Trace &trace() const { return trace_; }
    const core::HealthSupervisor *supervisorPtr() const
    {
        return sup_.get();
    }

    /** Snapshot identity hash for (scenario, seed). */
    uint64_t configHash() const;

    /** Serialize the complete shard state at the request boundary. */
    recovery::Snapshot checkpoint() const;

    /** Restore a snapshot taken by checkpoint() (same scenario+seed,
     *  enforced via the config hash). */
    [[nodiscard]] recovery::LoadError
    restore(const recovery::Snapshot &snap, std::string *detail);

    /**
     * Cross-layer counter conservation for the shard stack (the
     * chaos-side analogue of recovery::checkInvariants). Empty when
     * every identity holds.
     */
    std::vector<std::string> checkInvariants() const;

  private:
    ChaosShard() = default;

    ChaosScenario scenario_;
    uint64_t seed_ = 0;
    std::unique_ptr<ssd::SsdDevice> dev_;
    std::unique_ptr<blockdev::ResilientDevice> rdev_;
    std::unique_ptr<PolicyDevice> pdev_;
    std::unique_ptr<core::SsdCheck> check_;
    std::unique_ptr<core::HealthSupervisor> sup_;
    workload::Trace trace_;
    uint64_t cursor_ = 0;
    sim::SimTime t_;
    sim::SimTime t0_; ///< Arrival-clock origin (post-diagnosis).
    uint64_t digest_ = 0;
    uint64_t completedOk_ = 0;
    sim::SimDuration lastLatency_ = 0; ///< Hedge hint without a model.
    stats::LatencyRecorder lat_;
};

/** Outcome of one shard plus its assertion verdicts. */
struct ChaosShardResult
{
    uint64_t seed = 0;
    uint64_t digest = 0;
    uint64_t completedOk = 0;
    uint64_t shed = 0;
    uint64_t deadlineExpired = 0;
    uint64_t hedgesIssued = 0;
    uint64_t hedgeWins = 0;
    uint64_t breakerOpens = 0;
    uint64_t breakerCloses = 0;
    sim::SimDuration p999 = 0;
    sim::SimDuration maxExchange = 0;
    sim::SimTime finalTime;
    /** Assertion/invariant failures (empty = shard passed). */
    std::vector<std::string> failures;
};

/** Whole-campaign outcome. */
struct ChaosCampaignResult
{
    std::vector<ChaosShardResult> shards; ///< In seed order.
    uint64_t campaignDigest = 0;          ///< Fold of shard digests.
    bool pass = false;                    ///< Every shard clean.
    std::string error; ///< Non-empty when the campaign could not run.
};

/**
 * Run every seed of @p scenario, @p jobs shards in parallel.
 * Results are bit-identical for any jobs value: each shard is
 * deterministic in (scenario, seed) and the fold is in seed order.
 * @param telemetry optional live-telemetry hub (not owned): each
 *        completing shard publishes campaign progress, and the fold
 *        publishes a deterministic final snapshot. Attaching a hub
 *        never changes shard results.
 */
ChaosCampaignResult runChaosCampaign(const ChaosScenario &scenario,
                                     unsigned jobs,
                                     obs::TelemetryHub *telemetry =
                                         nullptr);

/** Fold a value into a running FNV-1a digest (exposed for tests). */
uint64_t chaosDigestFold(uint64_t digest, uint64_t value);

/** Initial digest value (FNV-1a offset basis). */
inline constexpr uint64_t kChaosDigestInit = 14695981039346656037ULL;

} // namespace ssdcheck::resilience
