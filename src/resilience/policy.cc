#include "resilience/policy.h"

#include <algorithm>

#include "recovery/state_io.h"

namespace ssdcheck::resilience {

namespace {

constexpr int64_t kTokenScale = 1'000'000;    ///< One hedge token.
constexpr int64_t kTokenCapMicro = 10'000'000; ///< Max banked tokens.
constexpr uint8_t kClosed = 0;
constexpr uint8_t kOpen = 1;
constexpr uint8_t kHalfOpen = 2;
constexpr uint8_t kNormal = 0;
constexpr uint8_t kHedgingOff = 1;
constexpr uint8_t kWritesDeferred = 2;
constexpr uint8_t kFailFast = 3;

const obs::TraceTrack kPolicyTrack{obs::kHostPid, obs::kHostResilientTid};

/** Ring push with a running set-bit count; returns nothing. */
void
ringPush(uint8_t *ring, uint32_t window, uint32_t &head, uint32_t &filled,
         uint32_t &count, bool value)
{
    if (filled == window) {
        count -= ring[head];
    } else {
        ++filled;
    }
    ring[head] = value ? 1 : 0;
    count += ring[head];
    head = (head + 1) % window;
}

} // namespace

std::string
toString(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half-open";
    }
    return "?";
}

std::string
toString(DegradationLevel l)
{
    switch (l) {
      case DegradationLevel::Normal:
        return "normal";
      case DegradationLevel::HedgingOff:
        return "hedging-off";
      case DegradationLevel::WritesDeferred:
        return "writes-deferred";
      case DegradationLevel::FailFast:
        return "fail-fast";
    }
    return "?";
}

std::string
ResiliencePolicy::validate() const
{
    if (!enabled)
        return {};
    if (deadlineBudget < 0)
        return "policy '" + name + "': deadlineBudget must be >= 0";
    if (hedgeDelay < 0)
        return "policy '" + name + "': hedgeDelay must be >= 0";
    if (hedgeBudgetFraction < 0.0 || hedgeBudgetFraction > 1.0)
        return "policy '" + name +
               "': hedgeBudgetFraction must be within [0, 1]";
    if (breakerWindow == 0 ||
        breakerWindow > PolicyDevice::kRingCapacity)
        return "policy '" + name + "': breakerWindow must be in [1, " +
               std::to_string(PolicyDevice::kRingCapacity) + "]";
    if (breakerErrorThreshold <= 0.0 || breakerErrorThreshold > 1.0)
        return "policy '" + name +
               "': breakerErrorThreshold must be within (0, 1]";
    if (breakerMinSamples == 0 || breakerMinSamples > breakerWindow)
        return "policy '" + name +
               "': breakerMinSamples must be in [1, breakerWindow]";
    if (breakerCooldown <= 0)
        return "policy '" + name + "': breakerCooldown must be > 0";
    if (breakerHalfOpenSuccesses == 0)
        return "policy '" + name +
               "': breakerHalfOpenSuccesses must be > 0";
    if (maxBacklog < 0)
        return "policy '" + name + "': maxBacklog must be >= 0";
    if (sloLatencyTarget <= 0)
        return "policy '" + name + "': sloLatencyTarget must be > 0";
    if (sloErrorBudget <= 0.0 || sloErrorBudget > 1.0)
        return "policy '" + name +
               "': sloErrorBudget must be within (0, 1]";
    if (sloWindow == 0 || sloWindow > PolicyDevice::kRingCapacity)
        return "policy '" + name + "': sloWindow must be in [1, " +
               std::to_string(PolicyDevice::kRingCapacity) + "]";
    if (ladderEvalEvery == 0)
        return "policy '" + name + "': ladderEvalEvery must be > 0";
    if (failFastCooldown <= 0)
        return "policy '" + name + "': failFastCooldown must be > 0";
    return {};
}

PolicyDevice::PolicyDevice(blockdev::ResilientDevice &inner,
                           ResiliencePolicy cfg)
    : inner_(inner), cfg_(std::move(cfg))
{
    breakerCooldownCur_ = cfg_.breakerCooldown;
    evalCountdown_ = cfg_.ladderEvalEvery;
    hedgeDelayEff_ = cfg_.hedgeDelay;
    errorBudgetPpm_ = kTokenScale;
}

blockdev::IoResult
PolicyDevice::submit(const blockdev::IoRequest &req, sim::SimTime now)
{
    return submitHinted(req, now, /*predictedLatency=*/0);
}

blockdev::IoResult
PolicyDevice::shed(const blockdev::IoRequest &req, sim::SimTime now,
                   ShedReason reason)
{
    switch (reason) {
      case ShedReason::Overload:
        ++counters_.shedOverload;
        break;
      case ShedReason::BreakerOpen:
        ++counters_.shedBreaker;
        break;
      case ShedReason::WriteDeferred:
        ++counters_.shedWriteDeferred;
        break;
      case ShedReason::FailFast:
        ++counters_.shedFailFast;
        break;
    }
    if (trace_ != nullptr)
        trace_->instant("res", "res.shed", kPolicyTrack, now,
                        {{"reason", static_cast<int64_t>(reason)},
                         {"write", req.isWrite() ? 1 : 0}});
    blockdev::IoResult res;
    res.submitTime = now;
    res.completeTime = now; // Instant host-side completion.
    res.status = blockdev::IoStatus::Rejected;
    res.attempts = 0;       // The device never saw it.
    return res;
}

void
PolicyDevice::breakerTransition(uint8_t to, sim::SimTime now)
{
    breakerState_ = to;
    if (to == kHalfOpen)
        halfOpenOk_ = 0;
    if (trace_ != nullptr)
        trace_->instant("res", "res.breaker", kPolicyTrack, now,
                        {{"state", static_cast<int64_t>(to)}});
}

void
PolicyDevice::setLadder(uint8_t level, sim::SimTime now)
{
    if (level == ladder_)
        return;
    ladder_ = level;
    ++counters_.ladderTransitions;
    if (trace_ != nullptr)
        trace_->instant("res", "res.ladder", kPolicyTrack, now,
                        {{"level", static_cast<int64_t>(level)}});
}

void
PolicyDevice::observeHealth(core::HealthState s)
{
    // A distrusted model means distrusted predictions: stop hedging on
    // them. Anything stronger (deferring writes) would starve the
    // probe I/O re-diagnosis needs to recover the model.
    const bool distrusted = s == core::HealthState::Degraded ||
                            s == core::HealthState::Rediagnosing ||
                            s == core::HealthState::Disabled;
    healthFloor_ = distrusted ? kHedgingOff : kNormal;
    if (ladder_ < healthFloor_)
        ladder_ = healthFloor_; // Takes effect immediately, silently.
}

sim::SimDuration
PolicyDevice::latencyP95() const
{
    if (latencyFilled_ == 0)
        return 0;
    int64_t sorted[kLatencySamples];
    std::copy(latencyRing_, latencyRing_ + latencyFilled_, sorted);
    // Exact nearest-rank p95 over the window, matching
    // stats::LatencyRecorder::percentile semantics.
    const uint32_t rank =
        (latencyFilled_ * 95 + 99) / 100; // ceil(n * 0.95), 1-based.
    const uint32_t idx = rank == 0 ? 0 : rank - 1;
    std::nth_element(sorted, sorted + idx, sorted + latencyFilled_);
    return sorted[idx];
}

void
PolicyDevice::evalLadder(sim::SimTime now)
{
    // Refresh the adaptive hedge delay from the rolling p95.
    if (cfg_.hedgeDelay == 0)
        hedgeDelayEff_ = latencyP95();

    if (violationFilled_ == 0) {
        errorBudgetPpm_ = kTokenScale;
        return;
    }
    const double rate = static_cast<double>(violationCount_) /
                        static_cast<double>(violationFilled_);
    const double used = rate / cfg_.sloErrorBudget;
    errorBudgetPpm_ = static_cast<int64_t>(
        (1.0 - std::min(used, 1.0)) * static_cast<double>(kTokenScale));

    uint8_t level = kNormal;
    if (used >= 2.0)
        level = kFailFast;
    else if (used >= 1.0)
        level = kWritesDeferred;
    else if (used >= 0.5)
        level = kHedgingOff;
    level = std::max(level, healthFloor_);

    // FailFast is entered with a dwell time; the submit path exits it
    // once the dwell elapses (with a fresh violation window).
    if (level == kFailFast && ladder_ != kFailFast)
        failFastUntil_ = now + cfg_.failFastCooldown;
    setLadder(level, now);
}

void
PolicyDevice::feedOutcome(const blockdev::IoResult &res, sim::SimTime now)
{
    (void)now;
    const bool failure = !res.ok();
    if (res.status == blockdev::IoStatus::Expired)
        ++counters_.deadlineExpired;

    horizon_ = std::max(horizon_, res.completeTime);
    maxExchangeNs_ = std::max(maxExchangeNs_, res.latency());

    if (res.ok()) {
        latencyRing_[latencyHead_] = res.latency();
        latencyHead_ = (latencyHead_ + 1) % kLatencySamples;
        latencyFilled_ = std::min(latencyFilled_ + 1, kLatencySamples);
    }

    // Breaker bookkeeping.
    if (breakerState_ == kHalfOpen) {
        if (failure) {
            ++counters_.breakerReopens;
            breakerCooldownCur_ = std::min(breakerCooldownCur_ * 2,
                                           cfg_.breakerCooldown * 8);
            breakerOpenedAt_ = res.completeTime;
            breakerTransition(kOpen, res.completeTime);
        } else if (++halfOpenOk_ >= cfg_.breakerHalfOpenSuccesses) {
            ++counters_.breakerCloses;
            breakerCooldownCur_ = cfg_.breakerCooldown;
            outcomeHead_ = 0;
            outcomeFilled_ = 0;
            outcomeFailures_ = 0;
            breakerTransition(kClosed, res.completeTime);
        }
    } else if (breakerState_ == kClosed) {
        ringPush(outcomeRing_, cfg_.breakerWindow, outcomeHead_,
                 outcomeFilled_, outcomeFailures_, failure);
        if (outcomeFilled_ >= cfg_.breakerMinSamples &&
            static_cast<double>(outcomeFailures_) >=
                cfg_.breakerErrorThreshold *
                    static_cast<double>(outcomeFilled_)) {
            ++counters_.breakerOpens;
            breakerOpenedAt_ = res.completeTime;
            outcomeHead_ = 0;
            outcomeFilled_ = 0;
            outcomeFailures_ = 0;
            breakerTransition(kOpen, res.completeTime);
        }
    }

    // SLO window + ladder.
    const bool violation =
        failure || res.latency() > cfg_.sloLatencyTarget;
    if (violation)
        ++counters_.sloViolations;
    ringPush(violationRing_, cfg_.sloWindow, violationHead_,
             violationFilled_, violationCount_, violation);
    if (--evalCountdown_ == 0) {
        evalCountdown_ = cfg_.ladderEvalEvery;
        evalLadder(res.completeTime);
    }
}

blockdev::IoResult
PolicyDevice::submitHinted(const blockdev::IoRequest &req, sim::SimTime now,
                           sim::SimDuration predictedLatency)
{
    const obs::StageScope stage(stages_, obs::Stage::Policy);
    if (!cfg_.enabled)
        return inner_.submit(req, now);

    ++counters_.submissions;

    // Breaker Open dwell elapses on the arrival clock.
    if (breakerState_ == kOpen &&
        now >= breakerOpenedAt_ + breakerCooldownCur_)
        breakerTransition(kHalfOpen, now);

    const bool trial = breakerState_ == kHalfOpen;
    if (!trial) {
        if (breakerState_ == kOpen)
            return shed(req, now, ShedReason::BreakerOpen);
        if (ladder_ == kFailFast) {
            if (now < failFastUntil_)
                return shed(req, now, ShedReason::FailFast);
            // Dwell over: resume service against a fresh window so the
            // stale storm-era violations cannot re-trip the ladder.
            violationHead_ = 0;
            violationFilled_ = 0;
            violationCount_ = 0;
            setLadder(healthFloor_, now);
        }
        if (cfg_.maxBacklog > 0 && horizon_ - now > cfg_.maxBacklog)
            return shed(req, now, ShedReason::Overload);
        if (ladder_ >= kWritesDeferred && req.isWrite())
            return shed(req, now, ShedReason::WriteDeferred);
    }

    ++counters_.forwarded;
    if (trial)
        ++counters_.breakerTrials;

    // Hedge tokens accrue per forwarded request and are spent one per
    // backup read, bounding hedge amplification by construction.
    hedgeTokensMicro_ = std::min(
        hedgeTokensMicro_ +
            static_cast<int64_t>(cfg_.hedgeBudgetFraction *
                                 static_cast<double>(kTokenScale)),
        kTokenCapMicro);

    const sim::SimTime deadline = cfg_.deadlineBudget > 0
                                      ? now + cfg_.deadlineBudget
                                      : sim::kTimeZero;

    bool wantHedge = !trial && cfg_.hedgeReads && req.isRead() &&
                     ladder_ == kNormal && hedgeDelayEff_ > 0 &&
                     predictedLatency > hedgeDelayEff_ &&
                     (deadline == sim::kTimeZero ||
                      now + hedgeDelayEff_ < deadline);
    if (wantHedge && hedgeTokensMicro_ < kTokenScale) {
        ++counters_.hedgeTokenDenied;
        wantHedge = false;
    }

    blockdev::IoResult res = inner_.submitBounded(req, now, deadline);

    if (wantHedge) {
        hedgeTokensMicro_ -= kTokenScale;
        ++counters_.hedgesIssued;
        const sim::SimTime hedgeStart = now + hedgeDelayEff_;
        blockdev::IoResult backup =
            inner_.submitBounded(req, hedgeStart, deadline);
        const bool backupWins =
            backup.ok() &&
            (!res.ok() || backup.completeTime < res.completeTime);
        // The losing half is cancelled: accounting only — the device
        // did the work, as a real cancellation race would have.
        ++counters_.hedgeCancelled;
        if (trace_ != nullptr)
            trace_->complete(
                "res", "res.hedge", kPolicyTrack, hedgeStart,
                backup.completeTime - hedgeStart,
                {{"win", backupWins ? 1 : 0},
                 {"status", static_cast<int64_t>(backup.status)}});
        if (backupWins) {
            ++counters_.hedgeWins;
            backup.submitTime = now;
            res = backup;
        }
    }

    feedOutcome(res, now);
    return res;
}

void
PolicyDevice::attachObservability(const obs::Sink &sink)
{
    trace_ = sink.trace;
    stages_ = sink.stages;
    if (sink.metrics != nullptr) {
        obs::Registry &reg = *sink.metrics;
        const obs::Labels labels = {{"device", inner_.name()}};
        reg.exportCounter("pol_submissions", labels,
                          &counters_.submissions);
        reg.exportCounter("pol_forwarded", labels, &counters_.forwarded);
        reg.exportCounter("pol_shed_overload", labels,
                          &counters_.shedOverload);
        reg.exportCounter("pol_shed_breaker", labels,
                          &counters_.shedBreaker);
        reg.exportCounter("pol_shed_write_deferred", labels,
                          &counters_.shedWriteDeferred);
        reg.exportCounter("pol_shed_fail_fast", labels,
                          &counters_.shedFailFast);
        reg.exportCounter("pol_hedges_issued", labels,
                          &counters_.hedgesIssued);
        reg.exportCounter("pol_hedge_wins", labels, &counters_.hedgeWins);
        reg.exportCounter("pol_hedge_cancelled", labels,
                          &counters_.hedgeCancelled);
        reg.exportCounter("pol_hedge_token_denied", labels,
                          &counters_.hedgeTokenDenied);
        reg.exportCounter("pol_deadline_expired", labels,
                          &counters_.deadlineExpired);
        reg.exportCounter("pol_breaker_opens", labels,
                          &counters_.breakerOpens);
        reg.exportCounter("pol_breaker_reopens", labels,
                          &counters_.breakerReopens);
        reg.exportCounter("pol_breaker_closes", labels,
                          &counters_.breakerCloses);
        reg.exportCounter("pol_breaker_trials", labels,
                          &counters_.breakerTrials);
        reg.exportCounter("pol_slo_violations", labels,
                          &counters_.sloViolations);
        reg.exportCounter("pol_ladder_transitions", labels,
                          &counters_.ladderTransitions);
        reg.exportGauge("pol_ladder_level", labels, &ladder_);
        reg.exportGauge("pol_breaker_state", labels, &breakerState_);
        reg.exportGauge("pol_error_budget_ppm", labels, &errorBudgetPpm_);
        reg.exportGauge("pol_max_exchange_ns", labels, &maxExchangeNs_);
    }
}

void
PolicyDevice::saveState(recovery::StateWriter &w) const
{
    w.u64(counters_.submissions);
    w.u64(counters_.forwarded);
    w.u64(counters_.shedOverload);
    w.u64(counters_.shedBreaker);
    w.u64(counters_.shedWriteDeferred);
    w.u64(counters_.shedFailFast);
    w.u64(counters_.hedgesIssued);
    w.u64(counters_.hedgeWins);
    w.u64(counters_.hedgeCancelled);
    w.u64(counters_.hedgeTokenDenied);
    w.u64(counters_.deadlineExpired);
    w.u64(counters_.breakerOpens);
    w.u64(counters_.breakerReopens);
    w.u64(counters_.breakerCloses);
    w.u64(counters_.breakerTrials);
    w.u64(counters_.sloViolations);
    w.u64(counters_.ladderTransitions);
    w.u8(breakerState_);
    w.i64(breakerOpenedAt_.ns());
    w.i64(breakerCooldownCur_);
    w.u32(halfOpenOk_);
    w.raw(outcomeRing_, kRingCapacity);
    w.u32(outcomeHead_);
    w.u32(outcomeFilled_);
    w.u32(outcomeFailures_);
    w.u8(ladder_);
    w.u8(healthFloor_);
    w.raw(violationRing_, kRingCapacity);
    w.u32(violationHead_);
    w.u32(violationFilled_);
    w.u32(violationCount_);
    w.u32(evalCountdown_);
    w.i64(failFastUntil_.ns());
    w.i64(errorBudgetPpm_);
    w.i64(hedgeTokensMicro_);
    w.i64(hedgeDelayEff_);
    for (uint32_t i = 0; i < kLatencySamples; ++i)
        w.i64(latencyRing_[i]);
    w.u32(latencyHead_);
    w.u32(latencyFilled_);
    w.i64(horizon_.ns());
    w.i64(maxExchangeNs_);
}

bool
PolicyDevice::loadState(recovery::StateReader &r)
{
    counters_.submissions = r.u64();
    counters_.forwarded = r.u64();
    counters_.shedOverload = r.u64();
    counters_.shedBreaker = r.u64();
    counters_.shedWriteDeferred = r.u64();
    counters_.shedFailFast = r.u64();
    counters_.hedgesIssued = r.u64();
    counters_.hedgeWins = r.u64();
    counters_.hedgeCancelled = r.u64();
    counters_.hedgeTokenDenied = r.u64();
    counters_.deadlineExpired = r.u64();
    counters_.breakerOpens = r.u64();
    counters_.breakerReopens = r.u64();
    counters_.breakerCloses = r.u64();
    counters_.breakerTrials = r.u64();
    counters_.sloViolations = r.u64();
    counters_.ladderTransitions = r.u64();
    breakerState_ = r.u8();
    breakerOpenedAt_ = sim::SimTime{r.i64()};
    breakerCooldownCur_ = r.i64();
    halfOpenOk_ = r.u32();
    r.raw(outcomeRing_, kRingCapacity);
    outcomeHead_ = r.u32();
    outcomeFilled_ = r.u32();
    outcomeFailures_ = r.u32();
    ladder_ = r.u8();
    healthFloor_ = r.u8();
    r.raw(violationRing_, kRingCapacity);
    violationHead_ = r.u32();
    violationFilled_ = r.u32();
    violationCount_ = r.u32();
    evalCountdown_ = r.u32();
    failFastUntil_ = sim::SimTime{r.i64()};
    errorBudgetPpm_ = r.i64();
    hedgeTokensMicro_ = r.i64();
    hedgeDelayEff_ = r.i64();
    for (uint32_t i = 0; i < kLatencySamples; ++i)
        latencyRing_[i] = r.i64();
    latencyHead_ = r.u32();
    latencyFilled_ = r.u32();
    horizon_ = sim::SimTime{r.i64()};
    maxExchangeNs_ = r.i64();
    if (r.ok()) {
        if (breakerState_ > kHalfOpen)
            r.fail("policy breaker state out of range");
        else if (ladder_ > kFailFast || healthFloor_ > kFailFast)
            r.fail("policy ladder level out of range");
        else if (outcomeHead_ >= kRingCapacity ||
                 violationHead_ >= kRingCapacity ||
                 latencyHead_ >= kLatencySamples ||
                 outcomeFilled_ > kRingCapacity ||
                 violationFilled_ > kRingCapacity ||
                 latencyFilled_ > kLatencySamples)
            r.fail("policy ring cursor out of range");
        else if (evalCountdown_ == 0 ||
                 evalCountdown_ > cfg_.ladderEvalEvery)
            r.fail("policy eval countdown out of range");
    }
    return r.ok();
}

std::vector<ResiliencePolicy>
allResiliencePolicies()
{
    std::vector<ResiliencePolicy> out;

    // Pass-through: no budgets, no breaker — PR-1 behavior.
    ResiliencePolicy off;
    off.name = "off";
    off.enabled = false;
    out.push_back(off);

    // Production-shaped defaults: generous budgets that only bite
    // when the device is genuinely sick.
    ResiliencePolicy guarded;
    guarded.name = "guarded";
    guarded.enabled = true;
    out.push_back(guarded);

    // Latency-critical serving: tight budgets, aggressive breaker,
    // eager hedging. Expect visible shed rates under faulty devices.
    ResiliencePolicy strict;
    strict.name = "strict";
    strict.enabled = true;
    strict.deadlineBudget = sim::milliseconds(250);
    strict.hedgeBudgetFraction = 0.1;
    strict.breakerErrorThreshold = 0.3;
    strict.breakerMinSamples = 8;
    strict.breakerCooldown = sim::milliseconds(100);
    strict.maxBacklog = sim::milliseconds(20);
    strict.sloLatencyTarget = sim::milliseconds(20);
    strict.sloErrorBudget = 0.02;
    strict.ladderEvalEvery = 32;
    out.push_back(strict);

    return out;
}

bool
resiliencePolicyByName(const std::string &name, ResiliencePolicy *out)
{
    for (auto &p : allResiliencePolicies()) {
        if (p.name == name) {
            if (out != nullptr)
                *out = p;
            return true;
        }
    }
    return false;
}

} // namespace ssdcheck::resilience
