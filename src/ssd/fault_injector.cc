#include "ssd/fault_injector.h"

#include <algorithm>
#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::ssd {

std::string
toString(DriftKind k)
{
    switch (k) {
      case DriftKind::None:
        return "none";
      case DriftKind::ShrinkBuffer:
        return "shrink-buffer";
      case DriftKind::GrowBuffer:
        return "grow-buffer";
      case DriftKind::ToggleReadTrigger:
        return "toggle-read-trigger";
    }
    return "?";
}

std::string
FaultProfile::validate() const
{
    auto probability = [](double p, const char *field) -> std::string {
        if (p < 0.0 || p > 1.0)
            return std::string(field) + " must be within [0, 1]";
        return {};
    };
    for (const auto &[p, field] :
         {std::pair{readUncProbability, "readUncProbability"},
          {readUncHardFraction, "readUncHardFraction"},
          {programFailProbability, "programFailProbability"},
          {eraseFailProbability, "eraseFailProbability"},
          {stallProbability, "stallProbability"}}) {
        if (auto err = probability(p, field); !err.empty())
            return "fault profile '" + name + "': " + err;
    }
    if (stallMin < 0)
        return "fault profile '" + name + "': stallMin must be >= 0";
    if (stallMax < stallMin)
        return "fault profile '" + name + "': stallMax < stallMin";
    if (driftAfterRequests > 0 && driftKind == DriftKind::None)
        return "fault profile '" + name +
               "': drift scheduled but driftKind is none";
    if ((driftKind == DriftKind::ShrinkBuffer ||
         driftKind == DriftKind::GrowBuffer) &&
        driftBufferFactor <= 0.0)
        return "fault profile '" + name +
               "': driftBufferFactor must be > 0";
    return {};
}

FaultInjector::FaultInjector(FaultProfile profile, sim::Rng rng)
    : profile_(std::move(profile)), rng_(rng)
{
    [[maybe_unused]] const std::string err = profile_.validate();
    assert(err.empty() && "malformed FaultProfile (see validate())");
}

ReadFault
FaultInjector::onRead()
{
    ReadFault f;
    if (profile_.readUncProbability <= 0.0 ||
        !rng_.bernoulli(profile_.readUncProbability))
        return f;
    if (profile_.readUncHardFraction > 0.0 &&
        rng_.bernoulli(profile_.readUncHardFraction)) {
        // Every retry level was exhausted without recovering the page.
        f.retries = profile_.readRetryMax;
        f.hard = true;
        ++counters_.readUncHard;
    } else {
        // Recovered after a uniform number of retry levels (real
        // controllers escalate read-voltage steps until one sticks).
        f.retries = static_cast<uint32_t>(
            rng_.uniformInt(1, std::max(1u, profile_.readRetryMax)));
        ++counters_.readUncTransient;
    }
    return f;
}

bool
FaultInjector::programFails()
{
    if (profile_.programFailProbability <= 0.0 ||
        !rng_.bernoulli(profile_.programFailProbability))
        return false;
    ++counters_.programFailures;
    return true;
}

bool
FaultInjector::eraseFails()
{
    if (profile_.eraseFailProbability <= 0.0 ||
        !rng_.bernoulli(profile_.eraseFailProbability))
        return false;
    ++counters_.eraseFailures;
    return true;
}

sim::SimDuration
FaultInjector::stallFor()
{
    if (profile_.stallProbability <= 0.0 ||
        !rng_.bernoulli(profile_.stallProbability))
        return 0;
    ++counters_.stalls;
    return rng_.uniformInt(profile_.stallMin, profile_.stallMax);
}

bool
FaultInjector::driftDue(uint64_t requestsServed)
{
    if (driftFired_ || profile_.driftAfterRequests == 0 ||
        requestsServed < profile_.driftAfterRequests)
        return false;
    driftFired_ = true;
    ++counters_.driftEvents;
    return true;
}

std::vector<FaultProfile>
allFaultProfiles()
{
    std::vector<FaultProfile> out;

    FaultProfile none;
    none.name = "none";
    out.push_back(none);

    // Transient UNC reads dominate; a sliver stay hard errors.
    FaultProfile flaky;
    flaky.name = "flaky-reads";
    flaky.readUncProbability = 0.02;
    flaky.readUncHardFraction = 0.05;
    out.push_back(flaky);

    // End-of-life media: program/erase failures grow the bad-block
    // list and overprovisioning erodes as the run progresses.
    FaultProfile wearout;
    wearout.name = "wearout";
    wearout.programFailProbability = 0.02;
    wearout.eraseFailProbability = 0.05;
    out.push_back(wearout);

    // Firmware housekeeping wedges: rare but very long stalls. The
    // range straddles the host's 500ms timeout threshold so some
    // stalls classify as timeouts and get re-issued.
    FaultProfile stalls;
    stalls.name = "stalls";
    stalls.stallProbability = 0.002;
    stalls.stallMax = sim::milliseconds(900);
    out.push_back(stalls);

    // Mid-run firmware drift: the write buffer halves, so every
    // diagnosed flush-phase feature is wrong from that point on.
    FaultProfile drift;
    drift.name = "drift";
    drift.driftAfterRequests = 20000;
    drift.driftKind = DriftKind::ShrinkBuffer;
    drift.driftBufferFactor = 0.5;
    out.push_back(drift);

    // Everything at once — the profile the resilience stack must
    // survive without crashing or poisoning an estimate.
    FaultProfile hostile;
    hostile.name = "hostile";
    hostile.readUncProbability = 0.01;
    hostile.readUncHardFraction = 0.1;
    hostile.programFailProbability = 0.01;
    hostile.eraseFailProbability = 0.02;
    hostile.stallProbability = 0.001;
    hostile.stallMax = sim::milliseconds(900);
    hostile.driftAfterRequests = 30000;
    hostile.driftKind = DriftKind::ShrinkBuffer;
    out.push_back(hostile);

    return out;
}

void
FaultInjector::saveState(recovery::StateWriter &w) const
{
    rng_.saveState(w);
    w.u64(counters_.readUncTransient);
    w.u64(counters_.readUncHard);
    w.u64(counters_.programFailures);
    w.u64(counters_.eraseFailures);
    w.u64(counters_.blocksRetired);
    w.u64(counters_.stalls);
    w.u64(counters_.driftEvents);
    w.boolean(driftFired_);
}

bool
FaultInjector::loadState(recovery::StateReader &r)
{
    if (!rng_.loadState(r))
        return false;
    counters_.readUncTransient = r.u64();
    counters_.readUncHard = r.u64();
    counters_.programFailures = r.u64();
    counters_.eraseFailures = r.u64();
    counters_.blocksRetired = r.u64();
    counters_.stalls = r.u64();
    counters_.driftEvents = r.u64();
    driftFired_ = r.boolean();
    return r.ok();
}

bool
faultProfileByName(const std::string &name, FaultProfile *out)
{
    for (auto &p : allFaultProfiles()) {
        if (p.name == name) {
            if (out != nullptr)
                *out = p;
            return true;
        }
    }
    return false;
}

} // namespace ssdcheck::ssd
