#include "ssd/fault_injector.h"

#include <algorithm>
#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::ssd {

std::string
toString(DriftKind k)
{
    switch (k) {
      case DriftKind::None:
        return "none";
      case DriftKind::ShrinkBuffer:
        return "shrink-buffer";
      case DriftKind::GrowBuffer:
        return "grow-buffer";
      case DriftKind::ToggleReadTrigger:
        return "toggle-read-trigger";
    }
    return "?";
}

std::string
FaultProfile::validate() const
{
    auto probability = [](double p, const char *field) -> std::string {
        if (p < 0.0 || p > 1.0)
            return std::string(field) + " must be within [0, 1]";
        return {};
    };
    for (const auto &[p, field] :
         {std::pair{readUncProbability, "readUncProbability"},
          {readUncHardFraction, "readUncHardFraction"},
          {programFailProbability, "programFailProbability"},
          {eraseFailProbability, "eraseFailProbability"},
          {stallProbability, "stallProbability"}}) {
        if (auto err = probability(p, field); !err.empty())
            return "fault profile '" + name + "': " + err;
    }
    if (stallMin < 0)
        return "fault profile '" + name + "': stallMin must be >= 0";
    if (stallMax < stallMin)
        return "fault profile '" + name + "': stallMax < stallMin";
    if (driftAfterRequests > 0 && driftKind == DriftKind::None)
        return "fault profile '" + name +
               "': drift scheduled but driftKind is none";
    if ((driftKind == DriftKind::ShrinkBuffer ||
         driftKind == DriftKind::GrowBuffer) &&
        driftBufferFactor <= 0.0)
        return "fault profile '" + name +
               "': driftBufferFactor must be > 0";
    auto regimeError = [&](const FaultRegime &rg,
                           const char *where) -> std::string {
        if (!rg.active())
            return {};
        if (rg.enterBurst < 0.0 || rg.enterBurst > 1.0 ||
            rg.exitBurst <= 0.0 || rg.exitBurst > 1.0)
            return "fault profile '" + name + "': " + where +
                   " transition probabilities must be in (0, 1]";
        if (rg.uncFactor < 0.0 || rg.stallFactor < 0.0)
            return "fault profile '" + name + "': " + where +
                   " factors must be >= 0";
        return {};
    };
    if (auto err = regimeError(regime, "regime"); !err.empty())
        return err;
    for (const FaultPhase &ph : phases) {
        if (ph.toRequest <= ph.fromRequest)
            return "fault profile '" + name +
                   "': phase window must have toRequest > fromRequest";
        if (auto err = regimeError(ph.regime, "phase regime");
            !err.empty())
            return err;
    }
    for (const UncCluster &c : uncClusters) {
        if (c.pages == 0)
            return "fault profile '" + name +
                   "': uncCluster must cover at least one page";
        if (c.probability < 0.0 || c.probability > 1.0)
            return "fault profile '" + name +
                   "': uncCluster probability must be within [0, 1]";
    }
    return {};
}

FaultInjector::FaultInjector(FaultProfile profile, sim::Rng rng)
    : profile_(std::move(profile)), rng_(rng)
{
    [[maybe_unused]] const std::string err = profile_.validate();
    assert(err.empty() && "malformed FaultProfile (see validate())");
}

const FaultRegime *
FaultInjector::regimeFor(uint64_t requestIndex) const
{
    for (const FaultPhase &ph : profile_.phases)
        if (requestIndex >= ph.fromRequest && requestIndex < ph.toRequest)
            return ph.regime.active() ? &ph.regime : nullptr;
    return profile_.regime.active() ? &profile_.regime : nullptr;
}

void
FaultInjector::beginRequest(uint64_t requestIndex)
{
    curUncFactor_ = 1.0;
    curStallFactor_ = 1.0;
    if (profile_.phases.empty() && !profile_.regime.active())
        return;
    const FaultRegime *rg = regimeFor(requestIndex);
    if (rg == nullptr) {
        // No regime governs this window; any burst in progress ends.
        burst_ = false;
        return;
    }
    // One transition probe per request: geometric dwell times in both
    // states (two-state Markov chain, Gilbert-Elliott style).
    const double pTransition = burst_ ? rg->exitBurst : rg->enterBurst;
    if (pTransition > 0.0 && rng_.bernoulli(pTransition)) {
        burst_ = !burst_;
        if (burst_)
            ++counters_.burstEntries;
    }
    if (burst_) {
        ++counters_.burstRequests;
        curUncFactor_ = rg->uncFactor;
        curStallFactor_ = rg->stallFactor;
    }
}

ReadFault
FaultInjector::onRead(uint64_t firstPage)
{
    ReadFault f;
    double p = profile_.readUncProbability * curUncFactor_;
    bool clusterHit = false;
    for (const UncCluster &c : profile_.uncClusters) {
        if (firstPage >= c.firstPage && firstPage < c.firstPage + c.pages &&
            c.probability > p) {
            p = c.probability;
            clusterHit = true;
        }
    }
    p = std::min(p, 1.0);
    if (p <= 0.0 || !rng_.bernoulli(p))
        return f;
    if (clusterHit)
        ++counters_.clusterUncReads;
    if (profile_.readUncHardFraction > 0.0 &&
        rng_.bernoulli(profile_.readUncHardFraction)) {
        // Every retry level was exhausted without recovering the page.
        f.retries = profile_.readRetryMax;
        f.hard = true;
        ++counters_.readUncHard;
    } else {
        // Recovered after a uniform number of retry levels (real
        // controllers escalate read-voltage steps until one sticks).
        f.retries = static_cast<uint32_t>(
            rng_.uniformInt(1, std::max(1u, profile_.readRetryMax)));
        ++counters_.readUncTransient;
    }
    return f;
}

bool
FaultInjector::programFails()
{
    if (profile_.programFailProbability <= 0.0 ||
        !rng_.bernoulli(profile_.programFailProbability))
        return false;
    ++counters_.programFailures;
    return true;
}

bool
FaultInjector::eraseFails()
{
    if (profile_.eraseFailProbability <= 0.0 ||
        !rng_.bernoulli(profile_.eraseFailProbability))
        return false;
    ++counters_.eraseFailures;
    return true;
}

sim::SimDuration
FaultInjector::stallFor()
{
    const double p =
        std::min(profile_.stallProbability * curStallFactor_, 1.0);
    if (p <= 0.0 || !rng_.bernoulli(p))
        return 0;
    ++counters_.stalls;
    return rng_.uniformInt(profile_.stallMin, profile_.stallMax);
}

bool
FaultInjector::driftDue(uint64_t requestsServed)
{
    if (driftFired_ || profile_.driftAfterRequests == 0 ||
        requestsServed < profile_.driftAfterRequests)
        return false;
    driftFired_ = true;
    ++counters_.driftEvents;
    return true;
}

std::vector<FaultProfile>
allFaultProfiles()
{
    std::vector<FaultProfile> out;

    FaultProfile none;
    none.name = "none";
    out.push_back(none);

    // Transient UNC reads dominate; a sliver stay hard errors.
    FaultProfile flaky;
    flaky.name = "flaky-reads";
    flaky.readUncProbability = 0.02;
    flaky.readUncHardFraction = 0.05;
    out.push_back(flaky);

    // End-of-life media: program/erase failures grow the bad-block
    // list and overprovisioning erodes as the run progresses.
    FaultProfile wearout;
    wearout.name = "wearout";
    wearout.programFailProbability = 0.02;
    wearout.eraseFailProbability = 0.05;
    out.push_back(wearout);

    // Firmware housekeeping wedges: rare but very long stalls. The
    // range straddles the host's 500ms timeout threshold so some
    // stalls classify as timeouts and get re-issued.
    FaultProfile stalls;
    stalls.name = "stalls";
    stalls.stallProbability = 0.002;
    stalls.stallMax = sim::milliseconds(900);
    out.push_back(stalls);

    // Mid-run firmware drift: the write buffer halves, so every
    // diagnosed flush-phase feature is wrong from that point on.
    FaultProfile drift;
    drift.name = "drift";
    drift.driftAfterRequests = 20000;
    drift.driftKind = DriftKind::ShrinkBuffer;
    drift.driftBufferFactor = 0.5;
    out.push_back(drift);

    // Correlated misbehavior: a mostly-calm device that periodically
    // enters a burst where UNC reads and stalls spike two orders of
    // magnitude — the shape i.i.d. rates cannot express and the
    // circuit breaker exists to catch.
    FaultProfile storms;
    storms.name = "storms";
    storms.readUncProbability = 0.0005;
    storms.readUncHardFraction = 0.05;
    storms.stallProbability = 0.00002;
    storms.stallMax = sim::milliseconds(900);
    storms.regime.enterBurst = 0.002;
    storms.regime.exitBurst = 0.01;
    storms.regime.uncFactor = 80.0;
    storms.regime.stallFactor = 200.0;
    out.push_back(storms);

    // Everything at once — the profile the resilience stack must
    // survive without crashing or poisoning an estimate.
    FaultProfile hostile;
    hostile.name = "hostile";
    hostile.readUncProbability = 0.01;
    hostile.readUncHardFraction = 0.1;
    hostile.programFailProbability = 0.01;
    hostile.eraseFailProbability = 0.02;
    hostile.stallProbability = 0.001;
    hostile.stallMax = sim::milliseconds(900);
    hostile.driftAfterRequests = 30000;
    hostile.driftKind = DriftKind::ShrinkBuffer;
    out.push_back(hostile);

    return out;
}

void
FaultInjector::saveState(recovery::StateWriter &w) const
{
    rng_.saveState(w);
    w.u64(counters_.readUncTransient);
    w.u64(counters_.readUncHard);
    w.u64(counters_.programFailures);
    w.u64(counters_.eraseFailures);
    w.u64(counters_.blocksRetired);
    w.u64(counters_.stalls);
    w.u64(counters_.driftEvents);
    w.u64(counters_.burstEntries);
    w.u64(counters_.burstRequests);
    w.u64(counters_.clusterUncReads);
    w.boolean(driftFired_);
    w.boolean(burst_);
}

bool
FaultInjector::loadState(recovery::StateReader &r)
{
    if (!rng_.loadState(r))
        return false;
    counters_.readUncTransient = r.u64();
    counters_.readUncHard = r.u64();
    counters_.programFailures = r.u64();
    counters_.eraseFailures = r.u64();
    counters_.blocksRetired = r.u64();
    counters_.stalls = r.u64();
    counters_.driftEvents = r.u64();
    counters_.burstEntries = r.u64();
    counters_.burstRequests = r.u64();
    counters_.clusterUncReads = r.u64();
    driftFired_ = r.boolean();
    burst_ = r.boolean();
    return r.ok();
}

bool
faultProfileByName(const std::string &name, FaultProfile *out)
{
    for (auto &p : allFaultProfiles()) {
        if (p.name == name) {
            if (out != nullptr)
                *out = p;
            return true;
        }
    }
    return false;
}

} // namespace ssdcheck::ssd
