#include "ssd/volume.h"

#include <algorithm>
#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::ssd {

Volume::Volume(const SsdConfig &cfg, uint32_t volumeIndex, sim::Rng rng,
               FaultInjector *faults)
    : cfg_(cfg), volumeIndex_(volumeIndex), rng_(rng), faults_(faults),
      nand_(cfg.volumeGeometry(), cfg.nandTiming),
      mapper_(nand_, cfg.userPagesPerVolume(), cfg.wearLevelThreshold > 0),
      gc_(mapper_, nand_, cfg.gcLowBlocks, cfg.gcHighBlocks,
          cfg.wearLevelThreshold, cfg.readDisturbLimit),
      buffer_(cfg.bufferPages())
{
    slcCycleCapacity_ = cfg.slcCapacityPages;
    victimScratch_.reserve(64);
}

sim::SimDuration
Volume::jitter(sim::SimDuration d)
{
    return static_cast<sim::SimDuration>(
        static_cast<double>(d) * rng_.lognormalFactor(cfg_.jitterSigma));
}

sim::SimDuration
Volume::flush(sim::SimTime at, IoDetail *detail, FlushReason reason)
{
    // Flush work bills to the wb stage regardless of what triggered
    // it; the GC block below opens its own (inner) gc stage.
    const obs::StageScope stage(stages_, obs::Stage::Wb);
    // The triggering request needs a free buffer: with double
    // buffering that means the previous flush must have finished.
    const sim::SimDuration stall =
        std::max<sim::SimDuration>(0, nandBusyUntil_ - at);
    const sim::SimTime flushStart = std::max(at, nandBusyUntil_);
    if (nandBusyUntil_ <= at)
        busyIncludesGc_ = false; // previous busy window fully drained

    const auto &entries = buffer_.drain();
    for (const auto &e : entries)
        mapper_.writePage(e.lpn, e.payload);

    sim::SimDuration flushDur = 0;
    if (cfg_.wbFlushCostEnabled) {
        flushDur = nand_.batchProgramTime(entries.size(), cfg_.slcCache) +
                   cfg_.flushOverheadTime;
        flushDur = jitter(flushDur);
    }

    // Injected program failure: the controller re-programs the wave
    // into a fresh block and retires the failing one into the
    // grown-bad-block list (data is preserved; overprovisioning is
    // not).
    if (faults_ != nullptr && faults_->programFails()) {
        flushDur += faults_->profile().programFailCost;
        if (mapper_.retireFreeBlock(cfg_.gcHighBlocks + 2)) {
            faults_->noteBlockRetired();
            ++counters_.retiredBlocks;
        }
        if (detail != nullptr)
            detail->programFailure = true;
    }

    nandBusyUntil_ = flushStart + flushDur;
    ++counters_.flushes;
    if (detail != nullptr)
        detail->flushTime += flushDur;
    if (trace_ != nullptr) {
        trace_->complete(
            "wb", "wb.flush", track_, flushStart, flushDur,
            {{"pages", static_cast<int64_t>(entries.size())},
             {"read_trigger", reason == FlushReason::ReadTrigger ? 1 : 0},
             {"stall_ns", stall}});
    }

    // Secondary feature: SLC->MLC migration at an externally invisible
    // and slightly randomized point (paper §VI).
    if (cfg_.slcCache) {
        slcUsedPages_ += entries.size();
        if (slcUsedPages_ >= slcCycleCapacity_) {
            // Only a chunk of the cache migrates while blocking the
            // array; the remainder drains lazily in background.
            const uint64_t chunk =
                std::min<uint64_t>(slcUsedPages_, cfg_.slcMigrateChunkPages);
            sim::SimDuration mig = nand_.batchReadTime(chunk) +
                                   nand_.batchProgramTime(chunk);
            if (!cfg_.wbFlushCostEnabled)
                mig = 0;
            if (trace_ != nullptr && mig > 0)
                trace_->complete("slc", "slc.migrate", track_,
                                 nandBusyUntil_, mig,
                                 {{"pages", static_cast<int64_t>(chunk)}});
            nandBusyUntil_ += mig;
            ++counters_.slcMigrations;
            slcUsedPages_ = 0;
            const double v = cfg_.slcCapacityVariation;
            slcCycleCapacity_ = std::max<uint64_t>(
                cfg_.bufferPages(),
                static_cast<uint64_t>(
                    static_cast<double>(cfg_.slcCapacityPages) *
                    rng_.uniformReal(1.0 - v, 1.0 + v)));
            if (detail != nullptr && mig > 0)
                detail->slcMigration = true;
        }
    }

    // GC runs when the flush depleted the free pool (paper §II-A).
    // The reclaim target varies a little per invocation, like adaptive
    // firmware does; this is what gives GC intervals a distribution.
    if (gc_.needed()) {
        const obs::StageScope gcStage(stages_, obs::Stage::Gc);
        victimScratch_.clear();
        const GcResult res =
            gc_.collect(static_cast<uint32_t>(rng_.nextBelow(4)),
                         trace_ != nullptr ? &victimScratch_ : nullptr);
        if (res.ran()) {
            sim::SimDuration gcDur =
                cfg_.gcCostEnabled ? jitter(res.duration) : 0;
            const sim::SimTime gcStart = nandBusyUntil_;
            // Injected erase failures: each reclaimed block may fail
            // its erase and go to the grown-bad-block list instead of
            // the free pool, eroding overprovisioning so later GC
            // rounds fire more often.
            if (faults_ != nullptr) {
                for (uint64_t b = 0; b < res.blocksErased; ++b) {
                    if (faults_->eraseFails() &&
                        mapper_.retireFreeBlock(cfg_.gcHighBlocks + 2)) {
                        faults_->noteBlockRetired();
                        ++counters_.retiredBlocks;
                    }
                }
            }
            nandBusyUntil_ += gcDur;
            ++counters_.gcInvocations;
            counters_.gcBlocksErased += res.blocksErased;
            counters_.gcPagesMoved += res.validMoved;
            counters_.wearLevelMoves += res.wearMoves;
            counters_.readRefreshMoves += res.refreshMoves;
            if (cfg_.gcCostEnabled)
                busyIncludesGc_ = true;
            if (detail != nullptr) {
                detail->gcRan = cfg_.gcCostEnabled;
                detail->gcTime += gcDur;
            }
            if (trace_ != nullptr) {
                trace_->instant(
                    "gc", "gc.trigger", track_, gcStart,
                    {{"free_blocks",
                      static_cast<int64_t>(mapper_.freeBlocks())}});
                trace_->complete(
                    "gc", "gc.run", track_, gcStart, gcDur,
                    {{"blocks_erased",
                      static_cast<int64_t>(res.blocksErased)},
                     {"pages_moved", static_cast<int64_t>(res.validMoved)},
                     {"wear_moves", static_cast<int64_t>(res.wearMoves)},
                     {"refresh_moves",
                      static_cast<int64_t>(res.refreshMoves)}});
                // Per-victim migrate spans, scaled into the jittered
                // window proportionally to their pre-jitter share.
                for (const GcVictim &v : victimScratch_) {
                    const sim::SimTime vs =
                        res.duration > 0
                            ? gcStart + gcDur * v.offset / res.duration
                            : gcStart;
                    const sim::SimDuration vd =
                        res.duration > 0 ? gcDur * v.cost / res.duration
                                         : 0;
                    trace_->complete(
                        "gc", "gc.migrate", track_, vs, vd,
                        {{"pbn", static_cast<int64_t>(v.pbn.value())},
                         {"pages", static_cast<int64_t>(v.validMoved)}});
                }
                trace_->instant(
                    "gc", "gc.erase", track_, gcStart + gcDur,
                    {{"blocks",
                      static_cast<int64_t>(res.blocksErased)}});
            }
        }
    }

    return stall;
}

sim::SimTime
Volume::serveWrite(sim::SimTime start, Lpn lpn, uint64_t payload,
                   IoDetail *detail)
{
    assert(lpn.value() < cfg_.userPagesPerVolume());
    const obs::StageScope stage(stages_, obs::Stage::Wb);
    ++counters_.writes;
    if (detail != nullptr)
        detail->volume = volumeIndex_;

    const sim::SimTime admit = std::max(start, writeGate_);
    sim::SimTime serviceStart = admit;

    buffer_.add(lpn, payload);
    if (trace_ != nullptr)
        trace_->instant("wb", "wb.enqueue", track_, admit,
                        {{"lpn", static_cast<int64_t>(lpn.value())},
                         {"fill", static_cast<int64_t>(buffer_.fill())}});
    if (buffer_.full()) {
        // Note: flush() may clear busyIncludesGc_, so capture whether
        // this request's stall overlapped a GC-laden window first.
        const bool stalledOnGc = busyIncludesGc_ && nandBusyUntil_ > admit;
        const sim::SimDuration stall =
            flush(admit, detail, FlushReason::Full);
        if (detail != nullptr) {
            detail->triggeredFlush = true;
            detail->waitTime += stall;
            if (stall > 0 && stalledOnGc)
                detail->gcRan = true; // the wait was GC's fault
        }
        if (cfg_.bufferType == BufferType::Fore) {
            // Fore: acknowledge only after the flush (and any GC /
            // migration it caused) completes.
            serviceStart = nandBusyUntil_;
        } else if (stall > 0) {
            // Back: double buffering absorbs the flush, but a second
            // flush arriving before the first finished must wait.
            serviceStart = admit + stall;
            ++counters_.backpressureStalls;
            if (detail != nullptr)
                detail->backpressured = true;
        }
    }

    const sim::SimTime ack = serviceStart + jitter(cfg_.writeAckTime);
    writeGate_ = std::max(admit + cfg_.writeCpuTime, serviceStart);
    return ack;
}

sim::SimTime
Volume::serveRead(sim::SimTime start, Lpn lpn, uint64_t *payloadOut,
                  IoDetail *detail)
{
    assert(lpn.value() < cfg_.userPagesPerVolume());
    const obs::StageScope stage(stages_, obs::Stage::Nand);
    ++counters_.reads;
    if (detail != nullptr)
        detail->volume = volumeIndex_;

    sim::SimTime ready = start;

    if (cfg_.readTriggerFlush && !buffer_.empty()) {
        // Paper §III-B3: some devices flush the buffer on every read,
        // no matter how few pages it holds.
        const sim::SimDuration stall =
            flush(start, detail, FlushReason::ReadTrigger);
        (void)stall;
        ready = nandBusyUntil_;
        if (detail != nullptr)
            detail->readTriggeredFlush = true;
    } else if (buffer_.lookup(lpn, payloadOut)) {
        // Served straight from the buffer: no NAND involvement.
        ++counters_.bufferHits;
        if (detail != nullptr)
            detail->bufferHit = true;
        if (trace_ != nullptr)
            trace_->instant("wb", "wb.hit", track_, start,
                            {{"lpn", static_cast<int64_t>(lpn.value())}});
        return start + jitter(cfg_.bufferReadTime);
    }

    // NAND access: wait for any flush/migration/GC, then the read
    // pipeline gate.
    const sim::SimTime busyReady = std::max(ready, nandBusyUntil_);
    if (detail != nullptr && busyReady > ready) {
        detail->blockedByBusy = true;
        detail->waitTime += busyReady - ready;
        if (busyIncludesGc_)
            detail->gcRan = true; // blocked behind a GC-laden window
    }
    ready = std::max(busyReady, readGate_);

    sim::SimDuration nandLat = cfg_.nandTiming.readLatency;
    uint64_t payload = 0;
    if (mapper_.readPage(lpn, &payload)) {
        if (payloadOut != nullptr)
            *payloadOut = payload;
    } else {
        // Unmapped (never written / trimmed): controller answers from
        // metadata without touching NAND.
        nandLat = 0;
        if (payloadOut != nullptr)
            *payloadOut = nand::kErasedPayload;
    }

    readGate_ = ready + cfg_.nandTiming.readLatency /
                            std::max(1u, cfg_.readParallelism);
    const sim::SimDuration service = jitter(cfg_.readOverheadTime + nandLat);
    if (trace_ != nullptr)
        trace_->complete("nand", "nand.read", track_, ready, service,
                         {{"lpn", static_cast<int64_t>(lpn.value())},
                          {"wait_ns", std::max<sim::SimDuration>(
                                          0, ready - start)}});
    return ready + service;
}

void
Volume::reset()
{
    buffer_.clear();
    mapper_.trimAll();
    writeGate_ = sim::kTimeZero;
    nandBusyUntil_ = sim::kTimeZero;
    readGate_ = sim::kTimeZero;
    slcUsedPages_ = 0;
    slcCycleCapacity_ = cfg_.slcCapacityPages;
}

void
Volume::prefill(uint64_t stampBase)
{
    for (uint64_t lpn = 0; lpn < cfg_.userPagesPerVolume(); ++lpn)
        mapper_.writePage(Lpn{lpn}, stampBase + lpn);
    // Preconditioning may leave the pool near the trigger; settle it
    // now so the first measured request doesn't eat a giant GC.
    if (gc_.needed())
        gc_.collect();
}

void
Volume::attachObservability(const obs::Sink &sink, const std::string &device)
{
    trace_ = sink.trace;
    stages_ = sink.stages;
    track_ = obs::TraceTrack{obs::kDevicePid, volumeIndex_};
    if (sink.metrics != nullptr) {
        obs::Registry &reg = *sink.metrics;
        const obs::Labels labels = {
            {"device", device}, {"volume", std::to_string(volumeIndex_)}};
        reg.exportCounter("vol_writes", labels, &counters_.writes);
        reg.exportCounter("vol_reads", labels, &counters_.reads);
        reg.exportCounter("vol_flushes", labels, &counters_.flushes);
        reg.exportCounter("vol_backpressure_stalls", labels,
                          &counters_.backpressureStalls);
        reg.exportCounter("vol_gc_invocations", labels,
                          &counters_.gcInvocations);
        reg.exportCounter("vol_gc_blocks_erased", labels,
                          &counters_.gcBlocksErased);
        reg.exportCounter("vol_gc_pages_moved", labels,
                          &counters_.gcPagesMoved);
        reg.exportCounter("vol_slc_migrations", labels,
                          &counters_.slcMigrations);
        reg.exportCounter("vol_buffer_hits", labels, &counters_.bufferHits);
        reg.exportCounter("vol_wear_level_moves", labels,
                          &counters_.wearLevelMoves);
        reg.exportCounter("vol_read_refresh_moves", labels,
                          &counters_.readRefreshMoves);
        reg.exportCounter("vol_retired_blocks", labels,
                          &counters_.retiredBlocks);
    }
}

bool
Volume::peek(Lpn lpn, uint64_t *payload) const
{
    if (buffer_.lookup(lpn, payload))
        return true;
    return mapper_.readPage(lpn, payload);
}

void
Volume::saveState(recovery::StateWriter &w) const
{
    rng_.saveState(w);
    nand_.saveState(w);
    mapper_.saveState(w);
    buffer_.saveState(w);
    gc_.saveState(w);
    w.i64(writeGate_.ns());
    w.i64(nandBusyUntil_.ns());
    w.i64(readGate_.ns());
    w.boolean(busyIncludesGc_);
    w.u64(slcUsedPages_);
    w.u64(slcCycleCapacity_);
    w.u64(counters_.writes);
    w.u64(counters_.reads);
    w.u64(counters_.flushes);
    w.u64(counters_.backpressureStalls);
    w.u64(counters_.gcInvocations);
    w.u64(counters_.gcBlocksErased);
    w.u64(counters_.gcPagesMoved);
    w.u64(counters_.slcMigrations);
    w.u64(counters_.bufferHits);
    w.u64(counters_.wearLevelMoves);
    w.u64(counters_.readRefreshMoves);
    w.u64(counters_.retiredBlocks);
}

bool
Volume::loadState(recovery::StateReader &r)
{
    if (!rng_.loadState(r) || !nand_.loadState(r) ||
        !mapper_.loadState(r) || !buffer_.loadState(r) ||
        !gc_.loadState(r))
        return false;
    writeGate_ = sim::SimTime{r.i64()};
    nandBusyUntil_ = sim::SimTime{r.i64()};
    readGate_ = sim::SimTime{r.i64()};
    busyIncludesGc_ = r.boolean();
    slcUsedPages_ = r.u64();
    slcCycleCapacity_ = r.u64();
    counters_.writes = r.u64();
    counters_.reads = r.u64();
    counters_.flushes = r.u64();
    counters_.backpressureStalls = r.u64();
    counters_.gcInvocations = r.u64();
    counters_.gcBlocksErased = r.u64();
    counters_.gcPagesMoved = r.u64();
    counters_.slcMigrations = r.u64();
    counters_.bufferHits = r.u64();
    counters_.wearLevelMoves = r.u64();
    counters_.readRefreshMoves = r.u64();
    counters_.retiredBlocks = r.u64();
    return r.ok();
}

} // namespace ssdcheck::ssd
