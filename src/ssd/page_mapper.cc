#include "ssd/page_mapper.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>

#include "recovery/state_io.h"

namespace ssdcheck::ssd {

PageMapper::PageMapper(nand::NandArray &nand, uint64_t userPages,
                       bool wearAwareAllocation)
    : nand_(nand), userPages_(userPages),
      wearAwareAllocation_(wearAwareAllocation)
{
    assert(userPages > 0);
    assert(userPages < nand.totalPages() &&
           "need overprovisioning for GC to make progress");
    ppb_ = nand.geometry().pagesPerBlock;
    ppbShift_ = std::has_single_bit(ppb_)
                    ? static_cast<uint32_t>(std::countr_zero(ppb_))
                    : 0;
    totalBlocks_ = nand.totalBlocks();
    totalPages_ = nand.totalPages();
    lpnToPpn_.assign(userPages, nand::kInvalidPpn);
    ppnToLpn_.assign(nand.totalPages(), kInvalidLpn);
    validWords_.assign((totalPages_ + 63) / 64, 0);
    blockValid_.assign(nand.totalBlocks(), 0);
    blockFree_.assign(nand.totalBlocks(), 1);
    blockRetired_.assign(nand.totalBlocks(), 0);
    candidate_.assign(nand.totalBlocks(), 0);
    buckets_.assign(nand.geometry().pagesPerBlock + 1, {});
    minBucket_ = nand.geometry().pagesPerBlock + 1;
    freeList_.reserve(nand.totalBlocks());
    // Highest block first so allocation proceeds from block 0 upward.
    for (uint64_t b = nand.totalBlocks(); b-- > 0;)
        freeList_.push_back(nand::Pbn{b});
}

nand::Ppn
PageMapper::allocatePage(Stream stream)
{
    OpenBlock &ob = open_[static_cast<size_t>(stream)];
    const uint32_t ppb = ppb_;
    if (ob.block == kNoVictim || ob.nextPage >= ppb) {
        assert(!freeList_.empty() && "free-block pool exhausted; "
               "GC watermarks are misconfigured");
        const nand::Pbn closed = ob.block;
        size_t pick = freeList_.size() - 1;
        if (wearAwareAllocation_) {
            // Dynamic wear leveling: take the least-worn free block
            // rather than recycling the most recently freed (hottest)
            // one. O(free pool), which is bounded by overprovisioning
            // and only paid when wear leveling is enabled.
            for (size_t i = 0; i < freeList_.size(); ++i) {
                if (nand_.blockEraseCount(freeList_[i]) <
                    nand_.blockEraseCount(freeList_[pick]))
                    pick = i;
            }
        }
        ob.block = freeList_[pick];
        freeList_[pick] = freeList_.back();
        freeList_.pop_back();
        blockFree_[ob.block.value()] = 0;
        ob.nextPage = 0;
        assert(nand_.blockWritePointer(ob.block) == 0 &&
               "allocated block was not erased");
        // The previous open block is closed from this point on (it may
        // have been reclaimed already, e.g. by a read-disturb refresh;
        // closeBlock re-checks its state).
        closeBlock(closed);
    }
    const nand::Ppn ppn{ob.block.value() * ppb + ob.nextPage};
    ++ob.nextPage;
    return ppn;
}

void
PageMapper::invalidate(Lpn lpn)
{
    const nand::Ppn old = lpnToPpn_[lpn.value()];
    if (old == nand::kInvalidPpn)
        return;
    const nand::Pbn blk = blockOf(old);
    assert(blockValid_[blk.value()] > 0);
    --blockValid_[blk.value()];
    if (candidate_[blk.value()])
        pushBucket(blk, blockValid_[blk.value()]);
    markInvalid(old);
    ppnToLpn_[old.value()] = kInvalidLpn;
    lpnToPpn_[lpn.value()] = nand::kInvalidPpn;
    --totalValid_;
}

void
PageMapper::writePage(Lpn lpn, uint64_t payload)
{
    assert(lpn.value() < userPages_);
    invalidate(lpn);
    const nand::Ppn ppn = allocatePage(Stream::Host);
    nand_.programPage(ppn, payload);
    lpnToPpn_[lpn.value()] = ppn;
    ppnToLpn_[ppn.value()] = lpn;
    markValid(ppn);
    ++blockValid_[blockOf(ppn).value()];
    ++totalValid_;
}

nand::Ppn
PageMapper::lookup(Lpn lpn) const
{
    assert(lpn.value() < userPages_);
    return lpnToPpn_[lpn.value()];
}

bool
PageMapper::readPage(Lpn lpn, uint64_t *payload) const
{
    const nand::Ppn ppn = lookup(lpn);
    if (ppn == nand::kInvalidPpn)
        return false;
    nand_.readPage(ppn, payload);
    return true;
}

bool
PageMapper::retireFreeBlock(size_t minFreeBlocks)
{
    if (freeList_.size() <= minFreeBlocks)
        return false;
    const nand::Pbn victim = freeList_.back();
    freeList_.pop_back();
    blockFree_[victim.value()] = 0;
    blockRetired_[victim.value()] = 1;
    ++retiredBlocks_;
    return true;
}

void
PageMapper::trimAll()
{
    lpnToPpn_.assign(userPages_, nand::kInvalidPpn);
    ppnToLpn_.assign(nand_.totalPages(), kInvalidLpn);
    validWords_.assign(validWords_.size(), 0);
    freeList_.clear();
    for (uint64_t b = nand_.totalBlocks(); b-- > 0;) {
        if (blockRetired_[b])
            continue; // grown bad blocks never come back
        if (nand_.blockWritePointer(nand::Pbn{b}) != 0)
            nand_.eraseBlock(nand::Pbn{b});
        blockValid_[b] = 0;
        blockFree_[b] = 1;
    }
    for (uint64_t b = nand_.totalBlocks(); b-- > 0;) {
        if (!blockRetired_[b])
            freeList_.push_back(nand::Pbn{b});
    }
    open_[0] = OpenBlock{};
    open_[1] = OpenBlock{};
    totalValid_ = 0;
    candidate_.assign(nand_.totalBlocks(), 0);
    for (auto &bkt : buckets_)
        bkt.clear();
    minBucket_ = ppb_ + 1;
}

uint32_t
PageMapper::blockValidCount(nand::Pbn pbn) const
{
    assert(pbn.value() < nand_.totalBlocks());
    return blockValid_[pbn.value()];
}

void
PageMapper::pushBucket(nand::Pbn b, uint32_t valid) const
{
    auto &bkt = buckets_[valid];
    bkt.push_back(b);
    std::push_heap(bkt.begin(), bkt.end(), std::greater<>());
    if (valid < minBucket_)
        minBucket_ = valid;
}

void
PageMapper::closeBlock(nand::Pbn b)
{
    if (b == kNoVictim)
        return;
    // Between filling up and being replaced as the open block, the
    // block may have been reclaimed (read-disturb refresh), retired,
    // or even reallocated to the other stream — only a still-closed
    // live block becomes a candidate.
    if (blockFree_[b.value()] || blockRetired_[b.value()] ||
        candidate_[b.value()])
        return;
    if (b == open_[0].block || b == open_[1].block)
        return;
    if (nand_.blockWritePointer(b) != ppb_)
        return;
    candidate_[b.value()] = 1;
    pushBucket(b, blockValid_[b.value()]);
}

bool
PageMapper::isGcCandidate(nand::Pbn pbn) const
{
    assert(pbn.value() < nand_.totalBlocks());
    return candidate_[pbn.value()] != 0;
}

nand::Pbn
PageMapper::pickVictimGreedy() const
{
    const uint32_t ppb = ppb_;
    // Pop-min over the valid-count buckets, pruning stale entries as
    // they surface. Each stale entry is discarded exactly once, so the
    // amortized cost per call is O(1); the winner stays in its bucket
    // (its entry goes stale when the block is collected).
    for (uint32_t v = minBucket_; v <= ppb; ++v) {
        auto &bkt = buckets_[v];
        while (!bkt.empty()) {
            const nand::Pbn b = bkt.front();
            if (candidate_[b.value()] && blockValid_[b.value()] == v) {
                minBucket_ = v;
                return b;
            }
            std::pop_heap(bkt.begin(), bkt.end(), std::greater<>());
            bkt.pop_back();
        }
    }
    minBucket_ = ppb + 1;
    return kNoVictim;
}

uint64_t
PageMapper::collectBlock(nand::Pbn victim)
{
    assert(victim != kNoVictim);
    assert(!blockFree_[victim.value()]);
    const uint64_t first = victim.value() * ppb_;
    const uint64_t last = first + ppb_;
    uint64_t moved = 0;
    // Batch migrate: walk the victim's live pages as one scan over its
    // packed validity words — countr_zero jumps straight to the next
    // set bit, so mostly-invalid victims (the greedy common case) cost
    // a handful of word loads instead of ppb inverse-map probes.
    for (uint64_t p = first; p < last;) {
        const uint64_t w = validWords_[p >> 6] >> (p & 63);
        if (w == 0) {
            p = (p | 63) + 1; // skip to the next word boundary
            continue;
        }
        p += static_cast<unsigned>(std::countr_zero(w));
        if (p >= last)
            break;
        const Lpn lpn = ppnToLpn_[p];
        assert(lpn != kInvalidLpn);
        // Merge step: read the valid page and re-program it from the
        // GC-open block (paper §II-A "merge operation").
        uint64_t payload = 0;
        nand_.readPage(nand::Ppn{p}, &payload);
        const nand::Ppn dst = allocatePage(Stream::Gc);
        nand_.programPage(dst, payload);
        lpnToPpn_[lpn.value()] = dst;
        ppnToLpn_[dst.value()] = lpn;
        markValid(dst);
        ppnToLpn_[p] = kInvalidLpn;
        ++blockValid_[blockOf(dst).value()];
        ++moved;
        ++p;
    }
    assert(moved == blockValid_[victim.value()]);
    // Batch invalidate: clear the victim's validity span word-wise
    // (partial words at the edges keep their neighbors' bits).
    for (uint64_t p = first; p < last;) {
        if ((p & 63) == 0 && last - p >= 64) {
            validWords_[p >> 6] = 0;
            p += 64;
        } else {
            markInvalid(nand::Ppn{p});
            ++p;
        }
    }
    blockValid_[victim.value()] = 0;
    nand_.eraseBlock(victim);
    blockFree_[victim.value()] = 1;
    candidate_[victim.value()] = 0; // its bucket entries are stale now
    freeList_.push_back(victim);
    return moved;
}

Lpn
PageMapper::lpnOfPpn(nand::Ppn ppn) const
{
    assert(ppn.value() < nand_.totalPages());
    return ppnToLpn_[ppn.value()];
}

nand::Pbn
PageMapper::pickColdestClosedBlock() const
{
    const uint32_t ppb = ppb_;
    nand::Pbn best = kNoVictim;
    uint32_t bestErase = ~0u;
    for (uint64_t b = 0; b < nand_.totalBlocks(); ++b) {
        const nand::Pbn pbn{b};
        if (blockFree_[b])
            continue;
        if (pbn == open_[0].block || pbn == open_[1].block)
            continue;
        if (nand_.blockWritePointer(pbn) < ppb)
            continue;
        const uint32_t e = nand_.blockEraseCount(pbn);
        if (e < bestErase) {
            bestErase = e;
            best = pbn;
        }
    }
    return best;
}

std::pair<uint32_t, uint32_t>
PageMapper::eraseCountRange() const
{
    uint32_t lo = ~0u, hi = 0;
    for (uint64_t b = 0; b < nand_.totalBlocks(); ++b) {
        const uint32_t e = nand_.blockEraseCount(nand::Pbn{b});
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    return {lo, hi};
}

std::string
PageMapper::checkConsistency() const
{
    std::ostringstream err;
    const uint32_t ppb = ppb_;
    uint64_t validSeen = 0;
    for (uint64_t lpn = 0; lpn < userPages_; ++lpn) {
        const nand::Ppn ppn = lpnToPpn_[lpn];
        if (ppn == nand::kInvalidPpn)
            continue;
        ++validSeen;
        if (ppnToLpn_[ppn.value()] != Lpn{lpn}) {
            err << "inverse map mismatch at lpn " << lpn << "; ";
            break;
        }
        if (!nand_.isProgrammed(ppn)) {
            err << "mapped page not programmed at lpn " << lpn << "; ";
            break;
        }
    }
    if (validSeen != totalValid_)
        err << "totalValid mismatch; ";

    // O(n) reference scan of the inverse map, cross-checked three
    // ways: per-block counts from the scan, the packed validity
    // bitmap (bit-for-bit and via per-block popcounts), and the
    // maintained blockValid_ counters must all agree.
    std::vector<uint32_t> counted(nand_.totalBlocks(), 0);
    for (uint64_t p = 0; p < nand_.totalPages(); ++p) {
        const bool mapped = ppnToLpn_[p] != kInvalidLpn;
        if (mapped)
            ++counted[p / ppb];
        if (mapped != isPpnValid(nand::Ppn{p})) {
            err << "validity bitmap mismatch at ppn " << p << "; ";
            break;
        }
    }
    if (validWords_.size() != (nand_.totalPages() + 63) / 64)
        err << "validity bitmap word count mismatch; ";
    for (uint64_t b = 0; b < nand_.totalBlocks(); ++b) {
        if (counted[b] != blockValid_[b]) {
            err << "block valid-count mismatch at block " << b << "; ";
            break;
        }
        uint32_t pop = 0;
        for (uint64_t p = b * ppb; p < (b + 1) * ppb;) {
            if ((p & 63) == 0 && (b + 1) * ppb - p >= 64) {
                pop += static_cast<uint32_t>(
                    std::popcount(validWords_[p >> 6]));
                p += 64;
            } else {
                pop += isPpnValid(nand::Ppn{p}) ? 1u : 0u;
                ++p;
            }
        }
        if (pop != blockValid_[b]) {
            err << "bitmap popcount mismatch at block " << b << "; ";
            break;
        }
        if (blockFree_[b] && nand_.blockWritePointer(nand::Pbn{b}) != 0) {
            err << "free block " << b << " not erased; ";
            break;
        }
    }

    // Victim-bucket invariants: the candidate set is exactly the
    // closed, live, non-open blocks, and every candidate has a fresh
    // entry in the bucket matching its current valid count.
    for (uint64_t b = 0; b < nand_.totalBlocks(); ++b) {
        const nand::Pbn pbn{b};
        const bool eligible =
            !blockFree_[b] && !blockRetired_[b] &&
            pbn != open_[0].block && pbn != open_[1].block &&
            nand_.blockWritePointer(pbn) == ppb;
        if (eligible != (candidate_[b] != 0)) {
            err << "candidate flag mismatch at block " << b << "; ";
            break;
        }
        if (candidate_[b]) {
            const auto &bkt = buckets_[blockValid_[b]];
            if (std::find(bkt.begin(), bkt.end(), pbn) == bkt.end()) {
                err << "candidate " << b << " missing from bucket "
                    << blockValid_[b] << "; ";
                break;
            }
            if (blockValid_[b] < minBucket_) {
                err << "minBucket hint above candidate " << b << "; ";
                break;
            }
        }
    }
    return err.str();
}

void
PageMapper::saveState(recovery::StateWriter &w) const
{
    w.u64(userPages_);
    w.u64(lpnToPpn_.size());
    for (nand::Ppn p : lpnToPpn_)
        w.u64(p.value());
    w.u64(ppnToLpn_.size());
    for (Lpn l : ppnToLpn_)
        w.u64(l.value());
    w.u64(blockValid_.size());
    for (uint32_t v : blockValid_)
        w.u32(v);
    for (uint8_t f : blockFree_)
        w.u8(f);
    for (uint8_t x : blockRetired_)
        w.u8(x);
    for (uint8_t c : candidate_)
        w.u8(c);
    w.u64(freeList_.size());
    for (nand::Pbn b : freeList_)
        w.u64(b.value());
    for (const OpenBlock &ob : open_) {
        w.u64(ob.block.value());
        w.u32(ob.nextPage);
    }
    w.u64(totalValid_);
    w.u64(retiredBlocks_);
}

bool
PageMapper::loadState(recovery::StateReader &r)
{
    const uint64_t totalPages = nand_.totalPages();
    const uint64_t totalBlocks = nand_.totalBlocks();
    const uint32_t ppb = nand_.geometry().pagesPerBlock;

    if (r.u64() != userPages_) {
        r.fail("mapper userPages does not match this configuration");
        return false;
    }
    if (r.u64() != lpnToPpn_.size()) {
        r.fail("mapper LPN table size mismatch");
        return false;
    }
    for (auto &p : lpnToPpn_) {
        p = nand::Ppn{r.u64()};
        if (r.ok() && p != nand::kInvalidPpn && p.value() >= totalPages) {
            r.fail("mapper LPN entry points past end of NAND");
            return false;
        }
    }
    if (r.u64() != ppnToLpn_.size()) {
        r.fail("mapper PPN table size mismatch");
        return false;
    }
    for (auto &l : ppnToLpn_) {
        l = Lpn{r.u64()};
        if (r.ok() && l != kInvalidLpn && l.value() >= userPages_) {
            r.fail("mapper PPN entry points past end of volume");
            return false;
        }
    }
    if (r.u64() != blockValid_.size()) {
        r.fail("mapper block table size mismatch");
        return false;
    }
    for (auto &v : blockValid_) {
        v = r.u32();
        if (r.ok() && v > ppb) {
            r.fail("mapper block valid count above pages-per-block");
            return false;
        }
    }
    for (auto &f : blockFree_)
        f = r.u8();
    for (auto &x : blockRetired_)
        x = r.u8();
    for (auto &c : candidate_)
        c = r.u8();
    if (r.ok()) {
        for (size_t b = 0; b < blockFree_.size(); ++b) {
            if (blockFree_[b] > 1 || blockRetired_[b] > 1 ||
                candidate_[b] > 1) {
                r.fail("mapper block flag is neither 0 nor 1");
                return false;
            }
        }
    }
    const uint64_t nFree = r.checkCount(r.u64(), 8);
    if (r.ok() && nFree > totalBlocks) {
        r.fail("mapper free list longer than the block count");
        return false;
    }
    freeList_.clear();
    for (uint64_t i = 0; i < nFree; ++i) {
        const nand::Pbn b{r.u64()};
        if (r.ok() && b.value() >= totalBlocks) {
            r.fail("mapper free-list entry past end of NAND");
            return false;
        }
        freeList_.push_back(b);
    }
    for (auto &ob : open_) {
        ob.block = nand::Pbn{r.u64()};
        ob.nextPage = r.u32();
        if (r.ok() &&
            ((ob.block != kNoVictim && ob.block.value() >= totalBlocks) ||
             ob.nextPage > ppb)) {
            r.fail("mapper open-block pointer out of range");
            return false;
        }
    }
    totalValid_ = r.u64();
    retiredBlocks_ = r.u64();
    if (!r.ok())
        return false;

    // Rebuild the derived validity bitmap from the restored inverse
    // map (it is never serialized).
    validWords_.assign(validWords_.size(), 0);
    for (uint64_t p = 0; p < totalPages; ++p)
        if (ppnToLpn_[p] != kInvalidLpn)
            markValid(nand::Ppn{p});

    // Rebuild the lazy victim buckets fresh from the candidate set.
    // pickVictimGreedy() prunes stale entries before choosing, so the
    // fresh buckets select the same victims as the aged ones.
    for (auto &bkt : buckets_)
        bkt.clear();
    minBucket_ = ppb + 1;
    for (uint64_t b = 0; b < totalBlocks; ++b)
        if (candidate_[b])
            pushBucket(nand::Pbn{b}, blockValid_[b]);

    // Full structural validation against the (already restored) NAND
    // state; a payload that passed CRC but mutated semantics must
    // surface here, not as undefined behavior later.
    const std::string err = checkConsistency();
    if (!err.empty()) {
        r.fail("mapper state inconsistent after load: " + err);
        return false;
    }
    return true;
}

} // namespace ssdcheck::ssd
