/**
 * @file
 * Configuration of a simulated black-box SSD.
 *
 * Every mechanism the paper identifies is a knob here: allocation/GC
 * volume LBA bit indices, write-buffer size/type/flush algorithms,
 * NAND geometry and timing, GC watermarks, interface costs, latency
 * jitter, and the "secondary feature" noise (SLC-cache migration)
 * that the paper blames for reduced HL accuracy on some devices.
 *
 * The ground truth in this struct is what the diagnosis code in
 * src/core must recover purely from the block interface.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blockdev/request.h"
#include "nand/nand_config.h"
#include "sim/sim_time.h"
#include "ssd/fault_injector.h"

namespace ssdcheck::ssd {

/** Paper §III-B3: how the write buffer acknowledges a flushing write. */
enum class BufferType : uint8_t
{
    Back, ///< Double-buffered: writes keep landing while a flush drains.
    Fore, ///< The flush-triggering write is acknowledged after the flush.
};

/** Human-readable name of a BufferType. */
std::string toString(BufferType t);

/** Full configuration of one simulated SSD. */
struct SsdConfig
{
    std::string name = "ssd";

    /** Total user-visible capacity in 4KB pages (across all volumes). */
    uint64_t userCapacityPages = 128 * 1024; // 512 MB

    /**
     * Sector-LBA bit indices selecting the allocation volume
     * (paper Fig. 4 / Fig. 9). Empty means a single volume. The GC
     * volume indices are the same bits (paper §III-B2 note).
     */
    std::vector<uint32_t> volumeBits;

    /** Write buffer capacity per volume, in bytes. */
    uint32_t bufferBytes = 248 * 1024;

    /** Buffer acknowledgement style. */
    BufferType bufferType = BufferType::Back;

    /** True when any read flushes a non-empty buffer (paper §III-B3). */
    bool readTriggerFlush = false;

    /** Overprovisioning: physical = user * (1 + opRatio) per volume. */
    double opRatio = 0.28;

    /** NAND timing constants. */
    nand::NandTiming nandTiming;

    /** Planes per volume (parallelism of flush/GC batches). */
    uint32_t planesPerVolume = 32;

    /** Pages per NAND block. */
    uint32_t pagesPerBlock = 64;

    /** Host-interface occupancy per request (serializes all I/O). */
    sim::SimDuration busTime = sim::microseconds(3);

    /** FTL front-end processing per write (per-volume serialization). */
    sim::SimDuration writeCpuTime = sim::microseconds(18);

    /** Extra latency from admit to write acknowledgement. */
    sim::SimDuration writeAckTime = sim::microseconds(30);

    /** Read path overhead on top of the NAND read. */
    sim::SimDuration readOverheadTime = sim::microseconds(25);

    /** Latency of a read served from the write buffer. */
    sim::SimDuration bufferReadTime = sim::microseconds(20);

    /** Fixed controller overhead added to every buffer flush. */
    sim::SimDuration flushOverheadTime = sim::microseconds(150);

    /** Concurrent read ways per volume (read pipeline throughput). */
    uint32_t readParallelism = 8;

    /** GC trigger: run when free blocks fall below this. */
    uint32_t gcLowBlocks = 6;

    /** GC target: reclaim until at least this many blocks are free. */
    uint32_t gcHighBlocks = 10;

    /**
     * Static wear-leveling threshold: relocate cold blocks once the
     * erase-count spread exceeds this (0 disables; the paper's
     * prototype FTL levels wear this way).
     */
    uint32_t wearLevelThreshold = 0;

    /**
     * Read-disturb refresh limit: relocate a block once it served
     * this many reads since its last erase (0 disables; §III-A lists
     * read disturbance among the prototype FTL's reliability
     * functions).
     */
    uint32_t readDisturbLimit = 0;

    /** Lognormal sigma applied to each latency (0 = deterministic). */
    double jitterSigma = 0.06;

    /** Probability of a random unmodeled stall per request. */
    double hiccupProbability = 0.0;

    /** Uniform range of the unmodeled stall. */
    sim::SimDuration hiccupMin = sim::microseconds(400);
    sim::SimDuration hiccupMax = sim::microseconds(2500);

    /**
     * Secondary feature (paper §VI): SLC cache. Flushes program fast
     * SLC pages; once roughly slcCapacityPages accumulate, a long
     * SLC→MLC migration blocks the volume at a point the runtime
     * model cannot see.
     */
    bool slcCache = false;
    uint32_t slcCapacityPages = 2048;
    double slcCapacityVariation = 0.3; ///< Uniform +-30% per cycle.
    /** Pages moved per migration event (the rest migrates lazily in
     *  background and is not charged as blocking time). */
    uint32_t slcMigrateChunkPages = 192;

    /**
     * Fig. 3 prototype switches: when false, the corresponding
     * mechanism still runs functionally (data still moves, blocks are
     * still reclaimed) but contributes zero virtual-time cost —
     * isolating its performance impact exactly as the paper's
     * SSD_Others / SSD_WB+Others / SSD_GC+Others variants do.
     */
    bool wbFlushCostEnabled = true;
    bool gcCostEnabled = true;

    /**
     * Fig. 3 SSD_Optimal: acknowledge every request immediately with
     * only the minimal interface cost and no internal operations.
     */
    bool optimalMode = false;

    /**
     * Fault injection: rates of media errors, bad-block growth,
     * command stalls and firmware drift. Inert by default, so every
     * existing experiment runs on a healthy device.
     */
    FaultProfile faults;

    /** Seed for all of this device's randomness. */
    uint64_t seed = 1;

    // ---- Derived helpers -------------------------------------------------

    /** Number of allocation (== GC) volumes. */
    uint32_t numVolumes() const { return 1u << volumeBits.size(); }

    /** Write-buffer capacity in pages. */
    uint32_t bufferPages() const
    {
        return bufferBytes / blockdev::kPageSize;
    }

    /** User pages per volume. */
    uint64_t userPagesPerVolume() const
    {
        return userCapacityPages / numVolumes();
    }

    /** User capacity in sectors. */
    uint64_t capacitySectors() const
    {
        return userCapacityPages * blockdev::kSectorsPerPage;
    }

    /** Volume index of a sector LBA (concatenated volume bits). */
    uint32_t volumeOf(uint64_t lba) const;

    /**
     * Volume-local logical page number of a sector LBA: the page
     * index with the volume-selecting bits squeezed out.
     */
    uint64_t localLpn(uint64_t lba) const;

    /** Physical pages per volume (user + overprovisioning). */
    uint64_t physPagesPerVolume() const;

    /** NAND geometry of one volume's array. */
    nand::NandGeometry volumeGeometry() const;

    /**
     * Validate internal consistency (volume bits page-aligned and in
     * range, capacities divisible, watermarks sane...).
     * @return empty string when valid, else a description.
     */
    std::string validate() const;
};

/**
 * Precomputed LBA→(volume, local LPN) router for the submit hot path.
 *
 * SsdConfig::volumeOf/localLpn recompute the squeeze-bit order from
 * the raw volumeBits vector on every call; this snapshot does that
 * work once at device construction (volume bits never drift) and
 * serves every request from two small fixed arrays.
 */
class LbaRouter
{
  public:
    LbaRouter() = default;

    explicit LbaRouter(const SsdConfig &cfg)
    {
        n_ = static_cast<uint32_t>(cfg.volumeBits.size());
        for (uint32_t i = 0; i < n_ && i < kMaxBits; ++i) {
            volBits_[i] = cfg.volumeBits[i];
            // Sector bit -> page bit (4KB = 2^3 sectors).
            pageBitsDesc_[i] = cfg.volumeBits[i] - 3;
        }
        // Squeeze highest page bit first so lower positions stay valid.
        for (uint32_t i = 1; i < n_; ++i) {
            const uint32_t b = pageBitsDesc_[i];
            uint32_t j = i;
            for (; j > 0 && pageBitsDesc_[j - 1] < b; --j)
                pageBitsDesc_[j] = pageBitsDesc_[j - 1];
            pageBitsDesc_[j] = b;
        }
    }

    /** Volume index of a sector LBA (concatenated volume bits). */
    uint32_t volumeOf(uint64_t lba) const
    {
        uint32_t v = 0;
        for (uint32_t i = 0; i < n_; ++i)
            v |= static_cast<uint32_t>((lba >> volBits_[i]) & 1ULL) << i;
        return v;
    }

    /** Volume-local logical page number of a sector LBA. */
    uint64_t localLpn(uint64_t lba) const
    {
        uint64_t page = lba / blockdev::kSectorsPerPage;
        for (uint32_t i = 0; i < n_; ++i) {
            const uint32_t pb = pageBitsDesc_[i];
            const uint64_t low = page & ((1ULL << pb) - 1);
            const uint64_t high = page >> (pb + 1);
            page = (high << pb) | low;
        }
        return page;
    }

  private:
    static constexpr uint32_t kMaxBits = 16;
    uint32_t n_ = 0;
    uint32_t volBits_[kMaxBits] = {};
    uint32_t pageBitsDesc_[kMaxBits] = {}; ///< Page bits, descending.
};

} // namespace ssdcheck::ssd

