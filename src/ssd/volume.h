/**
 * @file
 * One internal allocation/GC volume of the simulated SSD.
 *
 * A volume bundles a write buffer, a NAND array, the page-level FTL
 * and a garbage collector, and drives their interactions through
 * virtual-time gates:
 *
 *  - writeGate_: FTL front-end serialization of writes;
 *  - nandBusyUntil_: the array is occupied by a flush, SLC migration
 *    or GC until this time — reads submitted earlier are blocked
 *    (these become the paper's HL reads), and a flush triggered
 *    earlier backpressures its write (HL write);
 *  - readGate_: read-pipeline service rate (parallel chips).
 *
 * submit() calls must carry nondecreasing start times (the device
 * enforces this via its bus gate).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nand/nand_array.h"
#include "obs/sink.h"
#include "sim/rng.h"
#include "sim/sim_time.h"
#include "ssd/fault_injector.h"
#include "ssd/garbage_collector.h"
#include "ssd/page_mapper.h"
#include "ssd/ssd_config.h"
#include "ssd/write_buffer.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::ssd {

/** Ground-truth cause annotations for one request (introspection). */
struct IoDetail
{
    uint32_t volume = 0;
    bool triggeredFlush = false;  ///< This write filled the buffer.
    bool backpressured = false;   ///< Write waited for a prior flush/GC.
    bool blockedByBusy = false;   ///< Read waited for flush/migration/GC.
    bool readTriggeredFlush = false; ///< Read-trigger flush fired.
    bool gcRan = false;           ///< A GC invocation ran on this request.
    bool slcMigration = false;    ///< An SLC->MLC migration ran.
    bool bufferHit = false;       ///< Read served from the write buffer.
    bool hiccup = false;          ///< Unmodeled random stall injected.
    uint32_t readRetries = 0;     ///< In-device read-retry attempts.
    bool mediaError = false;      ///< Completed as an uncorrectable read.
    bool programFailure = false;  ///< A flush hit a program failure.
    bool stalled = false;         ///< Injected command stall.
    sim::SimDuration flushTime = 0; ///< Flush busy time charged.
    // (durations, not points: they accumulate across the request)
    sim::SimDuration gcTime = 0;    ///< GC busy time charged.
    sim::SimDuration waitTime = 0;  ///< Time spent waiting on busy NAND.

    /** Paper Fig. 3c operation classes. */
    enum class Cause : uint8_t { Others, WriteBuffer, GarbageCollection };

    /** Dominant cause class of this request. */
    Cause cause() const
    {
        if (gcRan)
            return Cause::GarbageCollection;
        if (triggeredFlush || backpressured || blockedByBusy ||
            readTriggeredFlush)
            return Cause::WriteBuffer;
        return Cause::Others;
    }
};

/** Cumulative per-volume counters (introspection / tests). */
struct VolumeCounters
{
    uint64_t writes = 0;
    uint64_t reads = 0;
    uint64_t flushes = 0;
    uint64_t backpressureStalls = 0;
    uint64_t gcInvocations = 0;
    uint64_t gcBlocksErased = 0;
    uint64_t gcPagesMoved = 0;
    uint64_t slcMigrations = 0;
    uint64_t bufferHits = 0;
    uint64_t wearLevelMoves = 0;
    uint64_t readRefreshMoves = 0;
    uint64_t retiredBlocks = 0; ///< Grown bad blocks in this volume.
};

/** One allocation/GC volume with its own buffer, FTL, NAND and GC. */
class Volume
{
  public:
    /**
     * @param cfg the owning device's configuration.
     * @param volumeIndex which volume this is (for annotations).
     * @param rng independent random stream for this volume's jitter.
     * @param faults the device's fault injector; null = healthy device.
     */
    Volume(const SsdConfig &cfg, uint32_t volumeIndex, sim::Rng rng,
           FaultInjector *faults = nullptr);

    Volume(const Volume &) = delete;
    Volume &operator=(const Volume &) = delete;

    /**
     * Serve a page write submitted at @p start.
     * @return completion time; @p detail (optional) gets annotations.
     */
    sim::SimTime serveWrite(sim::SimTime start, Lpn lpn, uint64_t payload,
                            IoDetail *detail);

    /**
     * Serve a page read submitted at @p start.
     * @param payloadOut receives the page stamp when mapped (optional).
     */
    sim::SimTime serveRead(sim::SimTime start, Lpn lpn,
                           uint64_t *payloadOut, IoDetail *detail);

    /** Drop buffer and mappings; reset all gates (device purge). */
    void reset();

    /**
     * Instantly (zero virtual time) write every logical page once —
     * the SNIA-style precondition step, without simulating hours of
     * fill traffic. Stamps pages with @p stampBase + lpn.
     */
    void prefill(uint64_t stampBase);

    /** FTL state, for integrity checks in tests. */
    const PageMapper &mapper() const { return mapper_; }

    /** Read the latest value of logical page (buffer-aware). */
    bool peek(Lpn lpn, uint64_t *payload) const;

    const VolumeCounters &counters() const { return counters_; }

    /** Time the NAND array is busy until (flush/migration/GC). */
    sim::SimTime nandBusyUntil() const { return nandBusyUntil_; }

    /** Pages currently sitting in the write buffer. */
    uint32_t bufferFill() const { return buffer_.fill(); }

    /** Current write-buffer capacity in pages (drift may change it). */
    uint32_t bufferCapacity() const { return buffer_.capacity(); }

    /** Apply a firmware-drift change of the buffer capacity. */
    void setBufferCapacity(uint32_t pages) { buffer_.setCapacity(pages); }

    /**
     * Attach observability targets (cold path, before the run): the
     * volume emits wb/gc/slc/nand trace events on the device track for
     * this volume index and exports its counters onto the registry
     * under {device=@p device, volume=<index>} labels.
     */
    void attachObservability(const obs::Sink &sink,
                             const std::string &device);

    /**
     * Serialize the volume's dynamic state: random stream, NAND
     * content, FTL maps, write buffer, GC progress, virtual-time
     * gates, SLC-cache cursor and counters.
     */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState() (same configuration). */
    bool loadState(recovery::StateReader &r);

  private:
    /** Why flush() fired (trace annotation, paper §III-B3). */
    enum class FlushReason : uint8_t { Full, ReadTrigger };


    /**
     * Drain the buffer into NAND starting no earlier than @p at.
     * Updates nandBusyUntil_ and runs SLC migration / GC as needed.
     * @return time the triggering request waited for a free buffer
     *         (backpressure stall; 0 when none).
     */
    sim::SimDuration flush(sim::SimTime at, IoDetail *detail,
                           FlushReason reason);

    /** Apply lognormal jitter to a service-time component. */
    sim::SimDuration jitter(sim::SimDuration d);

    const SsdConfig &cfg_; // snapshot:skip(construction-time config; restore constructs an identical volume before loadState)
    uint32_t volumeIndex_; // snapshot:skip(construction-time identity; restore constructs volumes in the same order)
    sim::Rng rng_;
    FaultInjector *faults_; // snapshot:skip(non-owning pointer to the device-level injector, whose state the device serializes)

    // Direct members (declaration order is construction order: the
    // mapper and collector hold references into nand_/mapper_), so the
    // hot submit path needs no pointer chase per component.
    nand::NandArray nand_;
    PageMapper mapper_;
    GarbageCollector gc_;
    WriteBuffer buffer_;

    sim::SimTime writeGate_;
    sim::SimTime nandBusyUntil_;
    sim::SimTime readGate_;
    /** True while the current NAND busy window includes a GC run, so
     *  requests stalled by it are attributed to GC (Fig. 3c/3d). */
    bool busyIncludesGc_ = false;

    // SLC-cache secondary feature state.
    uint64_t slcUsedPages_ = 0;
    uint64_t slcCycleCapacity_ = 0;

    VolumeCounters counters_;

    // Observability (null/unused until attachObservability()).
    obs::TraceRecorder *trace_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
    obs::TraceTrack track_{obs::kDevicePid, 0}; // snapshot:skip(non-owning observability hook, re-attached after restore)
    obs::StageProfiler *stages_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
    std::vector<GcVictim> victimScratch_; ///< Reused across GC runs. // snapshot:skip(transient scratch, cleared before each use)
};

} // namespace ssdcheck::ssd

