/**
 * @file
 * Device presets: the seven commodity SSDs of Table I and the five
 * FPGA prototype variants of Fig. 3.
 *
 * Table I ground truth reproduced by the presets:
 *
 *   Vendor  SSD  Volumes (bits)  Buffer  Type  Flush
 *   W       A    1 (none)        248KB   back  full
 *   X       B    1 (none)        248KB   back  full
 *   Y       C    1 (none)        256KB   back  full
 *   Z       D    2 (17)          128KB   back  full
 *   Z       E    4 (17, 18)      128KB   back  full
 *   Z       F    1 (none)        128KB   fore  full & read-trigger
 *   Z       G    1 (none)        128KB   fore  full & read-trigger
 *
 * Each vendor also gets distinct interface timings, parallelism,
 * overprovisioning, jitter and unmodeled-noise levels, producing the
 * inter-SSD irregularity of Fig. 1. SSD D and E carry the SLC-cache
 * secondary feature that lowers HL prediction accuracy in Fig. 11.
 */
#pragma once

#include <string>
#include <vector>

#include "ssd/ssd_config.h"

namespace ssdcheck::ssd {

/** The seven commodity SSDs evaluated in the paper. */
enum class SsdModel { A, B, C, D, E, F, G };

/** All models, in paper order. */
std::vector<SsdModel> allModels();

/** "A".."G". */
std::string toString(SsdModel m);

/**
 * Build the configuration of one Table-I device.
 * @param seedSalt perturbs the device's random streams so repeated
 *        experiments can draw independent noise.
 */
SsdConfig makePreset(SsdModel m, uint64_t seedSalt = 0);

/** Fig. 3 prototype variants (§III-A). */
enum class PrototypeVariant
{
    Optimal,  ///< Immediate acknowledgement, no internal operations.
    Others,   ///< Everything except WB-flush and GC costs.
    WbOthers, ///< Others + write-buffer flush cost.
    GcOthers, ///< Others + garbage-collection cost.
    All,      ///< The complete device.
};

/** All prototype variants, in paper order. */
std::vector<PrototypeVariant> allPrototypeVariants();

/** Human-readable variant name, e.g. "SSD_WB+Others". */
std::string toString(PrototypeVariant v);

/** Build the configuration of one Fig. 3 prototype variant. */
SsdConfig makePrototype(PrototypeVariant v, uint64_t seedSalt = 0);

/**
 * Paper §VI: an NVM-based SSD (3D-XPoint/PRAM-class medium behind an
 * internal write buffer, still relying on GC for consistent
 * throughput). SSDcheck is medium-agnostic — the same diagnosis and
 * model apply; this preset exists to demonstrate that claim.
 */
SsdConfig makeNvmBackedSsd(uint64_t seedSalt = 0);

} // namespace ssdcheck::ssd

