#include "ssd/write_buffer.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::ssd {

WriteBuffer::WriteBuffer(uint32_t capacityPages) : capacity_(capacityPages)
{
    assert(capacityPages > 0);
    entries_.reserve(capacityPages);
    scratch_.reserve(capacityPages);
    // Slot count at least 2x the fill keeps probe chains short; the
    // table only ever grows (drain() clears it by generation bump).
    rehash(static_cast<size_t>(capacityPages) * 2 + 2);
}

void
WriteBuffer::rehash(size_t minSlots)
{
    const size_t n = std::bit_ceil(std::max<size_t>(minSlots, 8));
    slots_.assign(n, Slot{});
    mask_ = n - 1;
    gen_ = 1;
    for (size_t i = 0; i < entries_.size(); ++i)
        indexNewest(entries_[i].lpn, static_cast<uint32_t>(i));
}

void
WriteBuffer::resetTable()
{
    ++gen_;
    if (gen_ == 0) { // generation wrapped: old tags are ambiguous now
        slots_.assign(slots_.size(), Slot{});
        gen_ = 1;
    }
}

void
WriteBuffer::indexNewest(core::Lpn lpn, uint32_t idx)
{
    for (size_t i = lpn.hash() & mask_;; i = (i + 1) & mask_) {
        Slot &s = slots_[i];
        if (s.gen == gen_ && s.lpn != lpn)
            continue;
        s.lpn = lpn;
        s.idx = idx;
        s.gen = gen_;
        return;
    }
}

bool
WriteBuffer::add(core::Lpn lpn, uint64_t payload)
{
    // May be entered on an already-full buffer right after a capacity
    // shrink (firmware drift); the caller flushes as soon as this
    // returns true, so fill only ever overshoots transiently.
    if ((entries_.size() + 2) * 2 > slots_.size())
        rehash(slots_.size() * 2);
    entries_.push_back(Entry{lpn, payload});
    indexNewest(lpn, static_cast<uint32_t>(entries_.size() - 1));
    return full();
}

void
WriteBuffer::setCapacity(uint32_t capacityPages)
{
    capacity_ = capacityPages > 0 ? capacityPages : 1;
}

const std::vector<WriteBuffer::Entry> &
WriteBuffer::drain()
{
    std::swap(entries_, scratch_);
    entries_.clear();
    resetTable();
    return scratch_;
}

void
WriteBuffer::clear()
{
    entries_.clear();
    resetTable();
}

void
WriteBuffer::saveState(recovery::StateWriter &w) const
{
    w.u32(capacity_);
    w.u64(entries_.size());
    for (const Entry &e : entries_) {
        w.u64(e.lpn.value());
        w.u64(e.payload);
    }
}

bool
WriteBuffer::loadState(recovery::StateReader &r)
{
    const uint32_t capacity = r.u32();
    if (r.ok() && capacity == 0) {
        r.fail("write buffer capacity of zero");
        return false;
    }
    const uint64_t n = r.checkCount(r.u64(), 16);
    if (!r.ok())
        return false;
    capacity_ = capacity;
    entries_.clear();
    resetTable();
    entries_.reserve(std::max<uint64_t>(capacity_, n));
    for (uint64_t i = 0; i < n; ++i) {
        const core::Lpn lpn{r.u64()};
        const uint64_t payload = r.u64();
        if ((entries_.size() + 2) * 2 > slots_.size())
            rehash(slots_.size() * 2);
        entries_.push_back(Entry{lpn, payload});
        indexNewest(lpn, static_cast<uint32_t>(entries_.size() - 1));
    }
    return r.ok();
}

} // namespace ssdcheck::ssd
