#include "ssd/write_buffer.h"

#include <algorithm>
#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::ssd {

WriteBuffer::WriteBuffer(uint32_t capacityPages) : capacity_(capacityPages)
{
    assert(capacityPages > 0);
    entries_.reserve(capacityPages);
    // One slot per buffered write; reserving up front keeps add() and
    // lookup() rehash-free for the whole life of the buffer (drain()
    // clears but never shrinks the table).
    newest_.max_load_factor(0.5f);
    newest_.reserve(capacityPages + 1);
}

bool
WriteBuffer::add(uint64_t lpn, uint64_t payload)
{
    // May be entered on an already-full buffer right after a capacity
    // shrink (firmware drift); the caller flushes as soon as this
    // returns true, so fill only ever overshoots transiently.
    entries_.push_back(Entry{lpn, payload});
    newest_[lpn] = entries_.size() - 1;
    return full();
}

void
WriteBuffer::setCapacity(uint32_t capacityPages)
{
    capacity_ = capacityPages > 0 ? capacityPages : 1;
}

bool
WriteBuffer::lookup(uint64_t lpn, uint64_t *payload) const
{
    const auto it = newest_.find(lpn);
    if (it == newest_.end())
        return false;
    if (payload != nullptr)
        *payload = entries_[it->second].payload;
    return true;
}

std::vector<WriteBuffer::Entry>
WriteBuffer::drain()
{
    std::vector<Entry> out = std::move(entries_);
    entries_.clear();
    entries_.reserve(capacity_);
    newest_.clear();
    return out;
}

void
WriteBuffer::clear()
{
    entries_.clear();
    newest_.clear();
}

void
WriteBuffer::saveState(recovery::StateWriter &w) const
{
    w.u32(capacity_);
    w.u64(entries_.size());
    for (const Entry &e : entries_) {
        w.u64(e.lpn);
        w.u64(e.payload);
    }
}

bool
WriteBuffer::loadState(recovery::StateReader &r)
{
    const uint32_t capacity = r.u32();
    if (r.ok() && capacity == 0) {
        r.fail("write buffer capacity of zero");
        return false;
    }
    const uint64_t n = r.checkCount(r.u64(), 16);
    if (!r.ok())
        return false;
    capacity_ = capacity;
    entries_.clear();
    newest_.clear();
    entries_.reserve(std::max<uint64_t>(capacity_, n));
    for (uint64_t i = 0; i < n; ++i) {
        const uint64_t lpn = r.u64();
        const uint64_t payload = r.u64();
        entries_.push_back(Entry{lpn, payload});
        newest_[lpn] = entries_.size() - 1;
    }
    return r.ok();
}

} // namespace ssdcheck::ssd
