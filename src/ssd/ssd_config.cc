#include "ssd/ssd_config.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>

namespace ssdcheck::ssd {

std::string
toString(BufferType t)
{
    switch (t) {
      case BufferType::Back:
        return "back";
      case BufferType::Fore:
        return "fore";
    }
    return "?";
}

uint32_t
SsdConfig::volumeOf(uint64_t lba) const
{
    uint32_t v = 0;
    for (size_t i = 0; i < volumeBits.size(); ++i)
        v |= static_cast<uint32_t>((lba >> volumeBits[i]) & 1ULL) << i;
    return v;
}

uint64_t
SsdConfig::localLpn(uint64_t lba) const
{
    // Cold-path convenience; hot paths hold an LbaRouter instead.
    return LbaRouter(*this).localLpn(lba);
}

uint64_t
SsdConfig::physPagesPerVolume() const
{
    const uint64_t user = userPagesPerVolume();
    const auto phys =
        static_cast<uint64_t>(static_cast<double>(user) * (1.0 + opRatio));
    // Round up to whole blocks.
    const uint64_t blocks = (phys + pagesPerBlock - 1) / pagesPerBlock;
    return blocks * pagesPerBlock;
}

nand::NandGeometry
SsdConfig::volumeGeometry() const
{
    nand::NandGeometry geo;
    // Model a volume as channels x chips x planes such that the total
    // plane count equals planesPerVolume; the split between channels
    // and chips is immaterial to timing, so use a simple factoring.
    geo.channels = std::max(1u, planesPerVolume / 8);
    geo.chipsPerChannel = std::max(1u, planesPerVolume / (geo.channels * 2));
    geo.diesPerChip = 1;
    geo.planesPerDie =
        planesPerVolume / (geo.channels * geo.chipsPerChannel);
    // Fall back to a flat layout when the factoring doesn't divide.
    if (geo.totalPlanes() != planesPerVolume) {
        geo.channels = 1;
        geo.chipsPerChannel = 1;
        geo.planesPerDie = planesPerVolume;
    }
    geo.pagesPerBlock = pagesPerBlock;
    const uint64_t blocks = physPagesPerVolume() / pagesPerBlock;
    geo.blocksPerPlane = static_cast<uint32_t>(
        (blocks + geo.totalPlanes() - 1) / geo.totalPlanes());
    return geo;
}

std::string
SsdConfig::validate() const
{
    std::ostringstream err;
    if (userCapacityPages == 0)
        err << "userCapacityPages must be > 0; ";
    if (userCapacityPages % numVolumes() != 0)
        err << "userCapacityPages must divide evenly among volumes; ";
    if (bufferPages() == 0)
        err << "bufferBytes must hold at least one page; ";
    if (bufferPages() > pagesPerBlock * planesPerVolume)
        err << "buffer larger than one program wave per block is "
               "unsupported; ";
    for (uint32_t b : volumeBits) {
        if (b < 3)
            err << "volume bit below page granularity (bit < 3); ";
        // The bit must address within the device so patterns can flip it.
        const uint64_t sectors = capacitySectors();
        if ((1ULL << b) >= sectors)
            err << "volume bit beyond device capacity; ";
    }
    {
        // Volume bits must be unique.
        auto bits = volumeBits;
        std::sort(bits.begin(), bits.end());
        if (std::adjacent_find(bits.begin(), bits.end()) != bits.end())
            err << "duplicate volume bits; ";
    }
    if (gcLowBlocks < 2)
        err << "gcLowBlocks must be >= 2; ";
    if (gcHighBlocks <= gcLowBlocks)
        err << "gcHighBlocks must exceed gcLowBlocks; ";
    if (opRatio <= 0.02)
        err << "opRatio too small for GC to make progress; ";
    if (planesPerVolume == 0 || pagesPerBlock == 0)
        err << "geometry dimensions must be nonzero; ";
    const uint64_t physBlocks = physPagesPerVolume() / pagesPerBlock;
    if (physBlocks <= gcHighBlocks + 2)
        err << "too few blocks per volume for the GC watermarks; ";
    if (const std::string faultErr = faults.validate(); !faultErr.empty())
        err << faultErr << "; ";
    return err.str();
}

} // namespace ssdcheck::ssd
