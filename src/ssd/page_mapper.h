/**
 * @file
 * Page-level flash translation layer for one volume (paper §II-A).
 *
 * Maintains the LPN→PPN map, its inverse (needed by GC merges), block
 * validity accounting, the free-block pool, and the two open blocks
 * (host writes, GC relocation). All NAND state transitions go through
 * the NandArray so the chip-level invariants (erase-before-write,
 * sequential in-block programming) are enforced at the source.
 *
 * Addresses are strong types (core::Lpn, nand::Ppn, nand::Pbn): the
 * translation layer is exactly where the logical and physical address
 * domains meet, and the typed signatures make a crossed-up argument a
 * compile error instead of a silent corruption.
 *
 * GC victim selection is incremental: closed blocks are bucketed by
 * valid-page count (one lazy min-heap of block numbers per count),
 * maintained on block close / page invalidate / collect, so
 * pickVictimGreedy() is an amortized O(1) pop-min instead of a scan
 * over every physical block. Candidacy is decided once, at block-close
 * time (when the FTL moves its open-block pointer past a fully
 * programmed block) — open and partially-written blocks are never in
 * the buckets at all. The selection result is bit-identical to the
 * previous full scan: lowest block number among the blocks with the
 * fewest valid pages.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/typed_ids.h"
#include "nand/nand_array.h"
#include "nand/nand_config.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::ssd {

using core::kInvalidLpn;
using core::Lpn;

/** Page-level address mapping and block accounting for one volume. */
class PageMapper
{
  public:
    /** Allocation stream: host flushes vs GC relocation. */
    enum class Stream : uint8_t { Host, Gc };

    /**
     * @param nand the volume's NAND array (owned by the caller).
     * @param userPages logical pages exposed by this volume.
     * @param wearAwareAllocation allocate the least-worn free block
     *        instead of the most recently freed one (dynamic wear
     *        leveling; pairs with the collector's static leveling).
     */
    PageMapper(nand::NandArray &nand, uint64_t userPages,
               bool wearAwareAllocation = false);

    /**
     * Write (or overwrite) logical page @p lpn with @p payload:
     * invalidates any previous mapping and programs a fresh page from
     * the host-open block.
     */
    void writePage(Lpn lpn, uint64_t payload);

    /** Current physical page of @p lpn, or nand::kInvalidPpn. */
    nand::Ppn lookup(Lpn lpn) const;

    /**
     * Read the payload of logical page @p lpn from NAND.
     * @return false when the page was never written (or trimmed).
     */
    bool readPage(Lpn lpn, uint64_t *payload) const;

    /** Drop every mapping and erase-free all blocks (TRIM whole volume). */
    void trimAll();

    /** Blocks currently in the free pool. */
    size_t freeBlocks() const { return freeList_.size(); }

    /**
     * Retire one free block into the grown-bad-block list (a program
     * or erase failure made it unusable). The block never returns to
     * the free pool, shrinking effective overprovisioning.
     * @param minFreeBlocks refuse when the free pool would fall to
     *        this size or below (the FTL must stay operable).
     * @return true when a block was retired.
     */
    bool retireFreeBlock(size_t minFreeBlocks);

    /** Length of the grown-bad-block list. */
    uint64_t retiredBlocks() const { return retiredBlocks_; }

    /** Total valid (mapped) pages. */
    uint64_t totalValid() const { return totalValid_; }

    /** Logical pages exposed. */
    uint64_t userPages() const { return userPages_; }

    /** Valid-page count of flat block @p pbn. */
    uint32_t blockValidCount(nand::Pbn pbn) const;

    /** Physical blocks managed (introspection/invariants). */
    uint64_t totalBlocks() const { return blockValid_.size(); }

    /**
     * Greedy victim selection: the closed (fully programmed) block
     * with the fewest valid pages, lowest block number first on ties.
     * Amortized O(1) via the valid-count buckets.
     * @return the victim, or an invalid Pbn when no block is eligible.
     */
    nand::Pbn pickVictimGreedy() const;

    /**
     * True when @p pbn is a GC candidate: closed (fully programmed),
     * not free, not retired, and not one of the two open blocks.
     * Exactly the blocks pickVictimGreedy() chooses among.
     */
    bool isGcCandidate(nand::Pbn pbn) const;

    /** Sentinel returned by pickVictimGreedy when nothing is eligible. */
    static constexpr nand::Pbn kNoVictim = nand::kInvalidPbn;

    /**
     * Relocate every valid page of @p victim to the GC-open block and
     * erase it, returning it to the free pool.
     * @return number of valid pages moved.
     */
    uint64_t collectBlock(nand::Pbn victim);

    /** Inverse lookup: lpn stored in physical page @p ppn (or kInvalidLpn). */
    Lpn lpnOfPpn(nand::Ppn ppn) const;

    /** True when physical page @p ppn holds a live (mapped) page. */
    bool isPpnValid(nand::Ppn ppn) const
    {
        return (validWords_[ppn.value() >> 6] >> (ppn.value() & 63)) & 1ULL;
    }

    /** Packed validity bitmap word @p i (64 pages per word; tests). */
    uint64_t validWord(size_t i) const { return validWords_[i]; }

    /** Number of packed validity words. */
    size_t validWords() const { return validWords_.size(); }

    /**
     * The closed (fully programmed) block with the lowest erase count
     * — the static-wear-leveling candidate.
     * @return the block, or kNoVictim when none is eligible.
     */
    nand::Pbn pickColdestClosedBlock() const;

    /** Min and max erase count over all blocks (wear spread). */
    std::pair<uint32_t, uint32_t> eraseCountRange() const;

    /**
     * Consistency check used by tests: forward and inverse maps agree,
     * per-block valid counts match, free-list blocks are erased.
     * @return empty string when consistent, else a description.
     */
    std::string checkConsistency() const;

    /**
     * Serialize the logical FTL state. The lazy victim buckets are
     * derived state and are not serialized: loadState() rebuilds them
     * fresh from the candidate set, which yields the same
     * pickVictimGreedy() results as any lazily-aged bucket contents.
     */
    void saveState(recovery::StateWriter &w) const;

    /**
     * Restore state saved by saveState(). The NAND array must already
     * be restored (checkConsistency() runs against it). Validates all
     * indices and the full map consistency before returning true.
     */
    bool loadState(recovery::StateReader &r);

  private:
    struct OpenBlock
    {
        nand::Pbn block = kNoVictim;
        uint32_t nextPage = 0;
    };

    /** Take the next free page of the given stream's open block. */
    nand::Ppn allocatePage(Stream stream);

    /** Invalidate the mapping currently held by @p lpn, if any. */
    void invalidate(Lpn lpn);

    /**
     * A stream's open-block pointer moved past @p b: if it is still a
     * closed, live block, it becomes a GC candidate now.
     */
    void closeBlock(nand::Pbn b);

    /** Record candidate @p b under valid count @p valid. */
    void pushBucket(nand::Pbn b, uint32_t valid) const;

    /** Flat block containing @p ppn (shift when ppb is a power of 2). */
    nand::Pbn blockOf(nand::Ppn ppn) const
    {
        return nand::Pbn{ppbShift_ != 0 ? ppn.value() >> ppbShift_
                                        : ppn.value() / ppb_};
    }

    /** Set the validity bit of @p ppn. */
    void markValid(nand::Ppn ppn)
    {
        validWords_[ppn.value() >> 6] |= 1ULL << (ppn.value() & 63);
    }

    /** Clear the validity bit of @p ppn. */
    void markInvalid(nand::Ppn ppn)
    {
        validWords_[ppn.value() >> 6] &= ~(1ULL << (ppn.value() & 63));
    }

    nand::NandArray &nand_; // snapshot:skip(ctor-wired reference; loadState re-derives occupancy from it)
    uint64_t userPages_;
    bool wearAwareAllocation_; // snapshot:skip(construction-time config; restore constructs an identical mapper before loadState)
    // Cached geometry (hot-path divisors; ppbShift_ nonzero when ppb
    // is a power of two, enabling shift instead of divide).
    // snapshot:skip fields below are rebuilt by the constructor from
    // the NAND geometry, which loadState() validates against.
    uint32_t ppb_ = 0;         // snapshot:skip(derived from geometry)
    uint32_t ppbShift_ = 0;    // snapshot:skip(derived from geometry)
    uint64_t totalBlocks_ = 0; // snapshot:skip(derived from geometry)
    uint64_t totalPages_ = 0;  // snapshot:skip(derived from geometry)
    std::vector<nand::Ppn> lpnToPpn_;
    std::vector<Lpn> ppnToLpn_;
    /**
     * Packed per-page validity: bit (ppn & 63) of word (ppn >> 6) is
     * set exactly when ppnToLpn_[ppn] != kInvalidLpn. Redundant with
     * the inverse map but enables the popcount-assisted batch paths:
     * collectBlock() walks a victim's live pages as one bitmap scan
     * and batch-clears the victim's words, instead of probing the
     * inverse map page by page. Derived state: rebuilt on load, not
     * serialized.
     */
    std::vector<uint64_t> validWords_; // snapshot:skip(rebuilt from inverse map on load)
    std::vector<uint32_t> blockValid_;
    std::vector<uint8_t> blockFree_;
    std::vector<uint8_t> blockRetired_; ///< Grown-bad-block list.
    std::vector<nand::Pbn> freeList_;
    OpenBlock open_[2]; ///< Indexed by Stream.
    uint64_t totalValid_ = 0;
    uint64_t retiredBlocks_ = 0;

    /** Membership in the victim buckets (closed, live blocks only). */
    std::vector<uint8_t> candidate_;
    /**
     * buckets_[v] holds the candidates with v valid pages as a min-heap
     * of block numbers. Entries are lazy: a block is (re)pushed on
     * every valid-count change and on close, and stale entries (count
     * moved on, or no longer a candidate) are pruned when they surface
     * at the top during pickVictimGreedy(). Pruning does not change
     * logical state, hence mutable. Derived: rebuilt fresh on load.
     */
    mutable std::vector<std::vector<nand::Pbn>> buckets_; // snapshot:skip(rebuilt from candidate set on load)
    /** No fresh bucket entry exists below this valid count. */
    mutable uint32_t minBucket_ = 0; // snapshot:skip(rebuilt with buckets on load)
};

} // namespace ssdcheck::ssd
