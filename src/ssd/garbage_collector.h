/**
 * @file
 * Greedy garbage collection for one volume (paper §II-A).
 *
 * When the free-block pool falls below the low watermark, the
 * collector repeatedly picks the closed block with the fewest valid
 * pages, merges its valid pages into the GC-open block, and erases it,
 * until the pool reaches the high watermark. The virtual-time cost of
 * an invocation is the merge reads + merge programs (striped across
 * the volume's planes) plus one erase per victim — this is the "GC
 * overhead" the paper's HL requests observe.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nand/nand_config.h"
#include "sim/sim_time.h"

namespace ssdcheck::nand {
class NandArray;
}

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::ssd {

class PageMapper;

/** One reclaimed block of a GC invocation (trace forensics). */
struct GcVictim
{
    nand::Pbn pbn;             ///< Physical block reclaimed.
    uint64_t validMoved = 0;   ///< Valid pages merged out of it.
    /** Migration time charged before this victim started (relative to
     *  the invocation's start, pre-jitter). */
    sim::SimDuration offset = 0;
    /** Merge read+program time of this victim (pre-jitter). */
    sim::SimDuration cost = 0;
};

/** Outcome of one GC invocation. */
struct GcResult
{
    uint64_t blocksErased = 0;
    uint64_t validMoved = 0;
    uint64_t wearMoves = 0; ///< Pages moved by static wear-leveling.
    uint64_t refreshMoves = 0; ///< Pages moved by read-disturb refresh.
    sim::SimDuration duration = 0;

    /** True when GC actually ran. */
    bool ran() const { return blocksErased > 0; }
};

/** Greedy collector with low/high watermark hysteresis. */
class GarbageCollector
{
  public:
    /** Concurrent erase commands the FIL can keep in flight. */
    static constexpr uint32_t kEraseParallelism = 4;

    /**
     * @param mapper the volume's FTL state.
     * @param nand the volume's NAND array (for batch timing).
     * @param lowBlocks trigger when freeBlocks() < lowBlocks.
     * @param highBlocks reclaim until freeBlocks() >= highBlocks.
     */
    /**
     * @param wearThreshold static wear-leveling kicks in when the
     *        erase-count spread exceeds this (0 disables it; the
     *        paper's prototype FTL uses threshold-based leveling).
     */
    /**
     * @param readDisturbLimit refresh (relocate + erase) a block once
     *        it has served this many reads since its last erase
     *        (0 disables; paper §III-A lists read-disturbance among
     *        the reliability functions the prototype FTL handles).
     */
    GarbageCollector(PageMapper &mapper, nand::NandArray &nand,
                     uint32_t lowBlocks, uint32_t highBlocks,
                     uint32_t wearThreshold = 0,
                     uint32_t readDisturbLimit = 0);

    /** True when the free pool is below the low watermark. */
    bool needed() const;

    /**
     * Run one invocation (victims until the high watermark plus
     * @p extraBlocks — firmware varies its reclaim target, which is
     * what spreads the GC-interval distribution the paper's history
     * model keys on).
     * @return what was reclaimed and how long it took.
     * @param victims when non-null, receives one record per greedy
     *        victim (wear-level / refresh moves not included).
     */
    GcResult collect(uint32_t extraBlocks = 0,
                     std::vector<GcVictim> *victims = nullptr);

    /** Total invocations so far. */
    uint64_t invocations() const { return invocations_; }

    /** Serialize the invocation counter (all other state is derived). */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    /** Relocate cold blocks while the wear spread exceeds the
     *  threshold (bounded work per invocation). */
    void levelWear(GcResult &res);

    /** Refresh blocks whose read-disturb exposure crossed the limit
     *  (bounded work per invocation). */
    void refreshDisturbed(GcResult &res);

    PageMapper &mapper_; // snapshot:skip(ctor-wired reference; the restore harness rebuilds the object graph)
    nand::NandArray &nand_; // snapshot:skip(ctor-wired reference; the restore harness rebuilds the object graph)
    uint32_t lowBlocks_; // snapshot:skip(construction-time watermark config; restore constructs an identical collector)
    uint32_t highBlocks_; // snapshot:skip(construction-time watermark config; restore constructs an identical collector)
    uint32_t wearThreshold_; // snapshot:skip(construction-time wear config; restore constructs an identical collector)
    uint32_t readDisturbLimit_; // snapshot:skip(construction-time disturb config; restore constructs an identical collector)
    uint64_t invocations_ = 0;
};

} // namespace ssdcheck::ssd

