#include "ssd/ssd_device.h"

#include <algorithm>
#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::ssd {

SsdDevice::SsdDevice(SsdConfig cfg)
    : cfg_(std::move(cfg)), router_(cfg_), rng_(cfg_.seed),
      faults_(cfg_.faults, sim::Rng(cfg_.seed).fork(0xFA17))
{
    const std::string err = cfg_.validate();
    assert(err.empty() && "invalid SsdConfig");
    (void)err;
    for (uint32_t v = 0; v < cfg_.numVolumes(); ++v)
        volumes_.push_back(std::make_unique<Volume>(
            cfg_, v, rng_.fork(v + 1),
            cfg_.faults.inert() ? nullptr : &faults_));
}

uint64_t
SsdDevice::capacitySectors() const
{
    return cfg_.capacitySectors();
}

blockdev::IoResult
SsdDevice::submit(const blockdev::IoRequest &req, sim::SimTime now)
{
    return submitDetailed(req, now, nullptr);
}

blockdev::IoResult
SsdDevice::submitDetailed(const blockdev::IoRequest &req, sim::SimTime now,
                          IoDetail *detail, const uint64_t *writePayload,
                          uint64_t *readPayload)
{
    assert(now >= lastSubmit_ && "submissions must be time-ordered");
    lastSubmit_ = now;

    blockdev::IoResult res;
    res.submitTime = now;

    // Boundary validation: a zero-length or out-of-capacity command
    // is rejected from the command decoder without touching the page
    // map (a real device answers such commands with an error CQE).
    if (req.sectors == 0 ||
        req.lba + req.sectors > capacitySectors() ||
        req.lba + req.sectors < req.lba /* address overflow */) {
        res.status = blockdev::IoStatus::DeviceFault;
        res.completeTime = now + sim::microseconds(5);
        if (trace_ != nullptr)
            trace_->instant("dev", "dev.reject", kBusTrack, now,
                            {{"lba", static_cast<int64_t>(req.lba)},
                             {"sectors",
                              static_cast<int64_t>(req.sectors)}});
        return res;
    }

    ++requestsServed_;
    faults_.beginRequest(requestsServed_);
    if (faults_.driftDue(requestsServed_)) {
        applyDrift();
        if (trace_ != nullptr)
            trace_->instant(
                "dev", "dev.drift", kBusTrack, now,
                {{"kind", static_cast<int64_t>(cfg_.faults.driftKind)},
                 {"request",
                  static_cast<int64_t>(requestsServed_)}});
    }

    // Host interface occupancy serializes all traffic.
    const sim::SimTime busStart = std::max(now, busGate_);
    busGate_ = busStart + cfg_.busTime;
    const sim::SimTime start = busGate_;

    if (req.type == blockdev::IoType::Trim) {
        res.completeTime = start + sim::microseconds(10);
        if (trace_ != nullptr)
            trace_->complete("dev", "dev.trim", kBusTrack, now,
                             res.completeTime - now,
                             {{"lba", static_cast<int64_t>(req.lba)},
                              {"sectors",
                               static_cast<int64_t>(req.sectors)}});
        return res;
    }

    if (cfg_.optimalMode) {
        // Fig. 3 SSD_Optimal: immediate acknowledgement, functional
        // store kept device-side for correctness.
        const uint64_t firstPage = req.firstPage();
        for (uint32_t p = 0; p < req.pages(); ++p) {
            if (req.isWrite() && writePayload != nullptr)
                optimalStore_[firstPage + p] = *writePayload + p;
        }
        if (req.isRead() && readPayload != nullptr) {
            const auto it = optimalStore_.find(firstPage);
            *readPayload = it == optimalStore_.end() ? ~0ULL : it->second;
        }
        res.completeTime = start + sim::microseconds(15);
        return res;
    }

    // Serve each covered page; the request completes when the last
    // page does. Pages may straddle a volume-stripe boundary, in
    // which case each page routes independently.
    sim::SimTime complete = start;
    const uint64_t firstPage = req.firstPage();
    for (uint32_t p = 0; p < req.pages(); ++p) {
        const uint64_t lba =
            (firstPage + p) * blockdev::kSectorsPerPage;
        const uint32_t vol = router_.volumeOf(lba);
        const Lpn lpn{router_.localLpn(lba)};
        sim::SimTime done;
        if (req.isWrite()) {
            const uint64_t stamp =
                writePayload != nullptr ? *writePayload + p : 0;
            done = volumes_[vol]->serveWrite(start, lpn, stamp, detail);
        } else {
            uint64_t payload = 0;
            done = volumes_[vol]->serveRead(start, lpn, &payload, detail);
            if (p == 0 && readPayload != nullptr)
                *readPayload = payload;
        }
        complete = std::max(complete, done);
    }

    // Device-level unmodeled noise: rare random stalls that the
    // performance model cannot anticipate. Mostly write-linked
    // (wear-leveling, mapping-table flushes); reads see a quarter of
    // the rate.
    const double hiccupP =
        cfg_.hiccupProbability * (req.isRead() ? 0.25 : 1.0);
    if (hiccupP > 0.0 && rng_.bernoulli(hiccupP)) {
        const sim::SimDuration hic =
            rng_.uniformInt(cfg_.hiccupMin, cfg_.hiccupMax);
        if (trace_ != nullptr)
            trace_->instant("dev", "dev.hiccup", kBusTrack, complete,
                            {{"dur_ns", hic}});
        complete += hic;
        if (detail != nullptr)
            detail->hiccup = true;
    }

    // Injected read faults: in-device retry loops show up to the host
    // only as latency spikes; reads that stay uncorrectable after
    // every retry level complete as MediaError.
    if (req.isRead()) {
        const ReadFault rf = faults_.onRead(req.firstPage());
        if (rf.retries > 0) {
            complete += static_cast<sim::SimDuration>(rf.retries) *
                        cfg_.faults.readRetryCost;
            if (detail != nullptr)
                detail->readRetries = rf.retries;
        }
        if (rf.hard) {
            res.status = blockdev::IoStatus::MediaError;
            if (detail != nullptr)
                detail->mediaError = true;
        }
    }

    // Injected command stall: firmware wedged on housekeeping long
    // enough that a host-side timeout policy would fire.
    const sim::SimDuration stall = faults_.stallFor();
    if (stall > 0) {
        if (trace_ != nullptr)
            trace_->instant("dev", "dev.stall", kBusTrack, complete,
                            {{"dur_ns", stall}});
        complete += stall;
        if (detail != nullptr)
            detail->stalled = true;
    }

    res.completeTime = complete;
    if (trace_ != nullptr) {
        obs::TraceArg *a = trace_->completeFill(
            "dev", "dev.request", kBusTrack, now, complete - now, 4);
        a[0] = {"lba", static_cast<int64_t>(req.lba)};
        a[1] = {"pages", static_cast<int64_t>(req.pages())};
        a[2] = {"write", req.isWrite() ? 1 : 0};
        a[3] = {"status", static_cast<int64_t>(res.status)};
    }
    return res;
}

void
SsdDevice::attachObservability(const obs::Sink &sink)
{
    trace_ = sink.trace;
    if (sink.metrics != nullptr) {
        obs::Registry &reg = *sink.metrics;
        const obs::Labels labels = {{"device", cfg_.name}};
        reg.exportCounter("dev_requests_served", labels, &requestsServed_);
        const FaultCounters &fc = faults_.counters();
        reg.exportCounter("fault_read_unc_transient", labels,
                          &fc.readUncTransient);
        reg.exportCounter("fault_read_unc_hard", labels, &fc.readUncHard);
        reg.exportCounter("fault_program_failures", labels,
                          &fc.programFailures);
        reg.exportCounter("fault_erase_failures", labels,
                          &fc.eraseFailures);
        reg.exportCounter("fault_blocks_retired", labels,
                          &fc.blocksRetired);
        reg.exportCounter("fault_stalls", labels, &fc.stalls);
        reg.exportCounter("fault_drift_events", labels, &fc.driftEvents);
    }
    for (auto &v : volumes_)
        v->attachObservability(sink, cfg_.name);
}

void
SsdDevice::applyDrift()
{
    switch (cfg_.faults.driftKind) {
      case DriftKind::ShrinkBuffer:
      case DriftKind::GrowBuffer: {
        const uint32_t cur = volumes_[0]->bufferCapacity();
        uint32_t next = std::max(
            1u, static_cast<uint32_t>(static_cast<double>(cur) *
                                      cfg_.faults.driftBufferFactor));
        // Keep the drifted buffer inside the one-program-wave bound
        // the configuration validator enforces.
        next = std::min(next, cfg_.pagesPerBlock * cfg_.planesPerVolume);
        cfg_.bufferBytes = next * blockdev::kPageSize;
        for (auto &v : volumes_)
            v->setBufferCapacity(next);
        break;
      }
      case DriftKind::ToggleReadTrigger:
        // Volumes read cfg_ by reference, so the new flush algorithm
        // takes effect on the next read.
        cfg_.readTriggerFlush = !cfg_.readTriggerFlush;
        break;
      case DriftKind::None:
        break;
    }
}

void
SsdDevice::purge(sim::SimTime now)
{
    (void)now;
    for (auto &v : volumes_)
        v->reset();
    optimalStore_.clear();
    // Gates deliberately stay monotone: a purged device still cannot
    // answer before the host interface frees up.
}

void
SsdDevice::precondition()
{
    for (uint32_t v = 0; v < cfg_.numVolumes(); ++v)
        volumes_[v]->prefill(static_cast<uint64_t>(v) << 48);
}

bool
SsdDevice::peekPage(uint64_t pageIndex, uint64_t *payload) const
{
    const uint64_t lba = pageIndex * blockdev::kSectorsPerPage;
    if (cfg_.optimalMode) {
        const auto it = optimalStore_.find(pageIndex);
        if (it == optimalStore_.end())
            return false;
        if (payload != nullptr)
            *payload = it->second;
        return true;
    }
    const uint32_t vol = router_.volumeOf(lba);
    return volumes_[vol]->peek(Lpn{router_.localLpn(lba)}, payload);
}

const VolumeCounters &
SsdDevice::volumeCounters(uint32_t volume) const
{
    assert(volume < volumes_.size());
    return volumes_[volume]->counters();
}

VolumeCounters
SsdDevice::totalCounters() const
{
    VolumeCounters t;
    for (const auto &v : volumes_) {
        const VolumeCounters &c = v->counters();
        t.writes += c.writes;
        t.reads += c.reads;
        t.flushes += c.flushes;
        t.backpressureStalls += c.backpressureStalls;
        t.gcInvocations += c.gcInvocations;
        t.gcBlocksErased += c.gcBlocksErased;
        t.gcPagesMoved += c.gcPagesMoved;
        t.slcMigrations += c.slcMigrations;
        t.bufferHits += c.bufferHits;
        t.wearLevelMoves += c.wearLevelMoves;
        t.readRefreshMoves += c.readRefreshMoves;
        t.retiredBlocks += c.retiredBlocks;
    }
    return t;
}

void
SsdDevice::saveState(recovery::StateWriter &w) const
{
    // Drift-mutable config fields: the rest of cfg_ is covered by the
    // snapshot's config hash, but these two change mid-run.
    w.u64(cfg_.bufferBytes);
    w.boolean(cfg_.readTriggerFlush);
    rng_.saveState(w);
    faults_.saveState(w);
    w.u32(static_cast<uint32_t>(volumes_.size()));
    for (const auto &v : volumes_)
        v->saveState(w);
    w.i64(busGate_.ns());
    w.i64(lastSubmit_.ns());
    w.u64(requestsServed_);
    // Serialize the optimal-mode store in key order so the snapshot
    // bytes are deterministic regardless of hash-table layout.
    std::vector<std::pair<uint64_t, uint64_t>> sorted(
        optimalStore_.begin(), // lint:allow(unordered-iter): copied out
        optimalStore_.end()); // lint:allow(unordered-iter): and sorted below
    std::sort(sorted.begin(), sorted.end());
    w.u64(sorted.size());
    for (const auto &[k, v] : sorted) {
        w.u64(k);
        w.u64(v);
    }
}

bool
SsdDevice::loadState(recovery::StateReader &r)
{
    const uint64_t bufferBytes = r.u64();
    const bool readTrigger = r.boolean();
    if (!rng_.loadState(r) || !faults_.loadState(r))
        return false;
    const uint32_t nVolumes = r.u32();
    if (r.ok() && nVolumes != volumes_.size()) {
        r.fail("device volume count does not match this configuration");
        return false;
    }
    for (auto &v : volumes_)
        if (!v->loadState(r))
            return false;
    cfg_.bufferBytes = bufferBytes;
    cfg_.readTriggerFlush = readTrigger;
    busGate_ = sim::SimTime{r.i64()};
    lastSubmit_ = sim::SimTime{r.i64()};
    requestsServed_ = r.u64();
    const uint64_t nStore = r.checkCount(r.u64(), 16);
    optimalStore_.clear();
    for (uint64_t i = 0; i < nStore; ++i) {
        const uint64_t k = r.u64();
        const uint64_t v = r.u64();
        optimalStore_[k] = v;
    }
    return r.ok();
}

} // namespace ssdcheck::ssd
