#include "ssd/ssd_device.h"

#include <algorithm>
#include <cassert>

namespace ssdcheck::ssd {

SsdDevice::SsdDevice(SsdConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    const std::string err = cfg_.validate();
    assert(err.empty() && "invalid SsdConfig");
    (void)err;
    for (uint32_t v = 0; v < cfg_.numVolumes(); ++v)
        volumes_.push_back(
            std::make_unique<Volume>(cfg_, v, rng_.fork(v + 1)));
}

uint64_t
SsdDevice::capacitySectors() const
{
    return cfg_.capacitySectors();
}

blockdev::IoResult
SsdDevice::submit(const blockdev::IoRequest &req, sim::SimTime now)
{
    return submitDetailed(req, now, nullptr);
}

blockdev::IoResult
SsdDevice::submitDetailed(const blockdev::IoRequest &req, sim::SimTime now,
                          IoDetail *detail, const uint64_t *writePayload,
                          uint64_t *readPayload)
{
    assert(now >= lastSubmit_ && "submissions must be time-ordered");
    lastSubmit_ = now;
    assert(req.lba + req.sectors <= capacitySectors());

    blockdev::IoResult res;
    res.submitTime = now;

    // Host interface occupancy serializes all traffic.
    const sim::SimTime busStart = std::max(now, busGate_);
    busGate_ = busStart + cfg_.busTime;
    const sim::SimTime start = busGate_;

    if (req.type == blockdev::IoType::Trim) {
        res.completeTime = start + sim::microseconds(10);
        return res;
    }

    if (cfg_.optimalMode) {
        // Fig. 3 SSD_Optimal: immediate acknowledgement, functional
        // store kept device-side for correctness.
        const uint64_t firstPage = req.firstPage();
        for (uint32_t p = 0; p < req.pages(); ++p) {
            if (req.isWrite() && writePayload != nullptr)
                optimalStore_[firstPage + p] = *writePayload + p;
        }
        if (req.isRead() && readPayload != nullptr) {
            const auto it = optimalStore_.find(firstPage);
            *readPayload = it == optimalStore_.end() ? ~0ULL : it->second;
        }
        res.completeTime = start + sim::microseconds(15);
        return res;
    }

    // Serve each covered page; the request completes when the last
    // page does. Pages may straddle a volume-stripe boundary, in
    // which case each page routes independently.
    sim::SimTime complete = start;
    const uint64_t firstPage = req.firstPage();
    for (uint32_t p = 0; p < req.pages(); ++p) {
        const uint64_t lba =
            (firstPage + p) * blockdev::kSectorsPerPage;
        const uint32_t vol = cfg_.volumeOf(lba);
        const uint64_t lpn = cfg_.localLpn(lba);
        sim::SimTime done;
        if (req.isWrite()) {
            const uint64_t stamp =
                writePayload != nullptr ? *writePayload + p : 0;
            done = volumes_[vol]->serveWrite(start, lpn, stamp, detail);
        } else {
            uint64_t payload = 0;
            done = volumes_[vol]->serveRead(start, lpn, &payload, detail);
            if (p == 0 && readPayload != nullptr)
                *readPayload = payload;
        }
        complete = std::max(complete, done);
    }

    // Device-level unmodeled noise: rare random stalls that the
    // performance model cannot anticipate. Mostly write-linked
    // (wear-leveling, mapping-table flushes); reads see a quarter of
    // the rate.
    const double hiccupP =
        cfg_.hiccupProbability * (req.isRead() ? 0.25 : 1.0);
    if (hiccupP > 0.0 && rng_.bernoulli(hiccupP)) {
        complete += rng_.uniformInt(cfg_.hiccupMin, cfg_.hiccupMax);
        if (detail != nullptr)
            detail->hiccup = true;
    }

    res.completeTime = complete;
    return res;
}

void
SsdDevice::purge(sim::SimTime now)
{
    (void)now;
    for (auto &v : volumes_)
        v->reset();
    optimalStore_.clear();
    // Gates deliberately stay monotone: a purged device still cannot
    // answer before the host interface frees up.
}

void
SsdDevice::precondition()
{
    for (uint32_t v = 0; v < cfg_.numVolumes(); ++v)
        volumes_[v]->prefill(static_cast<uint64_t>(v) << 48);
}

bool
SsdDevice::peekPage(uint64_t pageIndex, uint64_t *payload) const
{
    const uint64_t lba = pageIndex * blockdev::kSectorsPerPage;
    if (cfg_.optimalMode) {
        const auto it = optimalStore_.find(pageIndex);
        if (it == optimalStore_.end())
            return false;
        if (payload != nullptr)
            *payload = it->second;
        return true;
    }
    const uint32_t vol = cfg_.volumeOf(lba);
    return volumes_[vol]->peek(cfg_.localLpn(lba), payload);
}

const VolumeCounters &
SsdDevice::volumeCounters(uint32_t volume) const
{
    assert(volume < volumes_.size());
    return volumes_[volume]->counters();
}

VolumeCounters
SsdDevice::totalCounters() const
{
    VolumeCounters t;
    for (const auto &v : volumes_) {
        const VolumeCounters &c = v->counters();
        t.writes += c.writes;
        t.reads += c.reads;
        t.flushes += c.flushes;
        t.backpressureStalls += c.backpressureStalls;
        t.gcInvocations += c.gcInvocations;
        t.gcBlocksErased += c.gcBlocksErased;
        t.gcPagesMoved += c.gcPagesMoved;
        t.slcMigrations += c.slcMigrations;
        t.bufferHits += c.bufferHits;
        t.wearLevelMoves += c.wearLevelMoves;
        t.readRefreshMoves += c.readRefreshMoves;
    }
    return t;
}

} // namespace ssdcheck::ssd
