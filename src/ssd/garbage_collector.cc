#include "ssd/garbage_collector.h"

#include <cassert>

#include "nand/nand_array.h"
#include "recovery/state_io.h"
#include "ssd/page_mapper.h"

namespace ssdcheck::ssd {

GarbageCollector::GarbageCollector(PageMapper &mapper, nand::NandArray &nand,
                                   uint32_t lowBlocks, uint32_t highBlocks,
                                   uint32_t wearThreshold,
                                   uint32_t readDisturbLimit)
    : mapper_(mapper), nand_(nand), lowBlocks_(lowBlocks),
      highBlocks_(highBlocks), wearThreshold_(wearThreshold),
      readDisturbLimit_(readDisturbLimit)
{
    assert(lowBlocks >= 2);
    assert(highBlocks > lowBlocks);
}

bool
GarbageCollector::needed() const
{
    return mapper_.freeBlocks() < lowBlocks_;
}

GcResult
GarbageCollector::collect(uint32_t extraBlocks,
                          std::vector<GcVictim> *victims)
{
    GcResult res;
    const uint32_t target = highBlocks_ + extraBlocks;
    while (mapper_.freeBlocks() < target) {
        const nand::Pbn victim = mapper_.pickVictimGreedy();
        if (victim == PageMapper::kNoVictim)
            break; // nothing closed to reclaim (e.g. fresh device)
        const uint64_t moved = mapper_.collectBlock(victim);
        const sim::SimDuration cost =
            nand_.batchReadTime(moved) + nand_.batchProgramTime(moved);
        if (victims != nullptr)
            victims->push_back(GcVictim{victim, moved, res.duration, cost});
        res.validMoved += moved;
        res.blocksErased += 1;
        res.duration += cost;
    }
    // Erases of this invocation's victims proceed partially in
    // parallel (the flash interface layer can overlap a few planes'
    // erase commands).
    if (res.blocksErased > 0) {
        const uint64_t waves =
            (res.blocksErased + kEraseParallelism - 1) / kEraseParallelism;
        res.duration += static_cast<sim::SimDuration>(waves) *
                        nand_.timing().eraseLatency;
    }
    if (wearThreshold_ > 0)
        levelWear(res);
    if (readDisturbLimit_ > 0)
        refreshDisturbed(res);
    if (res.ran())
        ++invocations_;
    return res;
}

void
GarbageCollector::refreshDisturbed(GcResult &res)
{
    // Read-disturb refresh (paper §III-A reliability function): a
    // block read too many times since its last erase accumulates
    // disturb errors; relocate its valid data and erase it before
    // the ECC budget runs out. One block per invocation keeps the
    // added stall bounded.
    const uint32_t ppb = nand_.geometry().pagesPerBlock;
    for (uint64_t i = 0; i < nand_.totalBlocks(); ++i) {
        const nand::Pbn b{i};
        if (nand_.blockWritePointer(b) < ppb)
            continue; // open or free blocks are rewritten soon anyway
        if (nand_.blockReadCount(b) <= readDisturbLimit_)
            continue;
        const uint64_t moved = mapper_.collectBlock(b);
        res.refreshMoves += moved;
        res.blocksErased += 1;
        res.duration += nand_.batchReadTime(moved) +
                        nand_.batchProgramTime(moved) +
                        nand_.timing().eraseLatency;
        break;
    }
}

void
GarbageCollector::levelWear(GcResult &res)
{
    // Static wear-leveling (paper §III-A: "threshold-based
    // wear-leveling"): when the erase-count spread grows past the
    // threshold, relocate the coldest closed block so its low-wear
    // cells rejoin the hot allocation pool. Work per invocation is
    // bounded to keep the stall predictable.
    for (int moves = 0; moves < 2; ++moves) {
        const auto [lo, hi] = mapper_.eraseCountRange();
        if (hi - lo <= wearThreshold_)
            return;
        const nand::Pbn cold = mapper_.pickColdestClosedBlock();
        if (cold == PageMapper::kNoVictim)
            return;
        const uint64_t moved = mapper_.collectBlock(cold);
        res.wearMoves += moved;
        res.blocksErased += 1;
        res.duration += nand_.batchReadTime(moved) +
                        nand_.batchProgramTime(moved) +
                        nand_.timing().eraseLatency;
    }
}

void
GarbageCollector::saveState(recovery::StateWriter &w) const
{
    w.u64(invocations_);
}

bool
GarbageCollector::loadState(recovery::StateReader &r)
{
    invocations_ = r.u64();
    return r.ok();
}

} // namespace ssdcheck::ssd
