/**
 * @file
 * Configurable fault injection for the simulated SSD.
 *
 * Real black-box devices misbehave in ways the paper's runtime model
 * must survive: transient uncorrectable reads whose in-device retry
 * loops surface only as latency spikes, program/erase failures that
 * retire blocks into a grown-bad-block list (shrinking effective
 * overprovisioning, so GC pressure genuinely rises), commands that
 * stall long enough for the host to give up, and firmware updates or
 * adaptive controllers that change the flush algorithm mid-run,
 * invalidating diagnosed features.
 *
 * FaultProfile declares the rates and shapes of these events;
 * FaultInjector draws them from a dedicated random stream so enabling
 * faults does not perturb the device's other noise sources. All
 * decisions are deterministic per seed, which is what makes the fault
 * test-suite reproducible.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/sim_time.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::ssd {

/** What a firmware-drift event changes about the device. */
enum class DriftKind : uint8_t
{
    None,              ///< No drift.
    ShrinkBuffer,      ///< Write-buffer capacity drops (new firmware).
    GrowBuffer,        ///< Write-buffer capacity grows.
    ToggleReadTrigger, ///< Read-triggered flush turns on/off.
};

/** Human-readable name of a DriftKind. */
std::string toString(DriftKind k);

/**
 * Two-state Markov burst/calm regime. The i.i.d. rates in FaultProfile
 * cannot express correlated misbehavior — a controller that wedges for
 * a few hundred requests, recovers, then wedges again. The regime
 * multiplies the base UNC/stall rates while in the burst state; the
 * per-request transition draws make dwell times geometrically
 * distributed, the classic burst-error channel (Gilbert-Elliott).
 */
struct FaultRegime
{
    /** Per-request probability of entering a burst (0 = regime off). */
    double enterBurst = 0.0;
    /** Per-request probability of leaving a burst once inside. */
    double exitBurst = 0.0;
    /** Multiplier on readUncProbability while bursting. */
    double uncFactor = 1.0;
    /** Multiplier on stallProbability while bursting. */
    double stallFactor = 1.0;

    /** True when the regime participates in draws. */
    bool active() const { return enterBurst > 0.0; }
};

/**
 * Targeted-LBA UNC cluster: a contiguous page range whose reads fail
 * at their own (usually much higher) rate — a scratched region of
 * media. Expresses spatial correlation the global rate cannot.
 */
struct UncCluster
{
    uint64_t firstPage = 0;
    uint64_t pages = 0;
    /** UNC probability for reads inside the range (overrides the
     *  global rate when higher). */
    double probability = 0.0;
};

/**
 * Scheduled regime override active for a request-index window
 * [fromRequest, toRequest), 1-based over the device's served-request
 * counter. Lets a scenario compose phases: calm, storm, calm.
 */
struct FaultPhase
{
    uint64_t fromRequest = 0;
    uint64_t toRequest = 0;
    FaultRegime regime;
};

/** Fault rates and shapes of one misbehaving device. */
struct FaultProfile
{
    std::string name = "none";

    // -- (a) transient read UNC errors --------------------------------
    /** Probability a read request hits an uncorrectable page. */
    double readUncProbability = 0.0;
    /** In-device read-retry attempts before giving up. */
    uint32_t readRetryMax = 4;
    /** Latency added per in-device retry (the host's "spike"). */
    sim::SimDuration readRetryCost = sim::microseconds(350);
    /** Of the UNC hits, fraction that stay uncorrectable after all
     *  retries and complete as MediaError. */
    double readUncHardFraction = 0.0;

    // -- (b) program/erase failures -> grown bad blocks ---------------
    /** Probability a buffer flush suffers a program failure. */
    double programFailProbability = 0.0;
    /** Probability each GC block erase fails. */
    double eraseFailProbability = 0.0;
    /** Latency of the in-device recovery (re-program elsewhere). */
    sim::SimDuration programFailCost = sim::microseconds(900);

    // -- (c) command stalls / timeouts --------------------------------
    /** Probability a request stalls (firmware housekeeping wedge). */
    double stallProbability = 0.0;
    sim::SimDuration stallMin = sim::milliseconds(50);
    sim::SimDuration stallMax = sim::milliseconds(400);

    // -- (d) firmware drift -------------------------------------------
    /** Request count at which the drift event fires (0 = never). */
    uint64_t driftAfterRequests = 0;
    DriftKind driftKind = DriftKind::None;
    /** Buffer-capacity multiplier for Shrink/GrowBuffer drift. */
    double driftBufferFactor = 0.5;

    // -- (e) correlated faults ----------------------------------------
    /** Base Markov burst/calm regime (off by default). */
    FaultRegime regime;
    /** Scheduled regime overrides by request-index window; the first
     *  matching phase wins over the base regime. */
    std::vector<FaultPhase> phases;
    /** Page ranges with their own elevated UNC rate. */
    std::vector<UncCluster> uncClusters;

    /** True when every rate is zero and no drift is scheduled. */
    bool inert() const
    {
        return readUncProbability == 0.0 && programFailProbability == 0.0 &&
               eraseFailProbability == 0.0 && stallProbability == 0.0 &&
               driftAfterRequests == 0 && !regime.active() &&
               phases.empty() && uncClusters.empty();
    }

    /**
     * Empty string when the profile is well-formed, else a message
     * naming the offending field. A malformed profile (negative or
     * > 1 probability, inverted stall range, zero buffer-drift factor)
     * would silently skew every drawn rate, so FaultInjector refuses
     * to be built from one.
     */
    std::string validate() const;
};

/** Outcome of the read-fault draw for one read request. */
struct ReadFault
{
    uint32_t retries = 0; ///< In-device retry attempts taken.
    bool hard = false;    ///< Still uncorrectable after retries.
};

/** Cumulative injection counters (ground truth for tests/reports). */
struct FaultCounters
{
    uint64_t readUncTransient = 0; ///< Recovered by in-device retry.
    uint64_t readUncHard = 0;      ///< Completed as MediaError.
    uint64_t programFailures = 0;
    uint64_t eraseFailures = 0;
    uint64_t blocksRetired = 0; ///< Grown-bad-block list length.
    uint64_t stalls = 0;
    uint64_t driftEvents = 0;
    uint64_t burstEntries = 0;  ///< Calm-to-burst transitions.
    uint64_t burstRequests = 0; ///< Requests served while bursting.
    uint64_t clusterUncReads = 0; ///< UNC hits owed to a cluster rate.
};

/** Draws fault events for one device from a dedicated stream. */
class FaultInjector
{
  public:
    FaultInjector(FaultProfile profile, sim::Rng rng);

    /**
     * Advance the Markov regime for the request about to be served
     * (@p requestIndex is the device's 1-based served count). Draws
     * exactly one transition probe per request while a regime is
     * active and nothing otherwise, so profiles without regimes keep
     * their historical random-stream layout bit-for-bit.
     */
    void beginRequest(uint64_t requestIndex);

    /**
     * Draw the read-fault outcome for one read request starting at
     * @p firstPage (cluster targeting; regime factor applies).
     */
    ReadFault onRead(uint64_t firstPage = 0);

    /** True when this flush suffers a program failure. */
    bool programFails();

    /** True when this block erase fails. */
    bool eraseFails();

    /** Stall duration for this request (0 = no stall). */
    sim::SimDuration stallFor();

    /**
     * True exactly once, when the request count crosses the
     * configured drift point. The device applies profile().driftKind.
     */
    bool driftDue(uint64_t requestsServed);

    /** Record a block retirement (device applied a failure). */
    void noteBlockRetired() { ++counters_.blocksRetired; }

    const FaultProfile &profile() const { return profile_; }
    const FaultCounters &counters() const { return counters_; }

    /** Random stream position, for snapshot introspection/tests. */
    const sim::Rng &rng() const { return rng_; }

    /** True once the drift event fired. */
    bool driftFired() const { return driftFired_; }

    /** True while the Markov regime is in its burst state. */
    bool bursting() const { return burst_; }

    /**
     * Serialize the dynamic state (stream position, counters, drift
     * flag). The profile is configuration and is not serialized: a
     * restored injector must be constructed from the same profile,
     * which the snapshot's config hash enforces.
     */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    /** Regime governing the request being served (phase override or
     *  the profile's base regime; nullptr = regimes off). */
    const FaultRegime *regimeFor(uint64_t requestIndex) const;

    FaultProfile profile_; // snapshot:skip(construction-time fault profile; restore constructs an identical injector before loadState)
    sim::Rng rng_;
    FaultCounters counters_;
    bool driftFired_ = false;
    bool burst_ = false;
    /** Rate multipliers for the request being served (reset by
     *  beginRequest; 1.0 while calm or with regimes off). */
    double curUncFactor_ = 1.0; // snapshot:skip(recomputed by beginRequest at the start of every request)
    double curStallFactor_ = 1.0; // snapshot:skip(recomputed by beginRequest at the start of every request)
};

/** Named fault-profile presets for the CLI / benches. */
std::vector<FaultProfile> allFaultProfiles();

/**
 * Look up a preset by name ("none", "flaky-reads", "wearout",
 * "stalls", "drift", "storms", "hostile").
 * @return true and fill @p out when the name is known.
 */
bool faultProfileByName(const std::string &name, FaultProfile *out);

} // namespace ssdcheck::ssd

