/**
 * @file
 * Configurable fault injection for the simulated SSD.
 *
 * Real black-box devices misbehave in ways the paper's runtime model
 * must survive: transient uncorrectable reads whose in-device retry
 * loops surface only as latency spikes, program/erase failures that
 * retire blocks into a grown-bad-block list (shrinking effective
 * overprovisioning, so GC pressure genuinely rises), commands that
 * stall long enough for the host to give up, and firmware updates or
 * adaptive controllers that change the flush algorithm mid-run,
 * invalidating diagnosed features.
 *
 * FaultProfile declares the rates and shapes of these events;
 * FaultInjector draws them from a dedicated random stream so enabling
 * faults does not perturb the device's other noise sources. All
 * decisions are deterministic per seed, which is what makes the fault
 * test-suite reproducible.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/sim_time.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::ssd {

/** What a firmware-drift event changes about the device. */
enum class DriftKind : uint8_t
{
    None,              ///< No drift.
    ShrinkBuffer,      ///< Write-buffer capacity drops (new firmware).
    GrowBuffer,        ///< Write-buffer capacity grows.
    ToggleReadTrigger, ///< Read-triggered flush turns on/off.
};

/** Human-readable name of a DriftKind. */
std::string toString(DriftKind k);

/** Fault rates and shapes of one misbehaving device. */
struct FaultProfile
{
    std::string name = "none";

    // -- (a) transient read UNC errors --------------------------------
    /** Probability a read request hits an uncorrectable page. */
    double readUncProbability = 0.0;
    /** In-device read-retry attempts before giving up. */
    uint32_t readRetryMax = 4;
    /** Latency added per in-device retry (the host's "spike"). */
    sim::SimDuration readRetryCost = sim::microseconds(350);
    /** Of the UNC hits, fraction that stay uncorrectable after all
     *  retries and complete as MediaError. */
    double readUncHardFraction = 0.0;

    // -- (b) program/erase failures -> grown bad blocks ---------------
    /** Probability a buffer flush suffers a program failure. */
    double programFailProbability = 0.0;
    /** Probability each GC block erase fails. */
    double eraseFailProbability = 0.0;
    /** Latency of the in-device recovery (re-program elsewhere). */
    sim::SimDuration programFailCost = sim::microseconds(900);

    // -- (c) command stalls / timeouts --------------------------------
    /** Probability a request stalls (firmware housekeeping wedge). */
    double stallProbability = 0.0;
    sim::SimDuration stallMin = sim::milliseconds(50);
    sim::SimDuration stallMax = sim::milliseconds(400);

    // -- (d) firmware drift -------------------------------------------
    /** Request count at which the drift event fires (0 = never). */
    uint64_t driftAfterRequests = 0;
    DriftKind driftKind = DriftKind::None;
    /** Buffer-capacity multiplier for Shrink/GrowBuffer drift. */
    double driftBufferFactor = 0.5;

    /** True when every rate is zero and no drift is scheduled. */
    bool inert() const
    {
        return readUncProbability == 0.0 && programFailProbability == 0.0 &&
               eraseFailProbability == 0.0 && stallProbability == 0.0 &&
               driftAfterRequests == 0;
    }

    /**
     * Empty string when the profile is well-formed, else a message
     * naming the offending field. A malformed profile (negative or
     * > 1 probability, inverted stall range, zero buffer-drift factor)
     * would silently skew every drawn rate, so FaultInjector refuses
     * to be built from one.
     */
    std::string validate() const;
};

/** Outcome of the read-fault draw for one read request. */
struct ReadFault
{
    uint32_t retries = 0; ///< In-device retry attempts taken.
    bool hard = false;    ///< Still uncorrectable after retries.
};

/** Cumulative injection counters (ground truth for tests/reports). */
struct FaultCounters
{
    uint64_t readUncTransient = 0; ///< Recovered by in-device retry.
    uint64_t readUncHard = 0;      ///< Completed as MediaError.
    uint64_t programFailures = 0;
    uint64_t eraseFailures = 0;
    uint64_t blocksRetired = 0; ///< Grown-bad-block list length.
    uint64_t stalls = 0;
    uint64_t driftEvents = 0;
};

/** Draws fault events for one device from a dedicated stream. */
class FaultInjector
{
  public:
    FaultInjector(FaultProfile profile, sim::Rng rng);

    /** Draw the read-fault outcome for one read request. */
    ReadFault onRead();

    /** True when this flush suffers a program failure. */
    bool programFails();

    /** True when this block erase fails. */
    bool eraseFails();

    /** Stall duration for this request (0 = no stall). */
    sim::SimDuration stallFor();

    /**
     * True exactly once, when the request count crosses the
     * configured drift point. The device applies profile().driftKind.
     */
    bool driftDue(uint64_t requestsServed);

    /** Record a block retirement (device applied a failure). */
    void noteBlockRetired() { ++counters_.blocksRetired; }

    const FaultProfile &profile() const { return profile_; }
    const FaultCounters &counters() const { return counters_; }

    /** Random stream position, for snapshot introspection/tests. */
    const sim::Rng &rng() const { return rng_; }

    /** True once the drift event fired. */
    bool driftFired() const { return driftFired_; }

    /**
     * Serialize the dynamic state (stream position, counters, drift
     * flag). The profile is configuration and is not serialized: a
     * restored injector must be constructed from the same profile,
     * which the snapshot's config hash enforces.
     */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    FaultProfile profile_;
    sim::Rng rng_;
    FaultCounters counters_;
    bool driftFired_ = false;
};

/** Named fault-profile presets for the CLI / benches. */
std::vector<FaultProfile> allFaultProfiles();

/**
 * Look up a preset by name ("none", "flaky-reads", "wearout",
 * "stalls", "drift", "hostile").
 * @return true and fill @p out when the name is known.
 */
bool faultProfileByName(const std::string &name, FaultProfile *out);

} // namespace ssdcheck::ssd

