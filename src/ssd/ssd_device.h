/**
 * @file
 * The simulated black-box SSD.
 *
 * Routes requests to internal allocation volumes by the configured
 * LBA bit indices, serializes them over the host interface, and adds
 * device-level noise (latency jitter lives in the volumes; random
 * unmodeled hiccups are injected here). Implements BlockDevice, which
 * is the only surface src/core is allowed to touch.
 *
 * For experiments that need ground truth (Fig. 3 cause breakdown,
 * accuracy-vs-truth tests) submitDetailed() also returns IoDetail
 * annotations — the equivalent of the paper's FPGA prototype's
 * measurement units. Production-path callers use plain submit().
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "sim/rng.h"
#include "ssd/fault_injector.h"
#include "ssd/ssd_config.h"
#include "ssd/volume.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::ssd {

/** Simulated SSD exposing the black-box block interface. */
class SsdDevice final : public blockdev::BlockDevice
{
  public:
    /** @param cfg validated configuration (asserts on invalid). */
    explicit SsdDevice(SsdConfig cfg);

    // BlockDevice interface.
    blockdev::IoResult submit(const blockdev::IoRequest &req,
                              sim::SimTime now) override;
    uint64_t capacitySectors() const override;
    void purge(sim::SimTime now) override;
    std::string name() const override { return cfg_.name; }

    /**
     * submit() plus introspection and data-path stamps.
     * @param detail ground-truth annotations (optional).
     * @param writePayload stamp stored to each written page, offset by
     *        page position within the request (optional).
     * @param readPayload receives the stamp of the first page read
     *        (optional).
     */
    blockdev::IoResult submitDetailed(const blockdev::IoRequest &req,
                                      sim::SimTime now, IoDetail *detail,
                                      const uint64_t *writePayload = nullptr,
                                      uint64_t *readPayload = nullptr);

    /**
     * SNIA-style preconditioning: instantly write every logical page
     * once (no virtual time passes). Call after purge, before
     * steady-state measurements.
     */
    void precondition();

    /** Latest value of a 4KB page (buffer-aware), for integrity tests. */
    bool peekPage(uint64_t pageIndex, uint64_t *payload) const;

    const SsdConfig &config() const { return cfg_; }

    /** Per-volume counters (introspection). */
    const VolumeCounters &volumeCounters(uint32_t volume) const;

    /** Counters summed over all volumes. */
    VolumeCounters totalCounters() const;

    /** Direct FTL access for consistency checks in tests. */
    const Volume &volume(uint32_t i) const { return *volumes_[i]; }

    /** Injection ground truth (tests, fault reports). */
    const FaultCounters &faultCounters() const
    {
        return faults_.counters();
    }

    /** Requests served so far (drift clock, introspection). */
    uint64_t requestsServed() const { return requestsServed_; }

    /**
     * Attach observability targets (cold path, before the run): the
     * device emits dispatch/hiccup/stall/drift events on the interface
     * track, exports fault counters onto the registry under a
     * {device=<name>} label, and cascades to every volume.
     */
    void attachObservability(const obs::Sink &sink);

    /**
     * Serialize the complete dynamic device state: the drift-mutable
     * config fields (buffer capacity, read-trigger flag), device and
     * fault random streams, every volume, the interface gates, the
     * request counter and the optimal-mode functional store.
     */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState() (same configuration). */
    bool loadState(recovery::StateReader &r);

  private:
    /** Apply the configured firmware-drift event to the live device. */
    void applyDrift();

    SsdConfig cfg_;
    LbaRouter router_; ///< Precomputed LBA routing (hot path). // snapshot:skip(derived from cfg_ in the constructor; pure function of the volume layout)
    sim::Rng rng_;
    FaultInjector faults_;
    std::vector<std::unique_ptr<Volume>> volumes_;
    sim::SimTime busGate_;
    sim::SimTime lastSubmit_;
    uint64_t requestsServed_ = 0;
    /** Functional store used only in optimalMode. */
    std::unordered_map<uint64_t, uint64_t> optimalStore_;

    // Observability (null until attachObservability()).
    obs::TraceRecorder *trace_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
    static constexpr obs::TraceTrack kBusTrack{obs::kDevicePid,
                                               obs::kDeviceInterfaceTid};
};

} // namespace ssdcheck::ssd

