#include "ssd/presets.h"

#include <cassert>

namespace ssdcheck::ssd {

std::vector<SsdModel>
allModels()
{
    return {SsdModel::A, SsdModel::B, SsdModel::C, SsdModel::D,
            SsdModel::E, SsdModel::F, SsdModel::G};
}

std::string
toString(SsdModel m)
{
    switch (m) {
      case SsdModel::A: return "A";
      case SsdModel::B: return "B";
      case SsdModel::C: return "C";
      case SsdModel::D: return "D";
      case SsdModel::E: return "E";
      case SsdModel::F: return "F";
      case SsdModel::G: return "G";
    }
    return "?";
}

SsdConfig
makePreset(SsdModel m, uint64_t seedSalt)
{
    SsdConfig c;
    c.userCapacityPages = 128 * 1024; // 512 MB (scaled; see DESIGN.md)
    c.seed = 0xabcd0000ULL + static_cast<uint64_t>(m) * 977 + seedSalt;

    switch (m) {
      case SsdModel::A:
        c.name = "SSD A";
        c.bufferBytes = 248 * 1024;
        c.planesPerVolume = 32;
        c.opRatio = 0.28;
        c.jitterSigma = 0.06;
        c.hiccupProbability = 0.0015;
        break;
      case SsdModel::B:
        c.name = "SSD B";
        c.bufferBytes = 248 * 1024;
        c.planesPerVolume = 32;
        c.opRatio = 0.26;
        c.gcHighBlocks = 11;
        c.writeCpuTime = sim::microseconds(20);
        c.writeAckTime = sim::microseconds(34);
        c.readOverheadTime = sim::microseconds(28);
        c.jitterSigma = 0.07;
        c.hiccupProbability = 0.0015;
        break;
      case SsdModel::C:
        c.name = "SSD C";
        c.bufferBytes = 256 * 1024;
        c.planesPerVolume = 16;
        c.opRatio = 0.16;
        c.writeCpuTime = sim::microseconds(22);
        c.writeAckTime = sim::microseconds(40);
        c.readOverheadTime = sim::microseconds(35);
        c.gcLowBlocks = 5;
        c.gcHighBlocks = 9;
        c.jitterSigma = 0.09;
        c.hiccupProbability = 0.002;
        break;
      case SsdModel::D:
        c.name = "SSD D";
        c.volumeBits = {17};
        c.bufferBytes = 128 * 1024;
        c.planesPerVolume = 16;
        c.opRatio = 0.30;
        c.jitterSigma = 0.06;
        // The SLC cache's hidden state surfaces as frequent stalls the
        // buffer/GC models cannot see (paper SVI: secondary features).
        c.hiccupProbability = 0.006;
        c.slcCache = true;
        c.slcCapacityPages = 1024;
        c.slcCapacityVariation = 0.4;
        break;
      case SsdModel::E:
        c.name = "SSD E";
        c.volumeBits = {17, 18};
        c.bufferBytes = 128 * 1024;
        c.planesPerVolume = 16;
        c.opRatio = 0.30;
        c.jitterSigma = 0.06;
        // Four volumes plus an aggressively managed SLC cache: the
        // noisiest device of the fleet (paper Fig. 11: lowest HL acc).
        c.hiccupProbability = 0.008;
        c.slcCache = true;
        c.slcCapacityPages = 448;
        c.slcCapacityVariation = 0.55;
        break;
      case SsdModel::F:
        c.name = "SSD F";
        c.bufferBytes = 128 * 1024;
        c.bufferType = BufferType::Fore;
        c.readTriggerFlush = true;
        c.planesPerVolume = 16;
        c.opRatio = 0.24;
        c.jitterSigma = 0.07;
        c.hiccupProbability = 0.0025;
        break;
      case SsdModel::G:
        c.name = "SSD G";
        c.bufferBytes = 128 * 1024;
        c.bufferType = BufferType::Fore;
        c.readTriggerFlush = true;
        c.planesPerVolume = 16;
        c.opRatio = 0.22;
        c.writeCpuTime = sim::microseconds(20);
        c.writeAckTime = sim::microseconds(36);
        c.flushOverheadTime = sim::microseconds(200);
        c.jitterSigma = 0.08;
        c.hiccupProbability = 0.0025;
        break;
    }
    assert(c.validate().empty());
    return c;
}

std::vector<PrototypeVariant>
allPrototypeVariants()
{
    return {PrototypeVariant::Optimal, PrototypeVariant::Others,
            PrototypeVariant::WbOthers, PrototypeVariant::GcOthers,
            PrototypeVariant::All};
}

std::string
toString(PrototypeVariant v)
{
    switch (v) {
      case PrototypeVariant::Optimal: return "SSD_Optimal";
      case PrototypeVariant::Others: return "SSD_Others";
      case PrototypeVariant::WbOthers: return "SSD_WB+Others";
      case PrototypeVariant::GcOthers: return "SSD_GC+Others";
      case PrototypeVariant::All: return "SSD_All";
    }
    return "?";
}

SsdConfig
makePrototype(PrototypeVariant v, uint64_t seedSalt)
{
    // The paper's Zynq prototype: 4 channels x 4 chips x 2 planes,
    // page-level mapping, greedy GC. Its simple FTL blocks the host
    // while the buffer drains (fore), which is what makes the WB cost
    // visible on a write-only workload (Fig. 3b's additive slowdown).
    // Clean device: no hiccup noise, minimal jitter, so Fig. 3
    // isolates WB/GC exactly. 64KB buffer -> one flush per 16 writes,
    // matching the paper's 6.39% WB operation share.
    SsdConfig c;
    c.name = toString(v);
    c.userCapacityPages = 64 * 1024; // 256 MB
    c.bufferBytes = 64 * 1024;
    c.bufferType = BufferType::Fore;
    c.planesPerVolume = 32;
    c.opRatio = 0.22;
    c.gcLowBlocks = 6;
    c.gcHighBlocks = 10;
    c.jitterSigma = 0.03;
    c.hiccupProbability = 0.0;
    c.seed = 0x9127e700ULL + static_cast<uint64_t>(v) * 131 + seedSalt;

    switch (v) {
      case PrototypeVariant::Optimal:
        c.optimalMode = true;
        break;
      case PrototypeVariant::Others:
        c.wbFlushCostEnabled = false;
        c.gcCostEnabled = false;
        break;
      case PrototypeVariant::WbOthers:
        c.gcCostEnabled = false;
        break;
      case PrototypeVariant::GcOthers:
        c.wbFlushCostEnabled = false;
        break;
      case PrototypeVariant::All:
        break;
    }
    assert(c.validate().empty());
    return c;
}

SsdConfig
makeNvmBackedSsd(uint64_t seedSalt)
{
    SsdConfig c;
    c.name = "NVM-SSD";
    c.userCapacityPages = 128 * 1024;
    c.bufferBytes = 64 * 1024;
    c.planesPerVolume = 8;
    c.pagesPerBlock = 64;
    c.opRatio = 0.20;
    // PRAM-class medium: order-of-magnitude faster than NAND, but
    // the same buffered-write + GC structure (paper SVI).
    c.nandTiming.readLatency = sim::microseconds(5);
    c.nandTiming.programLatency = sim::microseconds(120);
    c.nandTiming.eraseLatency = sim::microseconds(400);
    c.nandTiming.slcProgramLatency = sim::microseconds(60);
    c.busTime = sim::microseconds(2);
    c.writeCpuTime = sim::microseconds(6);
    c.writeAckTime = sim::microseconds(12);
    c.readOverheadTime = sim::microseconds(8);
    c.bufferReadTime = sim::microseconds(6);
    c.flushOverheadTime = sim::microseconds(40);
    c.jitterSigma = 0.05;
    c.hiccupProbability = 0.001;
    c.hiccupMin = sim::microseconds(120);
    c.hiccupMax = sim::microseconds(700);
    c.seed = 0x3dc90b17ULL + seedSalt;
    assert(c.validate().empty());
    return c;
}

} // namespace ssdcheck::ssd
