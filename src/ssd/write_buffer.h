/**
 * @file
 * Per-volume write buffer (paper §II-A, §III-B3).
 *
 * Incoming writes land in the buffer and are acknowledged quickly;
 * when the buffer fills (or a read arrives, for read-trigger devices)
 * its contents are flushed to NAND. The buffer holds (lpn, payload)
 * entries so reads can be served from it and so the flush carries the
 * real data into the FTL — the property tests verify integrity across
 * this path.
 *
 * Each write occupies one slot even when it overwrites an LBA already
 * buffered (no coalescing): the paper measures buffer size by counting
 * writes between flushes, which requires slot-per-write semantics.
 *
 * The newest-entry index is an open-addressing flat table (linear
 * probing, power-of-two size, generation-tagged slots) instead of a
 * std::unordered_map: one cache line per probe, no per-node
 * allocation, and a flush clears it by bumping the generation — the
 * whole add/lookup/drain cycle is allocation-free at steady state.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/typed_ids.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::ssd {

/** FIFO of buffered page writes with last-writer-wins lookup. */
class WriteBuffer
{
  public:
    /** One buffered page write. */
    struct Entry
    {
        core::Lpn lpn;
        uint64_t payload;
    };

    /** @param capacityPages number of page slots before a flush. */
    explicit WriteBuffer(uint32_t capacityPages);

    /** Append a page write. @return true when the buffer is now full. */
    bool add(core::Lpn lpn, uint64_t payload);

    /** Pages currently buffered. */
    uint32_t fill() const { return static_cast<uint32_t>(entries_.size()); }

    /** True when no pages are buffered. */
    bool empty() const { return entries_.empty(); }

    /** True when fill() reached capacity. */
    bool full() const { return fill() >= capacity_; }

    /** Capacity in pages. */
    uint32_t capacity() const { return capacity_; }

    /**
     * Change the capacity mid-run (firmware drift). Never drops below
     * one page; an already-overfull buffer simply flushes on the next
     * write (full() reports true immediately).
     */
    void setCapacity(uint32_t capacityPages);

    /**
     * Latest buffered payload for @p lpn.
     * @return true and set @p payload when present.
     */
    bool lookup(core::Lpn lpn, uint64_t *payload) const
    {
        for (size_t i = lpn.hash() & mask_;; i = (i + 1) & mask_) {
            const Slot &s = slots_[i];
            if (s.gen != gen_)
                return false;
            if (s.lpn == lpn) {
                if (payload != nullptr)
                    *payload = entries_[s.idx].payload;
                return true;
            }
        }
    }

    /**
     * Remove all entries (a flush) and return them in arrival order
     * via a reused member scratch buffer: the reference stays valid
     * until the next drain()/add() cycle touches the buffer again, so
     * callers iterate it in place — no per-flush allocation.
     */
    const std::vector<Entry> &drain();

    /** Discard all contents (purge). */
    void clear();

    /** Serialize capacity (drift-mutable) and buffered entries. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(); rebuilds the lookup index. */
    bool loadState(recovery::StateReader &r);

  private:
    /** One open-addressing slot; live iff gen == gen_. */
    struct Slot
    {
        core::Lpn lpn;
        uint32_t idx = 0; ///< Newest entries_ index for this lpn.
        uint32_t gen = 0;
    };

    /** Point the newest-index of @p lpn at entries_[idx]. */
    void indexNewest(core::Lpn lpn, uint32_t idx);

    /** Rebuild the slot table at @p minSlots (rounded up to 2^k). */
    void rehash(size_t minSlots);

    /** Invalidate every slot (generation bump; wrap-safe). */
    void resetTable();

    uint32_t capacity_;
    std::vector<Entry> entries_;
    std::vector<Entry> scratch_; ///< drain() return storage, reused. // snapshot:skip(transient scratch, cleared before each use)
    std::vector<Slot> slots_; // snapshot:skip(hash table rebuilt by loadState via resetTable/rehash/indexNewest)
    size_t mask_ = 0; // snapshot:skip(hash table rebuilt by loadState via resetTable/rehash/indexNewest)
    uint32_t gen_ = 1; // snapshot:skip(hash table rebuilt by loadState via resetTable/rehash/indexNewest)
};

} // namespace ssdcheck::ssd
