/**
 * @file
 * Per-volume write buffer (paper §II-A, §III-B3).
 *
 * Incoming writes land in the buffer and are acknowledged quickly;
 * when the buffer fills (or a read arrives, for read-trigger devices)
 * its contents are flushed to NAND. The buffer holds (lpn, payload)
 * entries so reads can be served from it and so the flush carries the
 * real data into the FTL — the property tests verify integrity across
 * this path.
 *
 * Each write occupies one slot even when it overwrites an LBA already
 * buffered (no coalescing): the paper measures buffer size by counting
 * writes between flushes, which requires slot-per-write semantics.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::ssd {

/** FIFO of buffered page writes with last-writer-wins lookup. */
class WriteBuffer
{
  public:
    /** One buffered page write. */
    struct Entry
    {
        uint64_t lpn;
        uint64_t payload;
    };

    /** @param capacityPages number of page slots before a flush. */
    explicit WriteBuffer(uint32_t capacityPages);

    /** Append a page write. @return true when the buffer is now full. */
    bool add(uint64_t lpn, uint64_t payload);

    /** Pages currently buffered. */
    uint32_t fill() const { return static_cast<uint32_t>(entries_.size()); }

    /** True when no pages are buffered. */
    bool empty() const { return entries_.empty(); }

    /** True when fill() reached capacity. */
    bool full() const { return fill() >= capacity_; }

    /** Capacity in pages. */
    uint32_t capacity() const { return capacity_; }

    /**
     * Change the capacity mid-run (firmware drift). Never drops below
     * one page; an already-overfull buffer simply flushes on the next
     * write (full() reports true immediately).
     */
    void setCapacity(uint32_t capacityPages);

    /**
     * Latest buffered payload for @p lpn.
     * @return true and set @p payload when present.
     */
    bool lookup(uint64_t lpn, uint64_t *payload) const;

    /**
     * Remove and return all entries in arrival order (a flush).
     * The buffer is empty afterwards.
     */
    std::vector<Entry> drain();

    /** Discard all contents (purge). */
    void clear();

    /** Serialize capacity (drift-mutable) and buffered entries. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(); rebuilds the lookup index. */
    bool loadState(recovery::StateReader &r);

  private:
    uint32_t capacity_;
    std::vector<Entry> entries_;
    /** lpn -> index of the newest entry for that lpn. */
    std::unordered_map<uint64_t, size_t> newest_;
};

} // namespace ssdcheck::ssd

