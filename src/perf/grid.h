/**
 * @file
 * Parallel experiment grid: presets × workloads × seeds sharded over a
 * thread pool (the ssdIQ-style batch driver).
 *
 * A shard is one (device preset, seed) pair. Each shard task builds
 * its own SsdDevice (seeded from the grid coordinates via seedSalt),
 * diagnoses it, then replays every workload of the spec through one
 * SSDcheck instance — exactly the Fig. 11 protocol, so the serial
 * benches and the parallel grid produce bit-identical numbers. Shards
 * share no mutable state; results are merged in deterministic
 * (model, seed, workload) order regardless of job count or completion
 * order.
 *
 * Every run also carries wall-clock accounting (per shard and
 * aggregate) so the perf trajectory of the repo is measured, not
 * guessed: writeBenchGridJson() emits the BENCH_grid.json consumed by
 * the CI perf-smoke gate.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/accuracy.h"
#include "sim/sim_time.h"
#include "ssd/presets.h"
#include "workload/snia_synth.h"

namespace ssdcheck::obs {
class TelemetryHub;
} // namespace ssdcheck::obs

namespace ssdcheck::perf {

/** What to run: the cross product of models × seeds × workloads. */
struct GridSpec
{
    std::vector<ssd::SsdModel> models;
    std::vector<workload::SniaWorkload> workloads;
    std::vector<uint64_t> seeds{0}; ///< seedSalt per device replica.
    double scale = 0.03;            ///< Trace scale (Fig. 11 uses 3%).
    uint64_t traceSeedBase = 1000;  ///< Trace RNG seed = base + workload.
    /** Virtual-time gap between workloads on one device (Fig. 11). */
    sim::SimDuration interWorkloadGap = sim::milliseconds(100);

    /**
     * Optional live-telemetry hub (not owned): each completing shard
     * publishes a grid-progress snapshot, and the merge step publishes
     * a deterministic final one. Attaching a hub never changes cell
     * results — publishes only copy already-computed counters.
     */
    obs::TelemetryHub *telemetry = nullptr;

    /** Convenience: the full Fig. 11 grid (all models × workloads). */
    static GridSpec fig11(double scale = 0.03);
};

/** Result of one grid cell (one workload on one device replica). */
struct GridCell
{
    ssd::SsdModel model{};
    workload::SniaWorkload workload{};
    uint64_t seed = 0;
    core::AccuracyResult accuracy;
    uint64_t requests = 0;
    sim::SimTime simEnd; ///< Virtual time when the replay finished.
};

/** Wall-clock accounting for one independently-timed unit of work. */
struct TaskTiming
{
    std::string label;
    double wallSeconds = 0;
    uint64_t simulatedIos = 0;

    double iosPerSec() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(simulatedIos) / wallSeconds
                   : 0.0;
    }
};

/** Timing summary of a batch of parallel tasks. */
struct BatchTiming
{
    std::vector<TaskTiming> tasks; ///< In submission (grid) order.
    double wallSeconds = 0;        ///< Whole-batch wall clock.
    unsigned jobs = 1;             ///< Requested job count.
    /** Workers the pool actually ran (defaultJobs() can differ from
     *  the request when hardware_concurrency() is unknown); reported
     *  in BENCH_grid.json so speedups are reproducible. */
    unsigned workerThreads = 1;

    uint64_t simulatedIos() const;
    double iosPerSec() const;
    /** Sum of per-task wall clocks: the serial-run estimate. */
    double taskWallSum() const;
    /** taskWallSum / wallSeconds: parallel efficiency actually won. */
    double aggregateSpeedup() const;
};

/** Full grid output: cells in deterministic order plus timings. */
struct GridResult
{
    std::vector<GridCell> cells; ///< (model, seed, workload) order.
    BatchTiming timing;          ///< One task per (model, seed) shard.
};

/**
 * Run the grid with @p jobs worker threads. Cell results are
 * bit-identical for every jobs value (shards are fully independent
 * and merged in grid order).
 */
GridResult runGrid(const GridSpec &spec, unsigned jobs);

/**
 * Run @p tasks (label + body returning its simulated-IO count) on a
 * fresh pool of @p jobs threads, timing each task and the batch.
 * The generic engine under runGrid, also used directly by benches
 * whose unit of work is not a preset shard.
 */
BatchTiming runTimedBatch(
    const std::vector<std::pair<std::string, std::function<uint64_t()>>>
        &tasks,
    unsigned jobs);

/**
 * Write the machine-readable benchmark report (BENCH_grid.json).
 * @param extraJson optional extra top-level member(s), a complete
 *        `"key": value` fragment without the trailing comma (the
 *        bench CLI passes its `"stage_ns": {...}` block here).
 * @return false when the file could not be opened.
 */
bool writeBenchGridJson(const std::string &path, const std::string &name,
                        const BatchTiming &timing,
                        const std::string &extraJson = "");

/**
 * Extract "ios_per_sec" from a previously written BENCH_grid.json
 * (top-level aggregate value). Tolerant single-key parser — no JSON
 * dependency in the tree.
 */
std::optional<double> readBaselineIosPerSec(const std::string &path);

/**
 * Extract one stage's "ns_per_request" from the "stage_ns" block of a
 * BENCH_grid.json (same tolerant scanning as readBaselineIosPerSec).
 * @return nullopt when the file, the block or the stage is absent —
 *         callers skip the per-stage gate for missing entries, so old
 *         baselines without a stage_ns block keep working.
 */
std::optional<int64_t> readBaselineStageNs(const std::string &path,
                                           const std::string &stage);

} // namespace ssdcheck::perf

