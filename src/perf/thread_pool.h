/**
 * @file
 * A fixed-size thread pool for sharding independent simulations.
 *
 * Deliberately work-stealing-free: one shared FIFO queue behind one
 * mutex. Grid shards are coarse (an entire device diagnosis plus
 * workload replay each, hundreds of milliseconds to minutes), so queue
 * contention is irrelevant and the simple design keeps scheduling
 * deterministic in everything except completion order — which the
 * grid layer never depends on, because each task writes only to its
 * own result slot.
 *
 * Determinism contract: tasks must not share mutable state. Every
 * simulation shard owns its device and RNG (seeded from the grid
 * coordinates), so results are identical at any job count.
 *
 * All cross-thread state is annotated with the Clang thread-safety
 * capabilities from core/annotations.h and checked by
 * -Werror=thread-safety on Clang builds.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/annotations.h"

namespace ssdcheck::perf {

/** Fixed pool of worker threads draining one shared task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 is clamped to 1. Pass
     *        defaultJobs() to match the machine.
     */
    explicit ThreadPool(unsigned threads);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Thread-safe. */
    void submit(std::function<void()> task) SSDCHECK_EXCLUDES(mu_);

    /**
     * Block until every submitted task has finished. Rethrows the
     * first exception any task threw (subsequent ones are dropped).
     */
    void wait() SSDCHECK_EXCLUDES(mu_);

    /** Worker count. */
    unsigned threads() const { return static_cast<unsigned>(workers_.size()); }

    /** Hardware concurrency, clamped to at least 1. */
    static unsigned defaultJobs();

  private:
    void workerLoop() SSDCHECK_EXCLUDES(mu_);

    core::Mutex mu_;
    /** Paired with mu_ (condition_variable_any over the annotated
     *  Mutex; waits are explicit while-loops inside the capability). */
    std::condition_variable_any taskReady_;
    std::condition_variable_any allDone_;
    std::deque<std::function<void()>> queue_ SSDCHECK_GUARDED_BY(mu_);
    std::exception_ptr firstError_ SSDCHECK_GUARDED_BY(mu_);
    /** Queued + currently running tasks. */
    size_t unfinished_ SSDCHECK_GUARDED_BY(mu_) = 0;
    bool stop_ SSDCHECK_GUARDED_BY(mu_) = false;
    std::vector<std::thread> workers_; ///< Written only in ctor/dtor.
};

/**
 * Run @p fn(0 .. n-1) across the pool and wait for completion.
 * Indices are claimed in order; results must go to per-index storage.
 */
void parallelFor(ThreadPool &pool, size_t n,
                 const std::function<void(size_t)> &fn);

} // namespace ssdcheck::perf
