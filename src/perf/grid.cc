#include "perf/grid.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "core/diagnosis.h"
#include "core/ssdcheck.h"
#include "obs/exporter/telemetry.h"
#include "perf/thread_pool.h"
#include "ssd/ssd_device.h"

namespace ssdcheck::perf {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

GridSpec
GridSpec::fig11(double scale)
{
    GridSpec s;
    s.models = ssd::allModels();
    s.workloads = workload::allSniaWorkloads();
    s.scale = scale;
    return s;
}

uint64_t
BatchTiming::simulatedIos() const
{
    uint64_t total = 0;
    for (const auto &t : tasks)
        total += t.simulatedIos;
    return total;
}

double
BatchTiming::iosPerSec() const
{
    return wallSeconds > 0
               ? static_cast<double>(simulatedIos()) / wallSeconds
               : 0.0;
}

double
BatchTiming::taskWallSum() const
{
    double sum = 0;
    for (const auto &t : tasks)
        sum += t.wallSeconds;
    return sum;
}

double
BatchTiming::aggregateSpeedup() const
{
    return wallSeconds > 0 ? taskWallSum() / wallSeconds : 1.0;
}

BatchTiming
runTimedBatch(
    const std::vector<std::pair<std::string, std::function<uint64_t()>>>
        &tasks,
    unsigned jobs)
{
    BatchTiming out;
    out.jobs = jobs == 0 ? 1 : jobs;
    out.tasks.resize(tasks.size());
    const auto batchStart = std::chrono::steady_clock::now();
    {
        ThreadPool pool(out.jobs);
        out.workerThreads = pool.threads();
        parallelFor(pool, tasks.size(), [&](size_t i) {
            const auto t0 = std::chrono::steady_clock::now();
            const uint64_t ios = tasks[i].second();
            out.tasks[i] =
                TaskTiming{tasks[i].first, secondsSince(t0), ios};
        });
    }
    out.wallSeconds = secondsSince(batchStart);
    return out;
}

GridResult
runGrid(const GridSpec &spec, unsigned jobs)
{
    GridResult out;
    // One shard per (model, seed): the device plus its diagnosis are
    // the expensive shared setup, and carrying one SSDcheck instance
    // across the workloads is the Fig. 11 protocol.
    struct Shard
    {
        ssd::SsdModel model;
        uint64_t seed;
    };
    std::vector<Shard> shards;
    for (const auto m : spec.models)
        for (const auto s : spec.seeds)
            shards.push_back(Shard{m, s});

    // Pre-sized so shard tasks write disjoint slots without locking.
    std::vector<std::vector<GridCell>> cellsByShard(shards.size());

    // Live-progress state shared by shard tasks when a telemetry hub
    // is attached. One mutex guards both the counters and the publish,
    // so concurrent shard completions publish consistent snapshots.
    struct GridProgress
    {
        std::mutex mu;
        obs::Registry reg;
        uint64_t shardsDone = 0;
        uint64_t requestsDone = 0;
    };
    std::unique_ptr<GridProgress> progress;
    if (spec.telemetry != nullptr) {
        progress = std::make_unique<GridProgress>();
        progress->reg.exportCounter("grid_shards_done", {},
                                    &progress->shardsDone);
        progress->reg.exportCounter("grid_requests_done", {},
                                    &progress->requestsDone);
    }
    GridProgress *prog = progress.get();
    const uint64_t shardCount = shards.size();

    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    tasks.reserve(shards.size());
    for (size_t i = 0; i < shards.size(); ++i) {
        const Shard sh = shards[i];
        std::string label = ssd::toString(sh.model);
        if (spec.seeds.size() > 1 || sh.seed != 0)
            label += "/seed" + std::to_string(sh.seed);
        tasks.emplace_back(label, [&spec, sh, i, &cellsByShard, prog,
                                   shardCount]() {
            auto dev = std::make_unique<ssd::SsdDevice>(
                ssd::makePreset(sh.model, sh.seed));
            core::DiagnosisRunner runner(*dev, core::DiagnosisConfig{});
            const core::FeatureSet features = runner.extractFeatures();
            core::SsdCheck check(features);
            sim::SimTime now = runner.now();
            uint64_t ios = 0;
            auto &cells = cellsByShard[i];
            cells.reserve(spec.workloads.size());
            for (const auto w : spec.workloads) {
                const auto trace = workload::buildSniaTrace(
                    w, dev->capacityPages(), spec.scale,
                    spec.traceSeedBase + static_cast<uint64_t>(w));
                sim::SimTime end = now;
                GridCell cell;
                cell.model = sh.model;
                cell.workload = w;
                cell.seed = sh.seed;
                cell.accuracy = core::evaluatePredictionAccuracy(
                    *dev, check, trace, now, &end);
                cell.requests = trace.size();
                cell.simEnd = end;
                now = end + spec.interWorkloadGap;
                ios += trace.size();
                cells.push_back(cell);
            }
            if (prog != nullptr) {
                const std::lock_guard<std::mutex> lk(prog->mu);
                prog->shardsDone += 1;
                prog->requestsDone += ios;
                obs::RunStatus st;
                st.phase = "grid";
                st.cursor = prog->shardsDone;
                st.totalRequests = shardCount;
                spec.telemetry->publish(prog->reg, st);
            }
            return ios;
        });
    }

    out.timing = runTimedBatch(tasks, jobs);

    // Merge in grid order — independent of scheduling.
    for (auto &shardCells : cellsByShard)
        for (auto &c : shardCells)
            out.cells.push_back(c);

    // Deterministic final publish: all shards merged, cursor = total.
    if (prog != nullptr) {
        const std::lock_guard<std::mutex> lk(prog->mu);
        obs::RunStatus st;
        st.phase = "done";
        st.cursor = prog->shardsDone;
        st.totalRequests = shardCount;
        st.simTimeNs =
            out.cells.empty() ? 0 : out.cells.back().simEnd.ns();
        spec.telemetry->publish(prog->reg, st);
    }
    return out;
}

bool
writeBenchGridJson(const std::string &path, const std::string &name,
                   const BatchTiming &timing,
                   const std::string &extraJson)
{
    std::ofstream os(path);
    if (!os)
        return false;
    std::ostringstream body;
    body.precision(6);
    body << std::fixed;
    body << "{\n";
    body << "  \"name\": \"" << name << "\",\n";
    body << "  \"jobs\": " << timing.jobs << ",\n";
    body << "  \"worker_threads\": " << timing.workerThreads << ",\n";
    body << "  \"wall_seconds\": " << timing.wallSeconds << ",\n";
    body << "  \"task_wall_sum_seconds\": " << timing.taskWallSum()
         << ",\n";
    body << "  \"aggregate_speedup\": " << timing.aggregateSpeedup()
         << ",\n";
    body << "  \"simulated_ios\": " << timing.simulatedIos() << ",\n";
    body << "  \"ios_per_sec\": " << timing.iosPerSec() << ",\n";
    if (!extraJson.empty())
        body << "  " << extraJson << ",\n";
    body << "  \"tasks\": [\n";
    for (size_t i = 0; i < timing.tasks.size(); ++i) {
        const TaskTiming &t = timing.tasks[i];
        body << "    {\"label\": \"" << t.label
             << "\", \"wall_seconds\": " << t.wallSeconds
             << ", \"simulated_ios\": " << t.simulatedIos
             << ", \"ios_per_sec\": " << t.iosPerSec() << "}"
             << (i + 1 < timing.tasks.size() ? "," : "") << "\n";
    }
    body << "  ]\n}\n";
    os << body.str();
    return static_cast<bool>(os);
}

std::optional<double>
readBaselineIosPerSec(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return std::nullopt;
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();
    // The writer emits the aggregate "ios_per_sec" before the
    // per-task entries, so the first occurrence is the right one.
    const size_t key = text.find("\"ios_per_sec\"");
    if (key == std::string::npos)
        return std::nullopt;
    const size_t colon = text.find(':', key);
    if (colon == std::string::npos)
        return std::nullopt;
    try {
        return std::stod(text.substr(colon + 1));
    } catch (...) {
        return std::nullopt;
    }
}

std::optional<int64_t>
readBaselineStageNs(const std::string &path, const std::string &stage)
{
    std::ifstream is(path);
    if (!is)
        return std::nullopt;
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();
    const size_t block = text.find("\"stage_ns\"");
    if (block == std::string::npos)
        return std::nullopt;
    const size_t entry = text.find("\"" + stage + "\"", block);
    if (entry == std::string::npos)
        return std::nullopt;
    const size_t key = text.find("\"ns_per_request\"", entry);
    if (key == std::string::npos)
        return std::nullopt;
    const size_t colon = text.find(':', key);
    if (colon == std::string::npos)
        return std::nullopt;
    try {
        return static_cast<int64_t>(std::stoll(text.substr(colon + 1)));
    } catch (...) {
        return std::nullopt;
    }
}

} // namespace ssdcheck::perf
