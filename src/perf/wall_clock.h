/**
 * @file
 * The one wall-clock read shared by the timing layers.
 *
 * src/perf is the allowlisted wall-clock layer (lint R1): the grid
 * timer reads it for throughput reports and the stage profiler takes
 * it as an injected obs::StageNowFn so src/obs never names a clock.
 * Everything under the determinism contract keeps using sim::SimTime.
 */
#pragma once

#include <chrono>
#include <cstdint>

namespace ssdcheck::perf {

/** Monotonic wall-clock nanoseconds (epoch unspecified). */
inline uint64_t
wallNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace ssdcheck::perf
