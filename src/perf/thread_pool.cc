#include "perf/thread_pool.h"

#include <utility>

namespace ssdcheck::perf {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    taskReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
        ++unfinished_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return unfinished_ == 0; });
    if (firstError_ != nullptr) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            taskReady_.wait(lock,
                            [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (firstError_ == nullptr)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--unfinished_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, size_t n,
            const std::function<void(size_t)> &fn)
{
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace ssdcheck::perf
