#include "perf/thread_pool.h"

#include <utility>

namespace ssdcheck::perf {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        core::MutexLock lock(mu_);
        stop_ = true;
    }
    taskReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::defaultJobs()
{
    // hardware_concurrency() is allowed to return 0 ("unknown");
    // a zero-thread pool would deadlock submit/wait, so clamp.
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        core::MutexLock lock(mu_);
        queue_.push_back(std::move(task));
        ++unfinished_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    core::MutexLock lock(mu_);
    while (unfinished_ != 0)
        allDone_.wait(mu_);
    if (firstError_ != nullptr) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            core::MutexLock lock(mu_);
            while (!stop_ && queue_.empty())
                taskReady_.wait(mu_);
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            core::MutexLock lock(mu_);
            if (firstError_ == nullptr)
                firstError_ = std::current_exception();
        }
        {
            core::MutexLock lock(mu_);
            if (--unfinished_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, size_t n,
            const std::function<void(size_t)> &fn)
{
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace ssdcheck::perf
