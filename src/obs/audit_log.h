/**
 * @file
 * Misprediction audit log (the observability tentpole's third
 * pillar).
 *
 * For every completed request the facade records what the model
 * predicted, what actually happened, and the model inputs it predicted
 * from (buffer counter/size, GC interval counter, calibrated flush/GC
 * overhead estimates). HL misses — requests that measured HL but were
 * predicted NL — are then attributed to a proximate cause:
 *
 *   fault-taint      the exchange failed or was host-retried; the
 *                    latency measures the error path, not the model.
 *   gc-drift         the latency is GC-magnitude (above the monitor's
 *                    GC threshold): the interval history missed a GC.
 *   unmodeled-flush  flush-magnitude latency the buffer counter did
 *                    not anticipate (off-phase counter, drifted buffer
 *                    size, or an internal flush the model cannot see).
 *   unknown          HL of no recognizable signature (e.g. injected
 *                    hiccups).
 *
 * Records are plain integers (no blockdev dependency: status/type are
 * stored as raw uint8) so src/obs stays a leaf over src/sim. JSONL
 * export/import feeds the tools/audit report binary.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/sim_time.h"

namespace ssdcheck::obs {

/** Proximate cause of one HL miss (None = not an HL miss). */
enum class AuditCause : uint8_t
{
    None,
    FaultTaint,
    GcDrift,
    UnmodeledFlush,
    Unknown,
};

/** Human-readable name of an AuditCause. */
std::string toString(AuditCause c);

/** One completed request as the model saw it. */
struct AuditRecord
{
    sim::SimTime submit;
    sim::SimDuration actualNs = 0;
    sim::SimDuration predictedEetNs = 0;
    uint8_t type = 0;    ///< blockdev::IoType as raw value.
    uint8_t status = 0;  ///< blockdev::IoStatus as raw value (0 = Ok).
    uint32_t attempts = 1;
    bool predictedHl = false;
    bool actualHl = false;
    bool flushExpected = false;
    bool gcExpected = false;
    // Model inputs at completion time.
    uint32_t volume = 0;
    uint32_t bufferCounter = 0;
    uint32_t bufferSize = 0;
    uint32_t gcIntervalCounter = 0;
    sim::SimDuration flushEstimateNs = 0;
    sim::SimDuration gcEstimateNs = 0;

    /** An HL the model called NL — the misses the audit explains. */
    bool isHlMiss() const { return actualHl && !predictedHl; }
};

/**
 * Attribute one record to a proximate cause.
 * @param gcThresholdNs the monitor's GC latency threshold.
 * @return None unless the record is an HL miss.
 */
AuditCause classifyAudit(const AuditRecord &r, sim::SimDuration gcThresholdNs);

/** Per-cause bucket counts over one log. */
struct AuditReport
{
    uint64_t total = 0;          ///< Records analyzed.
    uint64_t hlEvents = 0;       ///< Requests that measured HL.
    uint64_t hlMisses = 0;       ///< HL events predicted NL.
    uint64_t faultTaint = 0;
    uint64_t gcDrift = 0;
    uint64_t unmodeledFlush = 0;
    uint64_t unknown = 0;

    /** Multi-line operator report (CLI / tools/audit). */
    std::string format() const;
};

/** Append-only audit log with analysis and JSONL round-trip. */
class AuditLog
{
  public:
    /** @param gcThresholdNs classification threshold (see classify). */
    explicit AuditLog(sim::SimDuration gcThresholdNs = 0);

    /** Donates the record storage to a thread-local reuse pool. */
    ~AuditLog();

    /** The monitor's adapted thresholds become known at attach time. */
    void setGcThreshold(sim::SimDuration ns) { gcThresholdNs_ = ns; }
    sim::SimDuration gcThreshold() const { return gcThresholdNs_; }

    void add(const AuditRecord &r)
    {
        records_.push_back(r);
        // One record lands per simulated request; prefetch the next
        // slot so its read-for-ownership is off the critical path by
        // the time the next completion records (cf. TraceRecorder).
        const AuditRecord *next = records_.data() + records_.size();
        __builtin_prefetch(next, 1);
        __builtin_prefetch(reinterpret_cast<const char *>(next) + 64, 1);
    }

    /** Pre-size for @p n records (replay loops know their length). */
    void reserve(size_t n) { records_.reserve(n); }

    const std::vector<AuditRecord> &records() const { return records_; }
    size_t size() const { return records_.size(); }

    /** Cause of record @p i under the configured threshold. */
    AuditCause causeOf(size_t i) const
    {
        return classifyAudit(records_[i], gcThresholdNs_);
    }

    /** Bucket every record by cause. */
    AuditReport analyze() const;

    /** One JSON object per line (machine-readable forensics). */
    void writeJsonl(std::ostream &os) const;

    /**
     * Parse a JSONL stream written by writeJsonl.
     * @return false on the first malformed line (@p errorLine set).
     */
    static bool readJsonl(std::istream &is, AuditLog *out,
                          size_t *errorLine = nullptr);

  private:
    std::vector<AuditRecord> records_;
    sim::SimDuration gcThresholdNs_;
};

} // namespace ssdcheck::obs
