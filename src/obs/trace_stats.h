/**
 * @file
 * Offline analytics over a recorded trace (`ssdcheck trace-stats`).
 *
 * Computes the operator-facing aggregates post-mortem from a replayed
 * SSDTRBIN stream (or any populated TraceRecorder): per-volume GC
 * duty cycle, device stall count/duration histogram, write-buffer hit
 * rate, and the top-N longest host.request spans. Pure functions over
 * the recorder — the library renders to strings and never prints
 * (lint R5), the CLI owns the console.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace_recorder.h"

namespace ssdcheck::obs {

/** GC occupancy of one device volume track. */
struct GcVolumeStats
{
    uint32_t volume = 0;
    uint64_t runs = 0;       ///< gc.run spans on this track.
    int64_t busyNs = 0;      ///< Total gc.run duration.
    uint64_t dutyPermille = 0; ///< busyNs * 1000 / trace span.
};

/** One host.request span (top-N longest report). */
struct HostRequestSpan
{
    int64_t ts = 0;
    int64_t durNs = 0;
    int64_t lba = -1;
    int64_t write = -1;
    int64_t predHl = -1;
    int64_t actualHl = -1;
};

/** The trace-stats aggregate report. */
struct TraceStats
{
    uint64_t events = 0;
    int64_t spanNs = 0; ///< max(ts + dur) - min(ts), 0 when empty.

    std::vector<GcVolumeStats> gcByVolume; ///< Ascending volume index.
    uint64_t gcRuns = 0;
    int64_t gcBusyNs = 0;
    uint64_t gcDutyPermille = 0;

    uint64_t stallCount = 0;
    int64_t stallTotalNs = 0;
    HistogramData stallHist; ///< dev.stall dur_ns, decade buckets.

    uint64_t wbHits = 0;
    uint64_t nandReads = 0;
    uint64_t wbFlushes = 0;
    uint64_t wbHitPermille = 0; ///< hits * 1000 / (hits + nandReads).

    uint64_t hostRequests = 0;
    std::vector<HostRequestSpan> topRequests; ///< Longest first.
};

/**
 * Scan @p rec once and aggregate. @p topN bounds the longest-request
 * report; ties break on (earlier ts, record order) so the result is
 * deterministic for a given trace.
 */
TraceStats computeTraceStats(const TraceRecorder &rec, size_t topN = 10);

/** Human-readable report (the CLI's default --format=text). */
std::string renderTraceStatsText(const TraceStats &s);

/** Machine-readable report (--format=json; integers only). */
std::string renderTraceStatsJson(const TraceStats &s);

} // namespace ssdcheck::obs
