/**
 * @file
 * Per-stage cost attribution for the simulator hot path.
 *
 * The bench gate says *that* throughput regressed; this profiler says
 * *which* stage did. Components bracket their work with StageScope
 * markers (wb, gc, nand, model, trace, policy) and the profiler
 * attributes elapsed time to the innermost open stage (self-time, not
 * inclusive time), so nested scopes never double count: a GC run
 * inside a flush bills to gc, the rest of the flush to wb.
 *
 * Determinism: the profiler never names a clock. Time comes from an
 * injected StageNowFn — perf::wallNowNs() in real runs (src/perf is
 * the allowlisted wall-clock layer), a fake counter in tests — and
 * profiling writes only profiler-owned storage, so attaching one
 * cannot perturb simulation results. Totals surface on the registry
 * as exported views (`stage_self_ns`/`stage_calls` per stage), which
 * the registry deliberately does not serialize: checkpoint bytes are
 * identical with and without a profiler attached.
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ssdcheck::obs {

class Registry;

/** The stage taxonomy (see DESIGN.md "Live telemetry"). */
enum class Stage : uint8_t
{
    Wb = 0,     ///< Write-buffer admission, drain and flush.
    Gc = 1,     ///< Garbage collection inside a flush window.
    Nand = 2,   ///< Read service (NAND wait + page reads).
    Model = 3,  ///< SSDcheck predict/observe model work.
    Trace = 4,  ///< Observability fan-out (trace/metrics/audit).
    Policy = 5, ///< Resilience policy admission/bookkeeping.
};

inline constexpr size_t kStageCount = 6;

/** Stable lowercase stage label ("wb", "gc", ...). */
const char *stageName(Stage s);

/** Injected time source: monotonic nanoseconds, epoch unspecified. */
using StageNowFn = uint64_t (*)();

/** Self-time profiler over the Stage taxonomy. Not thread-safe: one
 *  profiler belongs to one run loop, like the other obs pillars. */
class StageProfiler
{
  public:
    explicit StageProfiler(StageNowFn now) : now_(now) {}
    StageProfiler(const StageProfiler &) = delete;
    StageProfiler &operator=(const StageProfiler &) = delete;

    /** Open @p s: elapsed time since the last mark bills to the
     *  previously innermost stage. Prefer StageScope. */
    void enter(Stage s)
    {
        const uint64_t t = now_();
        if (depth_ > 0 && depth_ <= kMaxDepth)
            selfNs_[idx(stack_[depth_ - 1])] += t - lastMark_;
        lastMark_ = t;
        if (depth_ < kMaxDepth)
            stack_[depth_] = s;
        ++depth_;
        ++calls_[idx(s)];
    }

    /** Close the innermost stage (billing its tail self-time). */
    void exit()
    {
        if (depth_ == 0)
            return;
        const uint64_t t = now_();
        if (depth_ <= kMaxDepth)
            selfNs_[idx(stack_[depth_ - 1])] += t - lastMark_;
        lastMark_ = t;
        --depth_;
    }

    /** Count one host request (the ns/request denominator). */
    void addRequest() { ++requests_; }

    uint64_t selfNs(Stage s) const { return selfNs_[idx(s)]; }
    uint64_t calls(Stage s) const { return calls_[idx(s)]; }
    uint64_t requests() const { return requests_; }

    /** Total self-time over all stages. */
    uint64_t totalNs() const
    {
        uint64_t t = 0;
        for (uint64_t v : selfNs_)
            t += v;
        return t;
    }

    /** Average self-ns per counted request for @p s (0 if none). */
    uint64_t nsPerRequest(Stage s) const
    {
        return requests_ == 0 ? 0 : selfNs(s) / requests_;
    }

    /**
     * Surface totals on @p reg as exported views:
     * `stage_self_ns{stage=...}`, `stage_calls{stage=...}` and
     * `stage_requests`. Views are not serialized, so checkpoint bytes
     * stay identical with and without a profiler.
     */
    void exportTo(Registry &reg) const;

  private:
    static constexpr size_t kMaxDepth = 16;
    static size_t idx(Stage s) { return static_cast<size_t>(s); }

    StageNowFn now_;
    uint64_t lastMark_ = 0;
    uint32_t depth_ = 0;
    std::array<Stage, kMaxDepth> stack_{};
    std::array<uint64_t, kStageCount> selfNs_{};
    std::array<uint64_t, kStageCount> calls_{};
    uint64_t requests_ = 0;
};

/** RAII stage bracket; null profiler = zero-cost no-op. */
class StageScope
{
  public:
    StageScope(StageProfiler *p, Stage s) : p_(p)
    {
        if (p_ != nullptr)
            p_->enter(s);
    }
    ~StageScope()
    {
        if (p_ != nullptr)
            p_->exit();
    }
    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

  private:
    StageProfiler *p_;
};

} // namespace ssdcheck::obs
