/**
 * @file
 * Compact binary trace format ("SSDTRBIN") for TraceRecorder runs.
 *
 * The hot path records POD events into the recorder's arenas and never
 * formats text; this layer is how those events leave the process
 * without paying JSON rendering either. A trace.bin is roughly half
 * the size of the Chrome JSON and is written with the same explicit
 * little-endian primitives as snapshots (recovery::state_io), so the
 * bytes are identical across hosts.
 *
 * Layout (all integers little-endian):
 *
 *   magic   8 bytes  "SSDTRBIN"
 *   version u32      kTraceBinaryVersion
 *   records, each introduced by a u8 tag:
 *     0x01 StringDef     u16 id, str (u32 len + bytes)
 *                        ids are dense and ascending; a def always
 *                        precedes the first record referencing it.
 *     0x02 ProcessName   u32 pid, str name
 *     0x03 ThreadName    u32 pid, u32 tid, str name
 *     0x04 Event         u8 phase, u16 catId, u16 nameId, u16 pid,
 *                        u16 tid, i64 ts, [i64 dur if phase == 'X'],
 *                        u8 numArgs, numArgs x (u16 keyId, i64 value)
 *     0xFF End           last record; nothing may follow.
 *
 * Two producers emit this format with byte-identical output for the
 * same run: writeTraceBinary() over a fully retained recorder, and
 * the recorder's own ring/spill mode (TraceRecorder::spillTo), which
 * streams drained arena chunks so live memory stays bounded. The
 * offline converter (readTraceBinary + writeChromeJson, surfaced as
 * `ssdcheck trace-convert`) replays a file back into a TraceRecorder,
 * so its JSON is byte-identical to what the run itself would have
 * written — by construction, not by parallel implementation.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace_recorder.h"
#include "recovery/state_io.h"

namespace ssdcheck::obs {

inline constexpr char kTraceBinaryMagic[8] = {'S', 'S', 'D', 'T',
                                              'R', 'B', 'I', 'N'};
inline constexpr uint32_t kTraceBinaryVersion = 1;

/** Record tags (see file-header format spec). */
enum TraceBinaryTag : uint8_t
{
    kTagStringDef = 0x01,
    kTagProcessName = 0x02,
    kTagThreadName = 0x03,
    kTagEvent = 0x04,
    kTagEnd = 0xFF,
};

/**
 * Streaming encoder: header on construction, then event() per event
 * in record order, then finish() exactly once. Strings (categories,
 * names, arg keys) are interned by pointer into one id space in
 * first-reference order, so any two producers that feed the same
 * event sequence emit identical bytes.
 */
class TraceBinaryEncoder
{
  public:
    explicit TraceBinaryEncoder(std::ostream &os);

    /** Encode one event of @p rec (@p args = rec.eventArgs(e)). */
    void event(const TraceRecorder &rec, const TraceRecorder::Event &e,
               const TraceArg *args);

    /** Metadata records + End marker + flush. */
    void finish(const TraceRecorder &rec);

  private:
    uint16_t intern(const char *s);
    void flush();

    std::ostream &os_;
    recovery::StateWriter w_;
    std::unordered_map<const char *, uint16_t> ids_;
};

/** Encode a fully retained recorder as one trace.bin stream. */
void writeTraceBinary(const TraceRecorder &rec, std::ostream &os);

/**
 * Parsed trace.bin: a replayed TraceRecorder plus the string storage
 * its events point into (the recorder stores strings by pointer, so
 * the reader must own stable copies).
 */
class TraceBinaryReader
{
  public:
    /** Parse a complete stream. @return false on malformed input. */
    bool read(std::istream &is);

    /** First parse failure description, empty while ok. */
    const std::string &error() const { return error_; }

    /** The replayed run; writeChromeJson() gives the converted JSON. */
    const TraceRecorder &recorder() const { return rec_; }

  private:
    TraceRecorder rec_;
    std::deque<std::string> storage_; ///< Stable addresses.
    std::vector<const char *> byId_;
    std::string error_;
};

/**
 * One-shot conversion: trace.bin in, Chrome trace JSON out —
 * byte-identical to the JSON the recorded run would have written.
 * @return false on malformed input (@p error set if non-null).
 */
bool convertTraceBinaryToJson(std::istream &in, std::ostream &out,
                              std::string *error = nullptr);

} // namespace ssdcheck::obs
