/**
 * @file
 * Typed metrics registry (the observability tentpole's second
 * pillar) — the single source of truth for counters previously
 * scattered across ad-hoc structs (VolumeCounters, FaultCounters,
 * ResilienceCounters, HealthCounters).
 *
 * Two ways onto the registry:
 *  - Owned metrics: counter()/gauge()/histogram() return light handles
 *    over registry-owned storage (get-or-create by name+labels, so
 *    callers need no registration phase). Hot-path updates are one
 *    pointer-indirect add.
 *  - Exported views: exportCounter()/exportGauge() register a pointer
 *    into an existing component-owned struct; the registry reads it at
 *    snapshot time. This is how the legacy counter structs surface
 *    without double counting — the component keeps its struct, the
 *    registry becomes the reporting surface.
 *
 * Determinism: metrics snapshot in registration order (attach order is
 * deterministic), values are integers, and the JSON writer uses no
 * float formatting — the same run produces a byte-identical snapshot.
 * Sim-time-only: the optional timeline samples on sim::SimTime ticks
 * fed by the replay loop, never on the wall clock.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/sim_time.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::obs {

/** Metric labels, e.g. {{"device","A"},{"volume","0"}}. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Handle to a registry-owned monotonic counter. */
class Counter
{
  public:
    Counter() = default;
    void inc(uint64_t n = 1)
    {
        if (v_ != nullptr)
            *v_ += n;
    }
    uint64_t value() const { return v_ == nullptr ? 0 : *v_; }

  private:
    friend class Registry;
    explicit Counter(uint64_t *v) : v_(v) {}
    uint64_t *v_ = nullptr;
};

/** Handle to a registry-owned point-in-time gauge. */
class Gauge
{
  public:
    Gauge() = default;
    void set(int64_t v)
    {
        if (v_ != nullptr)
            *v_ = v;
    }
    void add(int64_t v)
    {
        if (v_ != nullptr)
            *v_ += v;
    }
    int64_t value() const { return v_ == nullptr ? 0 : *v_; }

  private:
    friend class Registry;
    explicit Gauge(int64_t *v) : v_(v) {}
    int64_t *v_ = nullptr;
};

/** Registry-owned histogram state (fixed upper-bound buckets). */
struct HistogramData
{
    std::vector<int64_t> bounds;  ///< Inclusive upper bounds, ascending.
    std::vector<uint64_t> counts; ///< bounds.size() + 1 (+inf) buckets.
    uint64_t count = 0;
    int64_t sum = 0;
};

/**
 * Bucket-interpolated quantile estimate (integer math only, so the
 * result is byte-stable across hosts). @p permille is the quantile in
 * thousandths (500 = p50, 999 = p99.9). Linear interpolation within
 * the covering bucket; the +inf bucket clamps to the last finite
 * bound. 0 when the histogram is empty. Shared by the JSON snapshot
 * and the Prometheus exporter's quantile gauges.
 */
int64_t histogramQuantile(const HistogramData &h, uint32_t permille);

/** One metric copied out of the registry (see snapshotMetrics()). */
struct MetricSnapshot
{
    enum class Type : uint8_t
    {
        Counter,
        Gauge,
        Histogram,
    };

    std::string name;
    Labels labels;
    Type type = Type::Counter;
    int64_t value = 0;  ///< Counter/gauge value; histogram count.
    HistogramData hist; ///< Histogram detail (empty otherwise).
};

/** Handle to a registry-owned histogram. */
class Histogram
{
  public:
    Histogram() = default;

    /** Bucket @p v (inline: one observe per replayed request). */
    void observe(int64_t v)
    {
        if (d_ == nullptr)
            return;
        size_t i = 0;
        while (i < d_->bounds.size() && v > d_->bounds[i])
            ++i;
        ++d_->counts[i];
        ++d_->count;
        d_->sum += v;
    }
    uint64_t count() const { return d_ == nullptr ? 0 : d_->count; }
    int64_t sum() const { return d_ == nullptr ? 0 : d_->sum; }

  private:
    friend class Registry;
    explicit Histogram(HistogramData *d) : d_(d) {}
    HistogramData *d_ = nullptr;
};

/** The registry: owned metrics + exported views + timeline. */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;
    ~Registry();

    // -- owned metrics (get-or-create by name+labels) ---------------------
    Counter counter(const std::string &name, Labels labels = {});
    Gauge gauge(const std::string &name, Labels labels = {});
    /** @param bounds ascending inclusive upper bounds in the metric's
     *        unit; a final +inf bucket is implicit. */
    Histogram histogram(const std::string &name,
                        std::vector<int64_t> bounds, Labels labels = {});

    // -- exported views (component-owned storage) -------------------------
    /** Surface an existing uint64 counter field. @p src must outlive
     *  the registry (or be removed via dropExports). */
    void exportCounter(const std::string &name, Labels labels,
                       const uint64_t *src);
    /** Surface an existing int64 field (gauges, SimDurations). */
    void exportGauge(const std::string &name, Labels labels,
                     const int64_t *src);
    /** Surface an existing uint8 field (small state enums). */
    void exportGauge(const std::string &name, Labels labels,
                     const uint8_t *src);

    /** Current value of a metric; nullopt when absent. Histograms
     *  report their observation count. */
    std::optional<int64_t> value(const std::string &name,
                                 const Labels &labels = {}) const;

    /** Registered metrics (tests/introspection). */
    size_t size() const;

    /**
     * Deep-copy every metric, in registration order, resolving view
     * sources to their current values. The returned vector shares no
     * storage with the registry — the telemetry publisher hands it to
     * the exporter thread as an immutable snapshot.
     */
    std::vector<MetricSnapshot> snapshotMetrics() const;

    // -- timeline ---------------------------------------------------------
    /** Start sampling every metric's value each @p interval of fed
     *  sim time (see tick()). */
    void enableTimeline(sim::SimDuration interval);

    /** Feed the current sim time; appends a timeline sample when the
     *  interval elapsed. Near-zero when the timeline is disabled. */
    void tick(sim::SimTime now)
    {
        if (timelineInterval_ > 0 && now >= timelineNext_)
            sample(now);
    }

    /** Timeline samples taken so far. */
    size_t timelineSamples() const;

    // -- export -----------------------------------------------------------
    /**
     * JSON snapshot: every metric (name, labels, type, value; full
     * bucket detail for histograms) plus the timeline when enabled.
     */
    void writeJson(std::ostream &os, sim::SimTime now) const;

    /** writeJson into a string (tests, golden snapshots). */
    std::string toJson(sim::SimTime now) const;

    /**
     * Serialize owned-metric values and the timeline. Exported views
     * are skipped: their storage lives in component structs that
     * serialize themselves; after a component-level restore the views
     * read the restored values with no further work.
     */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). Every owned metric must
     *  already be registered, in the same order, with the same name
     *  and shape. @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    struct Metric;
    struct TimelineSample
    {
        sim::SimTime time;
        std::vector<int64_t> values; ///< One per metric, in order.
    };

    Metric *find(const std::string &name, const Labels &labels) const;
    Metric &add(Metric m);
    void sample(sim::SimTime now);
    static int64_t read(const Metric &m);

    std::vector<Metric *> metrics_; ///< Owned; stable addresses.
    std::vector<TimelineSample> timeline_;
    sim::SimDuration timelineInterval_ = 0; // snapshot:skip(run-setup config; the restore path calls enableTimeline from RunParams, only the timelineNext_ deadline is state)
    sim::SimTime timelineNext_;
};

} // namespace ssdcheck::obs
