#include "obs/trace_stats.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace ssdcheck::obs {

namespace {

/** Interned-string id of @p name in @p rec, or -1 when the trace
 *  never recorded it (ids index rec.strings()). */
int
stringIdOf(const TraceRecorder &rec, const char *name)
{
    const std::vector<const char *> &strings = rec.strings();
    for (size_t i = 0; i < strings.size(); ++i)
        if (std::strcmp(strings[i], name) == 0)
            return static_cast<int>(i);
    return -1;
}

int64_t
argValue(const TraceRecorder &rec, const TraceRecorder::Event &e,
         const char *key, int64_t fallback)
{
    const TraceArg *args = rec.eventArgs(e);
    for (size_t i = 0; i < e.numArgs; ++i)
        if (std::strcmp(args[i].key, key) == 0)
            return args[i].value;
    return fallback;
}

} // namespace

TraceStats
computeTraceStats(const TraceRecorder &rec, size_t topN)
{
    TraceStats s;
    s.events = rec.events();
    // Decade buckets for stall durations (ns).
    s.stallHist.bounds = {1000,      10000,      100000,   1000000,
                          10000000,  100000000};
    s.stallHist.counts.assign(s.stallHist.bounds.size() + 1, 0);
    if (rec.events() == 0)
        return s;

    const int gcRunId = stringIdOf(rec, "gc.run");
    const int stallId = stringIdOf(rec, "dev.stall");
    const int wbHitId = stringIdOf(rec, "wb.hit");
    const int wbFlushId = stringIdOf(rec, "wb.flush");
    const int nandReadId = stringIdOf(rec, "nand.read");
    const int hostReqId = stringIdOf(rec, "host.request");

    int64_t minTs = 0;
    int64_t maxEnd = 0;
    bool first = true;
    std::vector<std::pair<uint32_t, GcVolumeStats>> gc; // by volume tid.
    // (index, dur) of every host.request, ranked after the scan.
    std::vector<size_t> hostIdx;

    for (size_t i = 0; i < rec.events(); ++i) {
        const TraceRecorder::Event &e = rec.eventAt(i);
        const int64_t end = e.phase == 'X' ? e.ts + e.dur : e.ts;
        if (first || e.ts < minTs)
            minTs = e.ts;
        if (first || end > maxEnd)
            maxEnd = end;
        first = false;

        if (static_cast<int>(e.nameId) == gcRunId && e.phase == 'X' &&
            e.pid == kDevicePid) {
            auto it = std::find_if(
                gc.begin(), gc.end(),
                [&](const auto &p) { return p.first == e.tid; });
            if (it == gc.end()) {
                gc.push_back({e.tid, GcVolumeStats{}});
                it = gc.end() - 1;
                it->second.volume = e.tid;
            }
            ++it->second.runs;
            it->second.busyNs += e.dur;
            ++s.gcRuns;
            s.gcBusyNs += e.dur;
        } else if (static_cast<int>(e.nameId) == stallId) {
            const int64_t dur = argValue(rec, e, "dur_ns", 0);
            ++s.stallCount;
            s.stallTotalNs += dur;
            size_t b = 0;
            while (b < s.stallHist.bounds.size() &&
                   dur > s.stallHist.bounds[b])
                ++b;
            ++s.stallHist.counts[b];
            ++s.stallHist.count;
            s.stallHist.sum += dur;
        } else if (static_cast<int>(e.nameId) == wbHitId) {
            ++s.wbHits;
        } else if (static_cast<int>(e.nameId) == wbFlushId) {
            ++s.wbFlushes;
        } else if (static_cast<int>(e.nameId) == nandReadId) {
            ++s.nandReads;
        } else if (static_cast<int>(e.nameId) == hostReqId &&
                   e.phase == 'X') {
            ++s.hostRequests;
            hostIdx.push_back(i);
        }
    }

    s.spanNs = maxEnd - minTs;
    std::sort(gc.begin(), gc.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (auto &p : gc) {
        if (s.spanNs > 0)
            p.second.dutyPermille = static_cast<uint64_t>(
                p.second.busyNs * 1000 / s.spanNs);
        s.gcByVolume.push_back(p.second);
    }
    if (s.spanNs > 0)
        s.gcDutyPermille =
            static_cast<uint64_t>(s.gcBusyNs * 1000 / s.spanNs);
    if (s.wbHits + s.nandReads > 0)
        s.wbHitPermille = s.wbHits * 1000 / (s.wbHits + s.nandReads);

    // Longest host.request spans: (dur desc, ts asc, record order).
    std::sort(hostIdx.begin(), hostIdx.end(), [&](size_t a, size_t b) {
        const TraceRecorder::Event &ea = rec.eventAt(a);
        const TraceRecorder::Event &eb = rec.eventAt(b);
        if (ea.dur != eb.dur)
            return ea.dur > eb.dur;
        if (ea.ts != eb.ts)
            return ea.ts < eb.ts;
        return a < b;
    });
    if (hostIdx.size() > topN)
        hostIdx.resize(topN);
    for (size_t i : hostIdx) {
        const TraceRecorder::Event &e = rec.eventAt(i);
        HostRequestSpan span;
        span.ts = e.ts;
        span.durNs = e.dur;
        span.lba = argValue(rec, e, "lba", -1);
        span.write = argValue(rec, e, "write", -1);
        span.predHl = argValue(rec, e, "pred_hl", -1);
        span.actualHl = argValue(rec, e, "actual_hl", -1);
        s.topRequests.push_back(span);
    }
    return s;
}

std::string
renderTraceStatsText(const TraceStats &s)
{
    std::ostringstream os;
    os << "trace-stats: " << s.events << " events over " << s.spanNs
       << " ns\n\n";
    os << "gc duty cycle: " << s.gcRuns << " runs, " << s.gcBusyNs
       << " ns busy (" << s.gcDutyPermille << " permille of span)\n";
    for (const GcVolumeStats &v : s.gcByVolume)
        os << "  volume " << v.volume << ": " << v.runs << " runs, "
           << v.busyNs << " ns (" << v.dutyPermille << " permille)\n";
    os << "\nstalls: " << s.stallCount << " events, " << s.stallTotalNs
       << " ns total\n";
    for (size_t b = 0; b < s.stallHist.counts.size(); ++b) {
        os << "  le ";
        if (b < s.stallHist.bounds.size())
            os << s.stallHist.bounds[b] << " ns";
        else
            os << "+inf";
        os << ": " << s.stallHist.counts[b] << '\n';
    }
    os << "\nwrite buffer: " << s.wbHits << " hits / " << s.nandReads
       << " NAND reads (" << s.wbHitPermille << " permille hit rate), "
       << s.wbFlushes << " flushes\n";
    os << "\nhost requests: " << s.hostRequests << " total; top "
       << s.topRequests.size() << " longest:\n";
    for (const HostRequestSpan &r : s.topRequests)
        os << "  ts " << r.ts << " dur " << r.durNs << " ns lba " << r.lba
           << (r.write == 1 ? " write" : " read") << " pred_hl "
           << r.predHl << " actual_hl " << r.actualHl << '\n';
    return os.str();
}

std::string
renderTraceStatsJson(const TraceStats &s)
{
    std::ostringstream os;
    os << "{\"events\":" << s.events << ",\"span_ns\":" << s.spanNs;
    os << ",\"gc\":{\"runs\":" << s.gcRuns << ",\"busy_ns\":" << s.gcBusyNs
       << ",\"duty_permille\":" << s.gcDutyPermille << ",\"volumes\":[";
    for (size_t i = 0; i < s.gcByVolume.size(); ++i) {
        const GcVolumeStats &v = s.gcByVolume[i];
        os << (i > 0 ? "," : "") << "{\"volume\":" << v.volume
           << ",\"runs\":" << v.runs << ",\"busy_ns\":" << v.busyNs
           << ",\"duty_permille\":" << v.dutyPermille << '}';
    }
    os << "]}";
    os << ",\"stalls\":{\"count\":" << s.stallCount
       << ",\"total_ns\":" << s.stallTotalNs << ",\"buckets\":[";
    for (size_t b = 0; b < s.stallHist.counts.size(); ++b) {
        os << (b > 0 ? "," : "") << "{\"le\":";
        if (b < s.stallHist.bounds.size())
            os << s.stallHist.bounds[b];
        else
            os << "\"+inf\"";
        os << ",\"count\":" << s.stallHist.counts[b] << '}';
    }
    os << "]}";
    os << ",\"write_buffer\":{\"hits\":" << s.wbHits
       << ",\"nand_reads\":" << s.nandReads
       << ",\"hit_permille\":" << s.wbHitPermille
       << ",\"flushes\":" << s.wbFlushes << '}';
    os << ",\"host_requests\":{\"count\":" << s.hostRequests
       << ",\"top\":[";
    for (size_t i = 0; i < s.topRequests.size(); ++i) {
        const HostRequestSpan &r = s.topRequests[i];
        os << (i > 0 ? "," : "") << "{\"ts\":" << r.ts
           << ",\"dur_ns\":" << r.durNs << ",\"lba\":" << r.lba
           << ",\"write\":" << r.write << ",\"pred_hl\":" << r.predHl
           << ",\"actual_hl\":" << r.actualHl << '}';
    }
    os << "]}}\n";
    return os.str();
}

} // namespace ssdcheck::obs
