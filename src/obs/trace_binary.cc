#include "obs/trace_binary.h"

#include <cassert>
#include <istream>
#include <iterator>
#include <ostream>

namespace ssdcheck::obs {

namespace {

/** Flush granularity: bounds encoder memory in spill mode. */
constexpr size_t kFlushBytes = 64 * 1024;

} // namespace

TraceBinaryEncoder::TraceBinaryEncoder(std::ostream &os) : os_(os)
{
    os_.write(kTraceBinaryMagic, sizeof kTraceBinaryMagic);
    w_.u32(kTraceBinaryVersion);
}

uint16_t
TraceBinaryEncoder::intern(const char *s)
{
    assert(ids_.size() < 0xFFFF && "trace binary string table overflow");
    const auto [it, inserted] =
        ids_.try_emplace(s, static_cast<uint16_t>(ids_.size()));
    if (inserted) {
        w_.u8(kTagStringDef);
        w_.u16(it->second);
        w_.str(std::string(s));
    }
    return it->second;
}

void
TraceBinaryEncoder::event(const TraceRecorder &rec,
                          const TraceRecorder::Event &e,
                          const TraceArg *args)
{
    // Intern before emitting the event tag so every StringDef lands
    // ahead of the record that references it.
    const uint16_t cat = intern(rec.strings()[e.catId]);
    const uint16_t name = intern(rec.strings()[e.nameId]);
    uint16_t keyIds[TraceRecorder::kMaxArgs];
    for (uint8_t i = 0; i < e.numArgs; ++i)
        keyIds[i] = intern(args[i].key);
    w_.u8(kTagEvent);
    w_.u8(static_cast<uint8_t>(e.phase));
    w_.u16(cat);
    w_.u16(name);
    w_.u16(e.pid);
    w_.u16(e.tid);
    w_.i64(e.ts);
    if (e.phase == 'X')
        w_.i64(e.dur);
    w_.u8(e.numArgs);
    for (uint8_t i = 0; i < e.numArgs; ++i) {
        w_.u16(keyIds[i]);
        w_.i64(args[i].value);
    }
    if (w_.size() >= kFlushBytes)
        flush();
}

void
TraceBinaryEncoder::finish(const TraceRecorder &rec)
{
    // Metadata last: it can be registered at any point of a spilled
    // run, and JSON rendering orders it from the replayed vectors, not
    // from stream position.
    for (const auto &[pid, name] : rec.processNames()) {
        w_.u8(kTagProcessName);
        w_.u32(pid);
        w_.str(name);
    }
    for (const auto &[track, name] : rec.threadNames()) {
        w_.u8(kTagThreadName);
        w_.u32(track.pid);
        w_.u32(track.tid);
        w_.str(name);
    }
    w_.u8(kTagEnd);
    flush();
    os_.flush();
}

void
TraceBinaryEncoder::flush()
{
    const std::vector<uint8_t> bytes = w_.take();
    os_.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

void
writeTraceBinary(const TraceRecorder &rec, std::ostream &os)
{
    TraceBinaryEncoder enc(os);
    for (size_t i = rec.firstLiveEvent(); i < rec.events(); ++i) {
        const TraceRecorder::Event &e = rec.eventAt(i);
        enc.event(rec, e, rec.eventArgs(e));
    }
    enc.finish(rec);
}

bool
TraceBinaryReader::read(std::istream &is)
{
    const std::vector<uint8_t> buf{std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>()};
    recovery::StateReader r(buf);

    char magic[sizeof kTraceBinaryMagic];
    r.raw(reinterpret_cast<uint8_t *>(magic), sizeof magic);
    if (r.ok() &&
        std::memcmp(magic, kTraceBinaryMagic, sizeof magic) != 0) {
        error_ = "not a trace.bin stream (bad magic)";
        return false;
    }
    const uint32_t version = r.u32();
    if (r.ok() && version != kTraceBinaryVersion) {
        error_ = "unsupported trace.bin version " + std::to_string(version);
        return false;
    }

    bool sawEnd = false;
    while (r.ok() && !sawEnd) {
        const uint8_t tag = r.u8();
        switch (tag) {
          case kTagStringDef: {
            const uint16_t id = r.u16();
            std::string s = r.str();
            if (r.ok() && id != byId_.size()) {
                r.fail("string ids must be dense and ascending");
                break;
            }
            storage_.push_back(std::move(s));
            byId_.push_back(storage_.back().c_str());
            break;
          }
          case kTagProcessName: {
            const uint32_t pid = r.u32();
            const std::string name = r.str();
            if (r.ok())
                rec_.setProcessName(pid, name);
            break;
          }
          case kTagThreadName: {
            const uint32_t pid = r.u32();
            const uint32_t tid = r.u32();
            const std::string name = r.str();
            if (r.ok())
                rec_.setThreadName(TraceTrack{pid, tid}, name);
            break;
          }
          case kTagEvent: {
            const char phase = static_cast<char>(r.u8());
            const uint16_t cat = r.u16();
            const uint16_t name = r.u16();
            const uint16_t pid = r.u16();
            const uint16_t tid = r.u16();
            const int64_t ts = r.i64();
            const int64_t dur = phase == 'X' ? r.i64() : 0;
            const uint8_t numArgs = r.u8();
            if (r.ok() && numArgs > TraceRecorder::kMaxArgs) {
                r.fail("event arg count exceeds kMaxArgs");
                break;
            }
            TraceArg args[TraceRecorder::kMaxArgs];
            bool argsOk = true;
            for (uint8_t i = 0; i < numArgs; ++i) {
                const uint16_t key = r.u16();
                const int64_t value = r.i64();
                if (key >= byId_.size()) {
                    r.fail("event references an undefined string id");
                    argsOk = false;
                    break;
                }
                args[i] = TraceArg{byId_[key], value};
            }
            if (!r.ok() || !argsOk)
                break;
            if (cat >= byId_.size() || name >= byId_.size()) {
                r.fail("event references an undefined string id");
                break;
            }
            rec_.append(phase, byId_[cat], byId_[name],
                        TraceTrack{pid, tid}, sim::SimTime{ts}, dur, args,
                        numArgs);
            break;
          }
          case kTagEnd:
            sawEnd = true;
            break;
          default:
            r.fail("unknown record tag " + std::to_string(tag));
            break;
        }
    }
    if (r.ok() && !sawEnd)
        r.fail("stream ends without an End record");
    if (r.ok() && !r.atEnd())
        r.fail("trailing bytes after the End record");
    if (!r.ok()) {
        error_ = r.error();
        return false;
    }
    return true;
}

bool
convertTraceBinaryToJson(std::istream &in, std::ostream &out,
                         std::string *error)
{
    TraceBinaryReader reader;
    if (!reader.read(in)) {
        if (error != nullptr)
            *error = reader.error();
        return false;
    }
    reader.recorder().writeChromeJson(out);
    return true;
}

} // namespace ssdcheck::obs
