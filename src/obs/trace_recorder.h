/**
 * @file
 * Deterministic sim-time trace recorder (the observability tentpole's
 * first pillar).
 *
 * Records causally-ordered spans and instants of one simulation run —
 * host submit, resilient attempt/retry, device dispatch, write-buffer
 * enqueue/flush, GC trigger/victim/migrate, NAND ops, predictions —
 * and exports them as Chrome trace-event JSON ("traceEvents"), so a
 * run can be opened directly in chrome://tracing or Perfetto.
 *
 * Design constraints (see DESIGN.md "Observability"):
 *  - Sim-time only: every timestamp is a sim::SimTime; the recorder
 *    never reads the wall clock (lint R1 applies to src/obs).
 *  - Allocation-light hot path: an event is one POD append into a
 *    chunked arena (no realloc copies, one malloc per 8K events);
 *    names/categories/arg keys must be string literals (the recorder
 *    stores the pointers, it never copies).
 *  - Near-zero when disabled: components hold a TraceRecorder pointer
 *    that is null by default; every hook is guarded by one null check
 *    and no event storage exists until a recorder is attached.
 *  - Deterministic output: events serialize in record order with
 *    fixed-precision timestamps, so the same run produces a
 *    byte-identical trace at any --jobs value.
 */
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/sim_time.h"

namespace ssdcheck::obs {

class TraceBinaryEncoder;

/** One event argument: a string-literal key and an integer value. */
struct TraceArg
{
    const char *key;
    int64_t value;
};

/** Where an event renders: Chrome's process (pid) / thread (tid). */
struct TraceTrack
{
    uint32_t pid = 0;
    uint32_t tid = 0;
};

// Track layout convention used across the repo (see DESIGN.md):
// pid 0 = the host stack, pid 1 = the device. Device tids are volume
// indices plus one interface track.
inline constexpr uint32_t kHostPid = 0;
inline constexpr uint32_t kDevicePid = 1;
inline constexpr uint32_t kHostWorkloadTid = 0;   ///< Replay engines.
inline constexpr uint32_t kHostResilientTid = 1;  ///< Retry/backoff path.
inline constexpr uint32_t kHostModelTid = 2;      ///< SSDcheck predictions.
inline constexpr uint32_t kHostSupervisorTid = 3; ///< Health supervisor.
inline constexpr uint32_t kDeviceInterfaceTid = 0xFFFF; ///< Bus/dispatch.

/** Records one run's events; export with writeChromeJson(). */
class TraceRecorder
{
  public:
    TraceRecorder();
    ~TraceRecorder();
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /**
     * A span [start, start+dur] (Chrome "X" complete event).
     * @param cat,name,args keys must be string literals (stored by
     *        pointer). At most kMaxArgs args are kept.
     */
    void complete(const char *cat, const char *name, TraceTrack track,
                  sim::SimTime start, sim::SimDuration dur,
                  std::initializer_list<TraceArg> args = {})
    {
        push('X', cat, name, track, start, dur, args);
    }

    /**
     * complete() for per-request hot paths: reserves @p numArgs
     * (≤ kMaxArgs) arg slots and returns them for the caller to fill
     * in place, skipping the initializer-list staging copy. The
     * returned span is valid until the next record call.
     */
    TraceArg *completeFill(const char *cat, const char *name,
                           TraceTrack track, sim::SimTime start,
                           sim::SimDuration dur, size_t numArgs)
    {
        return pushFill('X', cat, name, track, start, dur, numArgs);
    }

    /** A point event (Chrome "i" instant, thread scope). */
    void instant(const char *cat, const char *name, TraceTrack track,
                 sim::SimTime ts, std::initializer_list<TraceArg> args = {})
    {
        push('i', cat, name, track, ts, 0, args);
    }

    /** A sampled value (Chrome "C" counter event). */
    void counter(const char *name, TraceTrack track, sim::SimTime ts,
                 const char *key, int64_t value)
    {
        push('C', "counter", name, track, ts, 0, {{key, value}});
    }

    /** Display name of a pid (Chrome "process_name" metadata). */
    void setProcessName(uint32_t pid, const std::string &name);

    /** Display name of a (pid, tid) track ("thread_name" metadata). */
    void setThreadName(TraceTrack track, const std::string &name);

    /** Events recorded so far (metadata names not counted). */
    size_t events() const { return count_; }

    /**
     * Ring/spill mode: bound live memory to a few arena chunks and
     * stream drained chunks to @p os as the binary trace format
     * (trace.bin — see obs/trace_binary.h). Must be enabled before
     * the first event; finishSpill() completes the stream. The bytes
     * are identical to writeTraceBinary() over a fully retained
     * recorder of the same run. While spilling, only the live window
     * is addressable in memory: writeChromeJson() renders the tail
     * only — full JSON comes from converting the spilled stream.
     */
    void spillTo(std::ostream &os);

    /** Encode the live tail + metadata + End, and leave spill mode. */
    void finishSpill();

    /** First event still in memory (> 0 only while spilling). */
    size_t firstLiveEvent() const { return spilledEvents_; }

    void clear();

    /** Serialize as Chrome trace-event JSON (object format). */
    void writeChromeJson(std::ostream &os) const;

    /** writeChromeJson into a string (tests, determinism checks). */
    std::string toChromeJson() const;

    /** Maximum args kept per event; extras are dropped. */
    static constexpr size_t kMaxArgs = 4;

    // One half-cache-line POD (32 bytes); args live in a chunked pool
    // so an event only pays for the args it actually has. Category and
    // name are interned to small ids at record time (see strings()) —
    // the arena is the hot path's dominant memory traffic, and two
    // L1-hot table probes cost less than the extra 16 bytes per event
    // ever did. pid/tid are stored narrow: every track id used in the
    // repo fits 16 bits (kDeviceInterfaceTid = 0xFFFF is the ceiling).
    // Public (read-only via eventAt/argsAt) for the binary trace
    // writer.
    struct Event
    {
        int64_t ts;
        int64_t dur;      ///< Only meaningful for phase 'X'.
        uint32_t argPos;  ///< First arg in the arg arena.
        uint16_t catId;   ///< Index into strings().
        uint16_t nameId;  ///< Index into strings().
        uint16_t pid;
        uint16_t tid;
        char phase;       ///< 'X', 'i' or 'C'.
        uint8_t numArgs;
    };

    // Both arenas use fixed-size chunks (power of two: index is a
    // shift + mask) deliberately below glibc's mmap threshold, so
    // repeated record/clear cycles recycle already-faulted heap pages
    // instead of mapping fresh ones — the dominant cost of a naive
    // growing vector at these event rates. An event's args are kept
    // contiguous within one chunk (the tail is padded when fewer than
    // kMaxArgs slots remain), so serialization reads one span.
    static constexpr size_t kEventShift = 10; ///< 1024 ev = 48 KB.
    static constexpr size_t kChunkEvents = size_t{1} << kEventShift;
    static constexpr size_t kArgShift = 12;   ///< 4096 args = 64 KB.
    static constexpr size_t kChunkArgs = size_t{1} << kArgShift;

    /** Event @p i in record order (i < events()). */
    const Event &eventAt(size_t i) const { return at(i); }

    /** Args of an event, contiguous (see Event::argPos/numArgs). */
    const TraceArg *eventArgs(const Event &e) const
    {
        return argsAt(e.argPos);
    }

    /** Interned category/name strings; Event ids index this. */
    const std::vector<const char *> &strings() const { return strings_; }

    /** pid → display-name pairs in registration order. */
    const std::vector<std::pair<uint32_t, std::string>> &
    processNames() const
    {
        return processNames_;
    }

    /** (pid, tid) → display-name pairs in registration order. */
    const std::vector<std::pair<TraceTrack, std::string>> &
    threadNames() const
    {
        return threadNames_;
    }

    /**
     * Raw append with a runtime-length arg span (the trace-convert
     * replay path; hot-path recording uses the literal-arg wrappers
     * above). The same literal-lifetime contract applies: @p cat,
     * @p name and arg keys are stored by pointer.
     */
    void append(char phase, const char *cat, const char *name,
                TraceTrack track, sim::SimTime ts, sim::SimDuration dur,
                const TraceArg *args, size_t numArgs)
    {
        pushSpan(phase, cat, name, track, ts, dur, args, numArgs);
    }

  private:

    void push(char phase, const char *cat, const char *name,
              TraceTrack track, sim::SimTime ts, sim::SimDuration dur,
              std::initializer_list<TraceArg> args)
    {
        pushSpan(phase, cat, name, track, ts, dur, args.begin(),
                 args.size());
    }

    void pushSpan(char phase, const char *cat, const char *name,
                  TraceTrack track, sim::SimTime ts, sim::SimDuration dur,
                  const TraceArg *args, size_t numArgs)
    {
        TraceArg *slot =
            pushFill(phase, cat, name, track, ts, dur, numArgs);
        const size_t n = numArgs < kMaxArgs ? numArgs : kMaxArgs;
        for (size_t i = 0; i < n; ++i)
            slot[i] = args[i];
    }

    TraceArg *pushFill(char phase, const char *cat, const char *name,
                       TraceTrack track, sim::SimTime ts,
                       sim::SimDuration dur, size_t numArgs)
    {
        // curEventChunk_/curArgChunk_ shortcut the vector-of-unique_ptr
        // double indirection: a push touches only member fields and the
        // two arena tails. The advance helpers (cold, out of line)
        // materialize or step to the chunk holding the current cursor,
        // reusing retained chunks after clear().
        if ((count_ & (kChunkEvents - 1)) == 0) [[unlikely]]
            advanceEventChunk();
        Event &e = curEventChunk_[count_ & (kChunkEvents - 1)];
        ++count_;
        e.catId = internId(cat);
        e.nameId = internId(name);
        e.ts = ts.ns();
        e.dur = dur;
        e.pid = static_cast<uint16_t>(track.pid);
        e.tid = static_cast<uint16_t>(track.tid);
        e.phase = phase;
        const size_t n = numArgs < kMaxArgs ? numArgs : kMaxArgs;
        const size_t apos = argCount_ & (kChunkArgs - 1);
        if (apos == 0 || apos + n > kChunkArgs) [[unlikely]]
            advanceArgChunk(n);
        e.argPos = static_cast<uint32_t>(argCount_);
        e.numArgs = static_cast<uint8_t>(n);
        TraceArg *slot = &curArgChunk_[argCount_ & (kChunkArgs - 1)];
        argCount_ += n;
        // Pull the next event/arg slots into cache now: pushes are
        // isolated (one per simulated request), so by the next push
        // the arena tail has been evicted and its read-for-ownership
        // would land on the critical path. Past-the-end prefetches at
        // chunk boundaries are harmless (prefetch never faults).
        __builtin_prefetch(&e + 1, 1);
        __builtin_prefetch(slot + n, 1);
        __builtin_prefetch(slot + n + 3, 1);
        return slot;
    }

    /**
     * Intern @p s by pointer identity (everything recorded is a
     * string literal or converter-owned stable storage, so equal
     * pointers mean equal strings; distinct addresses with equal
     * content just waste one table slot). The open-address table is
     * ~1 KB and L1-resident; a hit is two or three loads.
     */
    uint16_t internId(const char *s)
    {
        const auto h = reinterpret_cast<uintptr_t>(s);
        const size_t mask = table_.size() - 1;
        size_t i = (h >> 3) * 0x9E3779B97F4A7C15ull >> 32 & mask;
        for (;; i = (i + 1) & mask) {
            const uint32_t v = table_[i];
            if (v == 0)
                return internSlow(s);
            if (strings_[v - 1] == s)
                return static_cast<uint16_t>(v - 1);
        }
    }

    uint16_t internSlow(const char *s);
    void advanceEventChunk();
    void advanceArgChunk(size_t n);
    void spillOldestChunk();

    // Chunk indexing is relative to the spill window: chunks_[0] holds
    // event spilledEvents_ (0 when not spilling, so the subtraction
    // folds away into the plain lookup).
    const Event &at(size_t i) const
    {
        return chunks_[(i >> kEventShift) -
                       (spilledEvents_ >> kEventShift)]
                      [i & (kChunkEvents - 1)];
    }
    const TraceArg *argsAt(uint32_t pos) const
    {
        return &argChunks_[(pos >> kArgShift) - spilledArgChunks_]
                          [pos & (kChunkArgs - 1)];
    }

    std::vector<const char *> strings_;
    std::vector<uint32_t> table_; ///< Open-address: id + 1, 0 = empty.
    std::vector<std::unique_ptr<Event[]>> chunks_;
    size_t count_ = 0;
    std::vector<std::unique_ptr<TraceArg[]>> argChunks_;
    size_t argCount_ = 0;
    Event *curEventChunk_ = nullptr;   ///< chunks_.back(), raw.
    TraceArg *curArgChunk_ = nullptr;  ///< argChunks_.back(), raw.
    std::vector<std::pair<uint32_t, std::string>> processNames_;
    std::vector<std::pair<TraceTrack, std::string>> threadNames_;
    // Ring/spill state (see spillTo). Live events are
    // [spilledEvents_, count_); drained chunks rotate to the back of
    // their vector for reuse, so steady-state spilling allocates
    // nothing.
    static constexpr size_t kSpillLiveChunks = 4;
    std::unique_ptr<TraceBinaryEncoder> spill_;
    size_t spilledEvents_ = 0;
    size_t spilledArgChunks_ = 0;
};

} // namespace ssdcheck::obs
