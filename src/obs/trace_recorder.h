/**
 * @file
 * Deterministic sim-time trace recorder (the observability tentpole's
 * first pillar).
 *
 * Records causally-ordered spans and instants of one simulation run —
 * host submit, resilient attempt/retry, device dispatch, write-buffer
 * enqueue/flush, GC trigger/victim/migrate, NAND ops, predictions —
 * and exports them as Chrome trace-event JSON ("traceEvents"), so a
 * run can be opened directly in chrome://tracing or Perfetto.
 *
 * Design constraints (see DESIGN.md "Observability"):
 *  - Sim-time only: every timestamp is a sim::SimTime; the recorder
 *    never reads the wall clock (lint R1 applies to src/obs).
 *  - Allocation-light hot path: an event is one POD append into a
 *    chunked arena (no realloc copies, one malloc per 8K events);
 *    names/categories/arg keys must be string literals (the recorder
 *    stores the pointers, it never copies).
 *  - Near-zero when disabled: components hold a TraceRecorder pointer
 *    that is null by default; every hook is guarded by one null check
 *    and no event storage exists until a recorder is attached.
 *  - Deterministic output: events serialize in record order with
 *    fixed-precision timestamps, so the same run produces a
 *    byte-identical trace at any --jobs value.
 */
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/sim_time.h"

namespace ssdcheck::obs {

/** One event argument: a string-literal key and an integer value. */
struct TraceArg
{
    const char *key;
    int64_t value;
};

/** Where an event renders: Chrome's process (pid) / thread (tid). */
struct TraceTrack
{
    uint32_t pid = 0;
    uint32_t tid = 0;
};

// Track layout convention used across the repo (see DESIGN.md):
// pid 0 = the host stack, pid 1 = the device. Device tids are volume
// indices plus one interface track.
inline constexpr uint32_t kHostPid = 0;
inline constexpr uint32_t kDevicePid = 1;
inline constexpr uint32_t kHostWorkloadTid = 0;   ///< Replay engines.
inline constexpr uint32_t kHostResilientTid = 1;  ///< Retry/backoff path.
inline constexpr uint32_t kHostModelTid = 2;      ///< SSDcheck predictions.
inline constexpr uint32_t kHostSupervisorTid = 3; ///< Health supervisor.
inline constexpr uint32_t kDeviceInterfaceTid = 0xFFFF; ///< Bus/dispatch.

/** Records one run's events; export with writeChromeJson(). */
class TraceRecorder
{
  public:
    TraceRecorder();

    /**
     * A span [start, start+dur] (Chrome "X" complete event).
     * @param cat,name,args keys must be string literals (stored by
     *        pointer). At most kMaxArgs args are kept.
     */
    void complete(const char *cat, const char *name, TraceTrack track,
                  sim::SimTime start, sim::SimDuration dur,
                  std::initializer_list<TraceArg> args = {})
    {
        push('X', cat, name, track, start, dur, args);
    }

    /** A point event (Chrome "i" instant, thread scope). */
    void instant(const char *cat, const char *name, TraceTrack track,
                 sim::SimTime ts, std::initializer_list<TraceArg> args = {})
    {
        push('i', cat, name, track, ts, 0, args);
    }

    /** A sampled value (Chrome "C" counter event). */
    void counter(const char *name, TraceTrack track, sim::SimTime ts,
                 const char *key, int64_t value)
    {
        push('C', "counter", name, track, ts, 0, {{key, value}});
    }

    /** Display name of a pid (Chrome "process_name" metadata). */
    void setProcessName(uint32_t pid, const std::string &name);

    /** Display name of a (pid, tid) track ("thread_name" metadata). */
    void setThreadName(TraceTrack track, const std::string &name);

    /** Events recorded so far (metadata names not counted). */
    size_t events() const { return count_; }

    void clear();

    /** Serialize as Chrome trace-event JSON (object format). */
    void writeChromeJson(std::ostream &os) const;

    /** writeChromeJson into a string (tests, determinism checks). */
    std::string toChromeJson() const;

    /** Maximum args kept per event; extras are dropped. */
    static constexpr size_t kMaxArgs = 4;

  private:
    // One cache-line-friendly POD (48 bytes); args live in a chunked
    // pool so an event only pays for the args it actually has.
    // pid/tid are stored narrow: every track id used in the repo fits
    // 16 bits (kDeviceInterfaceTid = 0xFFFF is the ceiling).
    struct Event
    {
        const char *cat;
        const char *name;
        int64_t ts;
        int64_t dur;      ///< Only meaningful for phase 'X'.
        uint32_t argPos;  ///< First arg in the arg arena.
        uint16_t pid;
        uint16_t tid;
        char phase;       ///< 'X', 'i' or 'C'.
        uint8_t numArgs;
    };

    // Both arenas use fixed-size chunks (power of two: index is a
    // shift + mask) deliberately below glibc's mmap threshold, so
    // repeated record/clear cycles recycle already-faulted heap pages
    // instead of mapping fresh ones — the dominant cost of a naive
    // growing vector at these event rates. An event's args are kept
    // contiguous within one chunk (the tail is padded when fewer than
    // kMaxArgs slots remain), so serialization reads one span.
    static constexpr size_t kEventShift = 10; ///< 1024 ev = 48 KB.
    static constexpr size_t kChunkEvents = size_t{1} << kEventShift;
    static constexpr size_t kArgShift = 12;   ///< 4096 args = 64 KB.
    static constexpr size_t kChunkArgs = size_t{1} << kArgShift;

    void push(char phase, const char *cat, const char *name,
              TraceTrack track, sim::SimTime ts, sim::SimDuration dur,
              std::initializer_list<TraceArg> args)
    {
        if (count_ == chunks_.size() << kEventShift) [[unlikely]]
            growEvents();
        Event &e =
            chunks_[count_ >> kEventShift][count_ & (kChunkEvents - 1)];
        ++count_;
        e.cat = cat;
        e.name = name;
        e.ts = ts;
        e.dur = dur;
        e.pid = static_cast<uint16_t>(track.pid);
        e.tid = static_cast<uint16_t>(track.tid);
        e.phase = phase;
        const size_t n = args.size() < kMaxArgs ? args.size() : kMaxArgs;
        if (argCount_ + n > argChunks_.size() << kArgShift) [[unlikely]]
            growArgs();
        e.argPos = static_cast<uint32_t>(argCount_);
        e.numArgs = static_cast<uint8_t>(n);
        TraceArg *slot =
            &argChunks_[argCount_ >> kArgShift][argCount_ &
                                               (kChunkArgs - 1)];
        argCount_ += n;
        size_t i = 0;
        for (const TraceArg &a : args) {
            if (i >= n)
                break;
            slot[i++] = a;
        }
    }

    void growEvents();
    void growArgs();
    const Event &at(size_t i) const
    {
        return chunks_[i >> kEventShift][i & (kChunkEvents - 1)];
    }
    const TraceArg *argsAt(uint32_t pos) const
    {
        return &argChunks_[pos >> kArgShift][pos & (kChunkArgs - 1)];
    }

    std::vector<std::unique_ptr<Event[]>> chunks_;
    size_t count_ = 0;
    std::vector<std::unique_ptr<TraceArg[]>> argChunks_;
    size_t argCount_ = 0;
    std::vector<std::pair<uint32_t, std::string>> processNames_;
    std::vector<std::pair<TraceTrack, std::string>> threadNames_;
};

} // namespace ssdcheck::obs
