#include "obs/audit_log.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

namespace ssdcheck::obs {

std::string
toString(AuditCause c)
{
    switch (c) {
      case AuditCause::None:
        return "none";
      case AuditCause::FaultTaint:
        return "fault-taint";
      case AuditCause::GcDrift:
        return "gc-drift";
      case AuditCause::UnmodeledFlush:
        return "unmodeled-flush";
      case AuditCause::Unknown:
        return "unknown";
    }
    return "?";
}

AuditCause
classifyAudit(const AuditRecord &r, sim::SimDuration gcThresholdNs)
{
    if (!r.isHlMiss())
        return AuditCause::None;
    // Order matters: taint trumps magnitude (a retried exchange can
    // reach any latency), and GC magnitude trumps flush magnitude
    // (a GC always rides on a flush).
    if (r.status != 0 || r.attempts > 1)
        return AuditCause::FaultTaint;
    if (gcThresholdNs > 0 && r.actualNs > gcThresholdNs)
        return AuditCause::GcDrift;
    // Flush-magnitude band: at least half the calibrated flush
    // overhead (the mean blocked-request wait is about half the flush
    // window) but below the GC threshold.
    if (r.flushEstimateNs > 0 && r.actualNs >= r.flushEstimateNs / 2)
        return AuditCause::UnmodeledFlush;
    return AuditCause::Unknown;
}

namespace {

/**
 * Thread-local recycling pool for record storage. Replay loops log
 * one ~80-byte record per request, so a fresh log's backing store is
 * tens of MB of never-touched pages — and on this path the minor
 * faults of first touch dominate the appends themselves. Destroyed
 * logs donate their (already-faulted) storage to the next one.
 */
class RecordStorePool
{
  public:
    std::vector<AuditRecord> acquire()
    {
        if (free_.empty()) {
            std::vector<AuditRecord> v;
            // Pre-faulting a first chunk is free in the disabled path
            // and skips the early realloc-copy ladder in the hot one.
            v.reserve(4096);
            return v;
        }
        std::vector<AuditRecord> v = std::move(free_.back());
        free_.pop_back();
        v.clear();
        return v;
    }

    void release(std::vector<AuditRecord> &&v)
    {
        // Only faulted-in storage is worth keeping.
        if (v.capacity() >= 4096 && free_.size() < kMaxFree)
            free_.push_back(std::move(v));
    }

  private:
    static constexpr size_t kMaxFree = 4;
    std::vector<std::vector<AuditRecord>> free_;
};

RecordStorePool &
recordPool()
{
    thread_local RecordStorePool pool;
    return pool;
}

} // namespace

AuditLog::AuditLog(sim::SimDuration gcThresholdNs)
    : records_(recordPool().acquire()), gcThresholdNs_(gcThresholdNs)
{
}

AuditLog::~AuditLog()
{
    recordPool().release(std::move(records_));
}

AuditReport
AuditLog::analyze() const
{
    AuditReport rep;
    rep.total = records_.size();
    for (const AuditRecord &r : records_) {
        if (r.actualHl)
            ++rep.hlEvents;
        switch (classifyAudit(r, gcThresholdNs_)) {
          case AuditCause::None:
            break;
          case AuditCause::FaultTaint:
            ++rep.hlMisses;
            ++rep.faultTaint;
            break;
          case AuditCause::GcDrift:
            ++rep.hlMisses;
            ++rep.gcDrift;
            break;
          case AuditCause::UnmodeledFlush:
            ++rep.hlMisses;
            ++rep.unmodeledFlush;
            break;
          case AuditCause::Unknown:
            ++rep.hlMisses;
            ++rep.unknown;
            break;
        }
    }
    return rep;
}

std::string
AuditReport::format() const
{
    char buf[512];
    const auto pct = [&](uint64_t n) {
        return hlMisses == 0 ? 0.0
                             : 100.0 * static_cast<double>(n) /
                                   static_cast<double>(hlMisses);
    };
    std::string out;
    std::snprintf(buf, sizeof buf,
                  "requests audited:   %llu\n"
                  "HL events:          %llu\n"
                  "HL misses:          %llu\n",
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(hlEvents),
                  static_cast<unsigned long long>(hlMisses));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "  unmodeled-flush:  %llu (%.1f%%)\n"
                  "  gc-drift:         %llu (%.1f%%)\n"
                  "  fault-taint:      %llu (%.1f%%)\n"
                  "  unknown:          %llu (%.1f%%)\n",
                  static_cast<unsigned long long>(unmodeledFlush),
                  pct(unmodeledFlush),
                  static_cast<unsigned long long>(gcDrift), pct(gcDrift),
                  static_cast<unsigned long long>(faultTaint),
                  pct(faultTaint),
                  static_cast<unsigned long long>(unknown), pct(unknown));
    out += buf;
    return out;
}

namespace {

/** Fields serialized per record, in line order. */
struct FieldSpec
{
    const char *key;
    int64_t (*get)(const AuditRecord &);
    void (*set)(AuditRecord &, int64_t);
};

constexpr FieldSpec kFields[] = {
    {"submit_ns", [](const AuditRecord &r) { return r.submit.ns(); },
     [](AuditRecord &r, int64_t v) { r.submit = sim::SimTime{v}; }},
    {"actual_ns", [](const AuditRecord &r) { return r.actualNs; },
     [](AuditRecord &r, int64_t v) { r.actualNs = v; }},
    {"eet_ns", [](const AuditRecord &r) { return r.predictedEetNs; },
     [](AuditRecord &r, int64_t v) { r.predictedEetNs = v; }},
    {"type",
     [](const AuditRecord &r) { return static_cast<int64_t>(r.type); },
     [](AuditRecord &r, int64_t v) { r.type = static_cast<uint8_t>(v); }},
    {"status",
     [](const AuditRecord &r) { return static_cast<int64_t>(r.status); },
     [](AuditRecord &r, int64_t v) { r.status = static_cast<uint8_t>(v); }},
    {"attempts",
     [](const AuditRecord &r) { return static_cast<int64_t>(r.attempts); },
     [](AuditRecord &r, int64_t v) {
         r.attempts = static_cast<uint32_t>(v);
     }},
    {"pred_hl",
     [](const AuditRecord &r) { return static_cast<int64_t>(r.predictedHl); },
     [](AuditRecord &r, int64_t v) { r.predictedHl = v != 0; }},
    {"actual_hl",
     [](const AuditRecord &r) { return static_cast<int64_t>(r.actualHl); },
     [](AuditRecord &r, int64_t v) { r.actualHl = v != 0; }},
    {"flush_expected",
     [](const AuditRecord &r) {
         return static_cast<int64_t>(r.flushExpected);
     },
     [](AuditRecord &r, int64_t v) { r.flushExpected = v != 0; }},
    {"gc_expected",
     [](const AuditRecord &r) { return static_cast<int64_t>(r.gcExpected); },
     [](AuditRecord &r, int64_t v) { r.gcExpected = v != 0; }},
    {"volume",
     [](const AuditRecord &r) { return static_cast<int64_t>(r.volume); },
     [](AuditRecord &r, int64_t v) { r.volume = static_cast<uint32_t>(v); }},
    {"buffer_counter",
     [](const AuditRecord &r) {
         return static_cast<int64_t>(r.bufferCounter);
     },
     [](AuditRecord &r, int64_t v) {
         r.bufferCounter = static_cast<uint32_t>(v);
     }},
    {"buffer_size",
     [](const AuditRecord &r) { return static_cast<int64_t>(r.bufferSize); },
     [](AuditRecord &r, int64_t v) {
         r.bufferSize = static_cast<uint32_t>(v);
     }},
    {"gc_interval_counter",
     [](const AuditRecord &r) {
         return static_cast<int64_t>(r.gcIntervalCounter);
     },
     [](AuditRecord &r, int64_t v) {
         r.gcIntervalCounter = static_cast<uint32_t>(v);
     }},
    {"flush_estimate_ns",
     [](const AuditRecord &r) { return r.flushEstimateNs; },
     [](AuditRecord &r, int64_t v) { r.flushEstimateNs = v; }},
    {"gc_estimate_ns", [](const AuditRecord &r) { return r.gcEstimateNs; },
     [](AuditRecord &r, int64_t v) { r.gcEstimateNs = v; }},
};

/** Parse `"key":<int>` out of one JSONL line. */
bool
findInt(const std::string &line, const char *key, int64_t *out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *p = line.c_str() + pos + needle.size();
    char *end = nullptr;
    const long long v = std::strtoll(p, &end, 10);
    if (end == p)
        return false;
    *out = v;
    return true;
}

} // namespace

void
AuditLog::writeJsonl(std::ostream &os) const
{
    for (const AuditRecord &r : records_) {
        os << '{';
        bool first = true;
        for (const FieldSpec &f : kFields) {
            if (!first)
                os << ',';
            first = false;
            os << '"' << f.key << "\":" << f.get(r);
        }
        os << ",\"cause\":\""
           << toString(classifyAudit(r, gcThresholdNs_)) << "\"}\n";
    }
}

bool
AuditLog::readJsonl(std::istream &is, AuditLog *out, size_t *errorLine)
{
    std::string line;
    size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        AuditRecord r;
        for (const FieldSpec &f : kFields) {
            int64_t v = 0;
            if (!findInt(line, f.key, &v)) {
                if (errorLine != nullptr)
                    *errorLine = lineNo;
                return false;
            }
            f.set(r, v);
        }
        out->add(r);
    }
    return true;
}

} // namespace ssdcheck::obs
