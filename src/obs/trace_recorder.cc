#include "obs/trace_recorder.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace ssdcheck::obs {

namespace {

/** JSON-escape a (metadata) string value. */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Nanoseconds rendered as microseconds with fixed 3-decimal precision
 * (the trace-event "ts"/"dur" unit). Fixed-point text, not doubles:
 * the output must be byte-stable across libc float formatting.
 */
void
writeMicros(std::ostream &os, int64_t ns)
{
    char buf[32];
    const char *sign = ns < 0 ? "-" : "";
    const int64_t mag = ns < 0 ? -ns : ns;
    std::snprintf(buf, sizeof buf, "%s%lld.%03lld", sign,
                  static_cast<long long>(mag / 1000),
                  static_cast<long long>(mag % 1000));
    os << buf;
}

void
writeArgs(std::ostream &os, const TraceArg *args, uint8_t numArgs)
{
    os << ",\"args\":{";
    for (uint8_t i = 0; i < numArgs; ++i) {
        if (i > 0)
            os << ',';
        os << '"' << args[i].key << "\":" << args[i].value;
    }
    os << '}';
}

} // namespace

TraceRecorder::TraceRecorder() = default;

void
TraceRecorder::growEvents()
{
    chunks_.push_back(std::make_unique<Event[]>(kChunkEvents));
}

void
TraceRecorder::growArgs()
{
    // Pad out the current chunk's tail so one event's args never
    // straddle a chunk boundary (serialization reads one span).
    argCount_ = argChunks_.size() << kArgShift;
    argChunks_.push_back(std::make_unique<TraceArg[]>(kChunkArgs));
}

void
TraceRecorder::setProcessName(uint32_t pid, const std::string &name)
{
    processNames_.emplace_back(pid, name);
}

void
TraceRecorder::setThreadName(TraceTrack track, const std::string &name)
{
    threadNames_.emplace_back(track, name);
}

void
TraceRecorder::clear()
{
    chunks_.clear();
    count_ = 0;
    argChunks_.clear();
    argCount_ = 0;
    processNames_.clear();
    threadNames_.clear();
}

void
TraceRecorder::writeChromeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&]() {
        if (!first)
            os << ",";
        os << "\n";
        first = false;
    };
    for (const auto &[pid, name] : processNames_) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"" << escapeJson(name)
           << "\"}}";
    }
    for (const auto &[track, name] : threadNames_) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << track.pid
           << ",\"tid\":" << track.tid << ",\"args\":{\"name\":\""
           << escapeJson(name) << "\"}}";
    }
    for (size_t i = 0; i < count_; ++i) {
        const Event &e = at(i);
        sep();
        os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
           << "\",\"ph\":\"" << e.phase << "\",\"ts\":";
        writeMicros(os, e.ts);
        if (e.phase == 'X') {
            os << ",\"dur\":";
            writeMicros(os, e.dur);
        }
        os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
        if (e.phase == 'i')
            os << ",\"s\":\"t\"";
        if (e.numArgs > 0 || e.phase == 'C')
            writeArgs(os, argsAt(e.argPos), e.numArgs);
        os << '}';
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string
TraceRecorder::toChromeJson() const
{
    std::ostringstream os;
    writeChromeJson(os);
    return os.str();
}

} // namespace ssdcheck::obs
