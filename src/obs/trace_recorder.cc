#include "obs/trace_recorder.h"

#include "obs/trace_binary.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ssdcheck::obs {

namespace {

/** JSON-escape a (metadata) string value. */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Nanoseconds rendered as microseconds with fixed 3-decimal precision
 * (the trace-event "ts"/"dur" unit). Fixed-point text, not doubles:
 * the output must be byte-stable across libc float formatting.
 */
void
writeMicros(std::ostream &os, int64_t ns)
{
    char buf[32];
    const char *sign = ns < 0 ? "-" : "";
    const int64_t mag = ns < 0 ? -ns : ns;
    std::snprintf(buf, sizeof buf, "%s%lld.%03lld", sign,
                  static_cast<long long>(mag / 1000),
                  static_cast<long long>(mag % 1000));
    os << buf;
}

void
writeArgs(std::ostream &os, const TraceArg *args, uint8_t numArgs)
{
    os << ",\"args\":{";
    for (uint8_t i = 0; i < numArgs; ++i) {
        if (i > 0)
            os << ',';
        os << '"' << args[i].key << "\":" << args[i].value;
    }
    os << '}';
}

} // namespace

namespace {

/**
 * Thread-local recycling pools for event/arg chunks. Faulting in a
 * fresh 48-64 KB chunk costs far more than every event it will ever
 * hold (each page is a minor fault on first touch), so chunks are
 * returned here on clear()/destruction and handed to the next grower
 * already faulted. Thread-local because each grid worker records into
 * its own recorder; chunk contents are never read before being
 * overwritten, so reuse cannot leak state between runs.
 */
template <typename T, size_t kCount>
class ChunkPool
{
  public:
    std::unique_ptr<T[]> acquire()
    {
        if (free_.empty())
            // for_overwrite: a value-initialized chunk would memset
            // memory push() is about to overwrite anyway.
            return std::make_unique_for_overwrite<T[]>(kCount);
        std::unique_ptr<T[]> p = std::move(free_.back());
        free_.pop_back();
        return p;
    }

    void release(std::vector<std::unique_ptr<T[]>> &chunks)
    {
        for (auto &c : chunks)
            if (free_.size() < kMaxFree)
                free_.push_back(std::move(c));
        chunks.clear();
    }

  private:
    /** Bound on retained memory (~48-64 MB per arena type). */
    static constexpr size_t kMaxFree = 1024;
    std::vector<std::unique_ptr<T[]>> free_;
};

} // namespace

// Out-of-line accessors so trace_recorder.h stays free of the pool.
static ChunkPool<TraceRecorder::Event, TraceRecorder::kChunkEvents> &
eventPool()
{
    thread_local ChunkPool<TraceRecorder::Event,
                           TraceRecorder::kChunkEvents> pool;
    return pool;
}

static ChunkPool<TraceArg, TraceRecorder::kChunkArgs> &
argPool()
{
    thread_local ChunkPool<TraceArg, TraceRecorder::kChunkArgs> pool;
    return pool;
}

TraceRecorder::TraceRecorder() : table_(256, 0) {}

uint16_t
TraceRecorder::internSlow(const char *s)
{
    if (strings_.size() * 2 >= table_.size()) {
        // Rehash at 50% load so the inline probe loop always finds an
        // empty slot. Distinct strings are a handful of literals in
        // practice; this path is effectively startup-only.
        std::vector<uint32_t> bigger(table_.size() * 2, 0);
        const size_t mask = bigger.size() - 1;
        for (uint32_t id = 1; id <= strings_.size(); ++id) {
            const auto h = reinterpret_cast<uintptr_t>(strings_[id - 1]);
            size_t i = (h >> 3) * 0x9E3779B97F4A7C15ull >> 32 & mask;
            while (bigger[i] != 0)
                i = (i + 1) & mask;
            bigger[i] = id;
        }
        table_ = std::move(bigger);
    }
    assert(strings_.size() < 0xFFFF && "trace string table overflow");
    strings_.push_back(s);
    const auto id = static_cast<uint32_t>(strings_.size());
    const auto h = reinterpret_cast<uintptr_t>(s);
    const size_t mask = table_.size() - 1;
    size_t i = (h >> 3) * 0x9E3779B97F4A7C15ull >> 32 & mask;
    while (table_[i] != 0)
        i = (i + 1) & mask;
    table_[i] = id;
    return static_cast<uint16_t>(id - 1);
}

TraceRecorder::~TraceRecorder()
{
    eventPool().release(chunks_);
    argPool().release(argChunks_);
}

void
TraceRecorder::advanceEventChunk()
{
    if (spill_ != nullptr &&
        count_ - spilledEvents_ == kSpillLiveChunks << kEventShift)
        spillOldestChunk();
    if (count_ - spilledEvents_ == chunks_.size() << kEventShift)
        chunks_.push_back(eventPool().acquire());
    curEventChunk_ =
        chunks_[(count_ - spilledEvents_) >> kEventShift].get();
}

void
TraceRecorder::advanceArgChunk(size_t n)
{
    // Pad out the current chunk's tail so one event's args never
    // straddle a chunk boundary (serialization reads one span).
    const size_t apos = argCount_ & (kChunkArgs - 1);
    if (apos != 0 && apos + n > kChunkArgs)
        argCount_ += kChunkArgs - apos;
    const size_t live = argCount_ - (spilledArgChunks_ << kArgShift);
    if (live == argChunks_.size() << kArgShift)
        argChunks_.push_back(argPool().acquire());
    curArgChunk_ = argChunks_[live >> kArgShift].get();
}

void
TraceRecorder::spillTo(std::ostream &os)
{
    assert(count_ == 0 && "spill mode must be enabled before recording");
    spill_ = std::make_unique<TraceBinaryEncoder>(os);
}

void
TraceRecorder::spillOldestChunk()
{
    for (size_t i = spilledEvents_; i < spilledEvents_ + kChunkEvents;
         ++i) {
        const Event &e = at(i);
        spill_->event(*this, e, argsAt(e.argPos));
    }
    spilledEvents_ += kChunkEvents;
    // Rotate the drained event chunk behind the live window for reuse.
    std::unique_ptr<Event[]> c = std::move(chunks_.front());
    chunks_.erase(chunks_.begin());
    chunks_.push_back(std::move(c));
    // Arg chunks wholly below the first live arg position are drained
    // too (argPos is monotone across events).
    const size_t liveArg = count_ == spilledEvents_
                               ? argCount_
                               : at(spilledEvents_).argPos;
    while ((spilledArgChunks_ + 1) << kArgShift <= liveArg) {
        std::unique_ptr<TraceArg[]> a = std::move(argChunks_.front());
        argChunks_.erase(argChunks_.begin());
        argChunks_.push_back(std::move(a));
        ++spilledArgChunks_;
    }
}

void
TraceRecorder::finishSpill()
{
    if (spill_ == nullptr)
        return;
    for (size_t i = spilledEvents_; i < count_; ++i) {
        const Event &e = at(i);
        spill_->event(*this, e, argsAt(e.argPos));
    }
    spilledEvents_ = count_;
    spill_->finish(*this);
    spill_.reset();
}

void
TraceRecorder::setProcessName(uint32_t pid, const std::string &name)
{
    processNames_.emplace_back(pid, name);
}

void
TraceRecorder::setThreadName(TraceTrack track, const std::string &name)
{
    threadNames_.emplace_back(track, name);
}

void
TraceRecorder::clear()
{
    // Arenas are retained: a cleared recorder is about to record again
    // (attach/record/export cycles), and the chunks' pages are already
    // faulted in — the expensive part of growing.
    count_ = 0;
    argCount_ = 0;
    curEventChunk_ = nullptr;
    curArgChunk_ = nullptr;
    // Reset interning too: a cleared recorder must behave exactly like
    // a fresh one (string ids are observable through the binary trace
    // format).
    strings_.clear();
    std::fill(table_.begin(), table_.end(), 0u);
    processNames_.clear();
    threadNames_.clear();
    // clear() abandons an in-progress spill stream (the caller owns
    // the ostream and decides what to do with the partial file).
    spill_.reset();
    spilledEvents_ = 0;
    spilledArgChunks_ = 0;
}

void
TraceRecorder::writeChromeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&]() {
        if (!first)
            os << ",";
        os << "\n";
        first = false;
    };
    for (const auto &[pid, name] : processNames_) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"" << escapeJson(name)
           << "\"}}";
    }
    for (const auto &[track, name] : threadNames_) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << track.pid
           << ",\"tid\":" << track.tid << ",\"args\":{\"name\":\""
           << escapeJson(name) << "\"}}";
    }
    for (size_t i = spilledEvents_; i < count_; ++i) {
        const Event &e = at(i);
        sep();
        os << "{\"name\":\"" << strings_[e.nameId] << "\",\"cat\":\""
           << strings_[e.catId] << "\",\"ph\":\"" << e.phase
           << "\",\"ts\":";
        writeMicros(os, e.ts);
        if (e.phase == 'X') {
            os << ",\"dur\":";
            writeMicros(os, e.dur);
        }
        os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
        if (e.phase == 'i')
            os << ",\"s\":\"t\"";
        if (e.numArgs > 0 || e.phase == 'C')
            writeArgs(os, argsAt(e.argPos), e.numArgs);
        os << '}';
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string
TraceRecorder::toChromeJson() const
{
    std::ostringstream os;
    writeChromeJson(os);
    return os.str();
}

} // namespace ssdcheck::obs
