#include "obs/registry.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ssdcheck::obs {

void
Histogram::observe(int64_t v)
{
    if (d_ == nullptr)
        return;
    size_t i = 0;
    while (i < d_->bounds.size() && v > d_->bounds[i])
        ++i;
    ++d_->counts[i];
    ++d_->count;
    d_->sum += v;
}

/** One registered metric: owned storage or a view into a component. */
struct Registry::Metric
{
    enum class Kind : uint8_t
    {
        OwnedCounter,
        OwnedGauge,
        OwnedHistogram,
        ViewU64,
        ViewI64,
        ViewU8,
    };

    std::string name;
    Labels labels;
    Kind kind;
    // Owned storage (one of, by kind).
    uint64_t counter = 0;
    int64_t gauge = 0;
    HistogramData hist;
    // View sources (non-owned, by kind).
    const uint64_t *srcU64 = nullptr;
    const int64_t *srcI64 = nullptr;
    const uint8_t *srcU8 = nullptr;

    const char *typeName() const
    {
        switch (kind) {
          case Kind::OwnedCounter:
          case Kind::ViewU64:
            return "counter";
          case Kind::OwnedHistogram:
            return "histogram";
          case Kind::OwnedGauge:
          case Kind::ViewI64:
          case Kind::ViewU8:
            return "gauge";
        }
        return "gauge";
    }
};

Registry::~Registry()
{
    for (Metric *m : metrics_)
        delete m;
}

Registry::Metric *
Registry::find(const std::string &name, const Labels &labels) const
{
    for (Metric *m : metrics_) {
        if (m->name == name && m->labels == labels)
            return m;
    }
    return nullptr;
}

Registry::Metric &
Registry::add(Metric m)
{
    metrics_.push_back(new Metric(std::move(m)));
    return *metrics_.back();
}

Counter
Registry::counter(const std::string &name, Labels labels)
{
    if (Metric *m = find(name, labels))
        return Counter(&m->counter);
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::OwnedCounter;
    return Counter(&add(std::move(m)).counter);
}

Gauge
Registry::gauge(const std::string &name, Labels labels)
{
    if (Metric *m = find(name, labels))
        return Gauge(&m->gauge);
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::OwnedGauge;
    return Gauge(&add(std::move(m)).gauge);
}

Histogram
Registry::histogram(const std::string &name, std::vector<int64_t> bounds,
                    Labels labels)
{
    if (Metric *m = find(name, labels))
        return Histogram(&m->hist);
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::OwnedHistogram;
    m.hist.bounds = std::move(bounds);
    m.hist.counts.assign(m.hist.bounds.size() + 1, 0);
    return Histogram(&add(std::move(m)).hist);
}

void
Registry::exportCounter(const std::string &name, Labels labels,
                        const uint64_t *src)
{
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::ViewU64;
    m.srcU64 = src;
    add(std::move(m));
}

void
Registry::exportGauge(const std::string &name, Labels labels,
                      const int64_t *src)
{
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::ViewI64;
    m.srcI64 = src;
    add(std::move(m));
}

void
Registry::exportGauge(const std::string &name, Labels labels,
                      const uint8_t *src)
{
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::ViewU8;
    m.srcU8 = src;
    add(std::move(m));
}

int64_t
Registry::read(const Metric &m)
{
    switch (m.kind) {
      case Metric::Kind::OwnedCounter:
        return static_cast<int64_t>(m.counter);
      case Metric::Kind::OwnedGauge:
        return m.gauge;
      case Metric::Kind::OwnedHistogram:
        return static_cast<int64_t>(m.hist.count);
      case Metric::Kind::ViewU64:
        return static_cast<int64_t>(*m.srcU64);
      case Metric::Kind::ViewI64:
        return *m.srcI64;
      case Metric::Kind::ViewU8:
        return static_cast<int64_t>(*m.srcU8);
    }
    return 0;
}

std::optional<int64_t>
Registry::value(const std::string &name, const Labels &labels) const
{
    const Metric *m = find(name, labels);
    if (m == nullptr)
        return std::nullopt;
    return read(*m);
}

size_t
Registry::size() const
{
    return metrics_.size();
}

void
Registry::enableTimeline(sim::SimDuration interval)
{
    timelineInterval_ = interval;
    timelineNext_ = interval;
}

void
Registry::sample(sim::SimTime now)
{
    TimelineSample s;
    s.time = now;
    s.values.reserve(metrics_.size());
    for (const Metric *m : metrics_)
        s.values.push_back(read(*m));
    timeline_.push_back(std::move(s));
    // Skip windows with no traffic rather than emitting one sample per
    // elapsed interval (virtual time can jump far per completion).
    timelineNext_ = now + timelineInterval_;
}

size_t
Registry::timelineSamples() const
{
    return timeline_.size();
}

namespace {

void
writeLabels(std::ostream &os, const Labels &labels)
{
    os << '{';
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            os << ',';
        os << '"' << labels[i].first << "\":\"" << labels[i].second << '"';
    }
    os << '}';
}

} // namespace

void
Registry::writeJson(std::ostream &os, sim::SimTime now) const
{
    os << "{\"time_ns\":" << now << ",\"metrics\":[";
    for (size_t i = 0; i < metrics_.size(); ++i) {
        const Metric &m = *metrics_[i];
        os << (i > 0 ? ",\n" : "\n");
        os << "{\"name\":\"" << m.name << "\",\"labels\":";
        writeLabels(os, m.labels);
        os << ",\"type\":\"" << m.typeName() << "\"";
        if (m.kind == Metric::Kind::OwnedHistogram) {
            os << ",\"count\":" << m.hist.count << ",\"sum\":" << m.hist.sum
               << ",\"buckets\":[";
            for (size_t b = 0; b < m.hist.counts.size(); ++b) {
                if (b > 0)
                    os << ',';
                os << "{\"le\":";
                if (b < m.hist.bounds.size())
                    os << m.hist.bounds[b];
                else
                    os << "\"+inf\"";
                os << ",\"count\":" << m.hist.counts[b] << '}';
            }
            os << ']';
        } else {
            os << ",\"value\":" << read(m);
        }
        os << '}';
    }
    os << "\n]";
    if (timelineInterval_ > 0) {
        os << ",\"timeline_interval_ns\":" << timelineInterval_
           << ",\"timeline\":[";
        for (size_t i = 0; i < timeline_.size(); ++i) {
            os << (i > 0 ? ",\n" : "\n");
            os << "{\"time_ns\":" << timeline_[i].time << ",\"values\":[";
            for (size_t v = 0; v < timeline_[i].values.size(); ++v) {
                if (v > 0)
                    os << ',';
                os << timeline_[i].values[v];
            }
            os << "]}";
        }
        os << "\n]";
    }
    os << "}\n";
}

std::string
Registry::toJson(sim::SimTime now) const
{
    std::ostringstream os;
    writeJson(os, now);
    return os.str();
}

} // namespace ssdcheck::obs
