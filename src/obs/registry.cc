#include "obs/registry.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "recovery/state_io.h"

namespace ssdcheck::obs {

/** One registered metric: owned storage or a view into a component. */
struct Registry::Metric
{
    enum class Kind : uint8_t
    {
        OwnedCounter,
        OwnedGauge,
        OwnedHistogram,
        ViewU64,
        ViewI64,
        ViewU8,
    };

    std::string name;
    Labels labels;
    Kind kind;
    // Owned storage (one of, by kind).
    uint64_t counter = 0;
    int64_t gauge = 0;
    HistogramData hist;
    // View sources (non-owned, by kind).
    const uint64_t *srcU64 = nullptr;
    const int64_t *srcI64 = nullptr;
    const uint8_t *srcU8 = nullptr;

    const char *typeName() const
    {
        switch (kind) {
          case Kind::OwnedCounter:
          case Kind::ViewU64:
            return "counter";
          case Kind::OwnedHistogram:
            return "histogram";
          case Kind::OwnedGauge:
          case Kind::ViewI64:
          case Kind::ViewU8:
            return "gauge";
        }
        return "gauge";
    }
};

Registry::~Registry()
{
    for (Metric *m : metrics_)
        delete m;
}

Registry::Metric *
Registry::find(const std::string &name, const Labels &labels) const
{
    for (Metric *m : metrics_) {
        if (m->name == name && m->labels == labels)
            return m;
    }
    return nullptr;
}

Registry::Metric &
Registry::add(Metric m)
{
    metrics_.push_back(new Metric(std::move(m)));
    return *metrics_.back();
}

Counter
Registry::counter(const std::string &name, Labels labels)
{
    if (Metric *m = find(name, labels))
        return Counter(&m->counter);
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::OwnedCounter;
    return Counter(&add(std::move(m)).counter);
}

Gauge
Registry::gauge(const std::string &name, Labels labels)
{
    if (Metric *m = find(name, labels))
        return Gauge(&m->gauge);
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::OwnedGauge;
    return Gauge(&add(std::move(m)).gauge);
}

Histogram
Registry::histogram(const std::string &name, std::vector<int64_t> bounds,
                    Labels labels)
{
    if (Metric *m = find(name, labels))
        return Histogram(&m->hist);
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::OwnedHistogram;
    m.hist.bounds = std::move(bounds);
    m.hist.counts.assign(m.hist.bounds.size() + 1, 0);
    return Histogram(&add(std::move(m)).hist);
}

void
Registry::exportCounter(const std::string &name, Labels labels,
                        const uint64_t *src)
{
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::ViewU64;
    m.srcU64 = src;
    add(std::move(m));
}

void
Registry::exportGauge(const std::string &name, Labels labels,
                      const int64_t *src)
{
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::ViewI64;
    m.srcI64 = src;
    add(std::move(m));
}

void
Registry::exportGauge(const std::string &name, Labels labels,
                      const uint8_t *src)
{
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.kind = Metric::Kind::ViewU8;
    m.srcU8 = src;
    add(std::move(m));
}

int64_t
histogramQuantile(const HistogramData &h, uint32_t permille)
{
    if (h.count == 0 || h.bounds.empty())
        return 0;
    // 1-based rank of the requested quantile, rounding up so p100
    // style requests land on the last observation.
    uint64_t rank = (h.count * permille + 999) / 1000;
    if (rank == 0)
        rank = 1;
    if (rank > h.count)
        rank = h.count;
    uint64_t cum = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
        const uint64_t before = cum;
        cum += h.counts[i];
        if (cum < rank || h.counts[i] == 0)
            continue;
        const int64_t lower = i == 0 ? 0 : h.bounds[i - 1];
        // The +inf bucket has no finite width: clamp to the last
        // finite bound (the exporter's documented estimate).
        const int64_t upper =
            i < h.bounds.size() ? h.bounds[i] : h.bounds.back();
        if (upper <= lower)
            return upper;
        const uint64_t pos = rank - before; // 1..counts[i]
        return lower + static_cast<int64_t>(
                           static_cast<uint64_t>(upper - lower) * pos /
                           h.counts[i]);
    }
    return h.bounds.back();
}

std::vector<MetricSnapshot>
Registry::snapshotMetrics() const
{
    std::vector<MetricSnapshot> out;
    out.reserve(metrics_.size());
    for (const Metric *m : metrics_) {
        MetricSnapshot s;
        s.name = m->name;
        s.labels = m->labels;
        switch (m->kind) {
          case Metric::Kind::OwnedCounter:
          case Metric::Kind::ViewU64:
            s.type = MetricSnapshot::Type::Counter;
            break;
          case Metric::Kind::OwnedHistogram:
            s.type = MetricSnapshot::Type::Histogram;
            s.hist = m->hist;
            break;
          case Metric::Kind::OwnedGauge:
          case Metric::Kind::ViewI64:
          case Metric::Kind::ViewU8:
            s.type = MetricSnapshot::Type::Gauge;
            break;
        }
        s.value = read(*m);
        out.push_back(std::move(s));
    }
    return out;
}

int64_t
Registry::read(const Metric &m)
{
    switch (m.kind) {
      case Metric::Kind::OwnedCounter:
        return static_cast<int64_t>(m.counter);
      case Metric::Kind::OwnedGauge:
        return m.gauge;
      case Metric::Kind::OwnedHistogram:
        return static_cast<int64_t>(m.hist.count);
      case Metric::Kind::ViewU64:
        return static_cast<int64_t>(*m.srcU64);
      case Metric::Kind::ViewI64:
        return *m.srcI64;
      case Metric::Kind::ViewU8:
        return static_cast<int64_t>(*m.srcU8);
    }
    return 0;
}

std::optional<int64_t>
Registry::value(const std::string &name, const Labels &labels) const
{
    const Metric *m = find(name, labels);
    if (m == nullptr)
        return std::nullopt;
    return read(*m);
}

size_t
Registry::size() const
{
    return metrics_.size();
}

void
Registry::enableTimeline(sim::SimDuration interval)
{
    timelineInterval_ = interval;
    timelineNext_ = sim::kTimeZero + interval;
}

void
Registry::sample(sim::SimTime now)
{
    TimelineSample s;
    s.time = now;
    s.values.reserve(metrics_.size());
    for (const Metric *m : metrics_)
        s.values.push_back(read(*m));
    timeline_.push_back(std::move(s));
    // Skip windows with no traffic rather than emitting one sample per
    // elapsed interval (virtual time can jump far per completion).
    timelineNext_ = now + timelineInterval_;
}

size_t
Registry::timelineSamples() const
{
    return timeline_.size();
}

namespace {

void
writeLabels(std::ostream &os, const Labels &labels)
{
    os << '{';
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            os << ',';
        os << '"' << labels[i].first << "\":\"" << labels[i].second << '"';
    }
    os << '}';
}

} // namespace

void
Registry::writeJson(std::ostream &os, sim::SimTime now) const
{
    os << "{\"time_ns\":" << now.ns() << ",\"metrics\":[";
    for (size_t i = 0; i < metrics_.size(); ++i) {
        const Metric &m = *metrics_[i];
        os << (i > 0 ? ",\n" : "\n");
        os << "{\"name\":\"" << m.name << "\",\"labels\":";
        writeLabels(os, m.labels);
        os << ",\"type\":\"" << m.typeName() << "\"";
        if (m.kind == Metric::Kind::OwnedHistogram) {
            os << ",\"count\":" << m.hist.count << ",\"sum\":" << m.hist.sum
               << ",\"p50\":" << histogramQuantile(m.hist, 500)
               << ",\"p95\":" << histogramQuantile(m.hist, 950)
               << ",\"p99\":" << histogramQuantile(m.hist, 990)
               << ",\"p999\":" << histogramQuantile(m.hist, 999)
               << ",\"buckets\":[";
            for (size_t b = 0; b < m.hist.counts.size(); ++b) {
                if (b > 0)
                    os << ',';
                os << "{\"le\":";
                if (b < m.hist.bounds.size())
                    os << m.hist.bounds[b];
                else
                    os << "\"+inf\"";
                os << ",\"count\":" << m.hist.counts[b] << '}';
            }
            os << ']';
        } else {
            os << ",\"value\":" << read(m);
        }
        os << '}';
    }
    os << "\n]";
    if (timelineInterval_ > 0) {
        os << ",\"timeline_interval_ns\":" << timelineInterval_
           << ",\"timeline\":[";
        for (size_t i = 0; i < timeline_.size(); ++i) {
            os << (i > 0 ? ",\n" : "\n");
            os << "{\"time_ns\":" << timeline_[i].time.ns()
               << ",\"values\":[";
            for (size_t v = 0; v < timeline_[i].values.size(); ++v) {
                if (v > 0)
                    os << ',';
                os << timeline_[i].values[v];
            }
            os << "]}";
        }
        os << "\n]";
    }
    os << "}\n";
}

std::string
Registry::toJson(sim::SimTime now) const
{
    std::ostringstream os;
    writeJson(os, now);
    return os.str();
}

void
Registry::saveState(recovery::StateWriter &w) const
{
    uint32_t owned = 0;
    for (const Metric *m : metrics_) {
        if (m->kind == Metric::Kind::OwnedCounter ||
            m->kind == Metric::Kind::OwnedGauge ||
            m->kind == Metric::Kind::OwnedHistogram)
            ++owned;
    }
    w.u32(owned);
    for (const Metric *m : metrics_) {
        switch (m->kind) {
          case Metric::Kind::OwnedCounter:
            w.str(m->name);
            w.u8(static_cast<uint8_t>(m->kind));
            w.u64(m->counter);
            break;
          case Metric::Kind::OwnedGauge:
            w.str(m->name);
            w.u8(static_cast<uint8_t>(m->kind));
            w.i64(m->gauge);
            break;
          case Metric::Kind::OwnedHistogram:
            w.str(m->name);
            w.u8(static_cast<uint8_t>(m->kind));
            w.u32(static_cast<uint32_t>(m->hist.counts.size()));
            for (uint64_t c : m->hist.counts)
                w.u64(c);
            w.u64(m->hist.count);
            w.i64(m->hist.sum);
            break;
          case Metric::Kind::ViewU64:
          case Metric::Kind::ViewI64:
          case Metric::Kind::ViewU8:
            break;
        }
    }
    w.u32(static_cast<uint32_t>(timeline_.size()));
    for (const TimelineSample &s : timeline_) {
        w.i64(s.time.ns());
        w.u32(static_cast<uint32_t>(s.values.size()));
        for (int64_t v : s.values)
            w.i64(v);
    }
    w.i64(timelineNext_.ns());
}

bool
Registry::loadState(recovery::StateReader &r)
{
    std::vector<Metric *> owned;
    for (Metric *m : metrics_) {
        if (m->kind == Metric::Kind::OwnedCounter ||
            m->kind == Metric::Kind::OwnedGauge ||
            m->kind == Metric::Kind::OwnedHistogram)
            owned.push_back(m);
    }
    const uint32_t n = r.u32();
    if (r.ok() && n != owned.size()) {
        r.fail("registry owned-metric count does not match this run");
        return false;
    }
    for (Metric *m : owned) {
        const std::string name = r.str();
        const uint8_t kind = r.u8();
        if (!r.ok())
            return false;
        if (name != m->name || kind != static_cast<uint8_t>(m->kind)) {
            r.fail("registry metric order/shape does not match this run");
            return false;
        }
        switch (m->kind) {
          case Metric::Kind::OwnedCounter:
            m->counter = r.u64();
            break;
          case Metric::Kind::OwnedGauge:
            m->gauge = r.i64();
            break;
          case Metric::Kind::OwnedHistogram: {
            const uint32_t nBuckets = r.u32();
            if (r.ok() && nBuckets != m->hist.counts.size()) {
                r.fail("registry histogram bucket count mismatch");
                return false;
            }
            for (uint64_t &c : m->hist.counts)
                c = r.u64();
            m->hist.count = r.u64();
            m->hist.sum = r.i64();
            break;
          }
          case Metric::Kind::ViewU64:
          case Metric::Kind::ViewI64:
          case Metric::Kind::ViewU8:
            break;
        }
    }
    const uint64_t nSamples = r.checkCount(r.u32(), 12);
    timeline_.clear();
    for (uint64_t i = 0; i < nSamples && r.ok(); ++i) {
        TimelineSample s;
        s.time = sim::SimTime{r.i64()};
        const uint64_t nValues = r.checkCount(r.u32(), 8);
        for (uint64_t v = 0; v < nValues; ++v)
            s.values.push_back(r.i64());
        timeline_.push_back(std::move(s));
    }
    timelineNext_ = sim::SimTime{r.i64()};
    return r.ok();
}

} // namespace ssdcheck::obs
