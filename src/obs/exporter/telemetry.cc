#include "obs/exporter/telemetry.h"

#include <chrono>
#include <map>
#include <sstream>
#include <utility>

namespace ssdcheck::obs {

uint64_t
exporterWallNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
TelemetryHub::publish(const Registry &reg, const RunStatus &run)
{
    auto snap = std::make_shared<TelemetrySnapshot>();
    snap->metrics = reg.snapshotMetrics();
    snap->run = run;
    snap->wallNs = exporterWallNs();
    std::lock_guard<std::mutex> lock(mu_);
    snap->sequence = ++sequence_;
    snap_ = std::move(snap);
}

std::shared_ptr<const TelemetrySnapshot>
TelemetryHub::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return snap_;
}

uint64_t
TelemetryHub::sequence() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sequence_;
}

std::string
escapeLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

namespace {

/** `{k1="v1",k2="v2"}` (empty string when no labels). @p extraKey /
 *  @p extraValue append one more pair (the histogram `le`). */
std::string
labelBlock(const Labels &labels, const char *extraKey = nullptr,
           const std::string &extraValue = std::string())
{
    if (labels.empty() && extraKey == nullptr)
        return std::string();
    std::string out = "{";
    bool first = true;
    for (const auto &kv : labels) {
        if (!first)
            out += ',';
        first = false;
        out += kv.first;
        out += "=\"";
        out += escapeLabelValue(kv.second);
        out += '"';
    }
    if (extraKey != nullptr) {
        if (!first)
            out += ',';
        out += extraKey;
        out += "=\"";
        out += extraValue;
        out += '"';
    }
    out += '}';
    return out;
}

/** Metric indices grouped by name in first-registration order, so the
 *  exposition is byte-stable and every family is contiguous (the
 *  format forbids interleaved families). */
std::vector<std::pair<std::string, std::vector<size_t>>>
familiesOf(const std::vector<MetricSnapshot> &metrics)
{
    std::vector<std::pair<std::string, std::vector<size_t>>> families;
    std::map<std::string, size_t> at;
    for (size_t i = 0; i < metrics.size(); ++i) {
        auto it = at.find(metrics[i].name);
        if (it == at.end()) {
            at.emplace(metrics[i].name, families.size());
            families.push_back({metrics[i].name, {i}});
        } else {
            families[it->second].second.push_back(i);
        }
    }
    return families;
}

void
helpAndType(std::ostringstream &os, const std::string &fullName,
            const char *type)
{
    os << "# HELP " << fullName << " ssdcheck registry metric.\n"
       << "# TYPE " << fullName << ' ' << type << '\n';
}

struct QuantileSpec
{
    const char *suffix;
    uint32_t permille;
};

constexpr QuantileSpec kQuantiles[] = {
    {"_p50", 500}, {"_p95", 950}, {"_p99", 990}, {"_p999", 999}};

} // namespace

std::string
renderPrometheus(const TelemetrySnapshot &snap)
{
    std::ostringstream os;
    const auto families = familiesOf(snap.metrics);
    for (const auto &family : families) {
        const std::string full = "ssdcheck_" + family.first;
        const MetricSnapshot &head = snap.metrics[family.second[0]];
        switch (head.type) {
          case MetricSnapshot::Type::Counter:
          case MetricSnapshot::Type::Gauge: {
            helpAndType(os, full,
                        head.type == MetricSnapshot::Type::Counter
                            ? "counter"
                            : "gauge");
            for (size_t i : family.second) {
                const MetricSnapshot &m = snap.metrics[i];
                os << full << labelBlock(m.labels) << ' ' << m.value
                   << '\n';
            }
            break;
          }
          case MetricSnapshot::Type::Histogram: {
            helpAndType(os, full, "histogram");
            for (size_t i : family.second) {
                const MetricSnapshot &m = snap.metrics[i];
                uint64_t cum = 0;
                for (size_t b = 0; b < m.hist.counts.size(); ++b) {
                    cum += m.hist.counts[b];
                    std::string le;
                    if (b < m.hist.bounds.size())
                        le = std::to_string(m.hist.bounds[b]);
                    else
                        le = "+Inf";
                    os << full << "_bucket"
                       << labelBlock(m.labels, "le", le) << ' ' << cum
                       << '\n';
                }
                os << full << "_sum" << labelBlock(m.labels) << ' '
                   << m.hist.sum << '\n';
                os << full << "_count" << labelBlock(m.labels) << ' '
                   << m.hist.count << '\n';
            }
            // Interpolated quantile estimates as gauge families of
            // their own (native histogram quantiles are a server-side
            // concept; these make p99 visible on a bare scrape).
            for (const QuantileSpec &q : kQuantiles) {
                helpAndType(os, full + q.suffix, "gauge");
                for (size_t i : family.second) {
                    const MetricSnapshot &m = snap.metrics[i];
                    os << full << q.suffix << labelBlock(m.labels) << ' '
                       << histogramQuantile(m.hist, q.permille) << '\n';
                }
            }
            break;
          }
        }
    }
    return os.str();
}

std::string
renderRunz(const TelemetrySnapshot &snap)
{
    std::ostringstream os;
    os << "{\"sequence\":" << snap.sequence
       << ",\"phase\":\"" << snap.run.phase << '"'
       << ",\"cursor\":" << snap.run.cursor
       << ",\"total_requests\":" << snap.run.totalRequests
       << ",\"sim_time_ns\":" << snap.run.simTimeNs
       << ",\"checkpoints\":" << snap.run.checkpoints
       << ",\"breaker_state\":" << static_cast<int>(snap.run.breakerState)
       << ",\"ladder_level\":" << static_cast<int>(snap.run.ladderLevel)
       << ",\"shed_total\":" << snap.run.shedTotal
       << ",\"error_budget_ppm\":" << snap.run.errorBudgetPpm
       << ",\"supervisor_state\":"
       << static_cast<int>(snap.run.supervisorState)
       << ",\"healthy\":" << (snap.run.healthy ? "true" : "false")
       << ",\"metrics\":" << snap.metrics.size() << "}\n";
    return os.str();
}

bool
renderHealthz(const TelemetrySnapshot *snap, uint64_t nowWallNs,
              uint64_t staleNs, std::string *body)
{
    std::ostringstream os;
    bool healthy = false;
    if (snap == nullptr) {
        os << "{\"healthy\":false,\"reason\":\"no snapshot published\"}\n";
    } else {
        const uint64_t age =
            nowWallNs > snap->wallNs ? nowWallNs - snap->wallNs : 0;
        const bool fresh = age <= staleNs;
        healthy = fresh && snap->run.healthy;
        os << "{\"healthy\":" << (healthy ? "true" : "false")
           << ",\"sequence\":" << snap->sequence
           << ",\"age_ms\":" << age / 1000000
           << ",\"stale_after_ms\":" << staleNs / 1000000
           << ",\"run_healthy\":" << (snap->run.healthy ? "true" : "false")
           << ",\"supervisor_state\":"
           << static_cast<int>(snap->run.supervisorState) << "}\n";
    }
    if (body != nullptr)
        *body = os.str();
    return healthy;
}

} // namespace ssdcheck::obs
