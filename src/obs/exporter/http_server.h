/**
 * @file
 * Minimal embedded HTTP/1.0 server for the live telemetry plane.
 *
 * One listener thread on 127.0.0.1 serving three read-only endpoints
 * over the TelemetryHub's immutable snapshots:
 *
 *   GET /metrics   Prometheus text exposition (format 0.0.4)
 *   GET /healthz   200/503 + JSON verdict (publish staleness watchdog)
 *   GET /runz      JSON run progress
 *
 * The server never touches live simulator state — only published
 * snapshots — so it can run while the sim thread is mid-step, and a
 * stuck or killed run loop flips /healthz to 503 once the latest
 * snapshot goes stale. Requests are handled sequentially (scrapes are
 * rare and tiny); malformed request lines get 400, unknown paths 404,
 * non-GET methods 405. Connections close after one response.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/exporter/telemetry.h"

namespace ssdcheck::obs {

/** The telemetry endpoint server (one per listening CLI command). */
class HttpServer
{
  public:
    /** @param hub snapshot source; must outlive the server. */
    explicit HttpServer(TelemetryHub &hub) : hub_(hub) {}
    ~HttpServer() { stop(); }
    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** /healthz staleness threshold (default 10s). Set before start(). */
    void setStaleNs(uint64_t ns) { staleNs_ = ns; }

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral, see port()) and start the
     * listener thread. @return false with @p err set on failure.
     */
    bool start(uint16_t port, std::string *err);

    /** The bound port (after a successful start). */
    uint16_t port() const { return port_; }

    /** Stop the listener and join the thread (idempotent). */
    void stop();

  private:
    void loop();
    void handle(int fd);

    TelemetryHub &hub_;
    uint64_t staleNs_ = 10ull * 1000 * 1000 * 1000;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> running_{false};
};

/**
 * Tiny blocking HTTP GET against 127.0.0.1:@p port (test/harness
 * client; 5s socket timeouts). @return false when the connection or
 * parse failed; otherwise @p status and @p body receive the response.
 */
bool httpGet(uint16_t port, const std::string &path, int *status,
             std::string *body);

} // namespace ssdcheck::obs
