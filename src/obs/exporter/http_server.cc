#include "obs/exporter/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace ssdcheck::obs {

namespace {

/** Write all of @p data (MSG_NOSIGNAL: a dropped scraper must not
 *  SIGPIPE the run). */
void
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<size_t>(n);
    }
}

void
sendResponse(int fd, int status, const char *reason,
             const char *contentType, const std::string &body)
{
    std::string head = "HTTP/1.0 " + std::to_string(status) + " " +
                       reason + "\r\nContent-Type: " + contentType +
                       "\r\nContent-Length: " +
                       std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    sendAll(fd, head + body);
}

void
setIoTimeout(int fd)
{
    struct timeval tv;
    tv.tv_sec = 5;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

} // namespace

bool
HttpServer::start(uint16_t port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err != nullptr)
            *err = "socket() failed";
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (err != nullptr)
            *err = "bind(127.0.0.1:" + std::to_string(port) + ") failed";
        ::close(fd);
        return false;
    }
    if (::listen(fd, 8) != 0) {
        if (err != nullptr)
            *err = "listen() failed";
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0) {
        if (err != nullptr)
            *err = "getsockname() failed";
        ::close(fd);
        return false;
    }
    port_ = ntohs(addr.sin_port);
    listenFd_ = fd;
    running_.store(true);
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running_.exchange(false)) {
        if (thread_.joinable())
            thread_.join();
        return;
    }
    // Shutting down the listening socket wakes the blocked accept().
    ::shutdown(listenFd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
}

void
HttpServer::loop()
{
    while (running_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (!running_.load())
                break;
            continue;
        }
        setIoTimeout(fd);
        handle(fd);
        ::close(fd);
    }
}

void
HttpServer::handle(int fd)
{
    // Read until the end of the request head (or a small cap — the
    // endpoints take no bodies).
    std::string req;
    char buf[1024];
    while (req.find("\r\n") == std::string::npos && req.size() < 4096) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        req.append(buf, static_cast<size_t>(n));
    }
    // Request line: METHOD SP PATH SP HTTP/x.y
    const size_t eol = req.find("\r\n");
    const size_t sp1 = req.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : req.find(' ', sp1 + 1);
    if (eol == std::string::npos || sp1 == std::string::npos ||
        sp2 == std::string::npos || sp2 > eol ||
        req.compare(sp2 + 1, 5, "HTTP/") != 0) {
        sendResponse(fd, 400, "Bad Request", "text/plain",
                     "malformed request line\n");
        return;
    }
    const std::string method = req.substr(0, sp1);
    std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);
    if (method != "GET") {
        sendResponse(fd, 405, "Method Not Allowed", "text/plain",
                     "only GET is supported\n");
        return;
    }
    const std::shared_ptr<const TelemetrySnapshot> snap = hub_.snapshot();
    if (path == "/metrics") {
        if (snap == nullptr) {
            sendResponse(fd, 503, "Service Unavailable", "text/plain",
                         "no snapshot published yet\n");
            return;
        }
        sendResponse(fd, 200, "OK",
                     "text/plain; version=0.0.4; charset=utf-8",
                     renderPrometheus(*snap));
    } else if (path == "/runz") {
        if (snap == nullptr) {
            sendResponse(fd, 503, "Service Unavailable", "text/plain",
                         "no snapshot published yet\n");
            return;
        }
        sendResponse(fd, 200, "OK", "application/json",
                     renderRunz(*snap));
    } else if (path == "/healthz") {
        std::string body;
        const bool healthy = renderHealthz(
            snap.get(), exporterWallNs(), staleNs_, &body);
        sendResponse(fd, healthy ? 200 : 503,
                     healthy ? "OK" : "Service Unavailable",
                     "application/json", body);
    } else {
        sendResponse(fd, 404, "Not Found", "text/plain",
                     "unknown path (try /metrics, /healthz, /runz)\n");
    }
}

bool
httpGet(uint16_t port, const std::string &path, int *status,
        std::string *body)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    setIoTimeout(fd);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return false;
    }
    sendAll(fd, "GET " + path + " HTTP/1.0\r\n\r\n");
    std::string resp;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    // "HTTP/1.0 NNN ..." then headers, blank line, body.
    if (resp.compare(0, 5, "HTTP/") != 0)
        return false;
    const size_t sp = resp.find(' ');
    if (sp == std::string::npos || sp + 4 > resp.size())
        return false;
    if (status != nullptr)
        *status = std::atoi(resp.c_str() + sp + 1);
    const size_t blank = resp.find("\r\n\r\n");
    if (blank == std::string::npos)
        return false;
    if (body != nullptr)
        *body = resp.substr(blank + 4);
    return true;
}

} // namespace ssdcheck::obs
