/**
 * @file
 * The live telemetry plane's snapshot hub and renderers.
 *
 * Publish rule (the determinism argument, see DESIGN.md "Live
 * telemetry"): the run loop calls TelemetryHub::publish() at QD1 step
 * barriers, which deep-copies the registry into an immutable
 * TelemetrySnapshot and swaps it in under a mutex. The HTTP thread
 * only ever reads the latest immutable snapshot — it never touches
 * live simulator state — so attaching a hub cannot perturb results,
 * and runs with `--listen` are bit-identical to runs without it.
 *
 * src/obs/exporter is the one obs directory allowlisted for wall
 * clocks (lint R1): snapshots carry a wall-clock publish stamp that
 * /healthz compares against now to detect a stuck or killed run loop.
 *
 * Rendering is pure over a snapshot: renderPrometheus() emits text
 * exposition format 0.0.4 (HELP/TYPE per family in first-registration
 * order, escaped label values, cumulative `_bucket`/`_sum`/`_count`
 * plus interpolated p50/p95/p99/p99.9 quantile gauges), renderRunz()
 * a JSON run-progress document. Both are byte-stable functions of the
 * snapshot contents.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace ssdcheck::obs {

/** Run progress published alongside the metric snapshot (/runz). */
struct RunStatus
{
    std::string phase;           ///< "run" | "bench" | "chaos" | "done" ...
    uint64_t cursor = 0;         ///< Requests replayed so far.
    uint64_t totalRequests = 0;  ///< Trace length (0 when open-ended).
    int64_t simTimeNs = 0;       ///< Virtual time of the run.
    uint64_t checkpoints = 0;    ///< Checkpoints written so far.
    uint8_t breakerState = 0;    ///< resilience::BreakerState.
    uint8_t ladderLevel = 0;     ///< resilience::DegradationLevel.
    uint64_t shedTotal = 0;      ///< Requests shed by the policy layer.
    uint64_t errorBudgetPpm = 0; ///< SLO error budget consumed (ppm).
    uint8_t supervisorState = 0; ///< core::HealthSupervisor state.
    bool healthy = true;         ///< Publisher's own health verdict.
};

/** One immutable published snapshot (shared with the HTTP thread). */
struct TelemetrySnapshot
{
    uint64_t sequence = 0; ///< Monotonic publish counter.
    uint64_t wallNs = 0;   ///< Wall-clock publish stamp (staleness).
    std::vector<MetricSnapshot> metrics;
    RunStatus run;
};

/**
 * The atomic double-buffer between one publisher (the run loop) and
 * any number of reader threads (the HTTP server). publish() is the
 * only wall-clock-touching mutation; readers share the latest
 * immutable snapshot by shared_ptr.
 */
class TelemetryHub
{
  public:
    TelemetryHub() = default;
    TelemetryHub(const TelemetryHub &) = delete;
    TelemetryHub &operator=(const TelemetryHub &) = delete;

    /** Deep-copy @p reg + @p run into a fresh immutable snapshot and
     *  make it the current one (stamps sequence and wall time). */
    void publish(const Registry &reg, const RunStatus &run);

    /** Latest published snapshot; null before the first publish. */
    std::shared_ptr<const TelemetrySnapshot> snapshot() const;

    /** Publishes so far (tests/introspection). */
    uint64_t sequence() const;

  private:
    mutable std::mutex mu_;
    std::shared_ptr<const TelemetrySnapshot> snap_;
    uint64_t sequence_ = 0;
};

/** Prometheus text exposition (format 0.0.4) of @p snap. */
std::string renderPrometheus(const TelemetrySnapshot &snap);

/** JSON run-progress document served at /runz. */
std::string renderRunz(const TelemetrySnapshot &snap);

/**
 * /healthz verdict: healthy iff a snapshot exists, its publish stamp
 * is no older than @p staleNs against @p nowWallNs, and the publisher
 * reported itself healthy. @p body receives a small JSON document
 * either way.
 */
bool renderHealthz(const TelemetrySnapshot *snap, uint64_t nowWallNs,
                   uint64_t staleNs, std::string *body);

/** Wall-clock now for staleness checks (exporter-local clock read). */
uint64_t exporterWallNs();

/** Escape a label value per the exposition format (\\, \", \n). */
std::string escapeLabelValue(const std::string &v);

} // namespace ssdcheck::obs
