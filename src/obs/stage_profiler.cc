#include "obs/stage_profiler.h"

#include "obs/registry.h"

namespace ssdcheck::obs {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Wb:
        return "wb";
      case Stage::Gc:
        return "gc";
      case Stage::Nand:
        return "nand";
      case Stage::Model:
        return "model";
      case Stage::Trace:
        return "trace";
      case Stage::Policy:
        return "policy";
    }
    return "unknown";
}

void
StageProfiler::exportTo(Registry &reg) const
{
    for (size_t i = 0; i < kStageCount; ++i) {
        const Stage s = static_cast<Stage>(i);
        reg.exportCounter("stage_self_ns", {{"stage", stageName(s)}},
                          &selfNs_[i]);
        reg.exportCounter("stage_calls", {{"stage", stageName(s)}},
                          &calls_[i]);
    }
    reg.exportCounter("stage_requests", {}, &requests_);
}

} // namespace ssdcheck::obs
