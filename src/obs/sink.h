/**
 * @file
 * The observability attachment point: a bundle of optional pillar
 * pointers components accept via attachObservability(). Every pointer
 * may be null — a component hooked with a partial sink only feeds the
 * pillars present, and with no sink at all every hook is one null
 * check (the near-zero-when-disabled contract).
 *
 * Lifetime: the sink's targets must outlive every component they are
 * attached to; the CLI and tests create them on the stack around the
 * run.
 */
#pragma once

#include "obs/audit_log.h"
#include "obs/registry.h"
#include "obs/stage_profiler.h"
#include "obs/trace_recorder.h"

namespace ssdcheck::obs {

/** Optional observability targets handed to components. */
struct Sink
{
    TraceRecorder *trace = nullptr;
    Registry *metrics = nullptr;
    AuditLog *audit = nullptr;
    StageProfiler *stages = nullptr;

    bool any() const
    {
        return trace != nullptr || metrics != nullptr ||
               audit != nullptr || stages != nullptr;
    }
};

} // namespace ssdcheck::obs
