/**
 * @file
 * Exact latency statistics: percentiles, CDF points, mean, tails.
 *
 * Experiments in the paper report 99.5th / 99.7th percentile tail
 * latencies and CDFs (Figs. 1, 3, 13, 15; Table III). Sample counts in
 * this reproduction are at most a few million, so we keep every sample
 * and compute exact order statistics.
 */
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/sim_time.h"

namespace ssdcheck::stats {

/** Collects latency samples and answers order-statistic queries. */
class LatencyRecorder
{
  public:
    /** Add one latency sample. */
    void add(sim::SimDuration latency);

    /** Number of samples recorded. */
    size_t count() const { return samples_.size(); }

    /** True if no samples were recorded. */
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest sample; 0 when empty. */
    sim::SimDuration min() const;

    /** Largest sample; 0 when empty. */
    sim::SimDuration max() const;

    /**
     * Exact percentile by nearest-rank. @p p in [0, 100].
     * percentile(50) is the median; percentile(99.5) the paper's tail.
     */
    sim::SimDuration percentile(double p) const;

    /** Fraction of samples <= @p threshold (a CDF point). */
    double fractionBelow(sim::SimDuration threshold) const;

    /** Fraction of samples > @p threshold. */
    double fractionAbove(sim::SimDuration threshold) const;

    /** All samples, sorted ascending (for CDF dumps). */
    const std::vector<sim::SimDuration> &sorted() const;

    /**
     * CDF sampled at @p points evenly spaced quantiles, as
     * (quantile in [0,1], latency) pairs. Useful for plotting Fig. 1a.
     */
    std::vector<std::pair<double, sim::SimDuration>> cdf(size_t points) const;

    /** Merge another recorder's samples into this one. */
    void merge(const LatencyRecorder &other);

    /** Discard all samples. */
    void clear();

  private:
    void ensureSorted() const;

    std::vector<sim::SimDuration> samples_;
    mutable std::vector<sim::SimDuration> sorted_;
    mutable bool sortedValid_ = true;
};

} // namespace ssdcheck::stats

