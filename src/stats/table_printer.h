/**
 * @file
 * Small aligned-column table printer for the benchmark harnesses.
 *
 * Every bench binary reproduces a paper table or figure as rows of
 * text; TablePrinter keeps that output consistent and readable.
 */
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ssdcheck::stats {

/** Accumulates rows of strings and prints them with aligned columns. */
class TablePrinter
{
  public:
    /** Set the header row. */
    void header(std::initializer_list<std::string> cols);

    /** Append a data row (may have fewer columns than the header). */
    void row(std::initializer_list<std::string> cols);

    /** Append a pre-built data row. */
    void row(std::vector<std::string> cols);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Number of data rows. */
    size_t numRows() const { return rows_.size(); }

    /** Format helper: fixed-decimal double. */
    static std::string num(double v, int decimals = 2);

    /** Format helper: percentage with % suffix. */
    static std::string pct(double fraction, int decimals = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a "=== title ===" section banner. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace ssdcheck::stats

