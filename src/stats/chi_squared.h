/**
 * @file
 * Pearson chi-squared two-sample homogeneity test.
 *
 * The GC-volume diagnosis (paper §III-B2, Fig. 5b) compares the GC
 * interval distribution of the Fixed pattern against each Flip_x
 * pattern: a near-zero p-value on bit x means writes flipping bit x
 * land in different GC volumes. The p-value needs the regularized
 * upper incomplete gamma function Q(k/2, x/2), implemented here with
 * the standard series / continued-fraction split (no external deps).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace ssdcheck::stats {

class Histogram;

/** Result of a chi-squared test. */
struct ChiSquaredResult
{
    double statistic = 0.0;   ///< Pearson X^2 statistic.
    int dof = 0;              ///< Degrees of freedom after pooling.
    double pValue = 1.0;      ///< P(X^2_dof >= statistic).
    bool valid = false;       ///< False when too little data to test.
};

/**
 * Regularized upper incomplete gamma function Q(a, x) = Γ(a,x)/Γ(a).
 * Exposed for testing. Requires a > 0, x >= 0.
 */
double regularizedGammaQ(double a, double x);

/** Survival function of the chi-squared distribution with @p dof. */
double chiSquaredSurvival(double statistic, int dof);

/**
 * Two-sample chi-squared homogeneity test over parallel count vectors.
 *
 * Bins whose combined expected count is below @p minExpected are
 * pooled into a single overflow cell (standard practice to keep the
 * chi-squared approximation valid).
 */
ChiSquaredResult chiSquaredTwoSample(const std::vector<uint64_t> &a,
                                     const std::vector<uint64_t> &b,
                                     double minExpected = 5.0);

/** Convenience overload on Histograms (must have equal bin counts). */
ChiSquaredResult chiSquaredTwoSample(const Histogram &a, const Histogram &b,
                                     double minExpected = 5.0);

} // namespace ssdcheck::stats

