/**
 * @file
 * Throughput-over-time accumulation.
 *
 * Figs. 1b, 3b and 15a plot throughput sampled over fixed windows of
 * virtual time. Timeline buckets completed bytes (or IOs) into
 * windows and reports MB/s or IOPS per window.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sim_time.h"

namespace ssdcheck::stats {

/** Buckets completion events into fixed windows of virtual time. */
class Timeline
{
  public:
    /** @param window width of each bucket in virtual time. */
    explicit Timeline(sim::SimDuration window);

    /** Record @p bytes completed at time @p when. */
    void add(sim::SimDuration sinceStart, uint64_t bytes);

    /** Number of windows touched so far. */
    size_t numWindows() const { return bytes_.size(); }

    /** Window width. */
    sim::SimDuration window() const { return window_; }

    /** Throughput of window @p i in MB/s (10^6 bytes per second). */
    double mbps(size_t i) const;

    /** IOPS of window @p i. */
    double iops(size_t i) const;

    /** Total bytes recorded. */
    uint64_t totalBytes() const { return totalBytes_; }

    /** Total IOs recorded. */
    uint64_t totalIos() const { return totalIos_; }

    /** Mean MB/s over [first, last) windows; whole timeline by default. */
    double meanMbps() const;

    /** Coefficient of variation of per-window MB/s (fluctuation metric). */
    double mbpsCv() const;

  private:
    sim::SimDuration window_;
    std::vector<uint64_t> bytes_;
    std::vector<uint64_t> ios_;
    uint64_t totalBytes_ = 0;
    uint64_t totalIos_ = 0;
};

} // namespace ssdcheck::stats

