#include "stats/chi_squared.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <math.h> // lgamma_r (not exposed through <cmath>)

#include "stats/histogram.h"

namespace ssdcheck::stats {

namespace {

/// std::lgamma writes the process-global `signgam` (POSIX), which is
/// a data race when grid shards run diagnoses concurrently (found by
/// the TSan CI job). Use the reentrant form where the libc has one.
double
logGamma(double x)
{
#if defined(__GLIBC__) || defined(__APPLE__)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

/// Series expansion of the regularized lower incomplete gamma P(a, x),
/// converges quickly for x < a + 1.
double
gammaPSeries(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::fabs(del) < std::fabs(sum) * 1e-15)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - logGamma(a));
}

/// Continued fraction for the regularized upper incomplete gamma
/// Q(a, x), converges quickly for x >= a + 1 (modified Lentz).
double
gammaQContinuedFraction(double a, double x)
{
    const double tiny = std::numeric_limits<double>::min() / 1e-30;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= 500; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < 1e-15)
            break;
    }
    return std::exp(-x + a * std::log(x) - logGamma(a)) * h;
}

} // namespace

double
regularizedGammaQ(double a, double x)
{
    assert(a > 0.0);
    assert(x >= 0.0);
    if (x == 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - gammaPSeries(a, x);
    return gammaQContinuedFraction(a, x);
}

double
chiSquaredSurvival(double statistic, int dof)
{
    if (dof <= 0)
        return 1.0;
    if (statistic <= 0.0)
        return 1.0;
    return regularizedGammaQ(static_cast<double>(dof) / 2.0,
                             statistic / 2.0);
}

ChiSquaredResult
chiSquaredTwoSample(const std::vector<uint64_t> &a,
                    const std::vector<uint64_t> &b, double minExpected)
{
    ChiSquaredResult res;
    assert(a.size() == b.size());

    double na = 0.0, nb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        na += static_cast<double>(a[i]);
        nb += static_cast<double>(b[i]);
    }
    if (na < 2.0 || nb < 2.0)
        return res; // not enough data

    const double n = na + nb;
    // Pool bins whose combined count yields expected cells below
    // minExpected for either sample.
    double pooledA = 0.0, pooledB = 0.0;
    double stat = 0.0;
    int cells = 0;

    auto addCell = [&](double ca, double cb) {
        const double col = ca + cb;
        if (col <= 0.0)
            return;
        const double ea = col * na / n;
        const double eb = col * nb / n;
        stat += (ca - ea) * (ca - ea) / ea + (cb - eb) * (cb - eb) / eb;
        ++cells;
    };

    for (size_t i = 0; i < a.size(); ++i) {
        const double ca = static_cast<double>(a[i]);
        const double cb = static_cast<double>(b[i]);
        const double col = ca + cb;
        const double expA = col * na / n;
        const double expB = col * nb / n;
        if (expA < minExpected || expB < minExpected) {
            pooledA += ca;
            pooledB += cb;
        } else {
            addCell(ca, cb);
        }
    }
    addCell(pooledA, pooledB);

    if (cells < 2)
        return res; // degenerate: everything pooled into one cell

    res.statistic = stat;
    res.dof = cells - 1;
    res.pValue = chiSquaredSurvival(stat, res.dof);
    res.valid = true;
    return res;
}

ChiSquaredResult
chiSquaredTwoSample(const Histogram &a, const Histogram &b,
                    double minExpected)
{
    return chiSquaredTwoSample(a.counts(), b.counts(), minExpected);
}

} // namespace ssdcheck::stats
