#include "stats/histogram.h"

#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::stats {

Histogram::Histogram(int64_t lo, int64_t binWidth, size_t bins)
    : lo_(lo), binWidth_(binWidth), counts_(bins, 0)
{
    assert(binWidth > 0);
    assert(bins > 0);
}

size_t
Histogram::binIndex(int64_t value) const
{
    if (value < lo_)
        return 0;
    const uint64_t off = static_cast<uint64_t>(value - lo_) /
                         static_cast<uint64_t>(binWidth_);
    if (off >= counts_.size())
        return counts_.size() - 1;
    return static_cast<size_t>(off);
}

void
Histogram::add(int64_t value)
{
    ++counts_[binIndex(value)];
    ++total_;
}

int64_t
Histogram::binLow(size_t i) const
{
    return lo_ + static_cast<int64_t>(i) * binWidth_;
}

void
Histogram::clear()
{
    counts_.assign(counts_.size(), 0);
    total_ = 0;
}

void
Histogram::saveState(recovery::StateWriter &w) const
{
    w.u64(counts_.size());
    for (uint64_t c : counts_)
        w.u64(c);
    w.u64(total_);
}

bool
Histogram::loadState(recovery::StateReader &r)
{
    const uint64_t n = r.u64();
    if (r.ok() && n != counts_.size()) {
        r.fail("histogram bin count does not match this shape");
        return false;
    }
    for (auto &c : counts_)
        c = r.u64();
    total_ = r.u64();
    return r.ok();
}

} // namespace ssdcheck::stats
