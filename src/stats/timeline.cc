#include "stats/timeline.h"

#include <cassert>
#include <cmath>

namespace ssdcheck::stats {

Timeline::Timeline(sim::SimDuration window) : window_(window)
{
    assert(window > 0);
}

void
Timeline::add(sim::SimDuration sinceStart, uint64_t bytes)
{
    assert(sinceStart >= 0);
    const size_t idx = static_cast<size_t>(sinceStart / window_);
    if (idx >= bytes_.size()) {
        bytes_.resize(idx + 1, 0);
        ios_.resize(idx + 1, 0);
    }
    bytes_[idx] += bytes;
    ios_[idx] += 1;
    totalBytes_ += bytes;
    totalIos_ += 1;
}

double
Timeline::mbps(size_t i) const
{
    const double secs = sim::toSeconds(window_);
    return static_cast<double>(bytes_[i]) / 1e6 / secs;
}

double
Timeline::iops(size_t i) const
{
    const double secs = sim::toSeconds(window_);
    return static_cast<double>(ios_[i]) / secs;
}

double
Timeline::meanMbps() const
{
    if (bytes_.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < bytes_.size(); ++i)
        sum += mbps(i);
    return sum / static_cast<double>(bytes_.size());
}

double
Timeline::mbpsCv() const
{
    if (bytes_.size() < 2)
        return 0.0;
    const double mean = meanMbps();
    if (mean <= 0.0)
        return 0.0;
    double var = 0.0;
    for (size_t i = 0; i < bytes_.size(); ++i) {
        const double d = mbps(i) - mean;
        var += d * d;
    }
    var /= static_cast<double>(bytes_.size() - 1);
    return std::sqrt(var) / mean;
}

} // namespace ssdcheck::stats
