#include "stats/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace ssdcheck::stats {

void
TablePrinter::header(std::initializer_list<std::string> cols)
{
    header_.assign(cols);
}

void
TablePrinter::row(std::initializer_list<std::string> cols)
{
    rows_.emplace_back(cols);
}

void
TablePrinter::row(std::vector<std::string> cols)
{
    rows_.push_back(std::move(cols));
}

void
TablePrinter::print(std::ostream &os) const
{
    // Compute column widths over header + rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &r) {
        if (r.size() > widths.size())
            widths.resize(r.size(), 0);
        for (size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i) {
            os << r[i];
            if (i + 1 < r.size())
                os << std::string(widths[i] - r[i].size() + 2, ' ');
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

std::string
TablePrinter::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TablePrinter::pct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace ssdcheck::stats
