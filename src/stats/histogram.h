/**
 * @file
 * Fixed-bin integer histogram.
 *
 * Used for GC-interval distributions (Fig. 5) — both by the diagnosis
 * chi-squared test and by the runtime GC model's interval history.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::stats {

/**
 * Histogram over int64 values with uniform bin width.
 *
 * Values below the range clamp into the first bin; values above clamp
 * into the last bin, so total mass always equals the add() count.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the first bin
     * @param binWidth width of each bin (> 0)
     * @param bins number of bins (> 0)
     */
    Histogram(int64_t lo, int64_t binWidth, size_t bins);

    /** Record one value. */
    void add(int64_t value);

    /** Count in bin @p i. */
    uint64_t binCount(size_t i) const { return counts_[i]; }

    /** Number of bins. */
    size_t numBins() const { return counts_.size(); }

    /** Total number of recorded values. */
    uint64_t total() const { return total_; }

    /** Inclusive lower edge of bin @p i. */
    int64_t binLow(size_t i) const;

    /** Bin index a value falls into (after clamping). */
    size_t binIndex(int64_t value) const;

    /** Raw counts vector (for chi-squared tests). */
    const std::vector<uint64_t> &counts() const { return counts_; }

    /** Reset all counts to zero. */
    void clear();

    /** Serialize bin counts (shape comes from the constructor). */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState() (same shape). */
    bool loadState(recovery::StateReader &r);

  private:
    int64_t lo_; // snapshot:skip(construction-time bin layout; loadState only validates it against the checkpoint)
    int64_t binWidth_; // snapshot:skip(construction-time bin layout; loadState only validates it against the checkpoint)
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace ssdcheck::stats

