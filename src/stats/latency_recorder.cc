#include "stats/latency_recorder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace ssdcheck::stats {

void
LatencyRecorder::add(sim::SimDuration latency)
{
    samples_.push_back(latency);
    sortedValid_ = false;
}

double
LatencyRecorder::mean() const
{
    if (samples_.empty())
        return 0.0;
    const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

sim::SimDuration
LatencyRecorder::min() const
{
    if (samples_.empty())
        return 0;
    return *std::min_element(samples_.begin(), samples_.end());
}

sim::SimDuration
LatencyRecorder::max() const
{
    if (samples_.empty())
        return 0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void
LatencyRecorder::ensureSorted() const
{
    if (!sortedValid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sortedValid_ = true;
    }
}

sim::SimDuration
LatencyRecorder::percentile(double p) const
{
    if (samples_.empty())
        return 0;
    assert(p >= 0.0 && p <= 100.0);
    ensureSorted();
    // Nearest-rank: ceil(p/100 * N), 1-indexed.
    const size_t n = sorted_.size();
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return sorted_[rank - 1];
}

double
LatencyRecorder::fractionBelow(sim::SimDuration threshold) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
LatencyRecorder::fractionAbove(sim::SimDuration threshold) const
{
    if (samples_.empty())
        return 0.0;
    return 1.0 - fractionBelow(threshold);
}

const std::vector<sim::SimDuration> &
LatencyRecorder::sorted() const
{
    ensureSorted();
    return sorted_;
}

std::vector<std::pair<double, sim::SimDuration>>
LatencyRecorder::cdf(size_t points) const
{
    std::vector<std::pair<double, sim::SimDuration>> out;
    if (samples_.empty() || points == 0)
        return out;
    ensureSorted();
    out.reserve(points);
    const size_t n = sorted_.size();
    for (size_t i = 1; i <= points; ++i) {
        const double q = static_cast<double>(i) / static_cast<double>(points);
        size_t rank = static_cast<size_t>(
            std::ceil(q * static_cast<double>(n)));
        if (rank == 0)
            rank = 1;
        out.emplace_back(q, sorted_[rank - 1]);
    }
    return out;
}

void
LatencyRecorder::merge(const LatencyRecorder &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sortedValid_ = false;
}

void
LatencyRecorder::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = true;
}

} // namespace ssdcheck::stats
