#include "recovery/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace ssdcheck::recovery {

std::string
toString(LoadError e)
{
    switch (e) {
    case LoadError::Ok:
        return "ok";
    case LoadError::IoError:
        return "io-error";
    case LoadError::TooShort:
        return "too-short";
    case LoadError::BadMagic:
        return "bad-magic";
    case LoadError::BadVersion:
        return "bad-version";
    case LoadError::BadHeaderCrc:
        return "bad-header-crc";
    case LoadError::Truncated:
        return "truncated";
    case LoadError::BadSectionCrc:
        return "bad-section-crc";
    case LoadError::DuplicateSection:
        return "duplicate-section";
    case LoadError::MissingSection:
        return "missing-section";
    case LoadError::ConfigMismatch:
        return "config-mismatch";
    case LoadError::Malformed:
        return "malformed";
    }
    return "unknown";
}

void
Snapshot::begin(uint64_t configHash, uint64_t requestIndex, int64_t simTimeNs)
{
    configHash_ = configHash;
    requestIndex_ = requestIndex;
    simTimeNs_ = simTimeNs;
    sections_.clear();
}

void
Snapshot::addSection(SectionId id, std::vector<uint8_t> payload)
{
    sections_[static_cast<uint32_t>(id)] = std::move(payload);
}

std::vector<uint8_t>
Snapshot::serialize() const
{
    StateWriter w;
    w.raw(kMagic, sizeof(kMagic));
    w.u32(kFormatVersion);
    w.u64(configHash_);
    w.u64(requestIndex_);
    w.i64(simTimeNs_);
    w.u32(crc32(w.bytes().data(), w.size()));
    for (const auto &[id, payload] : sections_) {
        w.u32(id);
        w.u64(payload.size());
        w.u32(crc32(payload));
        w.raw(payload.data(), payload.size());
    }
    return w.take();
}

LoadError
Snapshot::parse(const std::vector<uint8_t> &bytes, std::string *detail)
{
    sections_.clear();
    configHash_ = requestIndex_ = 0;
    simTimeNs_ = 0;

    auto failWith = [&](LoadError e, const std::string &why) {
        if (detail)
            *detail = why;
        sections_.clear();
        return e;
    };

    if (bytes.size() < kHeaderSize)
        return failWith(LoadError::TooShort,
                        "file is " + std::to_string(bytes.size()) +
                            " bytes; a snapshot header is " +
                            std::to_string(kHeaderSize));
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return failWith(LoadError::BadMagic,
                        "missing SSDCKPT1 magic — not a snapshot file");

    StateReader r(bytes.data(), kHeaderSize);
    uint8_t magic[8];
    r.raw(magic, sizeof(magic));
    const uint32_t version = r.u32();
    const uint64_t configHash = r.u64();
    const uint64_t requestIndex = r.u64();
    const int64_t simTimeNs = r.i64();
    const uint32_t headerCrc = r.u32();
    if (crc32(bytes.data(), kHeaderSize - 4) != headerCrc)
        return failWith(LoadError::BadHeaderCrc,
                        "header CRC mismatch — snapshot header corrupted");
    if (version != kFormatVersion)
        return failWith(LoadError::BadVersion,
                        "snapshot format v" + std::to_string(version) +
                            "; this build reads v" +
                            std::to_string(kFormatVersion));

    size_t pos = kHeaderSize;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < 16)
            return failWith(LoadError::Truncated,
                            "truncated section header at offset " +
                                std::to_string(pos));
        StateReader sh(bytes.data() + pos, 16);
        const uint32_t id = sh.u32();
        const uint64_t size = sh.u64();
        const uint32_t crc = sh.u32();
        pos += 16;
        if (size > bytes.size() - pos)
            return failWith(LoadError::Truncated,
                            "section " + std::to_string(id) + " claims " +
                                std::to_string(size) + " bytes but only " +
                                std::to_string(bytes.size() - pos) +
                                " remain");
        if (sections_.count(id))
            return failWith(LoadError::DuplicateSection,
                            "section " + std::to_string(id) +
                                " appears twice");
        std::vector<uint8_t> payload(bytes.begin() +
                                         static_cast<ptrdiff_t>(pos),
                                     bytes.begin() +
                                         static_cast<ptrdiff_t>(pos + size));
        if (crc32(payload) != crc)
            return failWith(LoadError::BadSectionCrc,
                            "section " + std::to_string(id) +
                                " payload CRC mismatch");
        sections_[id] = std::move(payload);
        pos += size;
    }

    configHash_ = configHash;
    requestIndex_ = requestIndex;
    simTimeNs_ = simTimeNs;
    return LoadError::Ok;
}

const std::vector<uint8_t> *
Snapshot::section(SectionId id) const
{
    auto it = sections_.find(static_cast<uint32_t>(id));
    return it == sections_.end() ? nullptr : &it->second;
}

std::string
writeFileAtomic(const std::string &path, const std::vector<uint8_t> &bytes)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return "open " + tmp + ": " + std::strerror(errno);
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string err = std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return "write " + tmp + ": " + err;
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return "fsync " + tmp + ": " + err;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string err = std::strerror(errno);
        ::unlink(tmp.c_str());
        return "rename " + tmp + " -> " + path + ": " + err;
    }
    // fsync the directory so the rename itself is durable.
    std::string dir = ".";
    if (const auto slash = path.find_last_of('/'); slash != std::string::npos)
        dir = path.substr(0, slash == 0 ? 1 : slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return std::string();
}

LoadError
readFile(const std::string &path, std::vector<uint8_t> *out,
         std::string *detail)
{
    out->clear();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (detail)
            *detail = "open " + path + ": " + std::strerror(errno);
        return LoadError::IoError;
    }
    uint8_t buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (detail)
                *detail = "read " + path + ": " + std::strerror(errno);
            ::close(fd);
            out->clear();
            return LoadError::IoError;
        }
        if (n == 0)
            break;
        out->insert(out->end(), buf, buf + n);
    }
    ::close(fd);
    return LoadError::Ok;
}

} // namespace ssdcheck::recovery
