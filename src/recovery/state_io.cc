#include "recovery/state_io.h"

#include <array>
#include <bit>

namespace ssdcheck::recovery {

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t len)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    uint32_t c = 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

uint32_t
crc32(const std::vector<uint8_t> &bytes)
{
    return crc32(bytes.data(), bytes.size());
}

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
StateWriter::u16(uint16_t v)
{
    bytes_.push_back(static_cast<uint8_t>(v));
    bytes_.push_back(static_cast<uint8_t>(v >> 8));
}

void
StateWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
StateWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
StateWriter::f64(double v)
{
    u64(std::bit_cast<uint64_t>(v));
}

void
StateWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    raw(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

void
StateWriter::raw(const uint8_t *data, size_t len)
{
    bytes_.insert(bytes_.end(), data, data + len);
}

bool
StateReader::need(size_t n)
{
    if (!ok_)
        return false;
    if (len_ - pos_ < n) {
        fail("unexpected end of payload");
        return false;
    }
    return true;
}

uint8_t
StateReader::u8()
{
    if (!need(1))
        return 0;
    return data_[pos_++];
}

uint16_t
StateReader::u16()
{
    if (!need(2))
        return 0;
    uint16_t v = static_cast<uint16_t>(data_[pos_]);
    v |= static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
}

uint32_t
StateReader::u32()
{
    if (!need(4))
        return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
}

uint64_t
StateReader::u64()
{
    if (!need(8))
        return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
}

double
StateReader::f64()
{
    return std::bit_cast<double>(u64());
}

bool
StateReader::boolean()
{
    const uint8_t v = u8();
    if (ok_ && v > 1)
        fail("boolean field is neither 0 nor 1");
    return v == 1;
}

std::string
StateReader::str()
{
    const uint32_t n = u32();
    if (!need(n))
        return std::string();
    std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
    pos_ += n;
    return s;
}

void
StateReader::raw(uint8_t *out, size_t len)
{
    if (!need(len)) {
        std::memset(out, 0, len);
        return;
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
}

uint64_t
StateReader::checkCount(uint64_t count, size_t elemSize)
{
    if (!ok_)
        return 0;
    if (elemSize == 0)
        elemSize = 1;
    if (count > remaining() / elemSize) {
        fail("element count exceeds remaining payload");
        return 0;
    }
    return count;
}

void
StateReader::fail(const std::string &why)
{
    if (!ok_)
        return;
    ok_ = false;
    error_ = why;
}

} // namespace ssdcheck::recovery
