#include "recovery/run_state.h"

#include <cinttypes>
#include <cstdio>

#include "core/diagnosis.h"
#include "ssd/presets.h"

namespace ssdcheck::recovery {

namespace {

/** Host-latency histogram bounds — must match core/accuracy.cc so the
 *  run command's metrics snapshots stay comparable with `accuracy`. */
const std::vector<int64_t> kHostLatencyBounds = {
    50'000,     100'000,    250'000,    500'000,    1'000'000,
    2'500'000,  5'000'000,  10'000'000, 25'000'000, 100'000'000};

} // namespace

std::string
RunParams::canonical() const
{
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "device=%s;faults=%s;workload=%s;scale=%.6f;"
                  "supervisor=%d;timeline_ms=%" PRId64 ";resilience=%s",
                  device.c_str(), faults.c_str(), workload.c_str(), scale,
                  supervisor ? 1 : 0, timelineMs, resilience.c_str());
    return buf;
}

uint64_t
RunParams::configHash() const
{
    return fnv1a(canonical());
}

std::unique_ptr<CheckpointableRun>
CheckpointableRun::create(const RunParams &params, bool forResume,
                          std::string *err, obs::StageProfiler *stages)
{
    auto fail = [&](const std::string &why) {
        if (err != nullptr)
            *err = why;
        return nullptr;
    };

    ssd::FaultProfile faults;
    if (!ssd::faultProfileByName(params.faults, &faults))
        return fail("unknown fault profile '" + params.faults + "'");

    ssd::SsdConfig cfg;
    if (params.device == "nvm") {
        cfg = ssd::makeNvmBackedSsd();
    } else if (params.device.size() == 1 && params.device[0] >= 'A' &&
               params.device[0] <= 'G') {
        cfg = ssd::makePreset(
            static_cast<ssd::SsdModel>(params.device[0] - 'A'));
    } else {
        return fail("unknown device '" + params.device + "'");
    }
    cfg.faults = faults;

    bool workloadKnown = false;
    workload::SniaWorkload w = workload::SniaWorkload::RwMixed;
    for (const auto candidate : workload::allSniaWorkloads()) {
        if (toString(candidate) == params.workload) {
            w = candidate;
            workloadKnown = true;
            break;
        }
    }
    if (!workloadKnown)
        return fail("unknown workload '" + params.workload + "'");
    if (params.scale <= 0)
        return fail("scale must be positive");

    resilience::ResiliencePolicy policy;
    if (!resilience::resiliencePolicyByName(params.resilience, &policy))
        return fail("unknown resilience policy '" + params.resilience +
                    "'");

    std::unique_ptr<CheckpointableRun> run(new CheckpointableRun());
    run->params_ = params;
    run->dev_ = std::make_unique<ssd::SsdDevice>(cfg);
    run->rdev_ =
        std::make_unique<blockdev::ResilientDevice>(*run->dev_);
    if (policy.enabled)
        run->pdev_ = std::make_unique<resilience::PolicyDevice>(
            *run->rdev_, policy);

    if (forResume) {
        // Diagnosis and preconditioning only produce state that
        // restore() is about to overwrite; skip both and let the
        // Model section's features rebuild the engine.
        run->check_ = std::make_unique<core::SsdCheck>(core::FeatureSet{});
    } else {
        // Features come from a healthy twin (same model, no faults):
        // the fault budget lands entirely on the measured run.
        ssd::SsdConfig cleanCfg = cfg;
        cleanCfg.faults = ssd::FaultProfile{};
        ssd::SsdDevice cleanDev(cleanCfg);
        core::DiagnosisRunner runner(cleanDev, core::DiagnosisConfig{});
        const core::FeatureSet fs = runner.extractFeatures();
        if (!fs.bufferModelUsable())
            return fail("no usable buffer model for device '" +
                        params.device + "'; nothing to run");
        run->check_ = std::make_unique<core::SsdCheck>(fs);
        run->t_ = runner.now();
    }
    if (params.supervisor) {
        // With a policy stacked, probes flow through it: supervisor
        // probe I/O is exactly the breaker's HalfOpen trial stream.
        blockdev::BlockDevice &probePath =
            run->pdev_ ? static_cast<blockdev::BlockDevice &>(*run->pdev_)
                       : *run->rdev_;
        run->sup_ = std::make_unique<core::HealthSupervisor>(
            *run->check_, probePath);
    }

    // Metrics are always attached: the registry is part of the
    // checkpointed state and of the final-state comparison. The
    // attach order must be identical on the fresh and resume paths so
    // the registry's registration order (its restore key) matches.
    obs::Sink sink;
    sink.metrics = &run->registry_;
    sink.stages = stages;
    run->stages_ = stages;
    if (params.timelineMs > 0)
        run->registry_.enableTimeline(sim::milliseconds(params.timelineMs));
    run->dev_->attachObservability(sink);
    run->rdev_->attachObservability(sink);
    if (run->pdev_)
        run->pdev_->attachObservability(sink);
    run->check_->attachObservability(sink);
    if (run->sup_)
        run->sup_->attachObservability(sink);
    run->hostLatency_ =
        run->registry_.histogram("host_latency_ns", kHostLatencyBounds);
    // Stage views last: they are registry views (never serialized), so
    // their presence cannot perturb checkpoint bytes or restore order.
    if (stages != nullptr)
        stages->exportTo(run->registry_);

    if (!forResume)
        run->dev_->precondition();
    run->trace_ = workload::buildSniaTrace(
        w, run->dev_->capacityPages(), params.scale);
    return run;
}

void
CheckpointableRun::step()
{
    // One iteration of core::evaluatePredictionAccuracy's QD1 loop —
    // the two must stay behaviorally identical (the resume property
    // test compares a stepped run against the uninterrupted one).
    const blockdev::IoRequest &req = trace_.records()[cursor_].req;
    if (sup_)
        t_ = sup_->pump(t_);
    const core::Prediction pred = check_->predict(req, t_);
    check_->onSubmit(req, t_);
    if (pdev_ && sup_)
        pdev_->observeHealth(sup_->state());
    const blockdev::IoResult res =
        pdev_ ? pdev_->submitHinted(req, t_, pred.eet)
              : rdev_->submit(req, t_);
    const bool actualHl = check_->onComplete(req, pred, t_,
                                             res.completeTime, res.status,
                                             res.attempts);
    if (sup_)
        sup_->onCompletion(req, actualHl, res);
    {
        // Registry upkeep is observability overhead, not simulation
        // work: bill it to the trace stage (mirrors accuracy.cc).
        const obs::StageScope obsStage(stages_, obs::Stage::Trace);
        hostLatency_.observe(res.completeTime - t_);
        registry_.tick(res.completeTime);
    }
    if (stages_ != nullptr)
        stages_->addRequest();
    if (!res.ok() || res.attempts > 1) {
        ++acc_.faulted;
    } else if (actualHl) {
        ++acc_.hlTotal;
        if (pred.hl)
            ++acc_.hlCorrect;
    } else {
        ++acc_.nlTotal;
        if (!pred.hl)
            ++acc_.nlCorrect;
    }
    t_ = res.completeTime;
    ++cursor_;
}

Snapshot
CheckpointableRun::checkpoint() const
{
    Snapshot snap;
    snap.begin(params_.configHash(), cursor_, t_.ns());
    {
        StateWriter w;
        dev_->saveState(w);
        snap.addSection(SectionId::Device, w.take());
    }
    {
        StateWriter w;
        check_->saveState(w);
        snap.addSection(SectionId::Model, w.take());
    }
    if (sup_) {
        StateWriter w;
        sup_->saveState(w);
        snap.addSection(SectionId::Supervisor, w.take());
    }
    {
        StateWriter w;
        rdev_->saveState(w);
        snap.addSection(SectionId::Resilient, w.take());
    }
    if (pdev_) {
        StateWriter w;
        pdev_->saveState(w);
        snap.addSection(SectionId::Resilience, w.take());
    }
    {
        StateWriter w;
        w.u64(acc_.nlTotal);
        w.u64(acc_.nlCorrect);
        w.u64(acc_.hlTotal);
        w.u64(acc_.hlCorrect);
        w.u64(acc_.faulted);
        snap.addSection(SectionId::Accuracy, w.take());
    }
    {
        StateWriter w;
        registry_.saveState(w);
        snap.addSection(SectionId::Registry, w.take());
    }
    {
        StateWriter w;
        w.str(params_.canonical());
        snap.addSection(SectionId::RunParams, w.take());
    }
    return snap;
}

LoadError
CheckpointableRun::restore(const Snapshot &snap, std::string *detail,
                           bool forceConfig)
{
    auto explain = [&](const std::string &why) {
        if (detail != nullptr)
            *detail = why;
    };
    if (!forceConfig && snap.configHash() != params_.configHash()) {
        explain("snapshot was taken under a different run configuration "
                "(this run: " +
                params_.canonical() + ")");
        return LoadError::ConfigMismatch;
    }
    if (snap.requestIndex() > trace_.size()) {
        explain("snapshot resume point is beyond the end of the trace");
        return LoadError::Malformed;
    }

    // Load one section through a component's loadState. Every decode
    // failure surfaces as Malformed with the section named — CRCs
    // passed, so the payload is intact but semantically unusable.
    auto load = [&](SectionId id, const char *name,
                    auto &&fn) -> LoadError {
        const std::vector<uint8_t> *payload = snap.section(id);
        if (payload == nullptr) {
            explain(std::string("required section '") + name +
                    "' is missing");
            return LoadError::MissingSection;
        }
        StateReader r(*payload);
        fn(r);
        if (!r.ok()) {
            explain(std::string("section '") + name +
                    "': " + r.error());
            return LoadError::Malformed;
        }
        if (!r.atEnd()) {
            explain(std::string("section '") + name +
                    "' has trailing bytes");
            return LoadError::Malformed;
        }
        return LoadError::Ok;
    };

    LoadError e;
    e = load(SectionId::Device, "device",
             [&](StateReader &r) { dev_->loadState(r); });
    if (e != LoadError::Ok)
        return e;
    e = load(SectionId::Model, "model",
             [&](StateReader &r) { check_->loadState(r); });
    if (e != LoadError::Ok)
        return e;
    if (sup_) {
        e = load(SectionId::Supervisor, "supervisor",
                 [&](StateReader &r) { sup_->loadState(r); });
        if (e != LoadError::Ok)
            return e;
    } else if (snap.section(SectionId::Supervisor) != nullptr) {
        explain("snapshot has a supervisor section but this run has "
                "no supervisor");
        return LoadError::Malformed;
    }
    e = load(SectionId::Resilient, "resilient",
             [&](StateReader &r) { rdev_->loadState(r); });
    if (e != LoadError::Ok)
        return e;
    if (pdev_) {
        e = load(SectionId::Resilience, "resilience",
                 [&](StateReader &r) { pdev_->loadState(r); });
        if (e != LoadError::Ok)
            return e;
    } else if (snap.section(SectionId::Resilience) != nullptr) {
        explain("snapshot has a resilience section but this run has "
                "no policy layer");
        return LoadError::Malformed;
    }
    e = load(SectionId::Accuracy, "accuracy", [&](StateReader &r) {
        acc_.nlTotal = r.u64();
        acc_.nlCorrect = r.u64();
        acc_.hlTotal = r.u64();
        acc_.hlCorrect = r.u64();
        acc_.faulted = r.u64();
    });
    if (e != LoadError::Ok)
        return e;
    e = load(SectionId::Registry, "registry",
             [&](StateReader &r) { registry_.loadState(r); });
    if (e != LoadError::Ok)
        return e;

    cursor_ = snap.requestIndex();
    t_ = sim::SimTime{snap.simTimeNs()};
    return LoadError::Ok;
}

} // namespace ssdcheck::recovery
