#include "recovery/invariants.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "ssd/page_mapper.h"
#include "ssd/volume.h"

namespace ssdcheck::recovery {

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, format);
    std::vsnprintf(buf, sizeof buf, format, ap);
    va_end(ap);
    return buf;
}

/**
 * Reference victim scan: the closed block with the fewest valid pages,
 * lowest block number on ties — the greedy policy restated as an O(n)
 * scan, independent of the mapper's lazy bucket structure.
 */
nand::Pbn
referenceVictim(const ssd::PageMapper &m)
{
    nand::Pbn best = ssd::PageMapper::kNoVictim;
    uint32_t bestValid = 0;
    for (uint64_t b = 0; b < m.totalBlocks(); ++b) {
        const nand::Pbn pbn{b};
        if (!m.isGcCandidate(pbn))
            continue;
        const uint32_t valid = m.blockValidCount(pbn);
        if (best == ssd::PageMapper::kNoVictim || valid < bestValid) {
            best = pbn;
            bestValid = valid;
        }
    }
    return best;
}

} // namespace

std::vector<std::string>
checkInvariants(const CheckpointableRun &run)
{
    std::vector<std::string> violations;
    const ssd::SsdDevice &dev = run.device();

    // -- per-volume FTL coherence ----------------------------------------
    for (uint32_t v = 0; v < dev.config().numVolumes(); ++v) {
        const ssd::Volume &vol = dev.volume(v);
        const ssd::PageMapper &mapper = vol.mapper();
        const std::string err = mapper.checkConsistency();
        if (!err.empty())
            violations.push_back(
                fmt("volume %u: mapper inconsistent: %s", v, err.c_str()));
        if (vol.bufferFill() > vol.bufferCapacity())
            violations.push_back(
                fmt("volume %u: write buffer holds %u pages over its "
                    "capacity of %u",
                    v, vol.bufferFill(), vol.bufferCapacity()));
        const nand::Pbn picked = mapper.pickVictimGreedy();
        const nand::Pbn reference = referenceVictim(mapper);
        // The greedy policy is fully determined by (valid count, block
        // number), so the lazy buckets must agree with a fresh scan.
        if (picked != reference &&
            (picked == ssd::PageMapper::kNoVictim ||
             reference == ssd::PageMapper::kNoVictim ||
             mapper.blockValidCount(picked) !=
                 mapper.blockValidCount(reference)))
            violations.push_back(
                fmt("volume %u: greedy victim %" PRIu64
                    " disagrees with reference scan %" PRIu64,
                    v, picked.value(), reference.value()));
    }

    // -- counter conservation across layers ------------------------------
    const core::AccuracyResult &acc = run.accuracy();
    const uint64_t completed = acc.nlTotal + acc.hlTotal + acc.faulted;
    if (completed != run.cursor())
        violations.push_back(
            fmt("accuracy counters account for %" PRIu64
                " requests but the workload cursor is at %" PRIu64,
                completed, run.cursor()));
    if (acc.nlCorrect > acc.nlTotal || acc.hlCorrect > acc.hlTotal)
        violations.push_back("accuracy correct counts exceed totals");

    const blockdev::ResilienceCounters &rc = run.resilient().counters();
    const core::HealthSupervisor *sup = run.supervisorPtr();
    const resilience::PolicyDevice *pol = run.policyPtr();
    const uint64_t probes = sup != nullptr ? sup->counters().probesIssued : 0;
    // QD1 barrier: nothing is in flight, so host submissions are
    // exactly the completed workload requests plus supervisor probes.
    // With a policy layer those arrive at the policy; the resilient
    // path below it sees only what was forwarded, plus hedges.
    const uint64_t hostSubmissions =
        pol != nullptr ? pol->counters().submissions : rc.submissions;
    if (hostSubmissions != run.cursor() + probes)
        violations.push_back(
            fmt("host path saw %" PRIu64 " submissions but cursor "
                "%" PRIu64 " + %" PRIu64 " probes were issued",
                hostSubmissions, run.cursor(), probes));
    // Every attempt the retry loop issued reaches the device exactly
    // once (a deadline can expire before the first attempt, so
    // submissions + retries is only an upper bound).
    if (dev.requestsServed() != rc.attemptsIssued)
        violations.push_back(
            fmt("device served %" PRIu64 " requests but the resilient "
                "path issued %" PRIu64 " attempts",
                dev.requestsServed(), rc.attemptsIssued));
    if (rc.attemptsIssued > rc.submissions + rc.retries)
        violations.push_back("resilient attempts exceed submissions + "
                             "retries");
    if (rc.recovered + rc.exhausted > rc.retries + rc.submissions)
        violations.push_back("resilience outcome counters exceed attempts");

    // -- policy-layer conservation ---------------------------------------
    if (pol != nullptr) {
        const resilience::PolicyCounters &pc = pol->counters();
        if (pc.forwarded + pc.shedTotal() != pc.submissions)
            violations.push_back(
                fmt("policy forwarded %" PRIu64 " + shed %" PRIu64
                    " does not sum to %" PRIu64 " submissions",
                    pc.forwarded, pc.shedTotal(), pc.submissions));
        if (rc.submissions != pc.forwarded + pc.hedgesIssued)
            violations.push_back(
                fmt("resilient path saw %" PRIu64 " submissions but the "
                    "policy forwarded %" PRIu64 " + %" PRIu64 " hedges",
                    rc.submissions, pc.forwarded, pc.hedgesIssued));
        // Every hedge pair resolves to exactly one winner and one
        // cancelled loser.
        if (pc.hedgeCancelled != pc.hedgesIssued ||
            pc.hedgeWins > pc.hedgesIssued)
            violations.push_back("policy hedge accounting does not pair "
                                 "up with issued hedges");
        if (pc.breakerCloses > pc.breakerOpens + pc.breakerReopens)
            violations.push_back(
                "policy breaker closed more often than it opened");
        // The deadline budget dominates: no exchange may consume more
        // sim time than its cap.
        if (pol->config().deadlineBudget > 0 &&
            pol->maxExchange() > pol->config().deadlineBudget)
            violations.push_back(
                fmt("policy observed a %" PRId64 "ns exchange over the "
                    "%" PRId64 "ns deadline budget",
                    pol->maxExchange(), pol->config().deadlineBudget));
    }

    // -- time sanity ------------------------------------------------------
    if (run.now().ns() < 0)
        violations.push_back(fmt("virtual time is negative (%" PRId64 ")",
                                 run.now().ns()));

    // -- supervisor state-machine sanity ----------------------------------
    if (sup != nullptr) {
        const core::HealthCounters &hc = sup->counters();
        if (hc.falseAlarms > hc.suspectEntries ||
            hc.degradedEntries > hc.suspectEntries)
            violations.push_back(
                "supervisor resolved more Suspect entries than occurred");
        if (hc.hotSwaps > hc.rediagnoseAttempts ||
            hc.rediagnoseFailures > hc.rediagnoseAttempts)
            violations.push_back(
                "supervisor resolved more re-diagnoses than attempted");
        if (hc.probeWrites + hc.probeReads != hc.probesIssued)
            violations.push_back(
                fmt("supervisor probe split %" PRIu64 "+%" PRIu64
                    " does not sum to %" PRIu64 " issued",
                    hc.probeWrites, hc.probeReads, hc.probesIssued));
        if (hc.recoveries > hc.hotSwaps)
            violations.push_back(
                "supervisor recovered more models than were swapped in");
    }
    return violations;
}

} // namespace ssdcheck::recovery
