/**
 * @file
 * Checkpointable accuracy run: the whole host stack of `ssdcheck
 * accuracy` (device, resilient path, model, optional supervisor,
 * metrics registry, workload cursor) behind one object that can
 * serialize its complete deterministic state into a Snapshot at any
 * request boundary and restore it bit-exactly in a fresh process.
 *
 * The run advances one request per step() — the same QD1
 * predict-before-issue loop as core::evaluatePredictionAccuracy —
 * so every step boundary is a quiescent point: no request is in
 * flight, no event is pending, and the full simulation state is the
 * member state of the components, all of which implement
 * saveState()/loadState() (see DESIGN.md "Crash consistency & state
 * serialization").
 *
 * Determinism contract: create(params) + N steps + checkpoint()
 * produces the same bytes whether the N steps ran in one process or
 * were split across any number of kill/restore cycles. The chaos soak
 * harness (tools/soak) and the resume property test build on exactly
 * this contract.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "blockdev/resilient_device.h"
#include "core/accuracy.h"
#include "core/health_supervisor.h"
#include "core/ssdcheck.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "recovery/snapshot.h"
#include "resilience/policy.h"
#include "ssd/ssd_device.h"
#include "workload/snia_synth.h"
#include "workload/trace.h"

namespace ssdcheck::recovery {

/**
 * Everything that shapes a run's deterministic evolution. Two runs
 * (or one run and a snapshot) are compatible exactly when their
 * configHash() matches — resuming a snapshot under different params
 * would silently diverge, so the loader refuses it.
 */
struct RunParams
{
    std::string device = "A";      ///< Preset name ("A".."G" or "nvm").
    std::string faults = "none";   ///< Fault-profile name.
    std::string workload = "RW Mixed";
    double scale = 0.05;           ///< Trace shrink factor.
    bool supervisor = false;       ///< Health supervisor attached.
    int64_t timelineMs = 0;        ///< Metrics timeline interval (0=off).
    std::string resilience = "off"; ///< Policy preset ("off" = none).

    /** Canonical text form (hashed; also stored for diagnostics). */
    std::string canonical() const;

    /** FNV-1a over canonical() — the snapshot compatibility key. */
    uint64_t configHash() const;
};

/** The checkpointable accuracy-run driver. */
class CheckpointableRun
{
  public:
    /**
     * Build the full host stack for @p params.
     * @param forResume skip the one-time offline work (clean-twin
     *        diagnosis, preconditioning): every bit of state it
     *        produces is about to be overwritten by restore(). The
     *        model is built around placeholder features that
     *        restore() replaces.
     * @param err receives a description when construction fails
     *        (unknown device/workload/fault profile, unusable model).
     * @param stages optional per-stage cost profiler, threaded through
     *        every component's observability sink and exported onto
     *        the run's registry. Stage views are never serialized, so
     *        attaching one cannot change checkpoint bytes.
     * @return the run, or nullptr (with @p err set).
     */
    static std::unique_ptr<CheckpointableRun>
    create(const RunParams &params, bool forResume, std::string *err,
           obs::StageProfiler *stages = nullptr);

    /** True when the whole trace has been replayed. */
    bool done() const { return cursor_ >= trace_.size(); }

    /** Replay one request (precondition: !done()). */
    void step();

    /** Requests replayed so far (the resume point of a snapshot). */
    uint64_t cursor() const { return cursor_; }

    /** Current virtual time. */
    sim::SimTime now() const { return t_; }

    /** Accuracy confusion counts so far. */
    const core::AccuracyResult &accuracy() const { return acc_; }

    /**
     * Serialize the complete run state at the current request
     * boundary into a snapshot (header identity = configHash,
     * cursor, virtual time).
     */
    Snapshot checkpoint() const;

    /**
     * Restore a parsed snapshot in place. Refuses snapshots whose
     * config hash differs (LoadError::ConfigMismatch) and malformed
     * section payloads (LoadError::Malformed, @p detail says which
     * section and why). On failure the run must be discarded: state
     * may be partially overwritten.
     * @param forceConfig skip the config-hash comparison (--force):
     *        section-level validation still applies, so structurally
     *        incompatible state fails as Malformed instead.
     */
    [[nodiscard]] LoadError restore(const Snapshot &snap,
                                    std::string *detail,
                                    bool forceConfig = false);

    // -- component access (reports, invariant checks) ---------------------
    ssd::SsdDevice &device() { return *dev_; }
    const ssd::SsdDevice &device() const { return *dev_; }
    blockdev::ResilientDevice &resilient() { return *rdev_; }
    const blockdev::ResilientDevice &resilient() const { return *rdev_; }
    /** Policy layer, or nullptr when params.resilience == "off". */
    resilience::PolicyDevice *policyPtr() { return pdev_.get(); }
    const resilience::PolicyDevice *policyPtr() const
    {
        return pdev_.get();
    }
    core::SsdCheck &check() { return *check_; }
    const core::SsdCheck &check() const { return *check_; }
    core::HealthSupervisor *supervisorPtr() { return sup_.get(); }
    const core::HealthSupervisor *supervisorPtr() const
    {
        return sup_.get();
    }
    obs::Registry &registry() { return registry_; }
    const workload::Trace &trace() const { return trace_; }
    const RunParams &params() const { return params_; }

    /** Metrics-registry JSON snapshot at the current virtual time. */
    std::string metricsJson() const { return registry_.toJson(t_); }

  private:
    CheckpointableRun() = default;

    RunParams params_;
    std::unique_ptr<ssd::SsdDevice> dev_;
    std::unique_ptr<blockdev::ResilientDevice> rdev_;
    std::unique_ptr<resilience::PolicyDevice> pdev_;
    std::unique_ptr<core::SsdCheck> check_;
    std::unique_ptr<core::HealthSupervisor> sup_;
    obs::Registry registry_;
    obs::Histogram hostLatency_;
    workload::Trace trace_;
    core::AccuracyResult acc_;
    sim::SimTime t_;
    uint64_t cursor_ = 0;
    obs::StageProfiler *stages_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
};

} // namespace ssdcheck::recovery
