/**
 * @file
 * Versioned, CRC-checked snapshot container.
 *
 * Layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       8     magic "SSDCKPT1"
 *   8       4     format version (kFormatVersion)
 *   12      8     config hash (FNV-1a of the canonical run config)
 *   20      8     request index the snapshot was taken at
 *   28      8     virtual sim time (ns) at the barrier
 *   36      4     CRC-32 of bytes [0, 36)
 *   40      --    sections, each:
 *                   4  section id (SectionId)
 *                   8  payload size in bytes
 *                   4  CRC-32 of the payload
 *                   n  payload
 *
 * Snapshots are taken at quiescent request-stream barriers (between
 * closed-loop requests, queue depth 0), so no in-flight request or
 * event-queue closure ever needs serializing. Loading validates the
 * magic, version, header CRC and every section CRC before any
 * component sees a byte; every failure is a typed LoadError, never a
 * crash or a silent partial load.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "recovery/state_io.h"

namespace ssdcheck::recovery {

/** Current snapshot format version. Bump on any layout change.
 *  v2: ResilientDevice gained expired/attemptsIssued counters,
 *  FaultInjector gained burst-regime state, and the Resilience/Chaos
 *  sections were added.
 *  v3: NandArray serializes flat structure-of-arrays state (all write
 *  pointers, then erase counts, then read counts) instead of the old
 *  per-chip interleaved block records. */
inline constexpr uint32_t kFormatVersion = 3;

/** Snapshot file magic ("SSDCKPT1"). */
inline constexpr uint8_t kMagic[8] = {'S', 'S', 'D', 'C', 'K', 'P', 'T', '1'};

/** Fixed header size in bytes (see file comment for the layout). */
inline constexpr size_t kHeaderSize = 40;

/** Well-known section identifiers. */
enum class SectionId : uint32_t
{
    Device = 1,     ///< SsdDevice: volumes, mapper, buffers, faults.
    Model = 2,      ///< SsdCheck: features, calibrator, engine, monitor.
    Supervisor = 3, ///< HealthSupervisor state machine.
    Resilient = 4,  ///< ResilientDevice retry/error counters.
    Accuracy = 5,   ///< Accuracy counters + workload cursor + clock.
    Registry = 6,   ///< obs::Registry owned counters and timeline.
    RunParams = 7,  ///< Canonical run parameters (for --resume).
    Resilience = 8, ///< PolicyDevice: breaker/hedge/admission state.
    Chaos = 9,      ///< Chaos campaign shard cursor + digest.
};

/** Why a snapshot failed to load. */
enum class LoadError : uint8_t
{
    Ok = 0,
    IoError,          ///< File missing/unreadable.
    TooShort,         ///< Smaller than the fixed header.
    BadMagic,         ///< Not a snapshot file.
    BadVersion,       ///< Format version this build does not speak.
    BadHeaderCrc,     ///< Header bytes corrupted.
    Truncated,        ///< Section table walks past end of file.
    BadSectionCrc,    ///< A section payload is corrupted.
    DuplicateSection, ///< Same section id appears twice.
    MissingSection,   ///< A required section is absent.
    ConfigMismatch,   ///< Config hash differs from this run's config.
    Malformed,        ///< Section decoded but failed validation.
};

/** Human-readable name of a LoadError (stable, for messages/tests). */
std::string toString(LoadError e);

/** A parsed-and-verified snapshot: section payloads by id. */
class Snapshot
{
  public:
    /** Begin a snapshot at (requestIndex, simTime) for configHash. */
    void begin(uint64_t configHash, uint64_t requestIndex, int64_t simTimeNs);

    /** Add a section (id must be unique). */
    void addSection(SectionId id, std::vector<uint8_t> payload);

    /** Serialize to the on-disk byte layout. */
    std::vector<uint8_t> serialize() const;

    /**
     * Parse and fully verify a byte buffer. On any failure returns the
     * typed error and, when @p detail is non-null, a human-readable
     * explanation; *this is left empty.
     */
    [[nodiscard]] LoadError parse(const std::vector<uint8_t> &bytes,
                                  std::string *detail = nullptr);

    /** Section payload, or nullptr when absent. */
    const std::vector<uint8_t> *section(SectionId id) const;

    uint64_t configHash() const { return configHash_; }
    uint64_t requestIndex() const { return requestIndex_; }
    int64_t simTimeNs() const { return simTimeNs_; }
    size_t sectionCount() const { return sections_.size(); }

  private:
    uint64_t configHash_ = 0;
    uint64_t requestIndex_ = 0;
    int64_t simTimeNs_ = 0;
    std::map<uint32_t, std::vector<uint8_t>> sections_;
};

/**
 * Write @p bytes to @p path atomically: write to a temp file in the
 * same directory, fsync it, rename over the target, then fsync the
 * directory. A SIGKILL at any point leaves either the old complete
 * file or the new complete file, never a torn one.
 * @return empty string on success, else an error message.
 */
std::string writeFileAtomic(const std::string &path,
                            const std::vector<uint8_t> &bytes);

/**
 * Read a whole file. @return LoadError::Ok/IoError; fills @p out.
 */
[[nodiscard]] LoadError readFile(const std::string &path,
                                 std::vector<uint8_t> *out,
                                 std::string *detail = nullptr);

} // namespace ssdcheck::recovery
