/**
 * @file
 * Bounds-checked binary (de)serialization primitives for snapshots.
 *
 * Every field in a snapshot is written explicitly little-endian so the
 * format is identical across hosts, and every read is bounds-checked
 * against the remaining payload so a truncated or bit-flipped snapshot
 * can never walk the reader out of its buffer. StateReader is sticky:
 * after the first failure all further reads return zero values and
 * ok() stays false, which lets loadState() implementations chain reads
 * without checking each one.
 *
 * This layer knows nothing about devices or sections — it is the
 * lowest rung of src/recovery and depends only on the standard
 * library, so any component library can link it to implement
 * saveState()/loadState().
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ssdcheck::recovery {

/** CRC-32 (IEEE 802.3, reflected) over a byte range. */
uint32_t crc32(const uint8_t *data, size_t len);
uint32_t crc32(const std::vector<uint8_t> &bytes);

/** FNV-1a 64-bit hash of a string (config fingerprinting). */
uint64_t fnv1a(const std::string &s);

/** Append-only little-endian byte sink for snapshot payloads. */
class StateWriter
{
  public:
    void u8(uint8_t v) { bytes_.push_back(v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }

    /** Length-prefixed UTF-8/opaque string (u32 length). */
    void str(const std::string &s);

    /** Raw bytes, no length prefix (caller wrote a count already). */
    void raw(const uint8_t *data, size_t len);

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { return std::move(bytes_); }
    size_t size() const { return bytes_.size(); }

  private:
    std::vector<uint8_t> bytes_;
};

/**
 * Sticky bounds-checked little-endian reader over a byte range.
 *
 * The reader never throws and never reads out of bounds: a short or
 * malformed buffer trips the sticky failure flag and subsequent reads
 * return zero values / empty strings. Container length prefixes must
 * be validated with checkCount() before reserving memory, so a
 * corrupted length field cannot become an allocation bomb.
 */
class StateReader
{
  public:
    StateReader(const uint8_t *data, size_t len) : data_(data), len_(len) {}
    explicit StateReader(const std::vector<uint8_t> &bytes)
        : data_(bytes.data()), len_(bytes.size())
    {
    }

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    int64_t i64() { return static_cast<int64_t>(u64()); }
    double f64();
    bool boolean();

    /** Read a u32-length-prefixed string (bounded by remaining()). */
    std::string str();

    /** Copy @p len raw bytes into @p out (zero-fills on failure). */
    void raw(uint8_t *out, size_t len);

    /**
     * Validate an element count read from the payload: fails unless
     * count * elemSize <= remaining(). Call before any reserve/resize
     * driven by untrusted data.
     * @return the count, or 0 after tripping the failure flag.
     */
    uint64_t checkCount(uint64_t count, size_t elemSize);

    /** Explicitly trip the failure flag (semantic validation). */
    void fail(const std::string &why);

    bool ok() const { return ok_; }
    /** First failure description, empty while ok(). */
    const std::string &error() const { return error_; }
    size_t remaining() const { return len_ - pos_; }
    bool atEnd() const { return pos_ == len_; }

  private:
    bool need(size_t n);

    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace ssdcheck::recovery
