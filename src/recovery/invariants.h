/**
 * @file
 * Cross-layer invariant registry for the chaos soak harness.
 *
 * After every kill-and-resume cycle (and at the end of a run) the
 * soak tool asserts that the restored simulation is not just
 * CRC-intact but *semantically* coherent across layers: FTL maps
 * agree with NAND, victim selection matches a from-scratch scan,
 * buffers respect capacity, and every layer's counters add up to the
 * same story about how many requests happened. A serialization bug
 * that loses or double-counts state shows up here long before it
 * would surface as an accuracy anomaly.
 */
#pragma once

#include <string>
#include <vector>

#include "recovery/run_state.h"

namespace ssdcheck::recovery {

/**
 * Check every cross-layer invariant of @p run at a request barrier.
 * @return one description per violated invariant (empty = coherent).
 */
std::vector<std::string> checkInvariants(const CheckpointableRun &run);

} // namespace ssdcheck::recovery
