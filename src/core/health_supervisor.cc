#include "core/health_supervisor.h"

#include <algorithm>
#include <sstream>

#include "core/diagnosis.h"
#include "stats/chi_squared.h"

#include "recovery/state_io.h"

namespace ssdcheck::core {

using blockdev::IoRequest;
using blockdev::IoResult;
using blockdev::IoType;
using blockdev::kSectorsPerPage;

std::string
toString(HealthState s)
{
    switch (s) {
      case HealthState::Healthy:
        return "healthy";
      case HealthState::Suspect:
        return "suspect";
      case HealthState::Degraded:
        return "degraded";
      case HealthState::Rediagnosing:
        return "rediagnosing";
      case HealthState::Recovered:
        return "recovered";
      case HealthState::Disabled:
        return "disabled";
    }
    return "?";
}

namespace {

/** Union of the diagnosed volume bits, sorted and deduplicated. */
std::vector<uint32_t>
unionVolumeBits(const FeatureSet &fs)
{
    std::vector<uint32_t> bits = fs.allocationVolumeBits;
    bits.insert(bits.end(), fs.gcVolumeBits.begin(), fs.gcVolumeBits.end());
    std::sort(bits.begin(), bits.end());
    bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
    return bits;
}

/** Probe reader/writer regions split on this sector-LBA bit (mirrors
 *  the diagnosis snippets' region partition). */
constexpr uint32_t kRegionSectorBit = 13;

} // namespace

HealthSupervisor::HealthSupervisor(SsdCheck &check,
                                   blockdev::BlockDevice &dev,
                                   HealthSupervisorConfig cfg)
    : check_(check), dev_(dev), cfg_(cfg), rng_(cfg.probeSeed),
      baseline_(0, cfg.histBinWidth, cfg.histBins),
      recent_(0, cfg.histBinWidth, cfg.histBins),
      probeVolumeBits_(unionVolumeBits(check.features()))
{
}

void
HealthSupervisor::onCompletion(const IoRequest &req, bool actualHl,
                               const IoResult &res)
{
    if (!started_) {
        started_ = true;
        firstSeen_ = res.submitTime;
    }
    if (state_ == HealthState::Disabled)
        return;
    // Tainted completions measure the error path, not the device;
    // the detectors and the re-diagnosis must not see them (the same
    // rule SsdCheck::onComplete applies to the calibrator).
    if (!res.ok() || res.attempts > 1)
        return;
    ++completions_;

    const sim::SimDuration lat = res.latency();
    if (baselineCount_ < cfg_.baselineSamples) {
        baseline_.add(lat);
        ++baselineCount_;
    } else {
        recent_.add(lat);
    }

    if (state_ == HealthState::Rediagnosing &&
        inProbeVolume(req.lba)) {
        if (req.isWrite())
            volumeWrites_ += req.pages();
        observeFlushSignal(req, lat);
        maybeResolveAttempt();
    }
    (void)actualHl; // classification arrives via the monitor's window

    if (completions_ % cfg_.evalInterval == 0)
        sweep();
    traceState(res.completeTime);
}

bool
HealthSupervisor::detectorsFire()
{
    bool fired = false;

    // Detector 1: rolling HL accuracy collapse.
    const LatencyMonitor &mon = check_.monitor();
    if (mon.rollingHlCount() >= cfg_.minHlEvents &&
        mon.rollingHlAccuracy() < cfg_.suspectHlAccuracy) {
        ++counters_.accuracyCollapses;
        fired = true;
    }

    // Detector 2: buffer-resync churn. A phase-correct model resyncs
    // rarely; a wrong buffer size resyncs on every few flushes.
    const uint64_t resyncs = check_.calibrator().bufferResyncs();
    if (resyncs - lastResyncs_ >= cfg_.suspectResyncBurst) {
        ++counters_.resyncChurnAlarms;
        fired = true;
    }
    lastResyncs_ = resyncs;

    // Detector 3: latency-histogram shift against the calibration-era
    // baseline (e.g. a shrunk buffer quadruples the flush rate, which
    // moves completion mass into the flush-latency bins long before
    // accuracy statistics converge).
    if (baselineCount_ >= cfg_.baselineSamples &&
        recent_.total() >= cfg_.minShiftSamples) {
        const auto shift = stats::chiSquaredTwoSample(baseline_, recent_);
        if (shift.valid && shift.pValue < cfg_.shiftPValue) {
            ++counters_.latencyShiftAlarms;
            fired = true;
        }
        recent_.clear();
    }
    return fired;
}

void
HealthSupervisor::sweep()
{
    ++counters_.sweeps;
    switch (state_) {
      case HealthState::Healthy:
        if (detectorsFire())
            enterSuspect();
        break;
      case HealthState::Suspect:
        if (detectorsFire()) {
            clearStreak_ = 0;
            if (++confirmStreak_ >= cfg_.confirmSweeps)
                enterDegraded();
        } else {
            confirmStreak_ = 0;
            if (++clearStreak_ >= cfg_.clearSweeps) {
                state_ = HealthState::Healthy;
                ++counters_.falseAlarms;
            }
        }
        break;
      case HealthState::Degraded:
      case HealthState::Rediagnosing:
        // Quarantined: every prediction is a forced NL, so the
        // accuracy window is meaningless here. pump() drives repair.
        break;
      case HealthState::Recovered: {
        if (detectorsFire()) {
            // Probation relapse — a second drift (or a bad swap).
            ++counters_.relapses;
            enterSuspect();
            break;
        }
        const uint64_t onProbation = completions_ - completionsAtRecovery_;
        const LatencyMonitor &mon = check_.monitor();
        const bool accuracyOk =
            mon.rollingHlCount() < cfg_.minHlEvents ||
            mon.rollingHlAccuracy() >= cfg_.probationHlAccuracy;
        if (onProbation >= cfg_.probationWindow && accuracyOk) {
            state_ = HealthState::Healthy;
            ++counters_.recoveries;
        }
        break;
      }
      case HealthState::Disabled:
        break;
    }
}

void
HealthSupervisor::enterSuspect()
{
    state_ = HealthState::Suspect;
    ++counters_.suspectEntries;
    confirmStreak_ = 1;
    clearStreak_ = 0;
}

void
HealthSupervisor::enterDegraded()
{
    state_ = HealthState::Degraded;
    ++counters_.degradedEntries;
    // Quarantine: conservative NL fallback so the use cases stay
    // correct (paper's harmless-disable behaviour) while we repair.
    check_.setDegraded(true);
}

void
HealthSupervisor::beginAttempt()
{
    ++counters_.rediagnoseAttempts;
    volumeWrites_ = 0;
    eventCounts_.clear();
    eventLats_.clear();
    inSpike_ = false;
}

void
HealthSupervisor::attemptFailed()
{
    ++counters_.rediagnoseFailures;
    if (counters_.rediagnoseFailures >= cfg_.maxRediagnoses) {
        // The device no longer exposes a learnable buffer phase:
        // permanent harmless-disable rather than probe forever.
        state_ = HealthState::Disabled;
        check_.forceDisable();
        return;
    }
    beginAttempt();
}

void
HealthSupervisor::observeFlushSignal(const IoRequest &req,
                                     sim::SimDuration latency)
{
    // Flush boundaries surface as HL completions (flushes block both
    // probe reads and the workload's own requests; GC rides on a
    // flush, so GC-class events mark a boundary just as well). One
    // event per contiguous blocked window, positioned on the volume
    // write counter — exactly the event train the §III-B
    // background_read_test feeds estimateFlushPeriod().
    const bool hl = check_.monitor().isHighLatency(req, latency);
    if (hl) {
        if (!inSpike_) {
            eventCounts_.push_back(volumeWrites_);
            eventLats_.push_back(latency);
            inSpike_ = true;
        }
    } else {
        inSpike_ = false;
    }
}

void
HealthSupervisor::maybeResolveAttempt()
{
    if (eventCounts_.size() >= cfg_.probeFlushEvents) {
        const FlushPeriodEstimate est = estimateFlushPeriod(
            eventCounts_, eventLats_, cfg_.minBufferPages);
        if (est.pages > 0) {
            hotSwap(est.pages, est.meanSpikeLatency);
            return;
        }
    }
    if (volumeWrites_ > cfg_.maxProbeWritesPerAttempt)
        attemptFailed();
}

void
HealthSupervisor::hotSwap(uint32_t pages, sim::SimDuration meanSpike)
{
    FeatureSet fs = check_.features();
    fs.bufferBytes = static_cast<uint64_t>(pages) * blockdev::kPageSize;
    if (meanSpike > 0)
        fs.observedFlushOverheadNs = meanSpike;
    check_.hotSwapModel(std::move(fs));
    ++counters_.hotSwaps;
    swapPages_ = pages;
    probeVolumeBits_ = unionVolumeBits(check_.features());

    // Fresh probation: the detectors must judge the new model on its
    // own evidence, so the baseline histogram rebuilds from scratch.
    baseline_.clear();
    recent_.clear();
    baselineCount_ = 0;
    lastResyncs_ = check_.calibrator().bufferResyncs();
    inSpike_ = false;
    completionsAtRecovery_ = completions_;
    state_ = HealthState::Recovered;
}

bool
HealthSupervisor::probeBudgetAllows(sim::SimTime now) const
{
    const sim::SimDuration elapsed = now - firstSeen_;
    if (elapsed <= 0)
        return false;
    return static_cast<double>(counters_.probeBusyNs) <
           cfg_.probeBudgetFraction * static_cast<double>(elapsed);
}

uint64_t
HealthSupervisor::probeLba(bool upperHalf)
{
    const uint64_t pages = dev_.capacityPages();
    for (;;) {
        uint64_t lba = rng_.nextBelow(pages) * kSectorsPerPage;
        for (uint32_t b : probeVolumeBits_)
            lba &= ~(1ULL << b);
        if (upperHalf)
            lba |= (1ULL << kRegionSectorBit);
        else
            lba &= ~(1ULL << kRegionSectorBit);
        if (lba + kSectorsPerPage <= dev_.capacitySectors())
            return lba;
    }
}

bool
HealthSupervisor::inProbeVolume(uint64_t lba) const
{
    return volumeIndexOf(probeVolumeBits_, lba) == 0;
}

sim::SimTime
HealthSupervisor::issueProbe(sim::SimTime now)
{
    IoRequest req;
    // Alternate writes (keep the buffer filling even under read-heavy
    // workloads) and reads (the flush-blocked spike samplers).
    if (probeWriteNext_) {
        req.type = IoType::Write;
        req.lba = probeLba(false);
    } else {
        req.type = IoType::Read;
        req.lba = probeLba(true);
    }
    probeWriteNext_ = !probeWriteNext_;
    req.sectors = kSectorsPerPage;

    const IoResult res = dev_.submit(req, now);
    ++counters_.probesIssued;
    if (req.isWrite())
        ++counters_.probeWrites;
    else
        ++counters_.probeReads;
    counters_.probeBusyNs += res.latency();

    if (res.ok() && res.attempts == 1) {
        if (req.isWrite())
            volumeWrites_ += req.pages();
        observeFlushSignal(req, res.latency());
        maybeResolveAttempt();
    }
    return res.completeTime;
}

sim::SimTime
HealthSupervisor::pump(sim::SimTime now)
{
    if (!started_) {
        started_ = true;
        firstSeen_ = now;
    }
    if (state_ == HealthState::Degraded) {
        state_ = HealthState::Rediagnosing;
        beginAttempt();
    }
    if (state_ != HealthState::Rediagnosing) {
        traceState(now);
        return now;
    }
    for (uint32_t i = 0; i < cfg_.probesPerPump; ++i) {
        if (state_ != HealthState::Rediagnosing)
            break; // the attempt resolved mid-pump
        if (!probeBudgetAllows(now)) {
            ++counters_.probesDeferred;
            break;
        }
        now = issueProbe(now);
    }
    traceState(now);
    return now;
}

void
HealthSupervisor::attachObservability(const obs::Sink &sink)
{
    trace_ = sink.trace;
    if (sink.metrics == nullptr)
        return;
    obs::Registry &reg = *sink.metrics;
    const obs::Labels labels = {{"device", dev_.name()}};
    reg.exportGauge("sup_state", labels,
                    reinterpret_cast<const uint8_t *>(&state_));
    reg.exportCounter("sup_sweeps", labels, &counters_.sweeps);
    reg.exportCounter("sup_accuracy_collapses", labels,
                      &counters_.accuracyCollapses);
    reg.exportCounter("sup_resync_churn_alarms", labels,
                      &counters_.resyncChurnAlarms);
    reg.exportCounter("sup_latency_shift_alarms", labels,
                      &counters_.latencyShiftAlarms);
    reg.exportCounter("sup_suspect_entries", labels,
                      &counters_.suspectEntries);
    reg.exportCounter("sup_false_alarms", labels, &counters_.falseAlarms);
    reg.exportCounter("sup_degraded_entries", labels,
                      &counters_.degradedEntries);
    reg.exportCounter("sup_rediagnose_attempts", labels,
                      &counters_.rediagnoseAttempts);
    reg.exportCounter("sup_rediagnose_failures", labels,
                      &counters_.rediagnoseFailures);
    reg.exportCounter("sup_hot_swaps", labels, &counters_.hotSwaps);
    reg.exportCounter("sup_relapses", labels, &counters_.relapses);
    reg.exportCounter("sup_recoveries", labels, &counters_.recoveries);
    reg.exportCounter("sup_probes_issued", labels,
                      &counters_.probesIssued);
    reg.exportCounter("sup_probe_writes", labels, &counters_.probeWrites);
    reg.exportCounter("sup_probe_reads", labels, &counters_.probeReads);
    reg.exportGauge("sup_probe_busy_ns", labels, &counters_.probeBusyNs);
    reg.exportCounter("sup_probes_deferred", labels,
                      &counters_.probesDeferred);
}

std::string
HealthSupervisor::report() const
{
    std::ostringstream os;
    os << "health state: " << toString(state_) << "\n";
    os << "detector sweeps: " << counters_.sweeps
       << " (accuracy collapses " << counters_.accuracyCollapses
       << ", resync churn " << counters_.resyncChurnAlarms
       << ", latency shifts " << counters_.latencyShiftAlarms << ")\n";
    os << "suspect entries: " << counters_.suspectEntries
       << " (false alarms " << counters_.falseAlarms << ", confirmed "
       << counters_.degradedEntries << ", relapses "
       << counters_.relapses << ")\n";
    os << "re-diagnoses: " << counters_.rediagnoseAttempts
       << " attempted, " << counters_.rediagnoseFailures << " failed, "
       << counters_.hotSwaps << " hot-swaps";
    if (swapPages_ > 0)
        os << " (last swap: " << swapPages_ << "-page buffer)";
    os << "\n";
    os << "probe i/o: " << counters_.probesIssued << " issued ("
       << counters_.probeWrites << "w/" << counters_.probeReads
       << "r), " << sim::formatDuration(counters_.probeBusyNs)
       << " device time, " << counters_.probesDeferred
       << " deferred for budget\n";
    os << "recoveries: " << counters_.recoveries << "\n";
    return os.str();
}

void
HealthSupervisor::saveState(recovery::StateWriter &w) const
{
    rng_.saveState(w);
    w.u8(static_cast<uint8_t>(state_));
    w.u64(counters_.sweeps);
    w.u64(counters_.accuracyCollapses);
    w.u64(counters_.resyncChurnAlarms);
    w.u64(counters_.latencyShiftAlarms);
    w.u64(counters_.suspectEntries);
    w.u64(counters_.falseAlarms);
    w.u64(counters_.degradedEntries);
    w.u64(counters_.rediagnoseAttempts);
    w.u64(counters_.rediagnoseFailures);
    w.u64(counters_.hotSwaps);
    w.u64(counters_.relapses);
    w.u64(counters_.recoveries);
    w.u64(counters_.probesIssued);
    w.u64(counters_.probeWrites);
    w.u64(counters_.probeReads);
    w.i64(counters_.probeBusyNs);
    w.u64(counters_.probesDeferred);
    baseline_.saveState(w);
    recent_.saveState(w);
    w.u64(baselineCount_);
    w.u64(lastResyncs_);
    w.u64(completions_);
    w.u32(confirmStreak_);
    w.u32(clearStreak_);
    w.u32(static_cast<uint32_t>(probeVolumeBits_.size()));
    for (uint32_t b : probeVolumeBits_)
        w.u32(b);
    w.u64(volumeWrites_);
    w.u32(static_cast<uint32_t>(eventCounts_.size()));
    for (uint64_t e : eventCounts_)
        w.u64(e);
    w.u32(static_cast<uint32_t>(eventLats_.size()));
    for (sim::SimDuration d : eventLats_)
        w.i64(d);
    w.boolean(inSpike_);
    w.boolean(probeWriteNext_);
    w.u32(swapPages_);
    w.u64(completionsAtRecovery_);
    w.boolean(started_);
    w.i64(firstSeen_.ns());
}

bool
HealthSupervisor::loadState(recovery::StateReader &r)
{
    if (!rng_.loadState(r))
        return false;
    const uint8_t state = r.u8();
    if (r.ok() && state > static_cast<uint8_t>(HealthState::Disabled)) {
        r.fail("supervisor state value out of range");
        return false;
    }
    state_ = static_cast<HealthState>(state);
    counters_.sweeps = r.u64();
    counters_.accuracyCollapses = r.u64();
    counters_.resyncChurnAlarms = r.u64();
    counters_.latencyShiftAlarms = r.u64();
    counters_.suspectEntries = r.u64();
    counters_.falseAlarms = r.u64();
    counters_.degradedEntries = r.u64();
    counters_.rediagnoseAttempts = r.u64();
    counters_.rediagnoseFailures = r.u64();
    counters_.hotSwaps = r.u64();
    counters_.relapses = r.u64();
    counters_.recoveries = r.u64();
    counters_.probesIssued = r.u64();
    counters_.probeWrites = r.u64();
    counters_.probeReads = r.u64();
    counters_.probeBusyNs = r.i64();
    counters_.probesDeferred = r.u64();
    if (!baseline_.loadState(r) || !recent_.loadState(r))
        return false;
    baselineCount_ = r.u64();
    lastResyncs_ = r.u64();
    completions_ = r.u64();
    confirmStreak_ = r.u32();
    clearStreak_ = r.u32();
    const uint64_t nBits = r.checkCount(r.u32(), 4);
    if (r.ok() && nBits > 64) {
        r.fail("supervisor probe-volume bit list too long");
        return false;
    }
    probeVolumeBits_.clear();
    for (uint64_t i = 0; i < nBits; ++i)
        probeVolumeBits_.push_back(r.u32());
    volumeWrites_ = r.u64();
    const uint64_t nCounts = r.checkCount(r.u32(), 8);
    eventCounts_.clear();
    for (uint64_t i = 0; i < nCounts; ++i)
        eventCounts_.push_back(r.u64());
    const uint64_t nLats = r.checkCount(r.u32(), 8);
    eventLats_.clear();
    for (uint64_t i = 0; i < nLats; ++i)
        eventLats_.push_back(r.i64());
    inSpike_ = r.boolean();
    probeWriteNext_ = r.boolean();
    swapPages_ = r.u32();
    completionsAtRecovery_ = r.u64();
    started_ = r.boolean();
    firstSeen_ = sim::SimTime{r.i64()};
    // Do not replay a state-transition trace instant for the restored
    // state: the uninterrupted run traced it when it happened.
    lastTracedState_ = state_;
    return r.ok();
}

} // namespace ssdcheck::core
