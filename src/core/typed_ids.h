/**
 * @file
 * Strong identifier types for the repo's address domains.
 *
 * The simulator juggles three flat 64-bit address spaces — logical
 * page numbers (Lpn), physical page numbers (nand::Ppn) and physical
 * block numbers (nand::Pbn) — plus virtual timestamps (sim::SimTime).
 * As raw uint64_t aliases they convert into each other silently, and
 * an Lpn handed to a Ppn parameter is exactly the bug class the
 * deterministic golden tests only catch after it has shipped a wrong
 * number. TypedId wraps the raw word in a zero-cost struct with an
 * explicit constructor so every cross-domain conversion is spelled
 * out at the call site, and lint rule R9 (typed-ids) bans raw-integer
 * id parameters from the public signatures of src/{ssd,nand,sim,
 * workload}.
 *
 * Deliberately a minimal vocabulary type: explicit ctor, value(),
 * comparisons, and a splitmix64-compatible hash (the same finalizer
 * the WriteBuffer's flat table and the trace interner already use, so
 * hashed containers keyed by an id stay exactly as well-distributed
 * as before). No arithmetic — address math happens on .value() where
 * the surrounding code makes the unit obvious.
 *
 * Header-only and dependency-free on purpose: src/nand and src/ssd
 * include it without linking ssdcheck_core.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ssdcheck::core {

/** Deterministic 64-bit mix (splitmix64 finalizer). */
constexpr uint64_t
splitmix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * A 64-bit identifier in the address domain named by @p Tag.
 * Distinct tags are distinct, non-converting types.
 */
template <class Tag>
struct TypedId
{
    constexpr TypedId() = default;
    constexpr explicit TypedId(uint64_t v) : v_(v) {}

    /** The raw 64-bit value (the only way out of the domain). */
    constexpr uint64_t value() const { return v_; }

    /** Splitmix64-mixed value for hashed containers. */
    constexpr uint64_t hash() const { return splitmix64(v_); }

    friend constexpr bool operator==(TypedId a, TypedId b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr bool operator!=(TypedId a, TypedId b)
    {
        return a.v_ != b.v_;
    }
    friend constexpr bool operator<(TypedId a, TypedId b)
    {
        return a.v_ < b.v_;
    }
    friend constexpr bool operator<=(TypedId a, TypedId b)
    {
        return a.v_ <= b.v_;
    }
    friend constexpr bool operator>(TypedId a, TypedId b)
    {
        return a.v_ > b.v_;
    }
    friend constexpr bool operator>=(TypedId a, TypedId b)
    {
        return a.v_ >= b.v_;
    }

  private:
    uint64_t v_ = 0;
};

struct LpnTag
{
};

/** Logical page number: the host-visible 4KB-page address space. */
using Lpn = TypedId<LpnTag>;

/** Sentinel for "no logical page" (unmapped / erased inverse entry). */
inline constexpr Lpn kInvalidLpn{~0ULL};

} // namespace ssdcheck::core

namespace std {
template <class Tag>
struct hash<ssdcheck::core::TypedId<Tag>>
{
    size_t operator()(ssdcheck::core::TypedId<Tag> id) const
    {
        return static_cast<size_t>(id.hash());
    }
};
} // namespace std
