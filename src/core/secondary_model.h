/**
 * @file
 * Secondary-feature model — the paper's §VI future work, implemented.
 *
 * On devices with an SLC cache (SSD D/E), long events come from two
 * distinct mechanisms: garbage collection and SLC→MLC migration.
 * Their magnitudes differ, and so do their periods, so folding both
 * into one interval history (what the base model does) blurs both
 * predictions. This model splits GC-class observations into two
 * latency clusters with an online 2-means in log space and keeps an
 * independent flush-interval history per cluster, exactly mirroring
 * the paper's history-based GC model.
 */
#pragma once

#include <array>
#include <cstdint>

#include "core/gc_model.h"
#include "sim/sim_time.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::core {

/** Two-cluster event classifier + per-cluster interval models. */
class SecondaryModel
{
  public:
    /** Number of event clusters tracked. */
    static constexpr int kClusters = 2;

    explicit SecondaryModel(GcModelConfig cfg = {});

    /** Account one buffer flush (advances every cluster's counter). */
    void onFlush();

    /**
     * Account an observed long (GC-class) event of @p latency:
     * classifies it, updates the cluster centroid and records the
     * interval in that cluster's history.
     * @return the cluster index the event was assigned to.
     */
    int onEventObserved(sim::SimDuration latency);

    /** Would any cluster expect an event on the next flush? */
    bool eventExpectedOnNextFlush() const;

    /**
     * Expected busy time contributed by the clusters that currently
     * predict an event on the next flush (sum of their centroids).
     */
    sim::SimDuration expectedOverhead() const;

    /** Drop all history (calibrator reset). */
    void resetHistory();

    /** Cluster centroid latency (0 until seen). */
    sim::SimDuration centroid(int cluster) const;

    /** Per-cluster interval model (introspection/tests). */
    const GcModel &clusterModel(int cluster) const;

    /** Events observed so far. */
    uint64_t eventsObserved() const { return events_; }

    /** Serialize per-cluster models, centroids and the event count. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    /** Cluster whose log-centroid is nearest to @p latency. */
    int classify(sim::SimDuration latency) const;

    std::array<GcModel, kClusters> models_;
    std::array<double, kClusters> logCentroid_; ///< 0 = unset.
    uint64_t events_ = 0;
};

} // namespace ssdcheck::core

