/**
 * @file
 * Clang thread-safety annotation macros plus an annotated mutex.
 *
 * The grid layer (src/perf) is the only place in the tree where two
 * threads may touch the same object, and its determinism contract
 * ("shards share no mutable state") is exactly the kind of invariant
 * that silently rots. These macros make the surviving shared state —
 * the ThreadPool queue — *compiler*-checked on Clang builds
 * (-Wthread-safety -Werror=thread-safety); on GCC they expand to
 * nothing, so the portable build is unaffected.
 *
 * libstdc++'s std::mutex carries no capability attributes, so
 * GUARDED_BY(std::mutex) would flag every correctly-locked access.
 * Mutex/MutexLock below wrap std::mutex with the attributes Clang
 * needs; use them (not raw std::mutex) for any new shared state.
 *
 * Everything *outside* src/perf is thread-confined by design: one
 * simulation — device, facade, supervisor — is owned by exactly one
 * shard task and must never be annotated "thread-safe" instead of
 * being kept confined. See DESIGN.md "Static analysis & determinism
 * invariants".
 */
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SSDCHECK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SSDCHECK_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define SSDCHECK_CAPABILITY(x) SSDCHECK_THREAD_ANNOTATION(capability(x))

/** Marks a RAII type that acquires a capability for its lifetime. */
#define SSDCHECK_SCOPED_CAPABILITY SSDCHECK_THREAD_ANNOTATION(scoped_lockable)

/** Field/variable may only be accessed while holding @p x. */
#define SSDCHECK_GUARDED_BY(x) SSDCHECK_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be accessed while holding @p x. */
#define SSDCHECK_PT_GUARDED_BY(x) SSDCHECK_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function must be called with the listed capabilities held. */
#define SSDCHECK_REQUIRES(...) \
    SSDCHECK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function must be called with the listed capabilities NOT held. */
#define SSDCHECK_EXCLUDES(...) \
    SSDCHECK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function acquires the listed capabilities and returns holding them. */
#define SSDCHECK_ACQUIRE(...) \
    SSDCHECK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define SSDCHECK_RELEASE(...) \
    SSDCHECK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function tries to acquire; first arg is the success return value. */
#define SSDCHECK_TRY_ACQUIRE(...) \
    SSDCHECK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Returns a reference to the given capability (lock accessors). */
#define SSDCHECK_RETURN_CAPABILITY(x) \
    SSDCHECK_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: body is exempt from analysis. Use with a comment. */
#define SSDCHECK_NO_THREAD_SAFETY_ANALYSIS \
    SSDCHECK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ssdcheck::core {

/**
 * std::mutex with thread-safety capability attributes. Condition
 * variables pair with it via std::condition_variable_any (it is a
 * BasicLockable); write the wait as an explicit while-loop in the
 * locked region rather than a predicate lambda, so the analysis sees
 * the guarded reads under the capability.
 */
class SSDCHECK_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SSDCHECK_ACQUIRE() { mu_.lock(); }
    void unlock() SSDCHECK_RELEASE() { mu_.unlock(); }
    bool try_lock() SSDCHECK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/** RAII lock for Mutex, visible to the thread-safety analysis. */
class SSDCHECK_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) SSDCHECK_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() SSDCHECK_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

} // namespace ssdcheck::core
