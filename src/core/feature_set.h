/**
 * @file
 * Device-specific features extracted by the diagnosis snippets
 * (paper Table I): internal volume layout and write-buffer
 * size/type/flush algorithms. The runtime performance model is
 * configured from a FeatureSet, never from the simulator's ground
 * truth.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::core {

/** Write-buffer acknowledgement style, as diagnosed (§III-B3). */
enum class BufferTypeFeature : uint8_t { Unknown, Back, Fore };

/** "back" / "fore" / "unknown". */
std::string toString(BufferTypeFeature t);

/** Buffer flush algorithms, as diagnosed. */
struct FlushAlgorithms
{
    bool fullTrigger = false; ///< Flush when the buffer fills.
    bool readTrigger = false; ///< Any read flushes a non-empty buffer.
};

/** Everything SSDcheck learned about a device before runtime. */
struct FeatureSet
{
    /** Sector-LBA bits selecting the allocation volume (sorted). */
    std::vector<uint32_t> allocationVolumeBits;

    /** Sector-LBA bits selecting the GC volume (sorted). */
    std::vector<uint32_t> gcVolumeBits;

    /** Diagnosed write-buffer capacity in bytes (0 = not found). */
    uint64_t bufferBytes = 0;

    BufferTypeFeature bufferType = BufferTypeFeature::Unknown;

    FlushAlgorithms flushAlgorithms;

    /**
     * Mean latency of a flush-blocked request observed during
     * diagnosis — seeds the calibrator's flush-overhead estimate.
     */
    int64_t observedFlushOverheadNs = 0;

    /** True when the buffer analysis succeeded. */
    bool bufferModelUsable() const { return bufferBytes > 0; }

    /** Number of allocation volumes implied by the bits. */
    uint32_t numVolumes() const
    {
        return 1u << allocationVolumeBits.size();
    }

    /** Diagnosed buffer capacity in 4KB pages. */
    uint32_t bufferPages() const
    {
        return static_cast<uint32_t>(bufferBytes / 4096);
    }

    /** One-line summary, Table I style. */
    std::string summary() const;
};

/**
 * Volume index selected by @p bits for sector address @p lba
 * (concatenation of the addressed bit values, LSB first).
 */
uint32_t volumeIndexOf(const std::vector<uint32_t> &bits, uint64_t lba);

/**
 * Serialize a FeatureSet. Features must travel in snapshots: after a
 * supervisor hot-swap they are no longer derivable from the original
 * diagnosis, so a resumed run restores them rather than re-diagnosing.
 */
void saveState(const FeatureSet &fs, recovery::StateWriter &w);

/** Restore a FeatureSet saved by saveState(). @return reader still ok. */
bool loadState(FeatureSet &fs, recovery::StateReader &r);

} // namespace ssdcheck::core

