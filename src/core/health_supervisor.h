/**
 * @file
 * Model-health supervisor: drift detection, online re-diagnosis and
 * degraded-mode recovery for one SsdCheck instance.
 *
 * The paper's runtime model assumes the diagnosed features stay valid.
 * Firmware drift breaks that assumption: after a buffer-resize or
 * flush-algorithm change the model keeps predicting from stale
 * features and either stays wrong forever or gets harmlessly disabled
 * and never comes back. The supervisor closes that loop with a
 * per-device health state machine
 *
 *     Healthy -> Suspect -> Degraded -> Rediagnosing
 *                                         -> Recovered -> Healthy
 *                                         -> Disabled  (terminal)
 *
 * driven by three independent drift detectors:
 *  - rolling-HL-accuracy collapse (the latency monitor's window),
 *  - buffer-resync churn (the calibrator resynchronizes the buffer
 *    counter far more often than a correct model needs), and
 *  - a chi-squared shift test comparing the recent latency histogram
 *    against a calibration-era baseline.
 *
 * On confirmed drift the supervisor quarantines the model (SsdCheck
 * degraded mode: every prediction is a conservative NL, the paper's
 * harmless-disable behaviour) and re-runs the drift-sensitive part of
 * the §III-B diagnosis *online*: probe I/O is interleaved with the
 * live workload through whatever (usually resilient) device path the
 * host already uses, rate-limited to a configurable fraction of
 * device time, while flush-boundary events from both probe and
 * workload completions rebuild the write-buffer feature. A successful
 * estimate hot-swaps the FeatureSet/PredictionEngine inside the
 * facade; a probation window must then hold before the device counts
 * as recovered. Repeated failed re-diagnoses end in Disabled — the
 * supervisor never flaps a hopeless model back in.
 *
 * Threading: a supervisor, the facade it repairs and the device it
 * probes form ONE thread-confined simulation — the grid layer gives
 * every shard its own replica of all three, so no field here is
 * mutex-guarded and none may be annotated "thread-safe" instead of
 * staying confined (see core/annotations.h and DESIGN.md "Static
 * analysis & determinism invariants"). Cross-thread state lives only
 * in perf::ThreadPool, where it is Clang-thread-safety-annotated.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blockdev/block_device.h"
#include "core/ssdcheck.h"
#include "sim/rng.h"
#include "sim/sim_time.h"
#include "stats/histogram.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::core {

/** Per-device model-health state. */
enum class HealthState : uint8_t
{
    Healthy,      ///< Model trusted; detectors armed.
    Suspect,      ///< A detector fired; awaiting confirmation.
    Degraded,     ///< Drift confirmed; model quarantined (NL-only).
    Rediagnosing, ///< Probe I/O rebuilding the buffer feature.
    Recovered,    ///< Hot-swapped model on probation.
    Disabled,     ///< Re-diagnosis exhausted; terminal NL-only.
};

/** Human-readable name of a HealthState. */
std::string toString(HealthState s);

/** Supervisor tunables. */
struct HealthSupervisorConfig
{
    // -- detector cadence -------------------------------------------------
    /** Clean completions between detector sweeps. */
    uint32_t evalInterval = 200;
    /** Completions captured into the calibration-era baseline
     *  histogram before the shift test arms. */
    uint32_t baselineSamples = 2000;

    // -- drift detectors --------------------------------------------------
    /** Rolling HL accuracy below this reads as a collapse. */
    double suspectHlAccuracy = 0.40;
    /** Minimum HL events in the rolling window before acting. */
    uint32_t minHlEvents = 20;
    /** Buffer resyncs within one sweep interval that read as churn. */
    uint32_t suspectResyncBurst = 5;
    /** Chi-squared p-value below which the latency histogram has
     *  shifted versus the calibration-era baseline. Strict, because
     *  the test runs every sweep and workload phase changes are not
     *  drift. */
    double shiftPValue = 1e-6;
    /** Recent-histogram mass required before the shift test runs. */
    uint64_t minShiftSamples = 500;
    /** Consecutive firing sweeps to confirm Suspect -> Degraded. */
    uint32_t confirmSweeps = 2;
    /** Consecutive clean sweeps to clear Suspect -> Healthy. */
    uint32_t clearSweeps = 3;

    // -- online re-diagnosis ----------------------------------------------
    /** Probe busy-time budget as a fraction of elapsed device time. */
    double probeBudgetFraction = 0.10;
    /** Probe submissions per pump() call (budget permitting). */
    uint32_t probesPerPump = 2;
    /** Flush-boundary events needed before estimating the period. */
    uint32_t probeFlushEvents = 24;
    /** Buffer sizes below this many pages are treated as noise. */
    uint32_t minBufferPages = 4;
    /** Volume writes per attempt before the attempt counts as failed. */
    uint64_t maxProbeWritesPerAttempt = 20000;
    /** Failed re-diagnosis attempts before the terminal Disabled. */
    uint32_t maxRediagnoses = 3;

    // -- probation --------------------------------------------------------
    /** Clean completions the hot-swapped model must survive. */
    uint32_t probationWindow = 1500;
    /** Rolling HL accuracy the probation window must end at. */
    double probationHlAccuracy = 0.50;

    // -- shift-test histogram shape --------------------------------------
    sim::SimDuration histBinWidth = sim::microseconds(100);
    uint32_t histBins = 40;

    uint64_t probeSeed = 0x5afe;
};

/** Cumulative supervisor observability counters. */
struct HealthCounters
{
    uint64_t sweeps = 0;             ///< Detector sweeps run.
    uint64_t accuracyCollapses = 0;  ///< Accuracy detector firings.
    uint64_t resyncChurnAlarms = 0;  ///< Resync-churn detector firings.
    uint64_t latencyShiftAlarms = 0; ///< Chi-squared detector firings.
    uint64_t suspectEntries = 0;     ///< Transitions into Suspect.
    uint64_t falseAlarms = 0;        ///< Suspect cleared back to Healthy.
    uint64_t degradedEntries = 0;    ///< Confirmed drifts.
    uint64_t rediagnoseAttempts = 0; ///< Probe campaigns started.
    uint64_t rediagnoseFailures = 0; ///< Probe campaigns that gave up.
    uint64_t hotSwaps = 0;           ///< Models atomically replaced.
    uint64_t relapses = 0;           ///< Recovered -> Suspect.
    uint64_t recoveries = 0;         ///< Probations passed (-> Healthy).
    uint64_t probesIssued = 0;       ///< Probe requests submitted.
    uint64_t probeWrites = 0;
    uint64_t probeReads = 0;
    sim::SimDuration probeBusyNs = 0; ///< Device time consumed by probes.
    uint64_t probesDeferred = 0;     ///< Probe slots skipped for budget.
};

/**
 * Watches one SsdCheck instance, confirms drift, and repairs the
 * model online through the device path the host already uses.
 *
 * Wiring: after every completed workload request call onCompletion()
 * (with the classification SsdCheck::onComplete returned); between
 * requests give the supervisor the bus with pump(), which may issue
 * rate-limited probe I/O and returns the advanced virtual time.
 */
class HealthSupervisor
{
  public:
    /**
     * @param check the facade to supervise (degraded-mode switches
     *        and model hot-swaps are applied to it).
     * @param dev the device path probe I/O goes through — pass the
     *        same (resilient) device the workload uses.
     */
    HealthSupervisor(SsdCheck &check, blockdev::BlockDevice &dev,
                     HealthSupervisorConfig cfg = {});

    /** Observe one completed workload request (post onComplete). */
    void onCompletion(const blockdev::IoRequest &req, bool actualHl,
                      const blockdev::IoResult &res);

    /**
     * Offer the supervisor the bus at @p now. While Rediagnosing this
     * issues up to probesPerPump probe requests, subject to the
     * probe-time budget.
     * @return the virtual time after any probe I/O (>= now).
     */
    sim::SimTime pump(sim::SimTime now);

    HealthState state() const { return state_; }
    const HealthCounters &counters() const { return counters_; }
    const HealthSupervisorConfig &config() const { return cfg_; }

    /** Buffer pages of the last hot-swapped model (0 = none yet). */
    uint32_t lastSwapPages() const { return swapPages_; }

    /** Re-diagnosis flush events collected in the current attempt. */
    size_t pendingFlushEvents() const { return eventCounts_.size(); }

    /** Multi-line operator report (CLI health section). */
    std::string report() const;

    /**
     * Attach observability targets (cold path, before the run):
     * exports the health counters and the state-machine value onto the
     * registry and emits a sup.state instant on the host supervisor
     * track at every state transition.
     */
    void attachObservability(const obs::Sink &sink);

    /**
     * Serialize the complete supervisor state: state machine, probe
     * stream, detector histograms and re-diagnosis progress.
     */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState() (same configuration). */
    bool loadState(recovery::StateReader &r);

  private:
    void sweep();
    bool detectorsFire();
    void enterSuspect();
    void enterDegraded();
    void beginAttempt();
    void attemptFailed();
    void observeFlushSignal(const blockdev::IoRequest &req,
                            sim::SimDuration latency);
    void maybeResolveAttempt();
    void hotSwap(uint32_t pages, sim::SimDuration meanSpike);
    bool probeBudgetAllows(sim::SimTime now) const;
    sim::SimTime issueProbe(sim::SimTime now);
    uint64_t probeLba(bool upperHalf);
    bool inProbeVolume(uint64_t lba) const;

    SsdCheck &check_; // snapshot:skip(ctor-wired reference; the restore harness rebuilds the object graph)
    blockdev::BlockDevice &dev_; // snapshot:skip(ctor-wired reference; the restore harness rebuilds the object graph)
    HealthSupervisorConfig cfg_; // snapshot:skip(construction-time config; restore constructs an identical supervisor before loadState)
    sim::Rng rng_;

    HealthState state_ = HealthState::Healthy;
    HealthCounters counters_;

    // Detector state.
    stats::Histogram baseline_;
    stats::Histogram recent_;
    uint64_t baselineCount_ = 0;
    uint64_t lastResyncs_ = 0;
    uint64_t completions_ = 0;
    uint32_t confirmStreak_ = 0;
    uint32_t clearStreak_ = 0;

    // Probe/re-diagnosis state.
    std::vector<uint32_t> probeVolumeBits_;
    uint64_t volumeWrites_ = 0;
    std::vector<uint64_t> eventCounts_;
    std::vector<sim::SimDuration> eventLats_;
    bool inSpike_ = false;
    bool probeWriteNext_ = true;
    uint32_t swapPages_ = 0;

    // Probation state.
    uint64_t completionsAtRecovery_ = 0;

    // Time accounting for the probe budget.
    bool started_ = false;
    sim::SimTime firstSeen_;

    // Observability (null until attachObservability()). Transitions
    // are traced lazily: the timed entry points compare against the
    // last traced state, so the state machine itself needs no
    // timestamps threaded through.
    obs::TraceRecorder *trace_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
    HealthState lastTracedState_ = HealthState::Healthy; // snapshot:skip(trace-dedup cursor; loadState re-primes it from the restored state)

    /** Emit a sup.state instant when the state changed since the last
     *  traced one (called from the timed entry points). */
    void traceState(sim::SimTime now)
    {
        if (trace_ == nullptr || state_ == lastTracedState_)
            return;
        lastTracedState_ = state_;
        trace_->instant(
            "sup", "sup.state",
            obs::TraceTrack{obs::kHostPid, obs::kHostSupervisorTid}, now,
            {{"state", static_cast<int64_t>(state_)}});
    }
};

} // namespace ssdcheck::core

