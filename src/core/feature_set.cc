#include "core/feature_set.h"

#include <sstream>

#include "recovery/state_io.h"

namespace ssdcheck::core {

std::string
toString(BufferTypeFeature t)
{
    switch (t) {
      case BufferTypeFeature::Unknown:
        return "unknown";
      case BufferTypeFeature::Back:
        return "back";
      case BufferTypeFeature::Fore:
        return "fore";
    }
    return "?";
}

std::string
FeatureSet::summary() const
{
    std::ostringstream os;
    os << numVolumes() << " volume(s) (";
    if (allocationVolumeBits.empty()) {
        os << "none";
    } else {
        for (size_t i = 0; i < allocationVolumeBits.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << allocationVolumeBits[i];
        }
    }
    os << "), buffer " << bufferBytes / 1024 << "KB "
       << toString(bufferType) << ", flush ";
    if (flushAlgorithms.fullTrigger && flushAlgorithms.readTrigger)
        os << "full+read";
    else if (flushAlgorithms.fullTrigger)
        os << "full";
    else if (flushAlgorithms.readTrigger)
        os << "read";
    else
        os << "unknown";
    return os.str();
}

uint32_t
volumeIndexOf(const std::vector<uint32_t> &bits, uint64_t lba)
{
    uint32_t v = 0;
    for (size_t i = 0; i < bits.size(); ++i)
        v |= static_cast<uint32_t>((lba >> bits[i]) & 1ULL) << i;
    return v;
}

namespace {

void
saveBits(const std::vector<uint32_t> &bits, recovery::StateWriter &w)
{
    w.u32(static_cast<uint32_t>(bits.size()));
    for (uint32_t b : bits)
        w.u32(b);
}

bool
loadBits(std::vector<uint32_t> &bits, recovery::StateReader &r)
{
    const uint64_t n = r.checkCount(r.u32(), 4);
    // LBA bit indices address a 64-bit sector number; more than 64 of
    // them (or an index >= 64) is corrupt data, and 1 << size must not
    // overflow numVolumes().
    if (r.ok() && n > 24) {
        r.fail("feature set names more volume bits than addressable");
        return false;
    }
    bits.clear();
    for (uint64_t i = 0; i < n; ++i) {
        const uint32_t b = r.u32();
        if (r.ok() && b >= 64) {
            r.fail("feature-set volume bit index past 64-bit LBA");
            return false;
        }
        bits.push_back(b);
    }
    return r.ok();
}

} // namespace

void
saveState(const FeatureSet &fs, recovery::StateWriter &w)
{
    saveBits(fs.allocationVolumeBits, w);
    saveBits(fs.gcVolumeBits, w);
    w.u64(fs.bufferBytes);
    w.u8(static_cast<uint8_t>(fs.bufferType));
    w.boolean(fs.flushAlgorithms.fullTrigger);
    w.boolean(fs.flushAlgorithms.readTrigger);
    w.i64(fs.observedFlushOverheadNs);
}

bool
loadState(FeatureSet &fs, recovery::StateReader &r)
{
    if (!loadBits(fs.allocationVolumeBits, r) ||
        !loadBits(fs.gcVolumeBits, r))
        return false;
    fs.bufferBytes = r.u64();
    const uint8_t type = r.u8();
    if (r.ok() && type > static_cast<uint8_t>(BufferTypeFeature::Fore)) {
        r.fail("feature-set buffer type out of range");
        return false;
    }
    fs.bufferType = static_cast<BufferTypeFeature>(type);
    fs.flushAlgorithms.fullTrigger = r.boolean();
    fs.flushAlgorithms.readTrigger = r.boolean();
    fs.observedFlushOverheadNs = r.i64();
    return r.ok();
}

} // namespace ssdcheck::core
