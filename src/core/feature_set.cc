#include "core/feature_set.h"

#include <sstream>

namespace ssdcheck::core {

std::string
toString(BufferTypeFeature t)
{
    switch (t) {
      case BufferTypeFeature::Unknown:
        return "unknown";
      case BufferTypeFeature::Back:
        return "back";
      case BufferTypeFeature::Fore:
        return "fore";
    }
    return "?";
}

std::string
FeatureSet::summary() const
{
    std::ostringstream os;
    os << numVolumes() << " volume(s) (";
    if (allocationVolumeBits.empty()) {
        os << "none";
    } else {
        for (size_t i = 0; i < allocationVolumeBits.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << allocationVolumeBits[i];
        }
    }
    os << "), buffer " << bufferBytes / 1024 << "KB "
       << toString(bufferType) << ", flush ";
    if (flushAlgorithms.fullTrigger && flushAlgorithms.readTrigger)
        os << "full+read";
    else if (flushAlgorithms.fullTrigger)
        os << "full";
    else if (flushAlgorithms.readTrigger)
        os << "read";
    else
        os << "unknown";
    return os.str();
}

uint32_t
volumeIndexOf(const std::vector<uint32_t> &bits, uint64_t lba)
{
    uint32_t v = 0;
    for (size_t i = 0; i < bits.size(); ++i)
        v |= static_cast<uint32_t>((lba >> bits[i]) & 1ULL) << i;
    return v;
}

} // namespace ssdcheck::core
