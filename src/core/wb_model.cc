#include "core/wb_model.h"

#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::core {

WriteBufferModel::WriteBufferModel(uint32_t bufferPages, bool readTrigger)
    : size_(bufferPages), readTrigger_(readTrigger)
{
    assert(bufferPages > 0);
}

bool
WriteBufferModel::onWriteSubmitted(uint32_t pages)
{
    counter_ += pages;
    if (counter_ >= size_) {
        // Pages beyond the boundary land in the next buffer: carry
        // the remainder or the phase drifts on multi-page writes.
        counter_ -= size_;
        return true;
    }
    return false;
}

bool
WriteBufferModel::onReadSubmitted()
{
    if (readTrigger_ && counter_ > 0) {
        counter_ = 0;
        return true;
    }
    return false;
}

void
WriteBufferModel::saveState(recovery::StateWriter &w) const
{
    w.u32(size_);
    w.boolean(readTrigger_);
    w.u32(counter_);
}

bool
WriteBufferModel::loadState(recovery::StateReader &r)
{
    const uint32_t size = r.u32();
    const bool readTrigger = r.boolean();
    if (r.ok() && (size != size_ || readTrigger != readTrigger_)) {
        r.fail("buffer model shape does not match restored features");
        return false;
    }
    counter_ = r.u32();
    return r.ok();
}

} // namespace ssdcheck::core
