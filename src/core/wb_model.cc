#include "core/wb_model.h"

#include <cassert>

namespace ssdcheck::core {

WriteBufferModel::WriteBufferModel(uint32_t bufferPages, bool readTrigger)
    : size_(bufferPages), readTrigger_(readTrigger)
{
    assert(bufferPages > 0);
}

bool
WriteBufferModel::onWriteSubmitted(uint32_t pages)
{
    counter_ += pages;
    if (counter_ >= size_) {
        // Pages beyond the boundary land in the next buffer: carry
        // the remainder or the phase drifts on multi-page writes.
        counter_ -= size_;
        return true;
    }
    return false;
}

bool
WriteBufferModel::onReadSubmitted()
{
    if (readTrigger_ && counter_ > 0) {
        counter_ = 0;
        return true;
    }
    return false;
}

} // namespace ssdcheck::core
