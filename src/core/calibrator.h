/**
 * @file
 * Runtime calibrator (paper §III-C2).
 *
 * Maintains EWMA estimates of the latency groups the prediction
 * engine adds into EBT (plain read/write service, buffer-flush
 * overhead, GC overhead), resynchronizes the buffer model on
 * discrepancies, resets stale GC history when rolling HL accuracy
 * collapses, and disables prediction entirely for devices outside the
 * model's coverage ("harmlessly turned off").
 */
#pragma once

#include <cstdint>

#include "obs/registry.h"
#include "sim/sim_time.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::core {

/** Calibrator tunables. */
struct CalibratorConfig
{
    double ewmaAlpha = 0.1;
    /** Reset GC history when rolling HL accuracy drops below this. */
    double gcResetAccuracy = 0.25;
    /** Minimum rolling HL events before acting on accuracy. */
    uint32_t minHlEvents = 20;
    /** Disable prediction when long-run HL accuracy stays below this
     *  after disableAfter observations. */
    double disableAccuracy = 0.05;
    uint64_t disableAfter = 50000;
    /** Initial estimates (overridden by diagnosis observations). */
    sim::SimDuration initialReadService = sim::microseconds(90);
    sim::SimDuration initialWriteService = sim::microseconds(35);
    sim::SimDuration initialFlushOverhead = sim::milliseconds(2);
    sim::SimDuration initialGcOverhead = sim::milliseconds(30);
};

/** EWMA overhead estimates + model-health actions. */
class Calibrator
{
  public:
    explicit Calibrator(CalibratorConfig cfg = {});

    /** Seed the flush-overhead estimate from diagnosis. */
    void seedFlushOverhead(sim::SimDuration d);

    // -- estimate updates (fed by the engine on completions) ------------
    void observeNlRead(sim::SimDuration lat);
    void observeNlWrite(sim::SimDuration lat);
    void observeFlushEvent(sim::SimDuration lat);
    void observeGcEvent(sim::SimDuration lat);

    // -- current estimates ------------------------------------------------
    sim::SimDuration readService() const { return readService_; }
    sim::SimDuration writeService() const { return writeService_; }
    sim::SimDuration flushOverhead() const { return flushOverhead_; }
    sim::SimDuration gcOverhead() const { return gcOverhead_; }

    // -- health -------------------------------------------------------
    /**
     * Feed long-run accuracy so prediction can be auto-disabled.
     * @param rollingHl rolling HL accuracy from the latency monitor.
     * @param rollingHlEvents HL events in the rolling window.
     * @return true when the GC history should be reset now.
     */
    bool onAccuracySample(double rollingHl, uint32_t rollingHlEvents);

    /** False once prediction has been harmlessly turned off. */
    bool predictionEnabled() const { return enabled_; }

    /** Engine resynchronized the buffer counter (drift signal). */
    void noteBufferResync() { ++bufferResyncs_; }

    /** Buffer-counter resynchronizations seen so far. */
    uint64_t bufferResyncs() const { return bufferResyncs_; }

    /**
     * A fresh model was hot-swapped in: forgive the accumulated
     * low-accuracy streak and re-arm prediction so the replacement
     * gets a clean probation.
     */
    void onModelSwap();

    /** Permanently turn prediction off (supervisor gave up). */
    void forceDisable() { enabled_ = false; }

    /** Times onAccuracySample demanded a GC-history reset (drift
     *  response observability). */
    uint64_t historyResets() const { return historyResets_; }

    /** Consecutive below-disableAccuracy samples so far. */
    uint64_t lowAccuracyStreak() const { return lowAccuracyStreak_; }

    /** Accuracy samples consumed so far. */
    uint64_t observations() const { return observations_; }

    const CalibratorConfig &config() const { return cfg_; }

    /** Export the EWMA estimates and health counters as registry
     *  views (cold path; this calibrator must outlive the registry
     *  snapshot). */
    void exportMetrics(obs::Registry &reg, const obs::Labels &labels) const;

    /** Serialize EWMA estimates and health counters. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    void ewma(sim::SimDuration &est, sim::SimDuration sample);

    CalibratorConfig cfg_; // snapshot:skip(construction-time config; restore constructs an identical calibrator before loadState)
    sim::SimDuration readService_;
    sim::SimDuration writeService_;
    sim::SimDuration flushOverhead_;
    sim::SimDuration gcOverhead_;
    uint64_t observations_ = 0;
    uint64_t lowAccuracyStreak_ = 0;
    uint64_t historyResets_ = 0;
    uint64_t bufferResyncs_ = 0;
    bool enabled_ = true;
};

} // namespace ssdcheck::core

