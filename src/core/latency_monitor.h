/**
 * @file
 * Latency monitor (paper §III-C2): classifies every completed request
 * into NL/HL against per-type latency thresholds and keeps the rolling
 * prediction-accuracy window the calibrator consults.
 */
#pragma once

#include <cstdint>
#include <deque>

#include "blockdev/request.h"
#include "sim/sim_time.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::core {

/** NL/HL classification thresholds (paper Table III: 250us). */
struct LatencyThresholds
{
    sim::SimDuration read = sim::microseconds(250);
    sim::SimDuration write = sim::microseconds(250);
    /** Above this, an HL event is attributed to GC (fn. 2). */
    sim::SimDuration gc = sim::milliseconds(3);
};

/** Classifies completions and tracks rolling accuracy. */
class LatencyMonitor
{
  public:
    explicit LatencyMonitor(LatencyThresholds thresholds = {},
                            uint32_t window = 2000);

    /** Is this latency HL for this request type? */
    bool isHighLatency(const blockdev::IoRequest &req,
                       sim::SimDuration latency) const;

    /** Does this latency look like a GC event? */
    bool isGcEvent(sim::SimDuration latency) const
    {
        return latency > thresholds_.gc;
    }

    /** Record one (predictedHl, actualHl) outcome. */
    void record(bool predictedHl, bool actualHl);

    /** Rolling HL recall (1.0 when no HL seen yet). */
    double rollingHlAccuracy() const;

    /** Rolling NL recall (1.0 when no NL seen yet). */
    double rollingNlAccuracy() const;

    /** HL events inside the rolling window. */
    uint32_t rollingHlCount() const { return hlTotal_; }

    const LatencyThresholds &thresholds() const { return thresholds_; }

    /** Serialize the rolling window and its tallies. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    struct Outcome
    {
        bool predictedHl;
        bool actualHl;
    };

    LatencyThresholds thresholds_; // snapshot:skip(construction-time config; restore constructs an identical monitor before loadState)
    uint32_t window_; // snapshot:skip(construction-time config; loadState only validates it against the checkpoint)
    std::deque<Outcome> outcomes_;
    uint32_t hlTotal_ = 0;
    uint32_t hlCorrect_ = 0;
    uint32_t nlTotal_ = 0;
    uint32_t nlCorrect_ = 0;
};

} // namespace ssdcheck::core

