#include "core/secondary_model.h"

#include <cassert>
#include <cmath>

#include "recovery/state_io.h"

namespace ssdcheck::core {

SecondaryModel::SecondaryModel(GcModelConfig cfg)
    : models_{GcModel(cfg), GcModel(cfg)}, logCentroid_{0.0, 0.0}
{
}

void
SecondaryModel::onFlush()
{
    for (auto &m : models_)
        m.onFlush();
}

int
SecondaryModel::classify(sim::SimDuration latency) const
{
    const double x = std::log(static_cast<double>(latency));
    if (logCentroid_[0] == 0.0)
        return 0;
    if (logCentroid_[1] == 0.0) {
        // Second cluster opens once an event differs from the first
        // centroid by more than ~2x in either direction.
        return std::fabs(x - logCentroid_[0]) > std::log(2.0) ? 1 : 0;
    }
    return std::fabs(x - logCentroid_[0]) <= std::fabs(x - logCentroid_[1])
               ? 0
               : 1;
}

int
SecondaryModel::onEventObserved(sim::SimDuration latency)
{
    assert(latency > 0);
    const int c = classify(latency);
    const double x = std::log(static_cast<double>(latency));
    if (logCentroid_[c] == 0.0)
        logCentroid_[c] = x;
    else
        logCentroid_[c] = 0.9 * logCentroid_[c] + 0.1 * x;
    models_[c].onGcObserved();
    ++events_;
    return c;
}

bool
SecondaryModel::eventExpectedOnNextFlush() const
{
    for (const auto &m : models_) {
        if (m.gcExpectedOnNextFlush())
            return true;
    }
    return false;
}

sim::SimDuration
SecondaryModel::expectedOverhead() const
{
    double sum = 0.0;
    for (int c = 0; c < kClusters; ++c) {
        if (models_[c].gcExpectedOnNextFlush() && logCentroid_[c] != 0.0)
            sum += std::exp(logCentroid_[c]);
    }
    return static_cast<sim::SimDuration>(sum);
}

void
SecondaryModel::resetHistory()
{
    for (auto &m : models_)
        m.resetHistory();
    logCentroid_ = {0.0, 0.0};
    events_ = 0;
}

sim::SimDuration
SecondaryModel::centroid(int cluster) const
{
    assert(cluster >= 0 && cluster < kClusters);
    if (logCentroid_[cluster] == 0.0)
        return 0;
    return static_cast<sim::SimDuration>(std::exp(logCentroid_[cluster]));
}

const GcModel &
SecondaryModel::clusterModel(int cluster) const
{
    assert(cluster >= 0 && cluster < kClusters);
    return models_[cluster];
}

void
SecondaryModel::saveState(recovery::StateWriter &w) const
{
    for (const GcModel &m : models_)
        m.saveState(w);
    for (double c : logCentroid_)
        w.f64(c);
    w.u64(events_);
}

bool
SecondaryModel::loadState(recovery::StateReader &r)
{
    for (GcModel &m : models_)
        if (!m.loadState(r))
            return false;
    for (double &c : logCentroid_) {
        c = r.f64();
        if (r.ok() && !std::isfinite(c)) {
            r.fail("secondary-model centroid is not finite");
            return false;
        }
    }
    events_ = r.u64();
    return r.ok();
}

} // namespace ssdcheck::core
