#include "core/prediction_engine.h"

#include <algorithm>
#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::core {

namespace {

/** Union of allocation and GC volume bits, sorted and deduplicated. */
std::vector<uint32_t>
unionBits(const FeatureSet &fs)
{
    std::vector<uint32_t> bits = fs.allocationVolumeBits;
    bits.insert(bits.end(), fs.gcVolumeBits.begin(), fs.gcVolumeBits.end());
    std::sort(bits.begin(), bits.end());
    bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
    return bits;
}

} // namespace

PredictionEngine::PredictionEngine(const FeatureSet &features,
                                   Calibrator &calibrator,
                                   LatencyMonitor &monitor,
                                   GcModelConfig gcCfg, Options options)
    : features_(features), volumeBits_(unionBits(features)),
      calibrator_(calibrator), monitor_(monitor), options_(options),
      fore_(features.bufferType == BufferTypeFeature::Fore)
{
    if (!options_.useVolumeModel)
        volumeBits_.clear(); // treat the device as one volume
    if (!options_.useGcModel)
        gcCfg.minHistory = ~0u; // prediction threshold never reached
    assert(features.bufferModelUsable());
    const uint32_t n = 1u << volumeBits_.size();
    volumes_.reserve(n);
    for (uint32_t v = 0; v < n; ++v) {
        volumes_.push_back(VolumeState{
            WriteBufferModel(features.bufferPages(),
                             features.flushAlgorithms.readTrigger),
            GcModel(gcCfg), SecondaryModel(gcCfg), sim::kTimeZero});
    }
}

uint32_t
PredictionEngine::volumeOf(const blockdev::IoRequest &req) const
{
    return volumeIndexOf(volumeBits_, req.lba);
}

Prediction
PredictionEngine::predict(const blockdev::IoRequest &req,
                          sim::SimTime now) const
{
    const VolumeState &s = volumes_[volumeOf(req)];
    const sim::SimDuration queueWait =
        std::max<sim::SimDuration>(0, s.ebt - now);

    Prediction p;
    if (req.isWrite()) {
        const sim::SimDuration svc = calibrator_.writeService();
        if (s.wb.wouldFlushOnWrite(req.pages())) {
            p.flushExpected = true;
            p.gcExpected = options_.useSecondaryModel
                               ? s.sec.eventExpectedOnNextFlush()
                               : s.gc.gcExpectedOnNextFlush();
            if (fore_) {
                // Fore buffers acknowledge after the flush (and any
                // GC riding on it).
                p.eet = queueWait + calibrator_.flushOverhead() +
                        (p.gcExpected ? calibrator_.gcOverhead() : 0) + svc;
            } else {
                // Back buffers only stall on backpressure: the prior
                // flush/GC still occupying the NAND.
                p.eet = queueWait + svc;
            }
        } else {
            p.eet = svc;
        }
        p.hl = p.eet > monitor_.thresholds().write;
    } else {
        const sim::SimDuration svc = calibrator_.readService();
        if (s.wb.wouldFlushOnRead()) {
            p.flushExpected = true;
            p.gcExpected = options_.useSecondaryModel
                               ? s.sec.eventExpectedOnNextFlush()
                               : s.gc.gcExpectedOnNextFlush();
            p.eet = queueWait + calibrator_.flushOverhead() +
                    (p.gcExpected ? calibrator_.gcOverhead() : 0) + svc;
        } else {
            p.eet = queueWait + svc;
        }
        p.hl = p.eet > monitor_.thresholds().read;
    }
    return p;
}

void
PredictionEngine::applyFlush(VolumeState &s, sim::SimTime now)
{
    // Charge the GC overhead at most once per expected GC cycle;
    // otherwise consecutive flushes past the interval quantile stack
    // 30ms charges and EBT runs away on write-only streams.
    sim::SimDuration gcCharge = 0;
    if (options_.useSecondaryModel) {
        if (s.sec.eventExpectedOnNextFlush() && !s.gcCharged) {
            gcCharge = s.sec.expectedOverhead();
            s.gcCharged = true;
        }
        s.sec.onFlush();
    } else if (s.gc.gcExpectedOnNextFlush() && !s.gcCharged) {
        gcCharge = calibrator_.gcOverhead();
        s.gcCharged = true;
    }
    s.gc.onFlush();
    const sim::SimTime flushStart = std::max(now, s.ebt);
    s.ebt = flushStart + calibrator_.flushOverhead() + gcCharge;
}

void
PredictionEngine::onSubmit(const blockdev::IoRequest &req, sim::SimTime now)
{
    VolumeState &s = volumes_[volumeOf(req)];
    // A pending GC charge whose busy window has fully passed was
    // either avoided (the host steered around it) or wrong; allow the
    // next expected GC to be charged again.
    if (s.gcCharged && now > s.ebt)
        s.gcCharged = false;
    bool flushed = false;
    if (req.isWrite())
        flushed = s.wb.onWriteSubmitted(req.pages());
    else if (req.isRead())
        flushed = s.wb.onReadSubmitted();
    if (flushed)
        applyFlush(s, now);
}

bool
PredictionEngine::onComplete(const blockdev::IoRequest &req,
                             const Prediction &pred, sim::SimTime submit,
                             sim::SimTime complete,
                             blockdev::IoStatus status, uint32_t attempts)
{
    VolumeState &s = volumes_[volumeOf(req)];
    const sim::SimDuration latency = complete - submit;
    const bool actualHl = monitor_.isHighLatency(req, latency);

    // Failed or host-retried exchanges carry retry-loop and backoff
    // time, not device service time. Letting them into the EWMAs
    // would poison every later EET; letting them into the accuracy
    // window would charge the model for the device's errors.
    if (status != blockdev::IoStatus::Ok || attempts > 1)
        return actualHl;

    // Calibration: route the observation to the right estimator.
    if (monitor_.isGcEvent(latency)) {
        calibrator_.observeGcEvent(latency);
        s.gc.onGcObserved();
        if (options_.useSecondaryModel)
            s.sec.onEventObserved(latency);
        s.gcCharged = false; // the expected GC materialized
    } else if (actualHl) {
        calibrator_.observeFlushEvent(latency);
    } else if (req.isRead()) {
        calibrator_.observeNlRead(latency);
    } else if (req.isWrite()) {
        calibrator_.observeNlWrite(latency);
    }

    if (!options_.useCalibrator) {
        monitor_.record(pred.hl, actualHl);
        return actualHl;
    }

    if (actualHl) {
        // The device was demonstrably busy until this completion.
        s.ebt = std::max(s.ebt, complete);
        // Buffer-model discrepancy (paper §III-C2): HL requests the
        // model did not expect mean flushes are happening off-phase —
        // resynchronize the counter. One unexpected HL can be a
        // one-off unmodeled stall (resetting on those would wreck a
        // correct phase), but a true phase error produces an
        // unexpected HL on *every* flush, so two in a row without a
        // correct HL prediction in between is the resync trigger.
        if (!pred.hl) {
            // GC-class events also ride on a flush, so they resync
            // the counter just as well.
            if (++s.unexpectedHlStreak >= 2) {
                s.wb.resetCounter();
                s.unexpectedHlStreak = 0;
                calibrator_.noteBufferResync();
            }
        } else {
            s.unexpectedHlStreak = 0; // phase confirmed
        }
    } else if (req.isRead()) {
        // An NL read that touched NAND proves the volume is idle now;
        // pull back any over-predicted busy window (e.g. a GC that
        // did not materialize).
        s.ebt = std::min(s.ebt, complete);
    }

    monitor_.record(pred.hl, actualHl);
    if (calibrator_.onAccuracySample(monitor_.rollingHlAccuracy(),
                                     monitor_.rollingHlCount())) {
        for (auto &v : volumes_) {
            v.gc.resetHistory();
            v.sec.resetHistory();
        }
    }
    return actualHl;
}

sim::SimTime
PredictionEngine::ebt(uint32_t volume) const
{
    assert(volume < volumes_.size());
    return volumes_[volume].ebt;
}

const GcModel &
PredictionEngine::gcModel(uint32_t volume) const
{
    assert(volume < volumes_.size());
    return volumes_[volume].gc;
}

const WriteBufferModel &
PredictionEngine::wbModel(uint32_t volume) const
{
    assert(volume < volumes_.size());
    return volumes_[volume].wb;
}

const SecondaryModel &
PredictionEngine::secondaryModel(uint32_t volume) const
{
    assert(volume < volumes_.size());
    return volumes_[volume].sec;
}

void
PredictionEngine::saveState(recovery::StateWriter &w) const
{
    w.u32(static_cast<uint32_t>(volumes_.size()));
    for (const VolumeState &s : volumes_) {
        s.wb.saveState(w);
        s.gc.saveState(w);
        s.sec.saveState(w);
        w.i64(s.ebt.ns());
        w.u32(s.unexpectedHlStreak);
        w.boolean(s.gcCharged);
    }
}

bool
PredictionEngine::loadState(recovery::StateReader &r)
{
    const uint32_t n = r.u32();
    if (r.ok() && n != volumes_.size()) {
        r.fail("engine volume count does not match restored features");
        return false;
    }
    for (VolumeState &s : volumes_) {
        if (!s.wb.loadState(r) || !s.gc.loadState(r) ||
            !s.sec.loadState(r))
            return false;
        s.ebt = sim::SimTime{r.i64()};
        s.unexpectedHlStreak = r.u32();
        s.gcCharged = r.boolean();
    }
    return r.ok();
}

} // namespace ssdcheck::core
