#include "core/ssdcheck.h"

#include <algorithm>

#include "recovery/state_io.h"

namespace ssdcheck::core {

namespace {

/**
 * GC events must be separable from plain buffer flushes by latency
 * (paper fn. 2). A fixed bound misclassifies devices whose flushes
 * are long, so scale the bound with the flush overhead the diagnosis
 * observed (mean blocked-request latency is about half the flush
 * window, so 3x clears the whole window with margin).
 */
LatencyThresholds
adaptThresholds(LatencyThresholds t, const FeatureSet &fs)
{
    if (fs.observedFlushOverheadNs > 0)
        t.gc = std::max<sim::SimDuration>(t.gc,
                                          3 * fs.observedFlushOverheadNs);
    return t;
}

} // namespace

SsdCheck::SsdCheck(FeatureSet features, RuntimeConfig cfg)
    : features_(std::move(features)), cfg_(cfg), calibrator_(cfg.calibrator),
      monitor_(adaptThresholds(cfg.thresholds, features_),
               cfg.accuracyWindow)
{
    rebuildEngine();
}

void
SsdCheck::rebuildEngine()
{
    engine_.reset();
    if (!features_.bufferModelUsable())
        return;
    calibrator_.seedFlushOverhead(features_.observedFlushOverheadNs);
    PredictionEngine::Options opts;
    opts.useVolumeModel = cfg_.useVolumeModel;
    opts.useGcModel = cfg_.useGcModel;
    opts.useCalibrator = cfg_.useCalibrator;
    opts.useSecondaryModel = cfg_.useSecondaryModel;
    engine_ = std::make_unique<PredictionEngine>(features_, calibrator_,
                                                 monitor_, cfg_.gcModel,
                                                 opts);
}

void
SsdCheck::hotSwapModel(FeatureSet features)
{
    features_ = std::move(features);
    // The old window scored the old model; the replacement must be
    // judged (and its probation measured) on its own completions.
    monitor_ = LatencyMonitor(adaptThresholds(cfg_.thresholds, features_),
                              cfg_.accuracyWindow);
    calibrator_.onModelSwap();
    rebuildEngine();
    degraded_ = false;
    // The replacement model may classify GC at a different threshold;
    // keep the audit's drift bound in sync.
    if (audit_ != nullptr)
        audit_->setGcThreshold(monitor_.thresholds().gc);
}

void
SsdCheck::forceDisable()
{
    calibrator_.forceDisable();
    degraded_ = false;
}

FeatureSet
SsdCheck::diagnose(blockdev::BlockDevice &dev, DiagnosisConfig cfg,
                   sim::SimTime startTime)
{
    DiagnosisRunner runner(dev, std::move(cfg), startTime);
    return runner.extractFeatures();
}

Prediction
SsdCheck::predict(const blockdev::IoRequest &req, sim::SimTime now) const
{
    const obs::StageScope stage(stages_, obs::Stage::Model);
    if (!enabled() || degraded_) {
        // Harmlessly disabled (or quarantined by the health
        // supervisor): everything reads as normal latency.
        Prediction p;
        p.eet = req.isWrite() ? calibrator_.writeService()
                              : calibrator_.readService();
        p.hl = false;
        return p;
    }
    return engine_->predict(req, now);
}

void
SsdCheck::onSubmit(const blockdev::IoRequest &req, sim::SimTime now)
{
    if (engine_ != nullptr)
        engine_->onSubmit(req, now);
}

bool
SsdCheck::onComplete(const blockdev::IoRequest &req, const Prediction &pred,
                     sim::SimTime submit, sim::SimTime complete,
                     blockdev::IoStatus status, uint32_t attempts)
{
    const obs::StageScope stage(stages_, obs::Stage::Model);
    bool actualHl;
    if (engine_ != nullptr)
        actualHl = engine_->onComplete(req, pred, submit, complete, status,
                                       attempts);
    else
        actualHl = classifyActual(req, complete - submit);
    if (trace_ != nullptr || audit_ != nullptr)
        observeCompletion(req, pred, submit, complete, status, attempts,
                          actualHl);
    return actualHl;
}

void
SsdCheck::attachObservability(const obs::Sink &sink)
{
    trace_ = sink.trace;
    audit_ = sink.audit;
    stages_ = sink.stages;
    if (audit_ != nullptr)
        audit_->setGcThreshold(monitor_.thresholds().gc);
    if (sink.metrics != nullptr)
        calibrator_.exportMetrics(*sink.metrics, {});
}

void
SsdCheck::observeCompletion(const blockdev::IoRequest &req,
                            const Prediction &pred, sim::SimTime submit,
                            sim::SimTime complete,
                            blockdev::IoStatus status, uint32_t attempts,
                            bool actualHl)
{
    const sim::SimDuration actual = complete - submit;
    if (trace_ != nullptr) {
        obs::TraceArg *a = trace_->completeFill(
            "model", "model.predict",
            obs::TraceTrack{obs::kHostPid, obs::kHostModelTid}, submit,
            actual, 3);
        a[0] = {"pred_hl", pred.hl ? 1 : 0};
        a[1] = {"actual_hl", actualHl ? 1 : 0};
        a[2] = {"eet_ns", pred.eet};
    }
    if (audit_ != nullptr) {
        obs::AuditRecord r;
        r.submit = submit;
        r.actualNs = actual;
        r.predictedEetNs = pred.eet;
        r.type = static_cast<uint8_t>(req.type);
        r.status = static_cast<uint8_t>(status);
        r.attempts = attempts;
        r.predictedHl = pred.hl;
        r.actualHl = actualHl;
        r.flushExpected = pred.flushExpected;
        r.gcExpected = pred.gcExpected;
        if (engine_ != nullptr) {
            const uint32_t v = engine_->volumeOf(req);
            r.volume = v;
            r.bufferCounter = engine_->wbModel(v).counter();
            r.bufferSize = engine_->wbModel(v).size();
            r.gcIntervalCounter = engine_->gcModel(v).intervalCounter();
        }
        r.flushEstimateNs = calibrator_.flushOverhead();
        r.gcEstimateNs = calibrator_.gcOverhead();
        audit_->add(r);
    }
}

bool
SsdCheck::classifyActual(const blockdev::IoRequest &req,
                         sim::SimDuration latency) const
{
    return monitor_.isHighLatency(req, latency);
}

bool
SsdCheck::enabled() const
{
    return engine_ != nullptr && calibrator_.predictionEnabled();
}

void
SsdCheck::saveState(recovery::StateWriter &w) const
{
    core::saveState(features_, w);
    calibrator_.saveState(w);
    monitor_.saveState(w);
    w.boolean(engine_ != nullptr);
    if (engine_ != nullptr)
        engine_->saveState(w);
    w.boolean(degraded_);
}

bool
SsdCheck::loadState(recovery::StateReader &r)
{
    FeatureSet fs;
    if (!core::loadState(fs, r))
        return false;
    // Rebuild exactly as hotSwapModel() does, then overwrite the
    // rebuilt components with the snapshot's state in place (the
    // engine references calibrator_ and monitor_ by address, so both
    // must be restored after the rebuild, not swapped out).
    features_ = std::move(fs);
    monitor_ = LatencyMonitor(adaptThresholds(cfg_.thresholds, features_),
                              cfg_.accuracyWindow);
    rebuildEngine();
    if (audit_ != nullptr)
        audit_->setGcThreshold(monitor_.thresholds().gc);
    if (!calibrator_.loadState(r) || !monitor_.loadState(r))
        return false;
    const bool hasEngine = r.boolean();
    if (r.ok() && hasEngine != (engine_ != nullptr)) {
        r.fail("snapshot engine presence contradicts restored features");
        return false;
    }
    if (engine_ != nullptr && !engine_->loadState(r))
        return false;
    degraded_ = r.boolean();
    return r.ok();
}

} // namespace ssdcheck::core
