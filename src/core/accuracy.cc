#include "core/accuracy.h"

#include "core/health_supervisor.h"

namespace ssdcheck::core {

namespace {

/** Host-latency histogram bounds (ns): 50µs .. 100ms decades. */
const std::vector<int64_t> kHostLatencyBounds = {
    50'000,     100'000,    250'000,    500'000,    1'000'000,
    2'500'000,  5'000'000,  10'000'000, 25'000'000, 100'000'000};

} // namespace

AccuracyResult
evaluatePredictionAccuracy(blockdev::BlockDevice &dev, SsdCheck &check,
                           const workload::Trace &trace,
                           sim::SimTime startTime, sim::SimTime *endTime,
                           HealthSupervisor *supervisor,
                           const obs::Sink *sink)
{
    AccuracyResult acc;
    obs::TraceRecorder *spans = sink != nullptr ? sink->trace : nullptr;
    obs::Registry *metrics = sink != nullptr ? sink->metrics : nullptr;
    obs::StageProfiler *stages = sink != nullptr ? sink->stages : nullptr;
    if (sink != nullptr && sink->audit != nullptr)
        sink->audit->reserve(sink->audit->size() + trace.records().size());
    obs::Histogram hostLatency;
    if (metrics != nullptr)
        hostLatency =
            metrics->histogram("host_latency_ns", kHostLatencyBounds);
    sim::SimTime t = startTime;
    for (const auto &rec : trace.records()) {
        if (supervisor != nullptr)
            t = supervisor->pump(t);
        const blockdev::IoRequest &req = rec.req;
        const Prediction pred = check.predict(req, t);
        check.onSubmit(req, t);
        const blockdev::IoResult res = dev.submit(req, t);
        const bool actualHl = check.onComplete(
            req, pred, t, res.completeTime, res.status, res.attempts);
        if (supervisor != nullptr)
            supervisor->onCompletion(req, actualHl, res);
        {
            // Span emission and registry upkeep are observability
            // overhead, not simulation work: bill them to the trace
            // stage so the profiler separates them from wb/gc/nand.
            const obs::StageScope obsStage(stages, obs::Stage::Trace);
            if (spans != nullptr) {
                obs::TraceArg *a = spans->completeFill(
                    "host", "host.request",
                    obs::TraceTrack{obs::kHostPid, obs::kHostWorkloadTid},
                    t, res.completeTime - t, 4);
                a[0] = {"lba", static_cast<int64_t>(req.lba)};
                a[1] = {"write", req.isWrite() ? 1 : 0};
                a[2] = {"pred_hl", pred.hl ? 1 : 0};
                a[3] = {"actual_hl", actualHl ? 1 : 0};
            }
            if (metrics != nullptr) {
                hostLatency.observe(res.completeTime - t);
                metrics->tick(res.completeTime);
            }
        }
        if (stages != nullptr)
            stages->addRequest();
        if (!res.ok() || res.attempts > 1) {
            // Error-path exchanges measure the resilience layer, not
            // the prediction model; keep recall clean of them.
            ++acc.faulted;
            t = res.completeTime;
            continue;
        }
        if (actualHl) {
            ++acc.hlTotal;
            if (pred.hl)
                ++acc.hlCorrect;
        } else {
            ++acc.nlTotal;
            if (!pred.hl)
                ++acc.nlCorrect;
        }
        t = res.completeTime;
    }
    if (endTime != nullptr)
        *endTime = t;
    return acc;
}

} // namespace ssdcheck::core
