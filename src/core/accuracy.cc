#include "core/accuracy.h"

#include "core/health_supervisor.h"

namespace ssdcheck::core {

AccuracyResult
evaluatePredictionAccuracy(blockdev::BlockDevice &dev, SsdCheck &check,
                           const workload::Trace &trace,
                           sim::SimTime startTime, sim::SimTime *endTime,
                           HealthSupervisor *supervisor)
{
    AccuracyResult acc;
    sim::SimTime t = startTime;
    for (const auto &rec : trace.records()) {
        if (supervisor != nullptr)
            t = supervisor->pump(t);
        const blockdev::IoRequest &req = rec.req;
        const Prediction pred = check.predict(req, t);
        check.onSubmit(req, t);
        const blockdev::IoResult res = dev.submit(req, t);
        const bool actualHl = check.onComplete(
            req, pred, t, res.completeTime, res.status, res.attempts);
        if (supervisor != nullptr)
            supervisor->onCompletion(req, actualHl, res);
        if (!res.ok() || res.attempts > 1) {
            // Error-path exchanges measure the resilience layer, not
            // the prediction model; keep recall clean of them.
            ++acc.faulted;
            t = res.completeTime;
            continue;
        }
        if (actualHl) {
            ++acc.hlTotal;
            if (pred.hl)
                ++acc.hlCorrect;
        } else {
            ++acc.nlTotal;
            if (!pred.hl)
                ++acc.nlCorrect;
        }
        t = res.completeTime;
    }
    if (endTime != nullptr)
        *endTime = t;
    return acc;
}

} // namespace ssdcheck::core
