/**
 * @file
 * History-based GC model (paper §III-C1).
 *
 * Counts buffer flushes between observed GC events and keeps a sliding
 * window of those intervals. A GC is predicted on the next flush once
 * the interval counter reaches a conservative low quantile of the
 * history — the paper's rationale: the valid-page distribution (and
 * hence the interval distribution) drifts slowly, so recent history
 * predicts the near future.
 */
#pragma once

#include <cstdint>
#include <deque>

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::core {

/** Tunables of the GC interval model. */
struct GcModelConfig
{
    uint32_t historyWindow = 48; ///< Intervals remembered.
    uint32_t minHistory = 6;     ///< No predictions before this many.
    double quantile = 0.25;      ///< Predict once counter passes this.
};

/** Flush-interval counter + distribution for one GC volume. */
class GcModel
{
  public:
    explicit GcModel(GcModelConfig cfg = {});

    /** Account one buffer flush. */
    void onFlush() { ++intervalCounter_; }

    /** Account an observed GC event; records the interval. */
    void onGcObserved();

    /**
     * Would a flush occurring now be expected to trigger GC?
     * True once the counter (including the pending flush) reaches the
     * configured quantile of the recorded interval distribution.
     */
    bool gcExpectedOnNextFlush() const;

    /** Calibrator: drop stale history (paper: "reset the interval
     *  distribution to remove the current, ineffective history"). */
    void resetHistory();

    uint32_t intervalCounter() const { return intervalCounter_; }
    const std::deque<uint32_t> &history() const { return history_; }

    /** Serialize the interval counter and history window. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    /** Current quantile estimate (0 when history too short). */
    uint32_t thresholdIntervals() const;

    GcModelConfig cfg_; // snapshot:skip(construction-time config; loadState only validates it against the checkpoint)
    uint32_t intervalCounter_ = 0;
    std::deque<uint32_t> history_;
};

} // namespace ssdcheck::core

