/**
 * @file
 * The SSDcheck facade: the public API of the paper's contribution.
 *
 * Typical use:
 *
 *   auto features = SsdCheck::diagnose(device);      // §III-B snippets
 *   SsdCheck check(features);                        // §III-C model
 *   ...
 *   auto pred = check.predict(req, now);             // query
 *   check.onSubmit(req, now);                        // host issues req
 *   auto res = device.submit(req, now);
 *   check.onComplete(req, pred, now, res.completeTime);
 *
 * When the diagnosis could not build a usable model (bufferBytes == 0)
 * or the calibrator turned prediction off, predict() returns NL for
 * everything — the paper's "harmlessly disabled" behaviour.
 *
 * Threading: an SsdCheck is thread-confined — exactly one shard task
 * (or the single CLI thread) owns it, its device and its supervisor.
 * In particular the hot-swap path (setDegraded / hotSwapModel /
 * forceDisable) mutates engine_, features_ and the calibrator with no
 * lock: it is "atomic" in the transactional sense (the model is
 * coherent before and after), not the concurrency sense. Do not call
 * it from another thread; shared cross-thread state belongs behind
 * the annotated core::Mutex (core/annotations.h), checked by
 * -Werror=thread-safety on Clang.
 */
#pragma once

#include <memory>
#include <optional>

#include "blockdev/block_device.h"
#include "core/calibrator.h"
#include "core/diagnosis.h"
#include "core/feature_set.h"
#include "core/latency_monitor.h"
#include "core/prediction_engine.h"
#include "obs/sink.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::core {

/** Runtime-framework configuration. */
struct RuntimeConfig
{
    LatencyThresholds thresholds;
    GcModelConfig gcModel;
    CalibratorConfig calibrator;
    uint32_t accuracyWindow = 2000;

    /**
     * Ablation switches (used by bench_ablation_model and the tests;
     * all on in normal operation):
     *  - useVolumeModel: route requests through the diagnosed volume
     *    bits; off = model the device as one volume (paper §V-B notes
     *    accuracy on SSD D/E is "extremely low" without it).
     *  - useGcModel: history-based GC prediction; off = never charge
     *    GC overhead into EBT.
     *  - useCalibrator: runtime resynchronization (buffer-counter
     *    resync, EBT corrections, history resets); off = the static
     *    model runs open-loop.
     */
    bool useVolumeModel = true;
    bool useGcModel = true;
    bool useCalibrator = true;
    /** §VI future work: two-cluster secondary-feature model. */
    bool useSecondaryModel = false;
};

/** Diagnosis + runtime model behind one object. */
class SsdCheck
{
  public:
    /** Build the runtime framework from extracted features. */
    explicit SsdCheck(FeatureSet features, RuntimeConfig cfg = {});

    /** Run the §III-B diagnosis snippets against a device. */
    static FeatureSet diagnose(blockdev::BlockDevice &dev,
                               DiagnosisConfig cfg = {},
                               sim::SimTime startTime = sim::kTimeZero);

    /** Predict the latency of @p req if submitted at @p now. */
    Prediction predict(const blockdev::IoRequest &req,
                       sim::SimTime now) const;

    /** Account a request the host actually submitted. */
    void onSubmit(const blockdev::IoRequest &req, sim::SimTime now);

    /**
     * Account a completion. Failed (@p status != Ok) or host-retried
     * (@p attempts > 1) completions are classified but never pollute
     * the calibrator's EWMAs or the rolling-accuracy window.
     * @return the actual NL/HL classification of the request.
     */
    bool onComplete(const blockdev::IoRequest &req, const Prediction &pred,
                    sim::SimTime submit, sim::SimTime complete,
                    blockdev::IoStatus status = blockdev::IoStatus::Ok,
                    uint32_t attempts = 1);

    /** onComplete from the completion record itself. */
    bool onComplete(const blockdev::IoRequest &req, const Prediction &pred,
                    const blockdev::IoResult &res)
    {
        return onComplete(req, pred, res.submitTime, res.completeTime,
                          res.status, res.attempts);
    }

    /** Classify a latency without updating any state. */
    bool classifyActual(const blockdev::IoRequest &req,
                        sim::SimDuration latency) const;

    /** True while the model is usable and not auto-disabled. */
    bool enabled() const;

    // -- health-supervisor hooks ------------------------------------------
    /**
     * Quarantine (or release) the model. While degraded predict()
     * answers conservative NL for everything — the harmlessly-disabled
     * behaviour — but the engine keeps observing completions so its
     * state stays warm for a possible hot-swap.
     */
    void setDegraded(bool on) { degraded_ = on; }
    bool degraded() const { return degraded_; }

    /**
     * Atomically replace the model with freshly re-diagnosed
     * @p features: rebuilds the engine, re-adapts the monitor's
     * thresholds, clears the rolling-accuracy window and re-arms the
     * calibrator. Also clears degraded mode.
     */
    void hotSwapModel(FeatureSet features);

    /** Permanently disable prediction (re-diagnosis exhausted). */
    void forceDisable();

    const FeatureSet &features() const { return features_; }
    const LatencyMonitor &monitor() const { return monitor_; }
    const Calibrator &calibrator() const { return calibrator_; }

    /** Engine introspection (tests); null when the model is unusable. */
    const PredictionEngine *engine() const { return engine_.get(); }

    /**
     * Attach observability targets (cold path, before the run):
     * exports calibrator estimates onto the registry, emits a
     * model.predict span per completion on the host model track, and
     * feeds the audit log one record per completion (predicted class
     * vs actual latency vs the model state the engine saw).
     */
    void attachObservability(const obs::Sink &sink);

    /**
     * Serialize the whole runtime model: features (which may have been
     * hot-swapped and are no longer derivable from diagnosis),
     * calibrator, rolling-accuracy window, engine state and the
     * degraded flag.
     */
    void saveState(recovery::StateWriter &w) const;

    /**
     * Restore state saved by saveState(): rebuilds the engine from the
     * restored features (hot-swap path), then overwrites calibrator,
     * monitor and engine state in place.
     */
    bool loadState(recovery::StateReader &r);

  private:
    void rebuildEngine();

    /** Feed the trace/audit pillars one completed request. */
    void observeCompletion(const blockdev::IoRequest &req,
                           const Prediction &pred, sim::SimTime submit,
                           sim::SimTime complete, blockdev::IoStatus status,
                           uint32_t attempts, bool actualHl);

    FeatureSet features_;
    RuntimeConfig cfg_; // snapshot:skip(construction-time config; loadState only validates it against the checkpoint)
    Calibrator calibrator_;
    LatencyMonitor monitor_;
    std::unique_ptr<PredictionEngine> engine_;
    bool degraded_ = false;

    // Observability (null until attachObservability()).
    obs::TraceRecorder *trace_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
    obs::AuditLog *audit_ = nullptr; // snapshot:skip(non-owning audit sink, re-attached after restore; loadState only resets its dedup cursor)
    obs::StageProfiler *stages_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
};

} // namespace ssdcheck::core

