#include "core/diagnosis.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <queue>

#include "stats/chi_squared.h"
#include "stats/histogram.h"
#include "workload/pattern.h"

namespace ssdcheck::core {

using blockdev::IoRequest;
using blockdev::IoType;
using blockdev::kSectorsPerPage;

namespace {

/** Settle gap inserted between sub-tests. */
constexpr sim::SimDuration kSettle = sim::milliseconds(200);

/** Median of a non-empty vector (copies; inputs are small). */
template <typename T>
T
medianOf(std::vector<T> v)
{
    assert(!v.empty());
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * A completion that failed or was re-issued by a resilience layer
 * carries retry-loop and backoff latency, not the device's service
 * behaviour: using it as a snippet measurement would let a flaky
 * device poison the extracted features.
 */
bool
cleanSample(const blockdev::IoResult &res)
{
    return res.ok() && res.attempts == 1;
}

} // namespace

DiagnosisRunner::DiagnosisRunner(blockdev::BlockDevice &dev,
                                 DiagnosisConfig cfg, sim::SimTime startTime)
    : dev_(dev), cfg_(std::move(cfg)), rng_(cfg_.seed), now_(startTime)
{
}

uint32_t
DiagnosisRunner::highestScanBit() const
{
    if (cfg_.maxBit != 0)
        return cfg_.maxBit;
    const uint64_t sectors = dev_.capacitySectors();
    uint32_t top = 0;
    while ((1ULL << (top + 1)) < sectors)
        ++top;
    // The pinned/flipped bit must stay strictly inside the range.
    return top - 1;
}

void
DiagnosisRunner::precondition()
{
    dev_.purge(now_);
    const uint64_t pages = dev_.capacityPages();
    sim::Rng rng = rng_.fork(0xfee1);

    // SNIA-style: sequential fill, then random churn to fragment
    // blocks so GC reaches its steady state.
    auto drive = [&](workload::AddressPattern &pat, uint64_t n) {
        std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                            std::greater<>> inflight;
        sim::SimTime t = now_;
        for (uint64_t i = 0; i < n; ++i) {
            if (inflight.size() >= 32) {
                t = std::max(t, inflight.top());
                inflight.pop();
            }
            IoRequest req;
            req.type = IoType::Write;
            req.lba = pat.nextLba(rng);
            req.sectors = kSectorsPerPage;
            const auto res = dev_.submit(req, t);
            inflight.push(res.completeTime);
        }
        while (!inflight.empty()) {
            t = std::max(t, inflight.top());
            inflight.pop();
        }
        now_ = t + kSettle;
    };

    workload::SequentialPattern seq(0, pages);
    drive(seq, pages);
    // GC's steady state (victim valid-page distribution) converges
    // only after substantially more than one capacity of random
    // overwrites.
    workload::UniformPattern rnd(pages);
    drive(rnd, (pages * 3) / 4);
}

void
DiagnosisRunner::sequentialFill()
{
    dev_.purge(now_);
    const uint64_t pages = dev_.capacityPages();
    sim::Rng rng = rng_.fork(0x5e0f);
    workload::SequentialPattern seq(0, pages);
    std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                        std::greater<>> inflight;
    sim::SimTime t = now_;
    for (uint64_t i = 0; i < pages; ++i) {
        if (inflight.size() >= 32) {
            t = std::max(t, inflight.top());
            inflight.pop();
        }
        IoRequest req;
        req.type = IoType::Write;
        req.lba = seq.nextLba(rng);
        req.sectors = kSectorsPerPage;
        const auto res = dev_.submit(req, t);
        inflight.push(res.completeTime);
    }
    while (!inflight.empty()) {
        t = std::max(t, inflight.top());
        inflight.pop();
    }
    now_ = t + kSettle;
}

void
DiagnosisRunner::remixChurn()
{
    // Uniform random overwrites restore the device's uniform
    // valid-page distribution after a biased (bit-pinned) test, so
    // per-bit throughput runs all start from the same GC regime.
    const uint64_t pages = dev_.capacityPages();
    sim::Rng rng = rng_.fork(0x4e41);
    workload::UniformPattern rnd(pages);
    std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                        std::greater<>> inflight;
    sim::SimTime t = now_;
    for (uint64_t i = 0; i < pages / 4; ++i) {
        if (inflight.size() >= 32) {
            t = std::max(t, inflight.top());
            inflight.pop();
        }
        IoRequest req;
        req.type = IoType::Write;
        req.lba = rnd.nextLba(rng);
        req.sectors = kSectorsPerPage;
        const auto res = dev_.submit(req, t);
        inflight.push(res.completeTime);
    }
    while (!inflight.empty()) {
        t = std::max(t, inflight.top());
        inflight.pop();
    }
    now_ = t + kSettle;
}

DiagnosisRunner::ThroughputResult
DiagnosisRunner::measureWriteThroughput(uint32_t pinnedBit, bool pinned)
{
    const uint64_t pages = dev_.capacityPages();
    std::unique_ptr<workload::AddressPattern> pat;
    if (pinned)
        pat = std::make_unique<workload::BitFixedPattern>(pages, pinnedBit,
                                                          false);
    else
        pat = std::make_unique<workload::UniformPattern>(pages);

    std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                        std::greater<>> inflight;
    const sim::SimTime start = now_;
    sim::SimTime t = start;
    sim::SimTime lastComplete = start;
    for (uint32_t i = 0; i < cfg_.allocScanRequests; ++i) {
        if (inflight.size() >= cfg_.allocScanQueueDepth) {
            t = std::max(t, inflight.top());
            inflight.pop();
        }
        IoRequest req;
        req.type = IoType::Write;
        req.lba = pat->nextLba(rng_);
        req.sectors = kSectorsPerPage;
        const auto res = dev_.submit(req, t);
        inflight.push(res.completeTime);
        lastComplete = std::max(lastComplete, res.completeTime);
    }
    now_ = lastComplete + kSettle;

    ThroughputResult out;
    out.elapsed = lastComplete - start;
    const double bytes = static_cast<double>(cfg_.allocScanRequests) *
                         blockdev::kPageSize;
    out.mbps = bytes / 1e6 / sim::toSeconds(out.elapsed);
    return out;
}

AllocVolumeScan
DiagnosisRunner::scanAllocationVolumes()
{
    // Throughput here must reflect the structural parallelism of the
    // volumes, not the GC regime, so every measurement starts from a
    // freshly purged device (the paper notes SSDs rarely invoke GC
    // without preconditioning). Each run is far smaller than the
    // free pool, so flush bandwidth is the only bottleneck.
    AllocVolumeScan scan;
    if (cfg_.precondition)
        dev_.purge(now_);
    scan.baselineMbps = measureWriteThroughput(0, false).mbps;
    const uint32_t top = highestScanBit();
    for (uint32_t bit = 3; bit <= top; ++bit) {
        if (cfg_.precondition)
            dev_.purge(now_);
        const double mbps = measureWriteThroughput(bit, true).mbps;
        scan.perBitMbps.emplace_back(bit, mbps);
        if (mbps < scan.baselineMbps * cfg_.allocDropRatio)
            scan.volumeBits.push_back(bit);
    }
    return scan;
}

std::vector<uint32_t>
DiagnosisRunner::collectGcIntervals(uint64_t lbaA, int flipBit)
{
    std::unique_ptr<workload::AddressPattern> pat;
    if (flipBit < 0)
        pat = std::make_unique<workload::FixedPattern>(lbaA);
    else
        pat = std::make_unique<workload::FlipPattern>(
            lbaA, static_cast<uint32_t>(flipBit));

    std::vector<uint32_t> intervals;
    sim::SimTime t = now_;
    uint64_t writesSinceGc = 0;
    bool seenFirst = false;
    uint32_t warmupLeft = 5;
    for (uint64_t i = 0; i < cfg_.gcScanMaxWrites; ++i) {
        IoRequest req;
        req.type = IoType::Write;
        req.lba = pat->nextLba(rng_);
        req.sectors = kSectorsPerPage;
        const auto res = dev_.submit(req, t);
        t = res.completeTime;
        if (!cleanSample(res))
            continue; // tainted latency is neither a write nor a GC mark
        ++writesSinceGc;
        if (res.latency() > cfg_.gcLatencyThreshold) {
            if (seenFirst) {
                if (warmupLeft > 0)
                    --warmupLeft;
                else
                    intervals.push_back(
                        static_cast<uint32_t>(writesSinceGc));
            }
            seenFirst = true;
            writesSinceGc = 0;
            if (intervals.size() >= cfg_.gcEventsPerRun)
                break;
        }
    }
    now_ = t + kSettle;
    return intervals;
}

GcVolumeScan
DiagnosisRunner::scanGcVolumes()
{
    GcVolumeScan scan;
    // Any fixed page-aligned address works; keep clear of bit
    // positions that will be flipped by choosing a low page.
    const uint64_t lbaA = 5 * kSectorsPerPage;
    scan.fixedIntervals = collectGcIntervals(lbaA, -1);
    if (scan.fixedIntervals.size() < 10)
        return scan; // GC not observable on this device

    // Shared binning across Fixed and all Flip runs.
    const uint32_t maxFixed =
        *std::max_element(scan.fixedIntervals.begin(),
                          scan.fixedIntervals.end());

    const uint32_t top = highestScanBit();
    for (uint32_t bit = 3; bit <= top; ++bit) {
        auto flip = collectGcIntervals(lbaA, static_cast<int>(bit));
        uint32_t maxAll = maxFixed;
        for (uint32_t v : flip)
            maxAll = std::max(maxAll, v);
        const int64_t width = std::max<int64_t>(1, maxAll / 24);
        stats::Histogram hFixed(0, width, 26), hFlip(0, width, 26);
        for (uint32_t v : scan.fixedIntervals)
            hFixed.add(v);
        for (uint32_t v : flip)
            hFlip.add(v);
        const auto res = stats::chiSquaredTwoSample(hFixed, hFlip);
        // An invalid test (too little data) conservatively reads as
        // "same distribution".
        const double p = res.valid ? res.pValue : 1.0;
        scan.perBitPValue.emplace_back(bit, p);
        // The threshold is strict (default 1e-3) because one p-value
        // is drawn per scanned bit: with enough events per run a true
        // GC-volume bit drives p down to ~1e-5 or below, while null
        // bits stay roughly uniform, so the strict cut controls the
        // multiple-comparison false-positive rate without heuristics.
        if (p < cfg_.gcPValueThreshold)
            scan.gcVolumeBits.push_back(bit);
        scan.flipIntervals[bit] = std::move(flip);
    }
    return scan;
}

uint64_t
DiagnosisRunner::randomVolume0Lba(const std::vector<uint32_t> &volumeBits,
                                  bool upperHalf)
{
    const uint64_t pages = dev_.capacityPages();
    // Partition reader/writer regions on page bit 10 (4MB interleave)
    // so both spread over the device without overlapping.
    constexpr uint32_t kRegionSectorBit = 13;
    for (;;) {
        uint64_t lba = rng_.nextBelow(pages) * kSectorsPerPage;
        for (uint32_t b : volumeBits)
            lba &= ~(1ULL << b);
        if (upperHalf)
            lba |= (1ULL << kRegionSectorBit);
        else
            lba &= ~(1ULL << kRegionSectorBit);
        if (lba + kSectorsPerPage <= dev_.capacitySectors())
            return lba;
    }
}

FlushPeriodEstimate
estimateFlushPeriod(const std::vector<uint64_t> &eventWriteCounts,
                    const std::vector<sim::SimDuration> &eventLatencies,
                    uint32_t minPages)
{
    FlushPeriodEstimate est;
    if (eventWriteCounts.size() < 5)
        return est;
    std::vector<uint64_t> diffs;
    for (size_t i = 1; i < eventWriteCounts.size(); ++i)
        diffs.push_back(eventWriteCounts[i] - eventWriteCounts[i - 1]);

    // Sporadic unmodeled stalls (the device's own noise) inject
    // spurious events that fragment the true period, and an
    // occasional window can be missed entirely, so a plain median/MAD
    // is brittle. Instead score each candidate period by how much of
    // the event train it reconstructs: fragments must sum back to the
    // period, missed windows show up as clean multiples.
    auto tolOf = [](uint64_t c) {
        return std::max<uint64_t>(
            2, static_cast<uint64_t>(0.1 * static_cast<double>(c)));
    };
    const uint64_t span =
        eventWriteCounts.back() - eventWriteCounts.front();

    size_t bestHits = 0;
    uint64_t bestCand = 0;
    double bestScore = 0.0;
    for (const uint64_t cand : diffs) {
        if (cand < minPages)
            continue;
        const uint64_t tol = tolOf(cand);
        uint64_t acc = 0;
        size_t hits = 0;
        for (const uint64_t d : diffs) {
            acc += d;
            if (acc + tol < cand)
                continue; // still accumulating fragments
            const uint64_t k = (acc + cand / 2) / cand;
            const uint64_t target = k * cand;
            const uint64_t err =
                acc > target ? acc - target : target - acc;
            if (k >= 1 && err <= tol * k)
                ++hits; // one reconstructed period boundary
            acc = 0;    // aligned or noise either way: restart
        }
        const double expected =
            static_cast<double>(span) / static_cast<double>(cand);
        if (expected < 4.0)
            continue;
        const double score = static_cast<double>(hits) / expected;
        if (score > bestScore ||
            (score == bestScore && hits > bestHits)) {
            bestScore = score;
            bestHits = hits;
            bestCand = cand;
        }
    }
    if (bestCand == 0 || bestHits < 4 || bestScore < 0.55)
        return est; // no period explains the event train
    // Refine: median of the diffs that directly match the candidate.
    std::vector<uint64_t> cluster;
    for (const uint64_t d : diffs) {
        const uint64_t tol = tolOf(bestCand);
        if (d + tol >= bestCand && d <= bestCand + tol)
            cluster.push_back(d);
    }
    const uint64_t period = cluster.empty() ? bestCand : medianOf(cluster);
    if (period < minPages)
        return est;
    est.pages = static_cast<uint32_t>(period);
    if (!eventLatencies.empty()) {
        double sum = 0.0;
        for (auto l : eventLatencies)
            sum += static_cast<double>(l);
        est.meanSpikeLatency = static_cast<sim::SimDuration>(
            sum / static_cast<double>(eventLatencies.size()));
    }
    return est;
}

DiagnosisRunner::SizeEstimate
DiagnosisRunner::backgroundReadTest(
    sim::SimDuration thinktime, const std::vector<uint32_t> &volumeBits,
    std::vector<std::pair<uint64_t, sim::SimDuration>> *series)
{
    sim::SimTime tw = now_;
    sim::SimTime tr = now_ + sim::microseconds(40);
    sim::SimTime lastSubmit = now_;
    uint64_t writesDone = 0;
    uint64_t readsDone = 0;
    bool inSpike = false;
    std::vector<uint64_t> eventCounts;
    std::vector<sim::SimDuration> eventLats;

    while (writesDone < cfg_.wbTestWrites) {
        // Keep the background-read rate tied to the write rate (a few
        // probes per write) so a longer thinktime doesn't flood the
        // run with reads and drown the flush signal in device noise.
        const bool readBudget = readsDone < 3 * writesDone + 10;
        if (tw <= tr || !readBudget) {
            tw = std::max(tw, lastSubmit);
            IoRequest req;
            req.type = IoType::Write;
            req.lba = randomVolume0Lba(volumeBits, false);
            req.sectors = kSectorsPerPage;
            const auto res = dev_.submit(req, tw);
            lastSubmit = tw;
            tw = res.completeTime + thinktime;
            ++writesDone;
        } else {
            tr = std::max(tr, lastSubmit);
            IoRequest req;
            req.type = IoType::Read;
            req.lba = randomVolume0Lba(volumeBits, true);
            req.sectors = kSectorsPerPage;
            const auto res = dev_.submit(req, tr);
            lastSubmit = tr;
            ++readsDone;
            if (!cleanSample(res)) {
                // A failed/retried probe read is no flush evidence
                // either way; drop it without disturbing the spike
                // detector's phase.
                tr = res.completeTime + cfg_.readGap;
                continue;
            }
            const sim::SimDuration lat = res.latency();
            if (series != nullptr)
                series->emplace_back(writesDone, lat);
            if (lat > cfg_.hlLatencyThreshold) {
                // One event per contiguous blocked window.
                if (!inSpike) {
                    eventCounts.push_back(writesDone);
                    eventLats.push_back(lat);
                    inSpike = true;
                }
            } else {
                inSpike = false;
            }
            tr = res.completeTime + cfg_.readGap;
        }
    }
    now_ = std::max(tw, tr) + kSettle;
    return estimateFlushPeriod(eventCounts, eventLats, cfg_.minBufferPages);
}

bool
DiagnosisRunner::readTriggerFlushTest(
    const std::vector<uint32_t> &volumeBits)
{
    sim::SimTime t = now_;
    // Per-k tallies: does a read go slow no matter how few writes
    // preceded it?
    uint32_t hl[5] = {0, 0, 0, 0, 0};
    uint32_t total[5] = {0, 0, 0, 0, 0};

    for (uint32_t round = 0; round < cfg_.readTriggerRounds; ++round) {
        const uint32_t k = 1 + static_cast<uint32_t>(rng_.nextBelow(4));
        for (uint32_t i = 0; i < k; ++i) {
            IoRequest req;
            req.type = IoType::Write;
            req.lba = randomVolume0Lba(volumeBits, false);
            req.sectors = kSectorsPerPage;
            const auto res = dev_.submit(req, t);
            t = res.completeTime + sim::microseconds(100) +
                rng_.nextBelow(200) * 1000;
        }
        IoRequest req;
        req.type = IoType::Read;
        req.lba = randomVolume0Lba(volumeBits, true);
        req.sectors = kSectorsPerPage;
        const auto res = dev_.submit(req, t);
        if (cleanSample(res)) {
            if (res.latency() > cfg_.hlLatencyThreshold)
                ++hl[k];
            ++total[k];
        }
        t = res.completeTime + sim::microseconds(150) +
            rng_.nextBelow(400) * 1000;
    }
    now_ = t + kSettle;

    for (uint32_t k = 1; k <= 4; ++k) {
        if (total[k] < 5)
            return false;
        const double frac =
            static_cast<double>(hl[k]) / static_cast<double>(total[k]);
        if (frac < 0.7)
            return false;
    }
    return true;
}

DiagnosisRunner::SizeEstimate
DiagnosisRunner::writeOnlyTest(const std::vector<uint32_t> &volumeBits)
{
    sim::SimTime t = now_;
    std::vector<uint64_t> eventCounts;
    std::vector<sim::SimDuration> eventLats;
    for (uint64_t i = 0; i < cfg_.wbTestWrites; ++i) {
        IoRequest req;
        req.type = IoType::Write;
        req.lba = randomVolume0Lba(volumeBits, false);
        req.sectors = kSectorsPerPage;
        const auto res = dev_.submit(req, t);
        if (cleanSample(res) && res.latency() > cfg_.hlLatencyThreshold) {
            eventCounts.push_back(i);
            eventLats.push_back(res.latency());
        }
        t = res.completeTime + sim::microseconds(300);
    }
    now_ = t + kSettle;
    return estimateFlushPeriod(eventCounts, eventLats, cfg_.minBufferPages);
}

WbAnalysis
DiagnosisRunner::analyzeWriteBuffer(const std::vector<uint32_t> &volumeBits)
{
    WbAnalysis out;

    // Algorithm 1, line 1: background_read_test across several
    // thinktimes; all runs must agree on the size.
    std::vector<uint32_t> sizes;
    sim::SimDuration spikeSum = 0;
    bool first = true;
    for (const auto tt : cfg_.thinktimes) {
        auto *series = first ? &out.readLatencySeries : nullptr;
        const SizeEstimate est = backgroundReadTest(tt, volumeBits, series);
        first = false;
        sizes.push_back(est.pages);
        spikeSum += est.meanSpikeLatency;
    }
    const bool allFound =
        std::all_of(sizes.begin(), sizes.end(),
                    [](uint32_t s) { return s > 0; });
    const uint32_t sMin = *std::min_element(sizes.begin(), sizes.end());
    const uint32_t sMax = *std::max_element(sizes.begin(), sizes.end());
    if (allFound &&
        sMax - sMin <= std::max<uint32_t>(2, medianOf(sizes) / 10)) {
        out.bufferBytes =
            static_cast<uint64_t>(medianOf(sizes)) * blockdev::kPageSize;
        out.bufferType = BufferTypeFeature::Back;
        out.flushAlgorithms.fullTrigger = true;
        out.meanSpikeLatency =
            spikeSum / static_cast<sim::SimDuration>(sizes.size());
        return out;
    }

    // Algorithm 1, line 4: probe for the read-trigger flush algorithm.
    if (readTriggerFlushTest(volumeBits)) {
        out.flushAlgorithms.fullTrigger = true;
        out.flushAlgorithms.readTrigger = true;
        const SizeEstimate est = writeOnlyTest(volumeBits);
        if (est.pages > 0) {
            out.bufferBytes =
                static_cast<uint64_t>(est.pages) * blockdev::kPageSize;
            out.bufferType = BufferTypeFeature::Fore;
            out.meanSpikeLatency = est.meanSpikeLatency;
        } else {
            out.bufferType = BufferTypeFeature::Unknown;
        }
        return out;
    }

    // Algorithm 1, line 12: nothing usable found.
    return out;
}

FeatureSet
DiagnosisRunner::extractFeatures()
{
    FeatureSet fs;
    // 1. Allocation volumes on a purged device (flush-bandwidth
    //    bound, GC silent).
    const AllocVolumeScan alloc = scanAllocationVolumes();
    fs.allocationVolumeBits = alloc.volumeBits;

    // 2. GC volumes need GC active: full SNIA-style precondition.
    if (cfg_.precondition)
        precondition();
    const GcVolumeScan gc = scanGcVolumes();
    fs.gcVolumeBits = gc.gcVolumeBits;

    // 3. Buffer analysis wants flush events unobscured by heavy GC:
    //    sequential fill leaves the free pool deep enough that the
    //    tests only exercise the buffer.
    if (cfg_.precondition)
        sequentialFill();

    // Paper §III-B2: allocation and GC volume indices coincide; the
    // buffer analysis isolates one volume using their union.
    std::vector<uint32_t> bits = fs.allocationVolumeBits;
    bits.insert(bits.end(), fs.gcVolumeBits.begin(), fs.gcVolumeBits.end());
    std::sort(bits.begin(), bits.end());
    bits.erase(std::unique(bits.begin(), bits.end()), bits.end());

    const WbAnalysis wb = analyzeWriteBuffer(bits);
    fs.bufferBytes = wb.bufferBytes;
    fs.bufferType = wb.bufferType;
    fs.flushAlgorithms = wb.flushAlgorithms;
    fs.observedFlushOverheadNs = wb.meanSpikeLatency;
    return fs;
}

} // namespace ssdcheck::core
