#include "core/calibrator.h"

namespace ssdcheck::core {

Calibrator::Calibrator(CalibratorConfig cfg)
    : cfg_(cfg), readService_(cfg.initialReadService),
      writeService_(cfg.initialWriteService),
      flushOverhead_(cfg.initialFlushOverhead),
      gcOverhead_(cfg.initialGcOverhead)
{
}

void
Calibrator::seedFlushOverhead(sim::SimDuration d)
{
    if (d > 0)
        flushOverhead_ = d;
}

void
Calibrator::ewma(sim::SimDuration &est, sim::SimDuration sample)
{
    est = static_cast<sim::SimDuration>(
        (1.0 - cfg_.ewmaAlpha) * static_cast<double>(est) +
        cfg_.ewmaAlpha * static_cast<double>(sample));
}

void
Calibrator::observeNlRead(sim::SimDuration lat)
{
    ewma(readService_, lat);
}

void
Calibrator::observeNlWrite(sim::SimDuration lat)
{
    ewma(writeService_, lat);
}

void
Calibrator::observeFlushEvent(sim::SimDuration lat)
{
    ewma(flushOverhead_, lat);
}

void
Calibrator::observeGcEvent(sim::SimDuration lat)
{
    ewma(gcOverhead_, lat);
}

void
Calibrator::onModelSwap()
{
    lowAccuracyStreak_ = 0;
    enabled_ = true;
}

bool
Calibrator::onAccuracySample(double rollingHl, uint32_t rollingHlEvents)
{
    ++observations_;
    if (rollingHlEvents < cfg_.minHlEvents)
        return false;
    const bool resetGc = rollingHl < cfg_.gcResetAccuracy;
    if (resetGc)
        ++historyResets_;

    if (rollingHl < cfg_.disableAccuracy)
        ++lowAccuracyStreak_;
    else
        lowAccuracyStreak_ = 0;
    if (lowAccuracyStreak_ > cfg_.disableAfter)
        enabled_ = false;

    return resetGc;
}

} // namespace ssdcheck::core
