#include "core/calibrator.h"

#include "recovery/state_io.h"

namespace ssdcheck::core {

Calibrator::Calibrator(CalibratorConfig cfg)
    : cfg_(cfg), readService_(cfg.initialReadService),
      writeService_(cfg.initialWriteService),
      flushOverhead_(cfg.initialFlushOverhead),
      gcOverhead_(cfg.initialGcOverhead)
{
}

void
Calibrator::seedFlushOverhead(sim::SimDuration d)
{
    if (d > 0)
        flushOverhead_ = d;
}

void
Calibrator::ewma(sim::SimDuration &est, sim::SimDuration sample)
{
    est = static_cast<sim::SimDuration>(
        (1.0 - cfg_.ewmaAlpha) * static_cast<double>(est) +
        cfg_.ewmaAlpha * static_cast<double>(sample));
}

void
Calibrator::observeNlRead(sim::SimDuration lat)
{
    ewma(readService_, lat);
}

void
Calibrator::observeNlWrite(sim::SimDuration lat)
{
    ewma(writeService_, lat);
}

void
Calibrator::observeFlushEvent(sim::SimDuration lat)
{
    ewma(flushOverhead_, lat);
}

void
Calibrator::observeGcEvent(sim::SimDuration lat)
{
    ewma(gcOverhead_, lat);
}

void
Calibrator::onModelSwap()
{
    lowAccuracyStreak_ = 0;
    enabled_ = true;
}

bool
Calibrator::onAccuracySample(double rollingHl, uint32_t rollingHlEvents)
{
    ++observations_;
    if (rollingHlEvents < cfg_.minHlEvents)
        return false;
    const bool resetGc = rollingHl < cfg_.gcResetAccuracy;
    if (resetGc)
        ++historyResets_;

    if (rollingHl < cfg_.disableAccuracy)
        ++lowAccuracyStreak_;
    else
        lowAccuracyStreak_ = 0;
    if (lowAccuracyStreak_ > cfg_.disableAfter)
        enabled_ = false;

    return resetGc;
}

void
Calibrator::exportMetrics(obs::Registry &reg,
                          const obs::Labels &labels) const
{
    reg.exportGauge("cal_read_service_ns", labels, &readService_);
    reg.exportGauge("cal_write_service_ns", labels, &writeService_);
    reg.exportGauge("cal_flush_overhead_ns", labels, &flushOverhead_);
    reg.exportGauge("cal_gc_overhead_ns", labels, &gcOverhead_);
    reg.exportCounter("cal_observations", labels, &observations_);
    reg.exportCounter("cal_buffer_resyncs", labels, &bufferResyncs_);
    reg.exportCounter("cal_history_resets", labels, &historyResets_);
    reg.exportCounter("cal_low_accuracy_streak", labels,
                      &lowAccuracyStreak_);
}

void
Calibrator::saveState(recovery::StateWriter &w) const
{
    w.i64(readService_);
    w.i64(writeService_);
    w.i64(flushOverhead_);
    w.i64(gcOverhead_);
    w.u64(observations_);
    w.u64(lowAccuracyStreak_);
    w.u64(historyResets_);
    w.u64(bufferResyncs_);
    w.boolean(enabled_);
}

bool
Calibrator::loadState(recovery::StateReader &r)
{
    readService_ = r.i64();
    writeService_ = r.i64();
    flushOverhead_ = r.i64();
    gcOverhead_ = r.i64();
    observations_ = r.u64();
    lowAccuracyStreak_ = r.u64();
    historyResets_ = r.u64();
    bufferResyncs_ = r.u64();
    enabled_ = r.boolean();
    return r.ok();
}

} // namespace ssdcheck::core
