/**
 * @file
 * Runtime write-buffer model (paper §III-C1).
 *
 * Tracks a buffer counter per volume; when it reaches the diagnosed
 * buffer size a flush is assumed (full-trigger), and for read-trigger
 * devices any read with a non-empty counter is assumed to flush. The
 * flush detector exposes both a side-effect-free "would this request
 * flush?" query (used by predictions) and the state transition applied
 * when the request is actually submitted.
 */
#pragma once

#include <cstdint>

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::core {

/** Buffer counter + flush detector for one volume. */
class WriteBufferModel
{
  public:
    /**
     * @param bufferPages diagnosed buffer capacity in pages.
     * @param readTrigger device flushes on reads (§III-B3).
     */
    WriteBufferModel(uint32_t bufferPages, bool readTrigger);

    /** Would a write submitted now fill the buffer? (no side effect) */
    bool wouldFlushOnWrite(uint32_t pages = 1) const
    {
        return counter_ + pages >= size_;
    }

    /** Would a read submitted now trigger a flush? (no side effect) */
    bool wouldFlushOnRead() const
    {
        return readTrigger_ && counter_ > 0;
    }

    /**
     * Account a submitted write of @p pages pages.
     * @return true when a flush is assumed to have occurred.
     */
    bool onWriteSubmitted(uint32_t pages = 1);

    /**
     * Account a submitted read.
     * @return true when a read-trigger flush is assumed.
     */
    bool onReadSubmitted();

    /** Calibrator resync: assume the buffer just flushed. */
    void resetCounter() { counter_ = 0; }

    uint32_t counter() const { return counter_; }
    uint32_t size() const { return size_; }

    /** Serialize the counter (size/trigger verified on load). */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState() (same diagnosed shape). */
    bool loadState(recovery::StateReader &r);

  private:
    uint32_t size_;
    bool readTrigger_;
    uint32_t counter_ = 0;
};

} // namespace ssdcheck::core

