/**
 * @file
 * Prediction-accuracy evaluation (paper §V-B, Fig. 11).
 *
 * Replays a trace closed-loop (QD1, like the paper's modified fio
 * replay), querying SSDcheck before every request and comparing the
 * predicted class against the measured one. NL accuracy and HL
 * accuracy are per-class recall, reported separately because they
 * matter differently (§II-C): missing an HL request loses a scheduling
 * opportunity; flagging an NL request delays latency-critical work.
 */
#pragma once

#include <cstdint>

#include "blockdev/block_device.h"
#include "core/ssdcheck.h"
#include "sim/sim_time.h"
#include "workload/trace.h"

namespace ssdcheck::core {

class HealthSupervisor;

/** Confusion counts of one accuracy evaluation. */
struct AccuracyResult
{
    uint64_t nlTotal = 0;
    uint64_t nlCorrect = 0;
    uint64_t hlTotal = 0;
    uint64_t hlCorrect = 0;
    /** Requests that failed or were retried (excluded from recall). */
    uint64_t faulted = 0;

    /** NL recall (1.0 when no NL requests occurred). */
    double nlAccuracy() const
    {
        return nlTotal == 0 ? 1.0
                            : static_cast<double>(nlCorrect) /
                                  static_cast<double>(nlTotal);
    }

    /** HL recall (1.0 when no HL requests occurred). */
    double hlAccuracy() const
    {
        return hlTotal == 0 ? 1.0
                            : static_cast<double>(hlCorrect) /
                                  static_cast<double>(hlTotal);
    }

    /** Fraction of requests that were HL. */
    double hlFraction() const
    {
        const uint64_t total = nlTotal + hlTotal;
        return total == 0 ? 0.0
                          : static_cast<double>(hlTotal) /
                                static_cast<double>(total);
    }
};

/**
 * Replay @p trace on @p dev at QD1 starting at @p startTime, running
 * @p check in predict-before-issue mode.
 * @param endTime receives the virtual finish time (optional).
 * @param supervisor optional health supervisor: pumped for probe I/O
 *        between requests and fed every completion.
 * @param sink optional observability targets: host.request spans and
 *        a host-latency histogram per request, plus registry timeline
 *        ticks on completion times. Attaching a sink never changes
 *        the replay's results.
 */
AccuracyResult evaluatePredictionAccuracy(blockdev::BlockDevice &dev,
                                          SsdCheck &check,
                                          const workload::Trace &trace,
                                          sim::SimTime startTime,
                                          sim::SimTime *endTime = nullptr,
                                          HealthSupervisor *supervisor =
                                              nullptr,
                                          const obs::Sink *sink = nullptr);

} // namespace ssdcheck::core

