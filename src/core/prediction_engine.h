/**
 * @file
 * Prediction engine (paper §III-C2, Fig. 8).
 *
 * Per internal volume it keeps a buffer counter (WriteBufferModel), a
 * GC interval model (GcModel) and the Estimated Block Time (EBT) — the
 * time until which the volume's NAND is predicted busy. A query
 * computes the Estimated End Time (EET) for an incoming request from
 * EBT and the calibrated overheads; EET above the latency threshold
 * classifies the request HL.
 *
 * predict() is side-effect free so schedulers can query requests they
 * may reorder or not submit; onSubmit() applies the state transition
 * for requests actually issued; onComplete() feeds the calibrator and
 * the GC observer.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "blockdev/request.h"
#include "core/calibrator.h"
#include "core/feature_set.h"
#include "core/gc_model.h"
#include "core/secondary_model.h"
#include "core/latency_monitor.h"
#include "core/wb_model.h"
#include "sim/sim_time.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::core {

/** One latency prediction (returned to the host, Fig. 8 step 4). */
struct Prediction
{
    sim::SimDuration eet = 0;  ///< Predicted latency (EET).
    bool hl = false;           ///< EET above the threshold.
    bool flushExpected = false;///< A buffer flush is expected.
    bool gcExpected = false;   ///< A GC invocation is expected.
};

/** Model-component switches for ablation studies (see RuntimeConfig). */
struct EngineOptions
{
    bool useVolumeModel = true;
    bool useGcModel = true;
    bool useCalibrator = true;
    /**
     * Paper §VI future work: model secondary features (SLC-cache
     * migration) as a second long-event cluster with its own interval
     * history. Off by default to match the published model.
     */
    bool useSecondaryModel = false;
};

/** Volume selector + per-volume models + EBT (paper Fig. 8). */
class PredictionEngine
{
  public:
    using Options = EngineOptions;

    PredictionEngine(const FeatureSet &features, Calibrator &calibrator,
                     LatencyMonitor &monitor, GcModelConfig gcCfg = {},
                     EngineOptions options = {});

    /** Predict the latency of @p req if submitted at @p now. */
    Prediction predict(const blockdev::IoRequest &req,
                       sim::SimTime now) const;

    /** Account a request actually submitted at @p now. */
    void onSubmit(const blockdev::IoRequest &req, sim::SimTime now);

    /**
     * Account a completion: classification, calibration, GC
     * observation, model resync.
     *
     * Completions that failed (@p status != Ok) or were re-issued by
     * a resilience layer (@p attempts > 1) measure the error path,
     * not the device's service behaviour: they are classified and
     * returned but never fed to the calibrator EWMAs, the accuracy
     * window, or the EBT/buffer state.
     *
     * @param pred the prediction returned for this request.
     * @return the actual NL/HL classification.
     */
    bool onComplete(const blockdev::IoRequest &req, const Prediction &pred,
                    sim::SimTime submit, sim::SimTime complete,
                    blockdev::IoStatus status = blockdev::IoStatus::Ok,
                    uint32_t attempts = 1);

    /** Volume index of a request (volume selector, Fig. 8 step 1). */
    uint32_t volumeOf(const blockdev::IoRequest &req) const;

    /** Number of modeled volumes. */
    uint32_t numVolumes() const
    {
        return static_cast<uint32_t>(volumes_.size());
    }

    /** Current EBT of a volume (tests/introspection). */
    sim::SimTime ebt(uint32_t volume) const;

    /** GC model of a volume (tests/introspection). */
    const GcModel &gcModel(uint32_t volume) const;

    /** Buffer model of a volume (tests/introspection). */
    const WriteBufferModel &wbModel(uint32_t volume) const;

    /** Secondary-feature model of a volume (tests/introspection). */
    const SecondaryModel &secondaryModel(uint32_t volume) const;

    /** Serialize per-volume model state (EBT, counters, histories). */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState() (same features/options). */
    bool loadState(recovery::StateReader &r);

  private:
    struct VolumeState
    {
        WriteBufferModel wb;
        GcModel gc;
        SecondaryModel sec;
        sim::SimTime ebt;
        uint32_t unexpectedHlStreak = 0;
        bool gcCharged = false; ///< A pending (unconfirmed) GC charge.
    };

    /** Apply an assumed flush at @p now to volume @p s. */
    void applyFlush(VolumeState &s, sim::SimTime now);

    FeatureSet features_; // snapshot:skip(construction-time feature set; restore re-runs diagnosis or replays the saved features)
    std::vector<uint32_t> volumeBits_; // snapshot:skip(derived from the feature set in the constructor)
    Calibrator &calibrator_; // snapshot:skip(ctor-wired reference; the restore harness rebuilds the object graph)
    LatencyMonitor &monitor_; // snapshot:skip(ctor-wired reference; the restore harness rebuilds the object graph)
    Options options_; // snapshot:skip(construction-time config; restore constructs an identical engine before loadState)
    bool fore_; // snapshot:skip(derived from the feature set in the constructor)
    std::vector<VolumeState> volumes_;
};

} // namespace ssdcheck::core

