#include "core/gc_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "recovery/state_io.h"

namespace ssdcheck::core {

GcModel::GcModel(GcModelConfig cfg) : cfg_(cfg) {}

void
GcModel::onGcObserved()
{
    history_.push_back(intervalCounter_);
    if (history_.size() > cfg_.historyWindow)
        history_.pop_front();
    intervalCounter_ = 0;
}

uint32_t
GcModel::thresholdIntervals() const
{
    if (history_.size() < cfg_.minHistory)
        return 0;
    std::vector<uint32_t> v(history_.begin(), history_.end());
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<size_t>(
        std::floor(cfg_.quantile * static_cast<double>(v.size() - 1)));
    return std::max<uint32_t>(1, v[idx]);
}

bool
GcModel::gcExpectedOnNextFlush() const
{
    const uint32_t thr = thresholdIntervals();
    if (thr == 0)
        return false;
    return intervalCounter_ + 1 >= thr;
}

void
GcModel::resetHistory()
{
    history_.clear();
    intervalCounter_ = 0;
}

void
GcModel::saveState(recovery::StateWriter &w) const
{
    w.u32(intervalCounter_);
    w.u32(static_cast<uint32_t>(history_.size()));
    for (uint32_t h : history_)
        w.u32(h);
}

bool
GcModel::loadState(recovery::StateReader &r)
{
    intervalCounter_ = r.u32();
    const uint64_t n = r.checkCount(r.u32(), 4);
    if (r.ok() && n > cfg_.historyWindow) {
        r.fail("GC history longer than the configured window");
        return false;
    }
    history_.clear();
    for (uint64_t i = 0; i < n; ++i)
        history_.push_back(r.u32());
    return r.ok();
}

} // namespace ssdcheck::core
