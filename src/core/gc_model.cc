#include "core/gc_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ssdcheck::core {

GcModel::GcModel(GcModelConfig cfg) : cfg_(cfg) {}

void
GcModel::onGcObserved()
{
    history_.push_back(intervalCounter_);
    if (history_.size() > cfg_.historyWindow)
        history_.pop_front();
    intervalCounter_ = 0;
}

uint32_t
GcModel::thresholdIntervals() const
{
    if (history_.size() < cfg_.minHistory)
        return 0;
    std::vector<uint32_t> v(history_.begin(), history_.end());
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<size_t>(
        std::floor(cfg_.quantile * static_cast<double>(v.size() - 1)));
    return std::max<uint32_t>(1, v[idx]);
}

bool
GcModel::gcExpectedOnNextFlush() const
{
    const uint32_t thr = thresholdIntervals();
    if (thr == 0)
        return false;
    return intervalCounter_ + 1 >= thr;
}

void
GcModel::resetHistory()
{
    history_.clear();
    intervalCounter_ = 0;
}

} // namespace ssdcheck::core
