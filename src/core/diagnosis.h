/**
 * @file
 * Diagnosis code snippets (paper §III-B): extract a black-box SSD's
 * internal features purely through the block interface.
 *
 *  - Allocation volumes (Fig. 4): random-write throughput with one
 *    sector-address bit pinned; a throughput drop marks a volume bit.
 *  - GC volumes (Fig. 5): GC-interval distributions of the Fixed
 *    pattern vs Flip_x patterns compared with a chi-squared test; a
 *    near-zero p-value marks a GC-volume bit.
 *  - Write buffer (Fig. 6, Algorithm 1): background_read_test,
 *    read_trigger_flush_test and write_only_test recover the buffer
 *    size, type (back/fore) and flush algorithms.
 *
 * Everything here sees only blockdev::BlockDevice — no simulator
 * internals — so the same logic would drive a real device.
 */
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "blockdev/block_device.h"
#include "core/feature_set.h"
#include "sim/rng.h"
#include "sim/sim_time.h"

namespace ssdcheck::core {

/** Tunables of the diagnosis snippets. */
struct DiagnosisConfig
{
    /** NL/HL latency threshold (paper Table III: 250us). */
    sim::SimDuration hlLatencyThreshold = sim::microseconds(250);

    /** Latency above which an event is attributed to GC (§III-B2 fn2). */
    sim::SimDuration gcLatencyThreshold = sim::milliseconds(3);

    // Allocation-volume scan.
    uint32_t allocScanRequests = 16000;
    uint32_t allocScanQueueDepth = 32;
    /** Throughput ratio (vs baseline) below which a bit is a volume bit. */
    double allocDropRatio = 0.75;

    // GC-volume scan.
    uint32_t gcEventsPerRun = 240;
    uint64_t gcScanMaxWrites = 400000;
    double gcPValueThreshold = 0.001;

    // Write-buffer analysis.
    std::vector<sim::SimDuration> thinktimes = {sim::microseconds(500),
                                                sim::microseconds(1000),
                                                sim::microseconds(5000)};
    uint32_t wbTestWrites = 3000;
    sim::SimDuration readGap = sim::microseconds(80);
    uint32_t readTriggerRounds = 250;
    /** Buffer sizes below this many pages are treated as "not found". */
    uint32_t minBufferPages = 4;

    /** Highest sector-LBA bit to scan; 0 derives it from capacity. */
    uint32_t maxBit = 0;

    /** Purge + precondition the device before scanning. */
    bool precondition = true;

    uint64_t seed = 99;
};

/** Fig. 4 artifact: throughput per pinned bit. */
struct AllocVolumeScan
{
    double baselineMbps = 0.0;
    std::vector<std::pair<uint32_t, double>> perBitMbps;
    std::vector<uint32_t> volumeBits;
};

/** Fig. 5 artifact: GC intervals and chi-squared p-values per bit. */
struct GcVolumeScan
{
    std::vector<uint32_t> fixedIntervals;
    std::map<uint32_t, std::vector<uint32_t>> flipIntervals;
    std::vector<std::pair<uint32_t, double>> perBitPValue;
    std::vector<uint32_t> gcVolumeBits;
};

/**
 * Flush-period estimate recovered from a train of flush-boundary
 * events positioned on a write counter (Algorithm 1's size analysis).
 */
struct FlushPeriodEstimate
{
    uint32_t pages = 0; ///< 0 when no consistent period was found.
    sim::SimDuration meanSpikeLatency = 0;
};

/**
 * Median-based period estimate from flush-event positions. Shared by
 * the offline write-buffer snippets and the health supervisor's
 * online re-diagnosis.
 * @param eventWriteCounts write counter at each flush-boundary event
 *        (strictly increasing).
 * @param eventLatencies blocked-request latency of each event.
 * @param minPages periods below this are treated as "not found".
 */
FlushPeriodEstimate estimateFlushPeriod(
    const std::vector<uint64_t> &eventWriteCounts,
    const std::vector<sim::SimDuration> &eventLatencies,
    uint32_t minPages);

/** Fig. 6 / Algorithm 1 artifact. */
struct WbAnalysis
{
    uint64_t bufferBytes = 0;
    BufferTypeFeature bufferType = BufferTypeFeature::Unknown;
    FlushAlgorithms flushAlgorithms;
    /** (writes issued so far, read latency) series for Fig. 6. */
    std::vector<std::pair<uint64_t, sim::SimDuration>> readLatencySeries;
    sim::SimDuration meanSpikeLatency = 0;
};

/** Runs the diagnosis snippets against one device. */
class DiagnosisRunner
{
  public:
    /**
     * @param dev the device under test (state will be purged and
     *        preconditioned when cfg.precondition is set).
     * @param cfg snippet tunables.
     * @param startTime virtual time to begin at (submissions to the
     *        device must stay monotone across its whole life).
     */
    DiagnosisRunner(blockdev::BlockDevice &dev, DiagnosisConfig cfg,
                    sim::SimTime startTime = sim::kTimeZero);

    /** Purge + sequential fill + random churn (SNIA-style). */
    void precondition();

    /** Uniform random churn to reset the GC regime between tests. */
    void remixChurn();

    /** Purge then write every page once sequentially (no churn). */
    void sequentialFill();

    /** §III-B1: find the allocation-volume bit indices. */
    AllocVolumeScan scanAllocationVolumes();

    /** §III-B2: find the GC-volume bit indices. */
    GcVolumeScan scanGcVolumes();

    /** §III-B3 / Algorithm 1: write-buffer size, type, flush algos. */
    WbAnalysis analyzeWriteBuffer(const std::vector<uint32_t> &volumeBits);

    /** Full pipeline: volumes first, then buffer (paper ordering). */
    FeatureSet extractFeatures();

    /** Virtual time consumed so far. */
    sim::SimTime now() const { return now_; }

  private:
    // -- small closed-loop drivers ---------------------------------------
    struct ThroughputResult
    {
        double mbps;
        sim::SimDuration elapsed;
    };

    /** Random 4KB writes at a queue depth; returns write throughput. */
    ThroughputResult measureWriteThroughput(uint32_t pinnedBit,
                                            bool pinned);

    /** QD1 write stream; returns per-write latencies. */
    std::vector<uint32_t> collectGcIntervals(uint64_t lbaA, int flipBit);

    // -- Algorithm 1 sub-tests --------------------------------------------
    using SizeEstimate = FlushPeriodEstimate;

    SizeEstimate backgroundReadTest(
        sim::SimDuration thinktime,
        const std::vector<uint32_t> &volumeBits,
        std::vector<std::pair<uint64_t, sim::SimDuration>> *series);

    bool readTriggerFlushTest(const std::vector<uint32_t> &volumeBits);

    SizeEstimate writeOnlyTest(const std::vector<uint32_t> &volumeBits);

    /** Random page-aligned LBA within volume-0 of @p volumeBits. */
    uint64_t randomVolume0Lba(const std::vector<uint32_t> &volumeBits,
                              bool upperHalf);

    uint32_t highestScanBit() const;

    blockdev::BlockDevice &dev_;
    DiagnosisConfig cfg_;
    sim::Rng rng_;
    sim::SimTime now_;
};

} // namespace ssdcheck::core

