#include "core/latency_monitor.h"

#include "recovery/state_io.h"

namespace ssdcheck::core {

LatencyMonitor::LatencyMonitor(LatencyThresholds thresholds, uint32_t window)
    : thresholds_(thresholds), window_(window)
{
}

bool
LatencyMonitor::isHighLatency(const blockdev::IoRequest &req,
                              sim::SimDuration latency) const
{
    const sim::SimDuration thr =
        req.isWrite() ? thresholds_.write : thresholds_.read;
    return latency > thr;
}

void
LatencyMonitor::record(bool predictedHl, bool actualHl)
{
    outcomes_.push_back(Outcome{predictedHl, actualHl});
    if (actualHl) {
        ++hlTotal_;
        if (predictedHl)
            ++hlCorrect_;
    } else {
        ++nlTotal_;
        if (!predictedHl)
            ++nlCorrect_;
    }
    if (outcomes_.size() > window_) {
        const Outcome old = outcomes_.front();
        outcomes_.pop_front();
        if (old.actualHl) {
            --hlTotal_;
            if (old.predictedHl)
                --hlCorrect_;
        } else {
            --nlTotal_;
            if (!old.predictedHl)
                --nlCorrect_;
        }
    }
}

double
LatencyMonitor::rollingHlAccuracy() const
{
    if (hlTotal_ == 0)
        return 1.0;
    return static_cast<double>(hlCorrect_) / static_cast<double>(hlTotal_);
}

double
LatencyMonitor::rollingNlAccuracy() const
{
    if (nlTotal_ == 0)
        return 1.0;
    return static_cast<double>(nlCorrect_) / static_cast<double>(nlTotal_);
}

void
LatencyMonitor::saveState(recovery::StateWriter &w) const
{
    w.u32(static_cast<uint32_t>(outcomes_.size()));
    for (const Outcome &o : outcomes_) {
        w.boolean(o.predictedHl);
        w.boolean(o.actualHl);
    }
    w.u32(hlTotal_);
    w.u32(hlCorrect_);
    w.u32(nlTotal_);
    w.u32(nlCorrect_);
}

bool
LatencyMonitor::loadState(recovery::StateReader &r)
{
    const uint64_t n = r.checkCount(r.u32(), 2);
    if (r.ok() && n > window_) {
        r.fail("accuracy window longer than configured");
        return false;
    }
    outcomes_.clear();
    for (uint64_t i = 0; i < n; ++i) {
        Outcome o{};
        o.predictedHl = r.boolean();
        o.actualHl = r.boolean();
        outcomes_.push_back(o);
    }
    hlTotal_ = r.u32();
    hlCorrect_ = r.u32();
    nlTotal_ = r.u32();
    nlCorrect_ = r.u32();
    return r.ok();
}

} // namespace ssdcheck::core
