#include "core/latency_monitor.h"

namespace ssdcheck::core {

LatencyMonitor::LatencyMonitor(LatencyThresholds thresholds, uint32_t window)
    : thresholds_(thresholds), window_(window)
{
}

bool
LatencyMonitor::isHighLatency(const blockdev::IoRequest &req,
                              sim::SimDuration latency) const
{
    const sim::SimDuration thr =
        req.isWrite() ? thresholds_.write : thresholds_.read;
    return latency > thr;
}

void
LatencyMonitor::record(bool predictedHl, bool actualHl)
{
    outcomes_.push_back(Outcome{predictedHl, actualHl});
    if (actualHl) {
        ++hlTotal_;
        if (predictedHl)
            ++hlCorrect_;
    } else {
        ++nlTotal_;
        if (!predictedHl)
            ++nlCorrect_;
    }
    if (outcomes_.size() > window_) {
        const Outcome old = outcomes_.front();
        outcomes_.pop_front();
        if (old.actualHl) {
            --hlTotal_;
            if (old.predictedHl)
                --hlCorrect_;
        } else {
            --nlTotal_;
            if (!old.predictedHl)
                --nlCorrect_;
        }
    }
}

double
LatencyMonitor::rollingHlAccuracy() const
{
    if (hlTotal_ == 0)
        return 1.0;
    return static_cast<double>(hlCorrect_) / static_cast<double>(hlTotal_);
}

double
LatencyMonitor::rollingNlAccuracy() const
{
    if (nlTotal_ == 0)
        return 1.0;
    return static_cast<double>(nlCorrect_) / static_cast<double>(nlTotal_);
}

} // namespace ssdcheck::core
