/**
 * @file
 * Block I/O request and completion types.
 *
 * Addresses are in 512-byte sectors (LBA), matching the paper's use of
 * "LBA bit indices": the allocation/GC volume of a request is decided
 * by specific bit positions of its sector LBA. Payload sizes are in
 * sectors; the FTL operates on 4KB pages (8 sectors).
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/sim_time.h"

namespace ssdcheck::blockdev {

/** Bytes per LBA sector. */
inline constexpr uint32_t kSectorSize = 512;

/** Bytes per FTL page. */
inline constexpr uint32_t kPageSize = 4096;

/** Sectors per FTL page. */
inline constexpr uint32_t kSectorsPerPage = kPageSize / kSectorSize;

/** Kind of block I/O operation. */
enum class IoType : uint8_t { Read, Write, Trim };

/** Human-readable name of an IoType. */
std::string toString(IoType t);

/**
 * Completion status of one request. Devices may fail: media errors
 * (uncorrectable reads, program/erase failures), commands that never
 * complete in useful time, and malformed requests rejected at the
 * device boundary. Ok is the only status whose timestamps describe a
 * successful data transfer.
 */
enum class IoStatus : uint8_t
{
    Ok,          ///< Completed successfully.
    MediaError,  ///< Uncorrectable media error (retryable).
    Timeout,     ///< Host gave up waiting (retryable).
    DeviceFault, ///< Rejected/failed command (not retryable).
    /**
     * Shed by a host-side policy layer (breaker open, overload,
     * degraded mode) before reaching the device. Completes instantly
     * at the host; never produced by a device itself. Not retryable
     * through the same path — the caller must back off or reroute.
     */
    Rejected,
    /**
     * Deadline budget exhausted: the exchange (attempts + backoff)
     * would exceed the request's total-time cap, so the host stopped
     * it at the budget boundary. Not retryable — the budget is the
     * retry policy.
     */
    Expired,
};

/** Human-readable name of an IoStatus. */
std::string toString(IoStatus s);

/** True when a failed request is worth re-submitting. */
inline bool isRetryable(IoStatus s)
{
    return s == IoStatus::MediaError || s == IoStatus::Timeout;
}

/** One block I/O request as seen at the device interface. */
struct IoRequest
{
    IoType type = IoType::Read;
    uint64_t lba = 0;      ///< First sector address.
    uint32_t sectors = kSectorsPerPage; ///< Length in sectors.

    /** Length in bytes. */
    uint64_t bytes() const
    {
        return static_cast<uint64_t>(sectors) * kSectorSize;
    }

    /** Number of FTL pages touched (requests are page-aligned here). */
    uint32_t pages() const
    {
        return (sectors + kSectorsPerPage - 1) / kSectorsPerPage;
    }

    /** First page number covered. */
    uint64_t firstPage() const { return lba / kSectorsPerPage; }

    bool isRead() const { return type == IoType::Read; }
    bool isWrite() const { return type == IoType::Write; }
};

/** Completion record returned by a device for one request. */
struct IoResult
{
    sim::SimTime submitTime;   ///< When the host submitted it.
    sim::SimTime completeTime; ///< When the device completed it.
    IoStatus status = IoStatus::Ok;
    /**
     * Host-visible submission count: 1 for a first-try success; a
     * resilience layer that re-issued the request bumps it per retry.
     * Latency observed on a multi-attempt request includes retry and
     * backoff time and must not calibrate device service estimates.
     */
    uint32_t attempts = 1;

    /** End-to-end device latency. */
    sim::SimDuration latency() const { return completeTime - submitTime; }

    /** True when the request completed successfully. */
    bool ok() const { return status == IoStatus::Ok; }
};

/** Convenience constructors for page-sized (4KB) requests. */
IoRequest makeRead4k(uint64_t pageIndex);
IoRequest makeWrite4k(uint64_t pageIndex);

} // namespace ssdcheck::blockdev

