#include "blockdev/request.h"

namespace ssdcheck::blockdev {

std::string
toString(IoType t)
{
    switch (t) {
      case IoType::Read:
        return "read";
      case IoType::Write:
        return "write";
      case IoType::Trim:
        return "trim";
    }
    return "?";
}

IoRequest
makeRead4k(uint64_t pageIndex)
{
    return IoRequest{IoType::Read, pageIndex * kSectorsPerPage,
                     kSectorsPerPage};
}

IoRequest
makeWrite4k(uint64_t pageIndex)
{
    return IoRequest{IoType::Write, pageIndex * kSectorsPerPage,
                     kSectorsPerPage};
}

} // namespace ssdcheck::blockdev
