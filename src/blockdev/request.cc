#include "blockdev/request.h"

namespace ssdcheck::blockdev {

std::string
toString(IoType t)
{
    switch (t) {
      case IoType::Read:
        return "read";
      case IoType::Write:
        return "write";
      case IoType::Trim:
        return "trim";
    }
    return "?";
}

std::string
toString(IoStatus s)
{
    switch (s) {
      case IoStatus::Ok:
        return "ok";
      case IoStatus::MediaError:
        return "media-error";
      case IoStatus::Timeout:
        return "timeout";
      case IoStatus::DeviceFault:
        return "device-fault";
      case IoStatus::Rejected:
        return "rejected";
      case IoStatus::Expired:
        return "expired";
    }
    return "?";
}

IoRequest
makeRead4k(uint64_t pageIndex)
{
    return IoRequest{IoType::Read, pageIndex * kSectorsPerPage,
                     kSectorsPerPage};
}

IoRequest
makeWrite4k(uint64_t pageIndex)
{
    return IoRequest{IoType::Write, pageIndex * kSectorsPerPage,
                     kSectorsPerPage};
}

} // namespace ssdcheck::blockdev
