/**
 * @file
 * Host-side resilient I/O path: a BlockDevice decorator implementing
 * bounded retries with capped exponential backoff and timeout
 * classification — the layer the SSDcheck runtime sits on when the
 * device underneath misbehaves.
 *
 * Policy:
 *  - MediaError and Timeout completions are retryable; the request is
 *    re-submitted after a backoff that doubles per attempt up to a
 *    cap. DeviceFault (malformed/rejected command) is permanent and
 *    returned immediately.
 *  - A completion whose device latency exceeds timeoutAfter is
 *    classified Timeout: the host gave up waiting and re-issues. The
 *    classification threshold must sit far above any legitimate
 *    internal event (GC takes tens of milliseconds; the default
 *    threshold is 500ms).
 *  - The returned IoResult spans the whole exchange: submitTime is
 *    the original submission, completeTime the final attempt's
 *    completion, attempts counts submissions. Callers feeding latency
 *    models must treat attempts > 1 results as tainted (the latency
 *    contains retry loops and backoff, not device service time) —
 *    SsdCheck::onComplete does this automatically.
 *
 * Per-status error counters make the device's misbehavior observable
 * to operators (surfaced by the CLI's fault report).
 */
#pragma once

#include <cstdint>
#include <string>

#include "blockdev/block_device.h"
#include "obs/sink.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::blockdev {

/** Retry/backoff/timeout policy of the resilient path. */
struct ResilienceConfig
{
    /** Re-submissions after the first attempt (0 = fail fast). */
    uint32_t maxRetries = 3;
    /** Backoff before the first retry; doubles per further retry. */
    sim::SimDuration backoffBase = sim::microseconds(200);
    /** Upper bound on any single backoff wait. */
    sim::SimDuration backoffCap = sim::milliseconds(20);
    /** Completions slower than this classify as Timeout (0 = off). */
    sim::SimDuration timeoutAfter = sim::milliseconds(500);
};

/** Per-status error accounting of one resilient device. */
struct ResilienceCounters
{
    uint64_t mediaErrors = 0;   ///< MediaError completions seen.
    uint64_t timeouts = 0;      ///< Timeout classifications.
    uint64_t deviceFaults = 0;  ///< Permanent faults (not retried).
    uint64_t retries = 0;       ///< Re-submissions performed.
    uint64_t recovered = 0;     ///< Requests that succeeded on retry.
    uint64_t exhausted = 0;     ///< Requests failed after max retries.
    uint64_t submissions = 0;   ///< Caller-visible requests served.
    /** Caller requests whose exchange saw at least one error. */
    uint64_t erroredRequests = 0;
    /** Exchanges cut short by a deadline budget (submitBounded). */
    uint64_t expired = 0;
    /**
     * Inner-device submissions actually issued (attempts, including
     * retries). Unlike submissions this counts what the device saw:
     * a deadline can expire before the first attempt, so submissions
     * and attemptsIssued move independently.
     */
    uint64_t attemptsIssued = 0;

    /**
     * Fraction of caller requests that saw any error (0 when idle).
     * Counted per request, not per attempt: a single request retried
     * three times is one errored request, so the rate stays in [0, 1]
     * (the old per-attempt numerator could exceed it).
     */
    double errorRate() const
    {
        return submissions == 0 ? 0.0
                                : static_cast<double>(erroredRequests) /
                                      static_cast<double>(submissions);
    }

    /** Total failed attempts observed (any status, per-attempt). */
    uint64_t totalErrors() const
    {
        return mediaErrors + timeouts + deviceFaults;
    }
};

/** Retry/backoff/timeout decorator over any BlockDevice. */
class ResilientDevice : public BlockDevice
{
  public:
    /** @param inner the possibly-faulty device (not owned). */
    explicit ResilientDevice(BlockDevice &inner, ResilienceConfig cfg = {});

    // BlockDevice interface.
    [[nodiscard]] IoResult submit(const IoRequest &req,
                                  sim::SimTime now) override;

    /**
     * Submit with an absolute deadline budget: the whole exchange —
     * attempts, timeout waits, backoff — is capped at @p deadline
     * (0 = unbounded, identical to submit()). The exchange never
     * consumes sim time past the budget: an attempt whose settled
     * time would cross it, or a retry that would start at/after it,
     * returns IoStatus::Expired with completeTime clamped to the
     * budget boundary. A deadline already in the past returns Expired
     * with attempts = 0 and no device submission.
     */
    [[nodiscard]] IoResult submitBounded(const IoRequest &req,
                                         sim::SimTime now,
                                         sim::SimTime deadline);
    uint64_t capacitySectors() const override
    {
        return inner_.capacitySectors();
    }
    void purge(sim::SimTime now) override { inner_.purge(now); }
    std::string name() const override { return inner_.name(); }

    const ResilienceCounters &counters() const { return counters_; }
    const ResilienceConfig &config() const { return cfg_; }

    /** Backoff before retry number @p retry (1-based), capped. */
    sim::SimDuration backoffFor(uint32_t retry) const;

    /**
     * Attach observability targets (cold path, before the run):
     * exports the resilience counters onto the registry under a
     * {device=<name>} label and emits attempt/retry trace spans on the
     * host resilient track — only for abnormal exchanges (any error or
     * more than one attempt), so the healthy hot path stays silent.
     */
    void attachObservability(const obs::Sink &sink);

    /** Serialize counters and the inner-clock high-water mark. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    BlockDevice &inner_; // snapshot:skip(ctor-wired reference to the wrapped device; the restore harness rebuilds the object graph)
    ResilienceConfig cfg_; // snapshot:skip(construction-time config; restore constructs an identical wrapper before loadState)
    ResilienceCounters counters_;
    /** High-water mark of inner submissions: retries run ahead of the
     *  caller's clock, and the inner device requires nondecreasing
     *  submit times. */
    sim::SimTime innerClock_;

    // Observability (null until attachObservability()).
    obs::TraceRecorder *trace_ = nullptr; // snapshot:skip(non-owning observability hook, re-attached after restore)
};

} // namespace ssdcheck::blockdev

