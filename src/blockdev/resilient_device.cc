#include "blockdev/resilient_device.h"

#include <algorithm>

#include "recovery/state_io.h"

namespace ssdcheck::blockdev {

ResilientDevice::ResilientDevice(BlockDevice &inner, ResilienceConfig cfg)
    : inner_(inner), cfg_(cfg)
{
}

sim::SimDuration
ResilientDevice::backoffFor(uint32_t retry) const
{
    sim::SimDuration d = cfg_.backoffBase;
    for (uint32_t i = 1; i < retry; ++i) {
        if (d >= cfg_.backoffCap / 2)
            return cfg_.backoffCap;
        d *= 2;
    }
    return std::min(d, cfg_.backoffCap);
}

namespace {

/** Per-attempt record kept only while tracing (stack scratch). */
struct AttemptRec
{
    sim::SimTime start;
    sim::SimDuration dur;
    uint8_t status;
};

/** Attempts traced per exchange; later ones are dropped. */
constexpr uint32_t kTraceAttempts = 8;

} // namespace

IoResult
ResilientDevice::submit(const IoRequest &req, sim::SimTime now)
{
    return submitBounded(req, now, /*deadline=*/sim::kTimeZero);
}

IoResult
ResilientDevice::submitBounded(const IoRequest &req, sim::SimTime now,
                               sim::SimTime deadline)
{
    ++counters_.submissions;
    sim::SimTime attemptTime = now;
    IoResult last;
    bool sawError = false;
    AttemptRec recs[kTraceAttempts];
    uint32_t numRecs = 0;
    for (uint32_t attempt = 0;; ++attempt) {
        // A retry advances the device past the caller's clock; later
        // requests submitted at earlier host times must still reach
        // the device in nondecreasing order (its submit contract), so
        // clamp to the high-water mark — a command cannot arrive in
        // the device's past.
        attemptTime = std::max(attemptTime, innerClock_);

        // Budget already spent before this attempt could start: give
        // up without touching the device again. On the first attempt
        // the deadline sat in the past (or the inner clock ran ahead
        // of it), so the device never sees the request at all.
        if (deadline > sim::kTimeZero && attemptTime >= deadline) {
            ++counters_.expired;
            if (sawError)
                ++counters_.erroredRequests;
            last.submitTime = now;
            last.completeTime = std::max(now, deadline);
            last.status = IoStatus::Expired;
            last.attempts = attempt;
            if (trace_ != nullptr && attempt > 0) {
                const obs::TraceTrack track{obs::kHostPid,
                                            obs::kHostResilientTid};
                for (uint32_t i = 0; i < numRecs; ++i)
                    trace_->complete(
                        "res", "res.attempt", track, recs[i].start,
                        recs[i].dur,
                        {{"attempt", static_cast<int64_t>(i + 1)},
                         {"status",
                          static_cast<int64_t>(recs[i].status)}});
                trace_->instant(
                    "res", "res.expired", track, last.completeTime,
                    {{"attempts", static_cast<int64_t>(attempt)}});
            }
            return last;
        }

        innerClock_ = attemptTime;
        ++counters_.attemptsIssued;
        IoResult res = inner_.submit(req, attemptTime);

        // Timeout classification: the host stops waiting once the
        // exchange exceeds the deadline, even though the simulated
        // completion eventually arrives.
        if (res.ok() && cfg_.timeoutAfter > 0 &&
            res.latency() > cfg_.timeoutAfter)
            res.status = IoStatus::Timeout;

        // The attempt is settled once the host sees its outcome: for
        // timeouts that is the give-up deadline, not the (later)
        // simulated completion.
        sim::SimTime settled =
            res.status == IoStatus::Timeout
                ? std::min(res.completeTime,
                           attemptTime + cfg_.timeoutAfter)
                : res.completeTime;

        // Deadline budget dominates every other policy: an attempt
        // whose outcome would land past the budget is abandoned at the
        // boundary regardless of how the device eventually answered.
        if (deadline > sim::kTimeZero && settled > deadline) {
            res.status = IoStatus::Expired;
            settled = deadline;
            res.completeTime = deadline;
            ++counters_.expired;
        }

        switch (res.status) {
          case IoStatus::Ok:
            break;
          case IoStatus::MediaError:
            ++counters_.mediaErrors;
            sawError = true;
            break;
          case IoStatus::Timeout:
            ++counters_.timeouts;
            sawError = true;
            break;
          case IoStatus::DeviceFault:
            ++counters_.deviceFaults;
            sawError = true;
            break;
          case IoStatus::Expired:
            sawError = true;
            break;
          case IoStatus::Rejected:
            // Policy sheds happen above this layer; a device must not
            // produce them. Treat defensively as a permanent error.
            ++counters_.deviceFaults;
            sawError = true;
            break;
        }

        if (trace_ != nullptr && numRecs < kTraceAttempts)
            recs[numRecs++] =
                AttemptRec{attemptTime, settled - attemptTime,
                           static_cast<uint8_t>(res.status)};

        last = res;
        last.submitTime = now;
        last.attempts = attempt + 1;

        if (res.ok() || !isRetryable(res.status) ||
            attempt >= cfg_.maxRetries) {
            if (res.ok() && attempt > 0)
                ++counters_.recovered;
            if (!res.ok() && isRetryable(res.status))
                ++counters_.exhausted;
            if (sawError)
                ++counters_.erroredRequests;
            // A failed exchange is over for the caller once the last
            // attempt settles; the clamped settled time keeps Expired
            // results inside the budget.
            if (!res.ok())
                last.completeTime = settled;
            // Trace only abnormal exchanges: the healthy single-attempt
            // path is already covered by the host/device spans.
            if (trace_ != nullptr && (sawError || attempt > 0)) {
                const obs::TraceTrack track{obs::kHostPid,
                                            obs::kHostResilientTid};
                for (uint32_t i = 0; i < numRecs; ++i)
                    trace_->complete(
                        "res", "res.attempt", track, recs[i].start,
                        recs[i].dur,
                        {{"attempt", static_cast<int64_t>(i + 1)},
                         {"status",
                          static_cast<int64_t>(recs[i].status)}});
                if (attempt > 0)
                    trace_->instant(
                        "res", res.ok() ? "res.recovered" : "res.exhausted",
                        track, settled,
                        {{"attempts", static_cast<int64_t>(attempt + 1)}});
            }
            return last;
        }

        ++counters_.retries;
        // Re-submit after the failed attempt settles plus backoff.
        attemptTime = std::max(attemptTime, settled) +
                      backoffFor(attempt + 1);
    }
}

void
ResilientDevice::attachObservability(const obs::Sink &sink)
{
    trace_ = sink.trace;
    if (sink.metrics != nullptr) {
        obs::Registry &reg = *sink.metrics;
        const obs::Labels labels = {{"device", inner_.name()}};
        reg.exportCounter("res_submissions", labels,
                          &counters_.submissions);
        reg.exportCounter("res_media_errors", labels,
                          &counters_.mediaErrors);
        reg.exportCounter("res_timeouts", labels, &counters_.timeouts);
        reg.exportCounter("res_device_faults", labels,
                          &counters_.deviceFaults);
        reg.exportCounter("res_retries", labels, &counters_.retries);
        reg.exportCounter("res_recovered", labels, &counters_.recovered);
        reg.exportCounter("res_exhausted", labels, &counters_.exhausted);
        reg.exportCounter("res_errored_requests", labels,
                          &counters_.erroredRequests);
        reg.exportCounter("res_expired", labels, &counters_.expired);
        reg.exportCounter("res_attempts_issued", labels,
                          &counters_.attemptsIssued);
    }
}

void
ResilientDevice::saveState(recovery::StateWriter &w) const
{
    w.u64(counters_.mediaErrors);
    w.u64(counters_.timeouts);
    w.u64(counters_.deviceFaults);
    w.u64(counters_.retries);
    w.u64(counters_.recovered);
    w.u64(counters_.exhausted);
    w.u64(counters_.submissions);
    w.u64(counters_.erroredRequests);
    w.u64(counters_.expired);
    w.u64(counters_.attemptsIssued);
    w.i64(innerClock_.ns());
}

bool
ResilientDevice::loadState(recovery::StateReader &r)
{
    counters_.mediaErrors = r.u64();
    counters_.timeouts = r.u64();
    counters_.deviceFaults = r.u64();
    counters_.retries = r.u64();
    counters_.recovered = r.u64();
    counters_.exhausted = r.u64();
    counters_.submissions = r.u64();
    counters_.erroredRequests = r.u64();
    counters_.expired = r.u64();
    counters_.attemptsIssued = r.u64();
    innerClock_ = sim::SimTime{r.i64()};
    return r.ok();
}

} // namespace ssdcheck::blockdev
