#include "blockdev/resilient_device.h"

#include <algorithm>

namespace ssdcheck::blockdev {

ResilientDevice::ResilientDevice(BlockDevice &inner, ResilienceConfig cfg)
    : inner_(inner), cfg_(cfg)
{
}

sim::SimDuration
ResilientDevice::backoffFor(uint32_t retry) const
{
    sim::SimDuration d = cfg_.backoffBase;
    for (uint32_t i = 1; i < retry; ++i) {
        if (d >= cfg_.backoffCap / 2)
            return cfg_.backoffCap;
        d *= 2;
    }
    return std::min(d, cfg_.backoffCap);
}

IoResult
ResilientDevice::submit(const IoRequest &req, sim::SimTime now)
{
    ++counters_.submissions;
    sim::SimTime attemptTime = now;
    IoResult last;
    for (uint32_t attempt = 0;; ++attempt) {
        // A retry advances the device past the caller's clock; later
        // requests submitted at earlier host times must still reach
        // the device in nondecreasing order (its submit contract), so
        // clamp to the high-water mark — a command cannot arrive in
        // the device's past.
        attemptTime = std::max(attemptTime, innerClock_);
        innerClock_ = attemptTime;
        IoResult res = inner_.submit(req, attemptTime);

        // Timeout classification: the host stops waiting once the
        // exchange exceeds the deadline, even though the simulated
        // completion eventually arrives.
        if (res.ok() && cfg_.timeoutAfter > 0 &&
            res.latency() > cfg_.timeoutAfter)
            res.status = IoStatus::Timeout;

        switch (res.status) {
          case IoStatus::Ok:
            break;
          case IoStatus::MediaError:
            ++counters_.mediaErrors;
            break;
          case IoStatus::Timeout:
            ++counters_.timeouts;
            break;
          case IoStatus::DeviceFault:
            ++counters_.deviceFaults;
            break;
        }

        last = res;
        last.submitTime = now;
        last.attempts = attempt + 1;

        if (res.ok()) {
            if (attempt > 0)
                ++counters_.recovered;
            return last;
        }
        if (!isRetryable(res.status) || attempt >= cfg_.maxRetries) {
            if (isRetryable(res.status))
                ++counters_.exhausted;
            return last;
        }

        ++counters_.retries;
        // Re-submit after the failed attempt settles plus backoff.
        // Timeouts re-issue from the moment the host gave up, not the
        // (later) simulated completion.
        const sim::SimTime settled =
            res.status == IoStatus::Timeout
                ? std::min(res.completeTime,
                           attemptTime + cfg_.timeoutAfter)
                : res.completeTime;
        attemptTime = std::max(attemptTime, settled) +
                      backoffFor(attempt + 1);
    }
}

} // namespace ssdcheck::blockdev
