/**
 * @file
 * The black-box block device interface.
 *
 * SSDcheck's entire contract with a device is this interface: submit a
 * request at a virtual time, get back a completion time. Diagnosis and
 * the runtime model may only use what a host could observe (addresses,
 * sizes, timestamps). Devices additionally advertise their capacity,
 * exactly as a real device does through its identify data.
 *
 * Timing contract: submit() must be called with nondecreasing
 * timestamps. The returned completion time may be far in the future
 * (the request is "in flight"); devices internally account for
 * resources so overlapping in-flight requests queue correctly.
 */
#pragma once

#include <cstdint>
#include <string>

#include "blockdev/request.h"
#include "sim/sim_time.h"

namespace ssdcheck::blockdev {

/** Abstract block device operating in virtual time. */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    /**
     * Submit one request at virtual time @p now.
     * @pre now is >= the timestamp of every earlier submit().
     * @return completion record (completeTime >= now).
     */
    [[nodiscard]] virtual IoResult submit(const IoRequest &req,
                                          sim::SimTime now) = 0;

    /** Device capacity in sectors. */
    virtual uint64_t capacitySectors() const = 0;

    /** Device capacity in FTL pages. */
    uint64_t capacityPages() const
    {
        return capacitySectors() / kSectorsPerPage;
    }

    /**
     * Discard the whole device (TRIM/purge). Used by the SNIA-style
     * test flow: purge, precondition, then measure in steady state.
     */
    virtual void purge(sim::SimTime now) = 0;

    /** Short identifying name for reports. */
    virtual std::string name() const = 0;
};

} // namespace ssdcheck::blockdev

