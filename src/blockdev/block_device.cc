#include "blockdev/block_device.h"

// BlockDevice is a pure interface; this translation unit anchors its
// vtable so the library has a home for the key function.

namespace ssdcheck::blockdev {} // namespace ssdcheck::blockdev
