/**
 * @file
 * A move-only callable of signature void(SimTime) with small-buffer
 * storage.
 *
 * The event queue schedules millions of short-lived callbacks per
 * experiment; std::function heap-allocates for captures beyond a few
 * words and must stay copyable, which forced the queue to copy
 * callbacks out of its heap. SmallCallback stores any callable up to
 * kInlineBytes inline (no allocation at all on the common path) and
 * transparently boxes larger ones on the heap, so the queue can move
 * entries in and out for free.
 */
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/sim_time.h"

namespace ssdcheck::sim {

/** Move-only void(SimTime) callable with inline storage. */
class SmallCallback
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr size_t kInlineBytes = 56;

    SmallCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                  std::is_invocable_v<std::decay_t<F> &, SimTime>>>
    SmallCallback(F &&f) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(f));
            vt_ = &inlineVTable<Fn>;
        } else {
            // Oversized capture: box it; the inline storage holds only
            // the pointer.
            *reinterpret_cast<Fn **>(storage_) =
                new Fn( // lint:allow(heap-alloc): cold boxed fallback
                    std::forward<F>(f));
            vt_ = &boxedVTable<Fn>;
        }
    }

    SmallCallback(SmallCallback &&o) noexcept : vt_(o.vt_)
    {
        if (vt_ != nullptr) {
            vt_->relocate(o.storage_, storage_);
            o.vt_ = nullptr;
        }
    }

    SmallCallback &operator=(SmallCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            vt_ = o.vt_;
            if (vt_ != nullptr) {
                vt_->relocate(o.storage_, storage_);
                o.vt_ = nullptr;
            }
        }
        return *this;
    }

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback() { reset(); }

    /** True when holding a callable. */
    explicit operator bool() const { return vt_ != nullptr; }

    void operator()(SimTime t) { vt_->invoke(storage_, t); }

  private:
    struct VTable
    {
        void (*invoke)(void *, SimTime);
        /** Move the payload from @p src to @p dst and destroy src. */
        void (*relocate)(void *src, void *dst);
        void (*destroy)(void *);
    };

    void reset()
    {
        if (vt_ != nullptr) {
            vt_->destroy(storage_);
            vt_ = nullptr;
        }
    }

    template <typename Fn> static constexpr VTable inlineVTable = {
        [](void *s, SimTime t) { (*std::launder(reinterpret_cast<Fn *>(s)))(t); },
        [](void *src, void *dst) {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *s) { std::launder(reinterpret_cast<Fn *>(s))->~Fn(); },
    };

    template <typename Fn> static constexpr VTable boxedVTable = {
        [](void *s, SimTime t) { (**reinterpret_cast<Fn **>(s))(t); },
        [](void *src, void *dst) {
            *reinterpret_cast<Fn **>(dst) = *reinterpret_cast<Fn **>(src);
        },
        [](void *s) { delete *reinterpret_cast<Fn **>(s); },
    };

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const VTable *vt_ = nullptr;
};

} // namespace ssdcheck::sim

