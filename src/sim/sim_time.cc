#include "sim/sim_time.h"

#include <cmath>
#include <cstdio>

namespace ssdcheck::sim {

std::string
formatDuration(SimDuration d)
{
    char buf[64];
    const double ad = std::abs(static_cast<double>(d));
    if (ad < 1e3) {
        std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
    } else if (ad < 1e6) {
        std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(d) / 1e3);
    } else if (ad < 1e9) {
        std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(d) / 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(d) / 1e9);
    }
    return buf;
}

} // namespace ssdcheck::sim
