#include "sim/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

#include "recovery/state_io.h"

namespace ssdcheck::sim {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed) : seed_(seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

double
Rng::gaussian()
{
    // Box-Muller; discard the second variate for simplicity.
    double u1 = uniform01();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = uniform01();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

double
Rng::lognormalFactor(double sigma)
{
    if (sigma <= 0.0)
        return 1.0;
    return std::exp(sigma * gaussian());
}

Rng
Rng::fork(uint64_t salt)
{
    return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL));
}

void
Rng::restore(uint64_t seed, uint64_t draws, const uint64_t state[4])
{
    seed_ = seed;
    draws_ = draws;
    for (size_t i = 0; i < 4; ++i)
        s_[i] = state[i];
}

Rng
Rng::replayTo(uint64_t seed, uint64_t draws)
{
    Rng r(seed);
    for (uint64_t i = 0; i < draws; ++i)
        r.next();
    return r;
}

void
Rng::saveState(recovery::StateWriter &w) const
{
    w.u64(seed_);
    w.u64(draws_);
    for (uint64_t s : s_)
        w.u64(s);
}

bool
Rng::loadState(recovery::StateReader &r)
{
    seed_ = r.u64();
    draws_ = r.u64();
    for (auto &s : s_)
        s = r.u64();
    return r.ok();
}

} // namespace ssdcheck::sim
