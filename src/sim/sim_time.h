/**
 * @file
 * Virtual time primitives for the discrete-time simulation.
 *
 * All latencies and timestamps in the library are expressed in
 * nanoseconds of virtual time. Nothing in the library reads the wall
 * clock; experiments are bit-for-bit reproducible.
 *
 * SimTime is a checked point-in-time type, not an integer alias: a
 * timestamp and a duration are different quantities, and the class
 * only defines the operations that are dimensionally meaningful —
 * point + duration, point - duration, point - point (a duration) and
 * comparisons. Adding two timestamps, passing a latency where a
 * deadline is expected, or silently mixing a timestamp into integer
 * arithmetic no longer compiles; the raw tick count leaves the type
 * only through the explicit ns() accessor. Debug builds additionally
 * assert that point±duration arithmetic does not overflow the 64-bit
 * tick counter (≈292 years of virtual time). SimDuration stays a
 * plain signed integer: durations are freely scaled, divided and
 * accumulated by the latency models, where integer arithmetic is the
 * point rather than a hazard.
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace ssdcheck::sim {

/** A duration in virtual nanoseconds (signed; freely arithmetic). */
using SimDuration = int64_t;

/** A point in virtual time, measured in nanoseconds since the epoch. */
class SimTime
{
  public:
    /** The simulation epoch (tick zero). */
    constexpr SimTime() = default;

    /** A timestamp @p ns ticks after the epoch (explicit on purpose:
     *  every integer→time conversion is a visible domain crossing). */
    constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

    /** Nanoseconds since the epoch (the only way out of the type). */
    constexpr int64_t ns() const { return ns_; }

    friend constexpr bool operator==(SimTime a, SimTime b)
    {
        return a.ns_ == b.ns_;
    }
    friend constexpr bool operator!=(SimTime a, SimTime b)
    {
        return a.ns_ != b.ns_;
    }
    friend constexpr bool operator<(SimTime a, SimTime b)
    {
        return a.ns_ < b.ns_;
    }
    friend constexpr bool operator<=(SimTime a, SimTime b)
    {
        return a.ns_ <= b.ns_;
    }
    friend constexpr bool operator>(SimTime a, SimTime b)
    {
        return a.ns_ > b.ns_;
    }
    friend constexpr bool operator>=(SimTime a, SimTime b)
    {
        return a.ns_ >= b.ns_;
    }

    friend constexpr SimTime operator+(SimTime t, SimDuration d)
    {
        assert(!addOverflows(t.ns_, d) && "SimTime overflow");
        return SimTime(t.ns_ + d);
    }
    friend constexpr SimTime operator+(SimDuration d, SimTime t)
    {
        return t + d;
    }
    friend constexpr SimTime operator-(SimTime t, SimDuration d)
    {
        assert(!addOverflows(t.ns_, -d) && "SimTime underflow");
        return SimTime(t.ns_ - d);
    }
    /** Elapsed time between two points. */
    friend constexpr SimDuration operator-(SimTime a, SimTime b)
    {
        return a.ns_ - b.ns_;
    }

    constexpr SimTime &operator+=(SimDuration d) { return *this = *this + d; }
    constexpr SimTime &operator-=(SimDuration d) { return *this = *this - d; }

  private:
    static constexpr bool addOverflows(int64_t a, int64_t b)
    {
        return (b > 0 && a > INT64_MAX - b) || (b < 0 && a < INT64_MIN - b);
    }

    int64_t ns_ = 0;
};

/** The zero timestamp (simulation epoch). */
inline constexpr SimTime kTimeZero{};

/** Construct a duration from nanoseconds. */
constexpr SimDuration nanoseconds(int64_t n) { return n; }

/** Construct a duration from microseconds. */
constexpr SimDuration microseconds(int64_t us) { return us * 1000; }

/** Construct a duration from milliseconds. */
constexpr SimDuration milliseconds(int64_t ms) { return ms * 1000000; }

/** Construct a duration from seconds. */
constexpr SimDuration seconds(int64_t s) { return s * 1000000000; }

/** Convert a duration to (fractional) microseconds. */
constexpr double toMicros(SimDuration d) { return static_cast<double>(d) / 1e3; }

/** Convert a duration to (fractional) milliseconds. */
constexpr double toMillis(SimDuration d) { return static_cast<double>(d) / 1e6; }

/** Convert a duration to (fractional) seconds. */
constexpr double toSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

/**
 * Render a duration in a human-friendly unit (ns/us/ms/s), e.g. "248.3us".
 * Used by table printers and example programs.
 */
std::string formatDuration(SimDuration d);

} // namespace ssdcheck::sim
