/**
 * @file
 * Virtual time primitives for the discrete-time simulation.
 *
 * All latencies and timestamps in the library are expressed in
 * SimTime ticks (nanoseconds of virtual time). Nothing in the library
 * reads the wall clock; experiments are bit-for-bit reproducible.
 */
#pragma once

#include <cstdint>
#include <string>

namespace ssdcheck::sim {

/** Virtual time in nanoseconds. Signed so durations can be subtracted. */
using SimTime = int64_t;

/** A duration in virtual nanoseconds (alias for clarity at call sites). */
using SimDuration = int64_t;

/** The zero timestamp (simulation epoch). */
inline constexpr SimTime kTimeZero = 0;

/** Construct a duration from nanoseconds. */
constexpr SimDuration nanoseconds(int64_t n) { return n; }

/** Construct a duration from microseconds. */
constexpr SimDuration microseconds(int64_t us) { return us * 1000; }

/** Construct a duration from milliseconds. */
constexpr SimDuration milliseconds(int64_t ms) { return ms * 1000000; }

/** Construct a duration from seconds. */
constexpr SimDuration seconds(int64_t s) { return s * 1000000000; }

/** Convert a duration to (fractional) microseconds. */
constexpr double toMicros(SimDuration d) { return static_cast<double>(d) / 1e3; }

/** Convert a duration to (fractional) milliseconds. */
constexpr double toMillis(SimDuration d) { return static_cast<double>(d) / 1e6; }

/** Convert a duration to (fractional) seconds. */
constexpr double toSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

/**
 * Render a duration in a human-friendly unit (ns/us/ms/s), e.g. "248.3us".
 * Used by table printers and example programs.
 */
std::string formatDuration(SimDuration d);

} // namespace ssdcheck::sim

