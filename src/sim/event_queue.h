/**
 * @file
 * A minimal discrete-event queue used by the experiment runners.
 *
 * The SSD device itself computes completion times analytically at
 * submit time (see ssd/ssd_device.h), so the event queue is only
 * needed where several actors interleave in virtual time: closed-loop
 * streams, open-loop schedulers, and the Hybrid-PAS background drain
 * thread.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sim_time.h"
#include "sim/small_callback.h"

namespace ssdcheck::sim {

/**
 * Priority queue of (time, sequence, callback) events.
 *
 * Events scheduled for the same timestamp fire in scheduling order
 * (FIFO tie-break), which keeps runners deterministic.
 *
 * Callbacks are SmallCallbacks: captures up to their inline capacity
 * never touch the heap, and the binary heap is kept in a plain vector
 * so entries move in and out instead of being copied (std::function in
 * a std::priority_queue forced one allocation plus one copy per
 * event).
 */
class EventQueue
{
  public:
    using Callback = SmallCallback;

    /** Schedule @p cb to fire at absolute virtual time @p when. */
    void schedule(SimTime when, Callback cb);

    /** Schedule @p cb to fire @p delay after the current time. */
    void scheduleAfter(SimDuration delay, Callback cb);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t size() const { return heap_.size(); }

    /** Current virtual time (time of the last event fired). */
    SimTime now() const { return now_; }

    /**
     * Fire the earliest pending event, advancing now().
     * @return false if the queue was empty.
     */
    bool runOne();

    /** Run events until the queue is empty or now() exceeds @p limit. */
    void runUntil(SimTime limit);

    /** Run every pending event (including ones scheduled while running). */
    void runAll();

  private:
    struct Entry
    {
        SimTime when;
        uint64_t seq;
        Callback cb;
        bool operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::vector<Entry> heap_; ///< Min-heap via std::push_heap/pop_heap.
    SimTime now_ = kTimeZero;
    uint64_t nextSeq_ = 0;
};

} // namespace ssdcheck::sim

