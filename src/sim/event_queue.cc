#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <utility>

namespace ssdcheck::sim {

void
EventQueue::schedule(SimTime when, Callback cb)
{
    assert(when >= now_ && "cannot schedule events in the past");
    heap_.push_back(Entry{when, nextSeq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void
EventQueue::scheduleAfter(SimDuration delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    now_ = e.when;
    e.cb(now_);
    return true;
}

void
EventQueue::runUntil(SimTime limit)
{
    while (!heap_.empty() && heap_.front().when <= limit)
        runOne();
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll()
{
    while (runOne()) {
    }
}

} // namespace ssdcheck::sim
