#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace ssdcheck::sim {

void
EventQueue::schedule(SimTime when, Callback cb)
{
    assert(when >= now_ && "cannot schedule events in the past");
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(SimDuration delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() returns const&; move out via const_cast is
    // avoided by copying the (small) entry and popping first.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    e.cb(now_);
    return true;
}

void
EventQueue::runUntil(SimTime limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        runOne();
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll()
{
    while (runOne()) {
    }
}

} // namespace ssdcheck::sim
