/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * A small, fast xoshiro256** generator plus the handful of
 * distributions the library needs (uniform, lognormal jitter,
 * Bernoulli, Zipf-ish skew). std::mt19937 is avoided so that streams
 * are cheap to fork per component and the numeric output is identical
 * across standard library implementations.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::sim {

/**
 * Seeded pseudo-random number generator (xoshiro256**).
 *
 * Each simulated component owns its own Rng (forked from a parent via
 * fork()) so that adding randomness to one component does not perturb
 * another component's stream.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(uint64_t seed = 0x5eed5eedULL);

    // The short draw helpers are inline: jitter/hiccup/fault draws sit
    // on the per-request hot path, and an out-of-line call per draw
    // costs more than the five-op generator itself.

    /** Next raw 64-bit value. */
    uint64_t next()
    {
        ++draws_;
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** The seed this stream was constructed (or restored) from. */
    uint64_t seed() const { return seed_; }

    /** Raw next() calls made since construction/restore from seed(). */
    uint64_t draws() const { return draws_; }

    /** Raw xoshiro256** state word @p i (i in [0,4)), for snapshots. */
    uint64_t stateWord(size_t i) const { return s_[i]; }

    /**
     * Restore a stream captured by (seed(), draws(), stateWord(0..3)).
     * O(1): trusts the supplied state words rather than replaying
     * draws. replayTo() is the O(draws) cross-check used by tests.
     */
    void restore(uint64_t seed, uint64_t draws, const uint64_t state[4]);

    /**
     * Reconstruct a stream purely from (seed, draws) by reseeding and
     * drawing @p draws raw values. Proves the (seed, draw-count) pair
     * is a complete description of a stream's position.
     */
    static Rng replayTo(uint64_t seed, uint64_t draws);

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t nextBelow(uint64_t bound)
    {
        assert(bound > 0);
        // Rejection sampling to remove modulo bias.
        const uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi)
    {
        assert(lo <= hi);
        const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
        if (span == 0) // full 64-bit range
            return static_cast<int64_t>(next());
        return lo + static_cast<int64_t>(nextBelow(span));
    }

    /** Uniform double in [0, 1). */
    double uniform01()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi)
    {
        return lo + (hi - lo) * uniform01();
    }

    /** True with probability p. */
    bool bernoulli(double p) { return uniform01() < p; }

    /** Standard normal via Box-Muller (no cached spare; stateless). */
    double gaussian();

    /**
     * Multiplicative lognormal jitter factor with median 1.0.
     * @param sigma log-space standard deviation (0 disables jitter).
     */
    double lognormalFactor(double sigma);

    /** Fork an independent child stream (hash of state + salt). */
    Rng fork(uint64_t salt);

    /** Serialize (seed, draws, raw state) for snapshots. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore a stream saved by saveState(). @return reader still ok. */
    bool loadState(recovery::StateReader &r);

  private:
    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
    uint64_t seed_ = 0;
    uint64_t draws_ = 0;
};

} // namespace ssdcheck::sim

