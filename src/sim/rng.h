/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * A small, fast xoshiro256** generator plus the handful of
 * distributions the library needs (uniform, lognormal jitter,
 * Bernoulli, Zipf-ish skew). std::mt19937 is avoided so that streams
 * are cheap to fork per component and the numeric output is identical
 * across standard library implementations.
 */
#pragma once

#include <cstdint>

namespace ssdcheck::sim {

/**
 * Seeded pseudo-random number generator (xoshiro256**).
 *
 * Each simulated component owns its own Rng (forked from a parent via
 * fork()) so that adding randomness to one component does not perturb
 * another component's stream.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(uint64_t seed = 0x5eed5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** True with probability p. */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller (no cached spare; stateless). */
    double gaussian();

    /**
     * Multiplicative lognormal jitter factor with median 1.0.
     * @param sigma log-space standard deviation (0 disables jitter).
     */
    double lognormalFactor(double sigma);

    /** Fork an independent child stream (hash of state + salt). */
    Rng fork(uint64_t salt);

  private:
    uint64_t s_[4];
};

} // namespace ssdcheck::sim

