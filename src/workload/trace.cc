#include "workload/trace.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <string_view>

namespace ssdcheck::workload {

void
Trace::add(TraceRecord rec)
{
    assert(records_.empty() || rec.arrival >= records_.back().arrival);
    records_.push_back(rec);
}

void
Trace::add(const blockdev::IoRequest &req)
{
    TraceRecord rec;
    rec.arrival = records_.empty() ? 0 : records_.back().arrival;
    rec.req = req;
    records_.push_back(rec);
}

TraceStats
Trace::characterize() const
{
    TraceStats s;
    s.requests = records_.size();
    if (records_.empty())
        return s;
    uint64_t writes = 0;
    uint64_t randoms = 0;
    uint64_t prevEnd = ~0ULL;
    for (const auto &r : records_) {
        if (r.req.isWrite())
            ++writes;
        s.totalBytes += r.req.bytes();
        // "Random" = not adjacent to the previous request's end
        // (paper: ratio between sequential/adjacent and random).
        if (r.req.lba != prevEnd)
            ++randoms;
        prevEnd = r.req.lba + r.req.sectors;
    }
    s.writeFraction =
        static_cast<double>(writes) / static_cast<double>(s.requests);
    s.randomFraction =
        static_cast<double>(randoms) / static_cast<double>(s.requests);
    return s;
}

void
Trace::assignPoissonArrivals(double iops, sim::Rng &rng)
{
    assert(iops > 0.0);
    sim::SimDuration t = 0;
    for (auto &r : records_) {
        r.arrival = t;
        // Exponential inter-arrival with mean 1/iops seconds.
        double u = rng.uniform01();
        if (u <= 0.0)
            u = 1e-12;
        const double gapSec = -std::log(u) / iops;
        t += static_cast<sim::SimDuration>(gapSec * 1e9);
    }
}

void
Trace::truncate(size_t n)
{
    if (records_.size() > n)
        records_.resize(n);
}

namespace {

char
typeChar(blockdev::IoType t)
{
    switch (t) {
      case blockdev::IoType::Read:
        return 'r';
      case blockdev::IoType::Write:
        return 'w';
      case blockdev::IoType::Trim:
        return 't';
    }
    return '?';
}

} // namespace

void
Trace::saveText(std::ostream &os) const
{
    os << "# " << name_ << "\n";
    for (const auto &r : records_) {
        os << r.arrival << ' ' << typeChar(r.req.type) << ' ' << r.req.lba
           << ' ' << r.req.sectors << "\n";
    }
}

namespace {

/** Advance past spaces/tabs; parse one integer field with from_chars. */
template <typename T>
bool
parseField(const char *&p, const char *end, T *out)
{
    while (p < end && (*p == ' ' || *p == '\t'))
        ++p;
    const auto [next, ec] = std::from_chars(p, end, *out);
    if (ec != std::errc{} || next == p)
        return false;
    p = next;
    return true;
}

} // namespace

std::optional<Trace>
Trace::loadText(std::istream &is, size_t *errorLine)
{
    size_t lineNo = 0;
    auto fail = [&]() -> std::optional<Trace> {
        if (errorLine != nullptr)
            *errorLine = lineNo;
        return std::nullopt;
    };

    // Slurp the stream once and parse in place: std::from_chars over a
    // flat buffer is an order of magnitude cheaper than one
    // istringstream per line, and knowing the full size lets us
    // reserve the record vector up front.
    std::string buf(std::istreambuf_iterator<char>(is), {});
    const char *p = buf.data();
    const char *const end = p + buf.size();

    auto nextLine = [&](std::string_view *line) {
        if (p >= end)
            return false;
        const char *nl = static_cast<const char *>(
            memchr(p, '\n', static_cast<size_t>(end - p)));
        const char *stop = nl != nullptr ? nl : end;
        *line = std::string_view(p, static_cast<size_t>(stop - p));
        if (!line->empty() && line->back() == '\r')
            line->remove_suffix(1);
        p = nl != nullptr ? nl + 1 : end;
        ++lineNo;
        return true;
    };

    std::string_view line;
    if (!nextLine(&line))
        return fail(); // empty stream: lineNo stays 0
    if (line.size() < 2 || line[0] != '#')
        return fail();
    Trace t(std::string(line.substr(2)));
    // saveText emits ~20 bytes per record; a generous estimate avoids
    // regrowth without overshooting much.
    t.records_.reserve(static_cast<size_t>(end - p) / 12 + 1);
    while (nextLine(&line)) {
        if (line.empty())
            continue;
        const char *lp = line.data();
        const char *const lend = lp + line.size();
        TraceRecord rec;
        if (!parseField(lp, lend, &rec.arrival))
            return fail();
        while (lp < lend && (*lp == ' ' || *lp == '\t'))
            ++lp;
        if (lp >= lend)
            return fail();
        switch (*lp++) {
          case 'r':
            rec.req.type = blockdev::IoType::Read;
            break;
          case 'w':
            rec.req.type = blockdev::IoType::Write;
            break;
          case 't':
            rec.req.type = blockdev::IoType::Trim;
            break;
          default:
            return fail();
        }
        if (lp < lend && *lp != ' ' && *lp != '\t')
            return fail(); // type must be a single letter
        if (!parseField(lp, lend, &rec.req.lba) ||
            !parseField(lp, lend, &rec.req.sectors))
            return fail();
        if (!t.records_.empty() && rec.arrival < t.records_.back().arrival)
            return fail(); // arrivals must be monotone
        t.records_.push_back(rec);
    }
    t.records_.shrink_to_fit();
    return t;
}

} // namespace ssdcheck::workload
