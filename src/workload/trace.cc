#include "workload/trace.h"

#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

namespace ssdcheck::workload {

void
Trace::add(TraceRecord rec)
{
    assert(records_.empty() || rec.arrival >= records_.back().arrival);
    records_.push_back(rec);
}

void
Trace::add(const blockdev::IoRequest &req)
{
    TraceRecord rec;
    rec.arrival = records_.empty() ? 0 : records_.back().arrival;
    rec.req = req;
    records_.push_back(rec);
}

TraceStats
Trace::characterize() const
{
    TraceStats s;
    s.requests = records_.size();
    if (records_.empty())
        return s;
    uint64_t writes = 0;
    uint64_t randoms = 0;
    uint64_t prevEnd = ~0ULL;
    for (const auto &r : records_) {
        if (r.req.isWrite())
            ++writes;
        s.totalBytes += r.req.bytes();
        // "Random" = not adjacent to the previous request's end
        // (paper: ratio between sequential/adjacent and random).
        if (r.req.lba != prevEnd)
            ++randoms;
        prevEnd = r.req.lba + r.req.sectors;
    }
    s.writeFraction =
        static_cast<double>(writes) / static_cast<double>(s.requests);
    s.randomFraction =
        static_cast<double>(randoms) / static_cast<double>(s.requests);
    return s;
}

void
Trace::assignPoissonArrivals(double iops, sim::Rng &rng)
{
    assert(iops > 0.0);
    sim::SimTime t = 0;
    for (auto &r : records_) {
        r.arrival = t;
        // Exponential inter-arrival with mean 1/iops seconds.
        double u = rng.uniform01();
        if (u <= 0.0)
            u = 1e-12;
        const double gapSec = -std::log(u) / iops;
        t += static_cast<sim::SimTime>(gapSec * 1e9);
    }
}

void
Trace::truncate(size_t n)
{
    if (records_.size() > n)
        records_.resize(n);
}

namespace {

char
typeChar(blockdev::IoType t)
{
    switch (t) {
      case blockdev::IoType::Read:
        return 'r';
      case blockdev::IoType::Write:
        return 'w';
      case blockdev::IoType::Trim:
        return 't';
    }
    return '?';
}

} // namespace

void
Trace::saveText(std::ostream &os) const
{
    os << "# " << name_ << "\n";
    for (const auto &r : records_) {
        os << r.arrival << ' ' << typeChar(r.req.type) << ' ' << r.req.lba
           << ' ' << r.req.sectors << "\n";
    }
}

std::optional<Trace>
Trace::loadText(std::istream &is, size_t *errorLine)
{
    size_t lineNo = 0;
    auto fail = [&]() -> std::optional<Trace> {
        if (errorLine != nullptr)
            *errorLine = lineNo;
        return std::nullopt;
    };
    std::string line;
    if (!std::getline(is, line))
        return fail(); // empty stream: lineNo stays 0
    lineNo = 1;
    if (line.size() < 2 || line[0] != '#')
        return fail();
    Trace t(line.substr(2));
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        TraceRecord rec;
        char type = 0;
        if (!(ls >> rec.arrival >> type >> rec.req.lba >> rec.req.sectors))
            return fail();
        switch (type) {
          case 'r':
            rec.req.type = blockdev::IoType::Read;
            break;
          case 'w':
            rec.req.type = blockdev::IoType::Write;
            break;
          case 't':
            rec.req.type = blockdev::IoType::Trim;
            break;
          default:
            return fail();
        }
        if (!t.records_.empty() && rec.arrival < t.records_.back().arrival)
            return fail(); // arrivals must be monotone
        t.records_.push_back(rec);
    }
    return t;
}

} // namespace ssdcheck::workload
