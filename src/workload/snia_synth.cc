#include "workload/snia_synth.h"

#include <cassert>
#include <cmath>

#include "workload/synthetic.h"

namespace ssdcheck::workload {

std::vector<SniaWorkload>
allSniaWorkloads()
{
    return {SniaWorkload::TPCE, SniaWorkload::Homes, SniaWorkload::Web,
            SniaWorkload::Exch, SniaWorkload::Live, SniaWorkload::Build,
            SniaWorkload::RwMixed};
}

std::vector<SniaWorkload>
writeIntensiveWorkloads()
{
    return {SniaWorkload::TPCE, SniaWorkload::Homes, SniaWorkload::Web};
}

std::vector<SniaWorkload>
readIntensiveWorkloads()
{
    return {SniaWorkload::Exch, SniaWorkload::Live, SniaWorkload::Build};
}

std::string
toString(SniaWorkload w)
{
    switch (w) {
      case SniaWorkload::TPCE: return "TPCE";
      case SniaWorkload::Homes: return "Homes";
      case SniaWorkload::Web: return "Web";
      case SniaWorkload::Exch: return "Exch";
      case SniaWorkload::Live: return "Live";
      case SniaWorkload::Build: return "Build";
      case SniaWorkload::RwMixed: return "RW Mixed";
    }
    return "?";
}

SniaPaperStats
paperStats(SniaWorkload w)
{
    switch (w) {
      case SniaWorkload::TPCE: return {1300000, 0.924, 0.999};
      case SniaWorkload::Homes: return {2000000, 0.904, 0.538};
      case SniaWorkload::Web: return {2000000, 0.915, 0.148};
      case SniaWorkload::Exch: return {7600000, 0.094, 0.998};
      case SniaWorkload::Live: return {3600000, 0.222, 0.505};
      case SniaWorkload::Build: return {600000, 0.539, 0.856};
      case SniaWorkload::RwMixed: return {1000000, 0.5, 1.0};
    }
    return {0, 0.0, 0.0};
}

Trace
buildSniaTrace(SniaWorkload w, uint64_t spanPages, double scale,
               uint64_t seed)
{
    assert(scale > 0.0 && scale <= 1.0);
    const SniaPaperStats ps = paperStats(w);
    const uint64_t n = std::max<uint64_t>(
        1000, static_cast<uint64_t>(
                  std::llround(static_cast<double>(ps.requests) * scale)));

    if (w == SniaWorkload::RwMixed) {
        Trace t = buildRwMixedTrace(n, spanPages, seed);
        t.setName(toString(w));
        return t;
    }

    MixedTraceParams p;
    p.requests = n;
    p.writeFraction = ps.writeFraction;
    p.randomFraction = ps.randomFraction;
    p.spanPages = spanPages;
    // Enterprise traces carry some multi-page requests; keep a mild,
    // fixed mix so the page-level machinery is exercised.
    p.twoPageFraction = 0.08;
    p.fourPageFraction = 0.04;
    p.seed = seed ^ (static_cast<uint64_t>(w) * 0x51ed2701ULL);
    Trace t = buildMixedTrace(p, toString(w));
    return t;
}

} // namespace ssdcheck::workload
