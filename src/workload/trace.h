/**
 * @file
 * Block I/O traces: the replayable unit of every evaluation workload.
 *
 * A trace is an ordered list of records with optional arrival times.
 * Closed-loop replay ignores arrivals; open-loop replay (the
 * scheduler experiments) uses them. characterize() computes the three
 * statistics Table II reports: request count, write fraction, and
 * randomness (fraction of requests not sequentially adjacent to the
 * previous request).
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "blockdev/request.h"
#include "sim/rng.h"
#include "sim/sim_time.h"

namespace ssdcheck::workload {

/** One trace entry. */
struct TraceRecord
{
    sim::SimDuration arrival = 0; ///< Arrival offset from trace start.
    blockdev::IoRequest req;
};

/** Table II-style workload statistics. */
struct TraceStats
{
    uint64_t requests = 0;
    double writeFraction = 0.0;
    double randomFraction = 0.0;
    uint64_t totalBytes = 0;
};

/** An ordered, replayable block I/O workload. */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    /** Append a record (arrivals must be nondecreasing). */
    void add(TraceRecord rec);

    /** Append a request with arrival 0 (closed-loop use). */
    void add(const blockdev::IoRequest &req);

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const TraceRecord &operator[](size_t i) const { return records_[i]; }
    const std::vector<TraceRecord> &records() const { return records_; }

    /** Compute Table II statistics. */
    TraceStats characterize() const;

    /**
     * Assign Poisson arrivals at @p iops mean rate, preserving order.
     * Used by the open-loop scheduler experiments.
     */
    void assignPoissonArrivals(double iops, sim::Rng &rng);

    /** Truncate to the first @p n records. */
    void truncate(size_t n);

    /**
     * Write the trace as text: a `# name` header line, then one
     * `arrival_ns type lba sectors` line per record (type is r/w/t).
     */
    void saveText(std::ostream &os) const;

    /**
     * Parse a trace previously written by saveText().
     * @param errorLine when non-null and parsing fails, receives the
     *        1-based line number of the offending line (0 when the
     *        stream was empty).
     * @return the trace, or std::nullopt on malformed input.
     */
    static std::optional<Trace> loadText(std::istream &is,
                                         size_t *errorLine = nullptr);

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
};

} // namespace ssdcheck::workload

