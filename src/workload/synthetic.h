/**
 * @file
 * Synthetic trace builders.
 *
 * buildMixedTrace() is the general engine: it walks the address space
 * with a tunable random/sequential mix, read/write ratio and request
 * size mix — the knobs Table II characterizes real traces by. The
 * motivation (Fig. 1) and Hybrid-PAS (Fig. 15a) benchmarks use the
 * specialized builders.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.h"
#include "workload/trace.h"

namespace ssdcheck::workload {

/** Parameters of the general mixed-trace generator. */
struct MixedTraceParams
{
    uint64_t requests = 100000;
    double writeFraction = 0.5;   ///< P(request is a write).
    double randomFraction = 1.0;  ///< P(jump to a random address).
    uint64_t spanPages = 64 * 1024; ///< Working-set span (4KB pages).
    /** Fractions of requests sized 1, 2, and 4 pages (rest is 1). */
    double twoPageFraction = 0.0;
    double fourPageFraction = 0.0;
    uint64_t seed = 42;
};

/** Build a trace from MixedTraceParams (arrivals all zero). */
Trace buildMixedTrace(const MixedTraceParams &p, std::string name);

/** 4KB uniform-random writes over @p spanPages (Fig. 3 workload). */
Trace buildRandomWriteTrace(uint64_t requests, uint64_t spanPages,
                            uint64_t seed);

/**
 * The paper's "RW Mixed" extreme: alternating random 4KB reads and
 * writes over @p spanPages.
 */
Trace buildRwMixedTrace(uint64_t requests, uint64_t spanPages,
                        uint64_t seed);

/**
 * Skewed write-intensive workload: @p hotFraction of writes hit a hot
 * set of @p hotPages pages, the rest spread uniformly over
 * @p spanPages. This is the Fig. 15a benchmark shape — write locality
 * is what lets an NVM tier coalesce rewrites.
 */
Trace buildHotColdWriteTrace(uint64_t requests, uint64_t hotPages,
                             double hotFraction, uint64_t spanPages,
                             uint64_t seed);

} // namespace ssdcheck::workload

