/**
 * @file
 * Synthetic equivalents of the paper's SNIA IOTTA traces (Table II).
 *
 * The real traces are not redistributable here; these generators
 * match the three characteristics the paper reports for each —
 * request count, write fraction and randomness — which are the
 * properties its analysis depends on (write intensity drives
 * flush/GC rates; randomness drives volume activation and GC
 * valid-page spread). See DESIGN.md for the substitution rationale.
 *
 *   Trace               #reqs   writes  random
 *   TPCE                1.3M    92.4%   99.9%
 *   Homes               2.0M    90.4%   53.8%
 *   Web                 2.0M    91.5%   14.8%
 *   Exchange (Exch)     7.6M     9.4%   99.8%
 *   LiveMapsBackEnd     3.6M    22.2%   50.5%
 *   BuildServer (Build) 0.6M    53.9%   85.6%
 */
#pragma once

#include <string>
#include <vector>

#include "workload/trace.h"

namespace ssdcheck::workload {

/** The six real-trace workloads plus the synthetic RW-Mixed. */
enum class SniaWorkload { TPCE, Homes, Web, Exch, Live, Build, RwMixed };

/** All workloads in paper order (RW Mixed last, as in Fig. 11). */
std::vector<SniaWorkload> allSniaWorkloads();

/** Write-intensive group of Table II (used by Fig. 12). */
std::vector<SniaWorkload> writeIntensiveWorkloads();

/** Read-intensive group of Table II (used by Figs. 12-14). */
std::vector<SniaWorkload> readIntensiveWorkloads();

/** Abbreviated name used in the paper ("TPCE", "Exch", ...). */
std::string toString(SniaWorkload w);

/** Paper-reported characteristics (for Table II comparison). */
struct SniaPaperStats
{
    uint64_t requests;
    double writeFraction;
    double randomFraction;
};

/** Table II's published numbers for @p w. */
SniaPaperStats paperStats(SniaWorkload w);

/**
 * Build the synthetic equivalent of @p w.
 * @param spanPages working-set span (should be <= device capacity).
 * @param scale shrink factor on the paper's request count so full
 *        sweeps stay fast; 1.0 reproduces the published counts.
 */
Trace buildSniaTrace(SniaWorkload w, uint64_t spanPages,
                     double scale = 1.0, uint64_t seed = 12345);

} // namespace ssdcheck::workload

