#include "workload/synthetic.h"

#include <cassert>

namespace ssdcheck::workload {

using blockdev::IoRequest;
using blockdev::IoType;
using blockdev::kSectorsPerPage;

Trace
buildMixedTrace(const MixedTraceParams &p, std::string name)
{
    assert(p.spanPages > 4);
    sim::Rng rng(p.seed);
    Trace t(std::move(name));

    uint64_t cursor = rng.nextBelow(p.spanPages);
    for (uint64_t i = 0; i < p.requests; ++i) {
        // Pick request size first so sequential runs stay adjacent.
        uint32_t pages = 1;
        const double u = rng.uniform01();
        if (u < p.fourPageFraction)
            pages = 4;
        else if (u < p.fourPageFraction + p.twoPageFraction)
            pages = 2;

        if (rng.bernoulli(p.randomFraction) || cursor + pages > p.spanPages)
            cursor = rng.nextBelow(p.spanPages - pages);

        IoRequest req;
        req.type = rng.bernoulli(p.writeFraction) ? IoType::Write
                                                  : IoType::Read;
        req.lba = cursor * kSectorsPerPage;
        req.sectors = pages * kSectorsPerPage;
        t.add(req);

        cursor += pages; // sequential continuation point
    }
    return t;
}

Trace
buildRandomWriteTrace(uint64_t requests, uint64_t spanPages, uint64_t seed)
{
    MixedTraceParams p;
    p.requests = requests;
    p.writeFraction = 1.0;
    p.randomFraction = 1.0;
    p.spanPages = spanPages;
    p.seed = seed;
    return buildMixedTrace(p, "rand-write-4k");
}

Trace
buildRwMixedTrace(uint64_t requests, uint64_t spanPages, uint64_t seed)
{
    sim::Rng rng(seed);
    Trace t("RW Mixed");
    for (uint64_t i = 0; i < requests; ++i) {
        IoRequest req;
        req.type = rng.bernoulli(0.5) ? IoType::Write : IoType::Read;
        req.lba = rng.nextBelow(spanPages) * kSectorsPerPage;
        req.sectors = kSectorsPerPage;
        t.add(req);
    }
    return t;
}

Trace
buildHotColdWriteTrace(uint64_t requests, uint64_t hotPages,
                       double hotFraction, uint64_t spanPages,
                       uint64_t seed)
{
    assert(hotPages > 0 && hotPages <= spanPages);
    sim::Rng rng(seed);
    Trace t("hot-cold-write");
    for (uint64_t i = 0; i < requests; ++i) {
        IoRequest req;
        req.type = IoType::Write;
        const uint64_t page = rng.bernoulli(hotFraction)
                                  ? rng.nextBelow(hotPages)
                                  : rng.nextBelow(spanPages);
        req.lba = page * kSectorsPerPage;
        req.sectors = kSectorsPerPage;
        t.add(req);
    }
    return t;
}

} // namespace ssdcheck::workload
