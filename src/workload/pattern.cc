#include "workload/pattern.h"

#include <cassert>

#include "blockdev/request.h"

namespace ssdcheck::workload {

using blockdev::kSectorsPerPage;

UniformPattern::UniformPattern(uint64_t spanPages) : spanPages_(spanPages)
{
    assert(spanPages > 0);
}

uint64_t
UniformPattern::nextLba(sim::Rng &rng)
{
    return rng.nextBelow(spanPages_) * kSectorsPerPage;
}

BitFixedPattern::BitFixedPattern(uint64_t spanPages, uint32_t bit, bool value)
    : spanPages_(spanPages), bit_(bit), value_(value)
{
    assert(spanPages > 0);
    assert(bit >= 3 && "bits below page granularity cannot be pinned on "
                       "page-aligned traffic");
    assert((1ULL << bit) < spanPages * kSectorsPerPage &&
           "pinned bit must lie inside the address range");
}

uint64_t
BitFixedPattern::nextLba(sim::Rng &rng)
{
    // Rejection sampling keeps the distribution uniform over the
    // addresses with the requested bit value.
    for (;;) {
        uint64_t lba = rng.nextBelow(spanPages_) * kSectorsPerPage;
        if (value_)
            lba |= (1ULL << bit_);
        else
            lba &= ~(1ULL << bit_);
        if (lba < spanPages_ * kSectorsPerPage)
            return lba;
    }
}

SequentialPattern::SequentialPattern(uint64_t startPage, uint64_t spanPages)
    : startPage_(startPage), spanPages_(spanPages)
{
    assert(spanPages > 0);
}

uint64_t
SequentialPattern::nextLba(sim::Rng &rng)
{
    (void)rng;
    const uint64_t page = startPage_ + (next_ % spanPages_);
    ++next_;
    return page * kSectorsPerPage;
}

FixedPattern::FixedPattern(uint64_t lba) : lba_(lba) {}

uint64_t
FixedPattern::nextLba(sim::Rng &rng)
{
    (void)rng;
    return lba_;
}

FlipPattern::FlipPattern(uint64_t lba, uint32_t bit) : lba_(lba), bit_(bit) {}

uint64_t
FlipPattern::nextLba(sim::Rng &rng)
{
    (void)rng;
    const uint64_t lba = flip_ ? (lba_ ^ (1ULL << bit_)) : lba_;
    flip_ = !flip_;
    return lba;
}

} // namespace ssdcheck::workload
