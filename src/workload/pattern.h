/**
 * @file
 * Address-pattern generators (the "modified fio" of the paper).
 *
 * The diagnosis snippets need precisely manipulated LBA streams:
 * uniform random, uniform with one sector-address bit pinned to a
 * value (allocation-volume test, Fig. 4), the same address repeated
 * (GC Fixed test), and two addresses differing in exactly one bit
 * (GC Flip_x test). All patterns emit page-aligned sector LBAs.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "sim/rng.h"

namespace ssdcheck::workload {

/** Generator of sector LBAs for 4KB requests. */
class AddressPattern
{
  public:
    virtual ~AddressPattern() = default;

    /** Produce the next sector LBA. */
    virtual uint64_t nextLba(sim::Rng &rng) = 0;
};

/** Uniform random page over [0, spanPages). */
class UniformPattern : public AddressPattern
{
  public:
    explicit UniformPattern(uint64_t spanPages);
    uint64_t nextLba(sim::Rng &rng) override;

  private:
    uint64_t spanPages_;
};

/**
 * Uniform random page with sector-LBA bit @p bit forced to @p value —
 * the paper's allocation-volume diagnosis pattern.
 */
class BitFixedPattern : public AddressPattern
{
  public:
    BitFixedPattern(uint64_t spanPages, uint32_t bit, bool value);
    uint64_t nextLba(sim::Rng &rng) override;

  private:
    uint64_t spanPages_;
    uint32_t bit_;
    bool value_;
};

/** Sequential pages from @p startPage, wrapping within the span. */
class SequentialPattern : public AddressPattern
{
  public:
    SequentialPattern(uint64_t startPage, uint64_t spanPages);
    uint64_t nextLba(sim::Rng &rng) override;

  private:
    uint64_t startPage_;
    uint64_t spanPages_;
    uint64_t next_ = 0;
};

/** Always the same LBA (GC "Fixed" diagnosis). */
class FixedPattern : public AddressPattern
{
  public:
    explicit FixedPattern(uint64_t lba);
    uint64_t nextLba(sim::Rng &rng) override;

  private:
    uint64_t lba_;
};

/**
 * Alternates between @p lba and @p lba with sector bit @p bit flipped
 * (GC "Flip_x" diagnosis).
 */
class FlipPattern : public AddressPattern
{
  public:
    FlipPattern(uint64_t lba, uint32_t bit);
    uint64_t nextLba(sim::Rng &rng) override;

  private:
    uint64_t lba_;
    uint32_t bit_;
    bool flip_ = false;
};

} // namespace ssdcheck::workload

