/**
 * @file
 * Fast non-volatile memory device for the Hybrid PAS use case
 * (paper §IV-B): small capacity, microsecond-scale accesses, and a
 * dirty-page pool that a background thread periodically drains into
 * the SSD. When the pool is full the NVM exerts backpressure — the
 * tiering policy (not this device) decides what to do about it.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "sim/rng.h"

namespace ssdcheck::nvm {

/** Configuration of the NVM tier. */
struct NvmConfig
{
    std::string name = "NVM";
    /** Dirty-page capacity (how much write burst it can absorb). */
    uint64_t capacityPages = 4096; // 16 MB
    sim::SimDuration readLatency = sim::microseconds(2);
    sim::SimDuration writeLatency = sim::microseconds(4);
    sim::SimDuration busTime = sim::nanoseconds(300);
    double jitterSigma = 0.03;
    uint64_t seed = 7;
};

/** Byte-class NVM exposed as a (very fast) block device. */
class NvmDevice : public blockdev::BlockDevice
{
  public:
    explicit NvmDevice(NvmConfig cfg);

    // BlockDevice interface. Writes to a full pool assert — callers
    // must check freePages() first (that is the backpressure signal).
    blockdev::IoResult submit(const blockdev::IoRequest &req,
                              sim::SimTime now) override;
    uint64_t capacitySectors() const override;
    void purge(sim::SimTime now) override;
    std::string name() const override { return cfg_.name; }

    /** Dirty pages currently held. */
    uint64_t dirtyPages() const { return dirty_.size(); }

    /** Remaining dirty-page slots. */
    uint64_t freePages() const { return cfg_.capacityPages - dirty_.size(); }

    /** True when no more writes can be absorbed. */
    bool full() const { return dirty_.size() >= cfg_.capacityPages; }

    /**
     * Remove up to @p n oldest dirty pages (the background drain).
     * @return the page indices to be written back to the SSD.
     */
    std::vector<uint64_t> takeDirty(size_t n);

    /** True when @p pageIndex is held dirty (and newer than the SSD). */
    bool holds(uint64_t pageIndex) const;

    /**
     * Drop the dirty copy of @p pageIndex (a newer version was
     * written elsewhere). No-op when the page is not held.
     */
    void invalidate(uint64_t pageIndex);

    const NvmConfig &config() const { return cfg_; }

    /** Total pages ever written (NVM pressure metric, Fig. 15c). */
    uint64_t totalWritesAbsorbed() const { return totalWrites_; }

  private:
    struct Entry
    {
        uint64_t page;
        uint64_t stampAtEnqueue; ///< dirty_ stamp when enqueued.
    };

    NvmConfig cfg_;
    sim::Rng rng_;
    sim::SimTime busGate_;
    std::deque<Entry> fifo_;                       ///< Eviction clock.
    std::unordered_map<uint64_t, uint64_t> dirty_; ///< page -> stamp.
    uint64_t totalWrites_ = 0;
};

} // namespace ssdcheck::nvm

