#include "nvm/nvm_device.h"

#include <algorithm>
#include <cassert>

namespace ssdcheck::nvm {

NvmDevice::NvmDevice(NvmConfig cfg) : cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    assert(cfg_.capacityPages > 0);
}

uint64_t
NvmDevice::capacitySectors() const
{
    // The NVM is a cache tier: it accepts any page index; capacity
    // reflects only how many dirty pages it can hold at once.
    return ~0ULL / 2;
}

blockdev::IoResult
NvmDevice::submit(const blockdev::IoRequest &req, sim::SimTime now)
{
    blockdev::IoResult res;
    res.submitTime = now;

    // Boundary validation: zero-length commands and writes that would
    // overrun the dirty pool (the caller ignored backpressure) are
    // rejected without touching device state. Rewrites of already-
    // dirty pages consume no new slot and stay admissible.
    bool overrun = false;
    if (req.isWrite()) {
        uint64_t newPages = 0;
        for (uint32_t p = 0; p < req.pages(); ++p) {
            if (dirty_.find(req.firstPage() + p) == dirty_.end())
                ++newPages;
        }
        overrun = newPages > freePages();
    }
    if (req.sectors == 0 || overrun) {
        res.status = blockdev::IoStatus::DeviceFault;
        res.completeTime = now + cfg_.busTime;
        return res;
    }

    const sim::SimTime start = std::max(now, busGate_);
    busGate_ = start + cfg_.busTime;

    sim::SimDuration lat = 0;
    const uint64_t firstPage = req.firstPage();
    for (uint32_t p = 0; p < req.pages(); ++p) {
        const uint64_t page = firstPage + p;
        if (req.isWrite()) {
            if (dirty_.find(page) == dirty_.end()) {
                assert(!full() && "caller must respect NVM backpressure");
                fifo_.push_back(Entry{page, totalWrites_});
            }
            dirty_[page] = totalWrites_;
            ++totalWrites_;
            lat += cfg_.writeLatency;
        } else {
            lat += cfg_.readLatency;
        }
    }
    lat = static_cast<sim::SimDuration>(
        static_cast<double>(lat) * rng_.lognormalFactor(cfg_.jitterSigma));
    res.completeTime = busGate_ + lat;
    return res;
}

void
NvmDevice::purge(sim::SimTime now)
{
    (void)now;
    fifo_.clear();
    dirty_.clear();
}

std::vector<uint64_t>
NvmDevice::takeDirty(size_t n)
{
    std::vector<uint64_t> out;
    // Second-chance (clock) eviction: a page rewritten since it was
    // enqueued goes back for another pass, so hot pages stay resident
    // and keep coalescing rewrites; cold pages drain. Bound the scan
    // to one full pass so a purely hot pool terminates.
    size_t scansLeft = fifo_.size();
    while (out.size() < n && scansLeft-- > 0 && !fifo_.empty()) {
        const Entry e = fifo_.front();
        fifo_.pop_front();
        const auto it = dirty_.find(e.page);
        if (it == dirty_.end())
            continue; // superseded by a newer copy elsewhere
        if (it->second != e.stampAtEnqueue) {
            // Rewritten since enqueue: give it another pass.
            fifo_.push_back(Entry{e.page, it->second});
            continue;
        }
        dirty_.erase(it);
        out.push_back(e.page);
    }
    return out;
}

bool
NvmDevice::holds(uint64_t pageIndex) const
{
    return dirty_.find(pageIndex) != dirty_.end();
}

void
NvmDevice::invalidate(uint64_t pageIndex)
{
    // The FIFO entry stays behind; takeDirty() skips entries whose
    // dirty record is gone.
    dirty_.erase(pageIndex);
}

} // namespace ssdcheck::nvm
