/**
 * @file
 * A multi-channel array of NAND chips with flat physical addressing.
 *
 * The FTL (ssd/page_mapper, ssd/garbage_collector) addresses pages by
 * flat Ppn; the array routes each operation to the owning chip and
 * plane and provides the batch-timing model: operations spread over N
 * planes proceed in parallel, so a batch of k page programs costs
 * ceil(k / totalPlanes) * tProg (paper §III-A: buffered writes are
 * distributed to all chips in channels in parallel).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nand/nand_chip.h"
#include "nand/nand_config.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::nand {

/** Array of NAND chips addressed by flat physical page number. */
class NandArray
{
  public:
    NandArray(const NandGeometry &geo, const NandTiming &timing);

    /** Program one page (must follow the block's write pointer). */
    sim::SimDuration programPage(Ppn ppn, uint64_t payload);

    /** Read one programmed page (counts read-disturb exposure). */
    sim::SimDuration readPage(Ppn ppn, uint64_t *payloadOut = nullptr);

    /** Erase the block containing flat block number @p pbn. */
    sim::SimDuration eraseBlock(Pbn pbn);

    /** Write pointer (pages programmed) of flat block @p pbn. */
    uint32_t blockWritePointer(Pbn pbn) const;

    /** Erase count of flat block @p pbn. */
    uint32_t blockEraseCount(Pbn pbn) const;

    /** Reads served from flat block @p pbn since its last erase. */
    uint32_t blockReadCount(Pbn pbn) const;

    /** True if @p ppn currently holds data. */
    bool isProgrammed(Ppn ppn) const;

    /**
     * Virtual-time cost of programming @p pages pages striped across
     * all planes: ceil(pages / totalPlanes) * tProg.
     */
    sim::SimDuration batchProgramTime(uint64_t pages, bool slc = false) const;

    /** Virtual-time cost of reading @p pages pages striped in parallel. */
    sim::SimDuration batchReadTime(uint64_t pages) const;

    const NandGeometry &geometry() const { return geo_; }
    const NandTiming &timing() const { return timing_; }

    /** Total pages in the array. */
    uint64_t totalPages() const { return geo_.totalPages(); }

    /** Total blocks in the array. */
    uint64_t totalBlocks() const { return geo_.totalBlocks(); }

    /** Serialize every chip's block state and page payloads. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState() (geometry must match). */
    bool loadState(recovery::StateReader &r);

  private:
    struct ChipCoord
    {
        uint32_t chip;
        uint32_t localPlane;
    };

    /** Map a global plane index to (chip, chip-local plane). */
    ChipCoord chipOfPlane(uint32_t plane) const;

    NandGeometry geo_;
    NandTiming timing_;
    std::vector<NandChip> chips_;
};

} // namespace ssdcheck::nand

