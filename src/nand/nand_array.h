/**
 * @file
 * A multi-channel array of NAND chips with flat physical addressing.
 *
 * The FTL (ssd/page_mapper, ssd/garbage_collector) addresses pages by
 * flat Ppn. State is kept structure-of-arrays over the *flat* address
 * space — one write-pointer / erase-count / read-count word per flat
 * block and one payload stamp per flat page — because the flat Ppn
 * encoding is plane-major and planes map to chips in contiguous
 * ranges, so no per-operation chip routing (divide by planes-per-chip)
 * is needed at all. Chip-level invariants (erase-before-write,
 * sequential in-block programming) are enforced directly on the flat
 * state; NandChip remains as the reference model for the unit tests.
 *
 * The array also provides the batch-timing model: operations spread
 * over N planes proceed in parallel, so a batch of k page programs
 * costs ceil(k / totalPlanes) * tProg (paper §III-A: buffered writes
 * are distributed to all chips in channels in parallel).
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "nand/nand_chip.h"
#include "nand/nand_config.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::nand {

/** Flat structure-of-arrays NAND state addressed by Ppn/Pbn. */
class NandArray
{
  public:
    NandArray(const NandGeometry &geo, const NandTiming &timing);

    /** Program one page (must follow the block's write pointer). */
    sim::SimDuration programPage(Ppn ppn, uint64_t payload)
    {
        const uint64_t p = ppn.value();
        assert(p < totalPages_);
        const uint64_t pbn = p / ppb_;
        const uint32_t page = static_cast<uint32_t>(p - pbn * ppb_);
        assert(page == writePtr_[pbn] &&
               "NAND requires sequential in-block writes");
        assert(page < ppb_ && "block is full");
        (void)page;
        payloads_[p] = payload;
        ++writePtr_[pbn];
        return timing_.programLatency;
    }

    /** Read one programmed page (counts read-disturb exposure). */
    sim::SimDuration readPage(Ppn ppn, uint64_t *payloadOut = nullptr)
    {
        const uint64_t p = ppn.value();
        assert(p < totalPages_);
        const uint64_t pbn = p / ppb_;
        assert(p - pbn * ppb_ < writePtr_[pbn] &&
               "reading an unprogrammed page");
        ++readCount_[pbn];
        if (payloadOut != nullptr)
            *payloadOut = payloads_[p];
        return timing_.readLatency;
    }

    /** Erase the block containing flat block number @p pbn. */
    sim::SimDuration eraseBlock(Pbn pbn)
    {
        const uint64_t b = pbn.value();
        assert(b < totalBlocks_);
        writePtr_[b] = 0;
        readCount_[b] = 0;
        ++eraseCount_[b];
        const size_t base = static_cast<size_t>(b) * ppb_;
        for (uint32_t p = 0; p < ppb_; ++p)
            payloads_[base + p] = kErasedPayload;
        return timing_.eraseLatency;
    }

    /** Write pointer (pages programmed) of flat block @p pbn. */
    uint32_t blockWritePointer(Pbn pbn) const
    {
        assert(pbn.value() < totalBlocks_);
        return writePtr_[pbn.value()];
    }

    /** Erase count of flat block @p pbn. */
    uint32_t blockEraseCount(Pbn pbn) const
    {
        assert(pbn.value() < totalBlocks_);
        return eraseCount_[pbn.value()];
    }

    /** Reads served from flat block @p pbn since its last erase. */
    uint32_t blockReadCount(Pbn pbn) const
    {
        assert(pbn.value() < totalBlocks_);
        return readCount_[pbn.value()];
    }

    /** True if @p ppn currently holds data. */
    bool isProgrammed(Ppn ppn) const
    {
        const uint64_t p = ppn.value();
        assert(p < totalPages_);
        const uint64_t pbn = p / ppb_;
        return p - pbn * ppb_ < writePtr_[pbn];
    }

    /**
     * Virtual-time cost of programming @p pages pages striped across
     * all planes: ceil(pages / totalPlanes) * tProg.
     */
    sim::SimDuration batchProgramTime(uint64_t pages, bool slc = false) const;

    /** Virtual-time cost of reading @p pages pages striped in parallel. */
    sim::SimDuration batchReadTime(uint64_t pages) const;

    const NandGeometry &geometry() const { return geo_; }
    const NandTiming &timing() const { return timing_; }

    /** Total pages in the array. */
    uint64_t totalPages() const { return totalPages_; }

    /** Total blocks in the array. */
    uint64_t totalBlocks() const { return totalBlocks_; }

    /** Pages per block (cached geometry, hot-path divisor). */
    uint32_t pagesPerBlock() const { return ppb_; }

    /** Serialize the flat block state and page payloads. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState() (geometry must match). */
    bool loadState(recovery::StateReader &r);

  private:
    NandGeometry geo_; // snapshot:skip(construction-time geometry; restore constructs an identical array before loadState)
    NandTiming timing_; // snapshot:skip(construction-time timing model; restore constructs an identical array before loadState)
    // Cached geometry products so hot operations never chase the
    // multi-field geometry struct.
    uint32_t ppb_ = 0; // snapshot:skip(derived from the geometry in the constructor)
    uint32_t totalPlanes_ = 0; // snapshot:skip(derived from the geometry in the constructor)
    uint64_t totalBlocks_ = 0;
    uint64_t totalPages_ = 0; // snapshot:skip(derived from the geometry in the constructor)
    // Structure-of-arrays block state: indexed by flat Pbn.
    std::vector<uint32_t> writePtr_;   ///< Next page to program.
    std::vector<uint32_t> eraseCount_; ///< Erase cycles (wear).
    std::vector<uint32_t> readCount_;  ///< Reads since the last erase.
    std::vector<uint64_t> payloads_;   ///< One stamp per flat Ppn.
};

} // namespace ssdcheck::nand
