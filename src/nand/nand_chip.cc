#include "nand/nand_chip.h"

#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::nand {

NandChip::NandChip(const NandGeometry &geo, const NandTiming &timing)
    : geo_(geo), timing_(timing)
{
    assert(geo.valid());
    const size_t nBlocks =
        static_cast<size_t>(geo.planesPerChip()) * geo.blocksPerPlane;
    blocks_.resize(nBlocks);
    payloads_.assign(nBlocks * geo.pagesPerBlock, kErasedPayload);
}

size_t
NandChip::blockIndex(uint32_t plane, uint32_t block) const
{
    assert(plane < geo_.planesPerChip());
    assert(block < geo_.blocksPerPlane);
    return static_cast<size_t>(plane) * geo_.blocksPerPlane + block;
}

size_t
NandChip::pageIndex(uint32_t plane, uint32_t block, uint32_t page) const
{
    assert(page < geo_.pagesPerBlock);
    return blockIndex(plane, block) * geo_.pagesPerBlock + page;
}

sim::SimDuration
NandChip::programPage(uint32_t plane, uint32_t block, uint32_t page,
                      uint64_t payload)
{
    BlockState &bs = blocks_[blockIndex(plane, block)];
    assert(page == bs.writePtr && "NAND requires sequential in-block writes");
    assert(page < geo_.pagesPerBlock && "block is full");
    payloads_[pageIndex(plane, block, page)] = payload;
    ++bs.writePtr;
    return timing_.programLatency;
}

sim::SimDuration
NandChip::readPage(uint32_t plane, uint32_t block, uint32_t page,
                   uint64_t *payloadOut)
{
    BlockState &bs = blocks_[blockIndex(plane, block)];
    assert(page < bs.writePtr && "reading an unprogrammed page");
    ++bs.readCount;
    if (payloadOut != nullptr)
        *payloadOut = payloads_[pageIndex(plane, block, page)];
    return timing_.readLatency;
}

sim::SimDuration
NandChip::eraseBlock(uint32_t plane, uint32_t block)
{
    BlockState &bs = blocks_[blockIndex(plane, block)];
    bs.writePtr = 0;
    bs.readCount = 0;
    ++bs.eraseCount;
    const size_t base = blockIndex(plane, block) * geo_.pagesPerBlock;
    for (uint32_t p = 0; p < geo_.pagesPerBlock; ++p)
        payloads_[base + p] = kErasedPayload;
    return timing_.eraseLatency;
}

uint32_t
NandChip::writePointer(uint32_t plane, uint32_t block) const
{
    return blocks_[blockIndex(plane, block)].writePtr;
}

uint32_t
NandChip::eraseCount(uint32_t plane, uint32_t block) const
{
    return blocks_[blockIndex(plane, block)].eraseCount;
}

uint32_t
NandChip::readCount(uint32_t plane, uint32_t block) const
{
    return blocks_[blockIndex(plane, block)].readCount;
}

bool
NandChip::isProgrammed(uint32_t plane, uint32_t block, uint32_t page) const
{
    return page < blocks_[blockIndex(plane, block)].writePtr;
}

void
NandChip::saveState(recovery::StateWriter &w) const
{
    w.u64(blocks_.size());
    for (const BlockState &b : blocks_) {
        w.u32(b.writePtr);
        w.u32(b.eraseCount);
        w.u32(b.readCount);
    }
    w.u64(payloads_.size());
    for (uint64_t p : payloads_)
        w.u64(p);
}

bool
NandChip::loadState(recovery::StateReader &r)
{
    const uint64_t nBlocks = r.u64();
    if (r.ok() && nBlocks != blocks_.size()) {
        r.fail("NAND chip block count does not match this geometry");
        return false;
    }
    for (auto &b : blocks_) {
        b.writePtr = r.u32();
        b.eraseCount = r.u32();
        b.readCount = r.u32();
        if (r.ok() && b.writePtr > geo_.pagesPerBlock) {
            r.fail("NAND block write pointer past end of block");
            return false;
        }
    }
    const uint64_t nPages = r.u64();
    if (r.ok() && nPages != payloads_.size()) {
        r.fail("NAND chip page count does not match this geometry");
        return false;
    }
    for (auto &p : payloads_)
        p = r.u64();
    return r.ok();
}

} // namespace ssdcheck::nand
