/**
 * @file
 * State machine of one NAND flash chip.
 *
 * Enforces the physical constraints the paper's FTL must respect:
 *  - erase-before-write: a page can be programmed exactly once per
 *    erase cycle;
 *  - sequential in-block programming: pages within a block must be
 *    programmed in order (standard NAND requirement);
 *  - erase operates on whole blocks.
 *
 * Each page stores a 64-bit payload stamp so higher layers (and the
 * property tests) can verify data survives buffer flushes and GC
 * merges end to end.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nand/nand_config.h"

namespace ssdcheck::recovery {
class StateWriter;
class StateReader;
} // namespace ssdcheck::recovery

namespace ssdcheck::nand {

/** Sentinel payload of a never-programmed (erased) page. */
inline constexpr uint64_t kErasedPayload = ~0ULL;

/**
 * One NAND chip: diesPerChip x planesPerDie planes, each with
 * blocksPerPlane blocks of pagesPerBlock pages.
 *
 * Addresses passed in are chip-local: plane in [0, planesPerChip()).
 */
class NandChip
{
  public:
    NandChip(const NandGeometry &geo, const NandTiming &timing);

    /**
     * Program the next expected page of (plane, block) with @p payload.
     * @param page must equal the block's write pointer (sequential).
     * @return program latency.
     */
    sim::SimDuration programPage(uint32_t plane, uint32_t block,
                                 uint32_t page, uint64_t payload);

    /**
     * Read a previously programmed page.
     * @param payloadOut receives the stored stamp (may be null).
     * @return read latency.
     */
    sim::SimDuration readPage(uint32_t plane, uint32_t block, uint32_t page,
                              uint64_t *payloadOut = nullptr);

    /**
     * Erase a whole block, resetting its write pointer.
     * @return erase latency.
     */
    sim::SimDuration eraseBlock(uint32_t plane, uint32_t block);

    /** Pages programmed so far in (plane, block) — the write pointer. */
    uint32_t writePointer(uint32_t plane, uint32_t block) const;

    /** Times (plane, block) has been erased (wear). */
    uint32_t eraseCount(uint32_t plane, uint32_t block) const;

    /**
     * Reads served from (plane, block) since its last erase — the
     * read-disturb exposure counter (reset by eraseBlock).
     */
    uint32_t readCount(uint32_t plane, uint32_t block) const;

    /** True if (plane, block, page) currently holds data. */
    bool isProgrammed(uint32_t plane, uint32_t block, uint32_t page) const;

    const NandGeometry &geometry() const { return geo_; }
    const NandTiming &timing() const { return timing_; }

    /** Serialize per-block state and page payloads. */
    void saveState(recovery::StateWriter &w) const;

    /** Restore state saved by saveState() (geometry must match). */
    bool loadState(recovery::StateReader &r);

  private:
    struct BlockState
    {
        uint32_t writePtr = 0;   ///< Next page to program.
        uint32_t eraseCount = 0;
        uint32_t readCount = 0;  ///< Reads since the last erase.
    };

    size_t blockIndex(uint32_t plane, uint32_t block) const;
    size_t pageIndex(uint32_t plane, uint32_t block, uint32_t page) const;

    NandGeometry geo_; // snapshot:skip(construction-time geometry; loadState only validates it against the checkpoint)
    NandTiming timing_; // snapshot:skip(construction-time timing model; restore constructs an identical chip before loadState)
    std::vector<BlockState> blocks_;   ///< planesPerChip * blocksPerPlane.
    std::vector<uint64_t> payloads_;   ///< One stamp per page.
};

} // namespace ssdcheck::nand

