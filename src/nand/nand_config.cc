#include "nand/nand_config.h"

#include <cassert>

namespace ssdcheck::nand {

bool
NandGeometry::valid() const
{
    return channels > 0 && chipsPerChannel > 0 && diesPerChip > 0 &&
           planesPerDie > 0 && blocksPerPlane > 0 && pagesPerBlock > 0;
}

Ppn
encodePpn(const NandGeometry &geo, const PhysicalPageAddress &a)
{
    assert(a.plane < geo.totalPlanes());
    assert(a.block < geo.blocksPerPlane);
    assert(a.page < geo.pagesPerBlock);
    return Ppn{(static_cast<uint64_t>(a.plane) * geo.blocksPerPlane +
                a.block) *
                   geo.pagesPerBlock +
               a.page};
}

PhysicalPageAddress
decodePpn(const NandGeometry &geo, Ppn ppn)
{
    assert(ppn.value() < geo.totalPages());
    PhysicalPageAddress a;
    a.page = static_cast<uint32_t>(ppn.value() % geo.pagesPerBlock);
    const uint64_t blk = ppn.value() / geo.pagesPerBlock;
    a.block = static_cast<uint32_t>(blk % geo.blocksPerPlane);
    a.plane = static_cast<uint32_t>(blk / geo.blocksPerPlane);
    return a;
}

Pbn
blockOfPpn(const NandGeometry &geo, Ppn ppn)
{
    assert(ppn.value() < geo.totalPages());
    return Pbn{ppn.value() / geo.pagesPerBlock};
}

} // namespace ssdcheck::nand
