/**
 * @file
 * NAND flash geometry and timing parameters.
 *
 * Latency constants follow the paper (§II-A): read ~60us, program
 * ~1000us, erase ~3500us. Geometry mirrors the paper's FPGA prototype
 * defaults (4 channels x 4 chips x 2 planes = 32 planes) but every
 * dimension is configurable per SSD preset.
 */
#pragma once

#include <cstdint>

#include "core/typed_ids.h"
#include "sim/sim_time.h"

namespace ssdcheck::nand {

/** Latencies of the three basic NAND operations. */
struct NandTiming
{
    sim::SimDuration readLatency = sim::microseconds(60);
    sim::SimDuration programLatency = sim::microseconds(1000);
    sim::SimDuration eraseLatency = sim::microseconds(3500);
    /** Faster program latency when a page is used in SLC mode. */
    sim::SimDuration slcProgramLatency = sim::microseconds(300);
};

/** Physical organization of a NAND array. */
struct NandGeometry
{
    uint32_t channels = 4;
    uint32_t chipsPerChannel = 4;
    uint32_t diesPerChip = 1;
    uint32_t planesPerDie = 2;
    uint32_t blocksPerPlane = 64;
    uint32_t pagesPerBlock = 64;

    uint32_t chips() const { return channels * chipsPerChannel; }
    uint32_t planesPerChip() const { return diesPerChip * planesPerDie; }
    uint32_t totalPlanes() const { return chips() * planesPerChip(); }
    uint64_t totalBlocks() const
    {
        return static_cast<uint64_t>(totalPlanes()) * blocksPerPlane;
    }
    uint64_t totalPages() const
    {
        return totalBlocks() * pagesPerBlock;
    }

    /** True when every dimension is nonzero. */
    bool valid() const;
};

/** Physical page address decomposed along the geometry. */
struct PhysicalPageAddress
{
    uint32_t plane = 0; ///< Global plane index in [0, totalPlanes).
    uint32_t block = 0; ///< Block index within the plane.
    uint32_t page = 0;  ///< Page index within the block.
};

struct PpnTag
{
};
struct PbnTag
{
};

/**
 * Flat physical page number over the whole array. A strong type (see
 * core/typed_ids.h): constructing one from a raw index, or extracting
 * the index for address math, is explicit at the call site, so a
 * logical page number can never be passed where a physical one
 * belongs.
 */
using Ppn = core::TypedId<PpnTag>;

/** Flat physical block number over the whole array (strong type). */
using Pbn = core::TypedId<PbnTag>;

/** Sentinel for "no physical page". */
inline constexpr Ppn kInvalidPpn{~0ULL};

/** Sentinel for "no physical block". */
inline constexpr Pbn kInvalidPbn{~0ULL};

/** Encode a PhysicalPageAddress into a flat Ppn. */
Ppn encodePpn(const NandGeometry &geo, const PhysicalPageAddress &a);

/** Decode a flat Ppn into plane/block/page coordinates. */
PhysicalPageAddress decodePpn(const NandGeometry &geo, Ppn ppn);

/** Flat block number of a Ppn. */
Pbn blockOfPpn(const NandGeometry &geo, Ppn ppn);

} // namespace ssdcheck::nand

