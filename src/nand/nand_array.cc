#include "nand/nand_array.h"

#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::nand {

NandArray::NandArray(const NandGeometry &geo, const NandTiming &timing)
    : geo_(geo), timing_(timing)
{
    assert(geo.valid());
    ppb_ = geo.pagesPerBlock;
    totalPlanes_ = geo.totalPlanes();
    totalBlocks_ = geo.totalBlocks();
    totalPages_ = geo.totalPages();
    writePtr_.assign(totalBlocks_, 0);
    eraseCount_.assign(totalBlocks_, 0);
    readCount_.assign(totalBlocks_, 0);
    payloads_.assign(totalPages_, kErasedPayload);
}

sim::SimDuration
NandArray::batchProgramTime(uint64_t pages, bool slc) const
{
    if (pages == 0)
        return 0;
    const uint64_t waves = (pages + totalPlanes_ - 1) / totalPlanes_;
    const sim::SimDuration per =
        slc ? timing_.slcProgramLatency : timing_.programLatency;
    return static_cast<sim::SimDuration>(waves) * per;
}

sim::SimDuration
NandArray::batchReadTime(uint64_t pages) const
{
    if (pages == 0)
        return 0;
    const uint64_t waves = (pages + totalPlanes_ - 1) / totalPlanes_;
    return static_cast<sim::SimDuration>(waves) * timing_.readLatency;
}

void
NandArray::saveState(recovery::StateWriter &w) const
{
    // Flat structure-of-arrays layout (container format v3): block
    // state arrays in sequence, then the payload array.
    w.u64(totalBlocks_);
    for (uint32_t v : writePtr_)
        w.u32(v);
    for (uint32_t v : eraseCount_)
        w.u32(v);
    for (uint32_t v : readCount_)
        w.u32(v);
    w.u64(payloads_.size());
    for (uint64_t p : payloads_)
        w.u64(p);
}

bool
NandArray::loadState(recovery::StateReader &r)
{
    const uint64_t nBlocks = r.u64();
    if (r.ok() && nBlocks != totalBlocks_) {
        r.fail("NAND block count does not match this geometry");
        return false;
    }
    for (auto &v : writePtr_) {
        v = r.u32();
        if (r.ok() && v > ppb_) {
            r.fail("NAND block write pointer past end of block");
            return false;
        }
    }
    for (auto &v : eraseCount_)
        v = r.u32();
    for (auto &v : readCount_)
        v = r.u32();
    const uint64_t nPages = r.u64();
    if (r.ok() && nPages != payloads_.size()) {
        r.fail("NAND page count does not match this geometry");
        return false;
    }
    for (auto &p : payloads_)
        p = r.u64();
    return r.ok();
}

} // namespace ssdcheck::nand
