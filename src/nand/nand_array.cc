#include "nand/nand_array.h"

#include <cassert>

#include "recovery/state_io.h"

namespace ssdcheck::nand {

NandArray::NandArray(const NandGeometry &geo, const NandTiming &timing)
    : geo_(geo), timing_(timing)
{
    assert(geo.valid());
    chips_.reserve(geo.chips());
    for (uint32_t c = 0; c < geo.chips(); ++c)
        chips_.emplace_back(geo, timing);
}

NandArray::ChipCoord
NandArray::chipOfPlane(uint32_t plane) const
{
    assert(plane < geo_.totalPlanes());
    return ChipCoord{plane / geo_.planesPerChip(),
                     plane % geo_.planesPerChip()};
}

sim::SimDuration
NandArray::programPage(Ppn ppn, uint64_t payload)
{
    const PhysicalPageAddress a = decodePpn(geo_, ppn);
    const ChipCoord cc = chipOfPlane(a.plane);
    return chips_[cc.chip].programPage(cc.localPlane, a.block, a.page,
                                       payload);
}

sim::SimDuration
NandArray::readPage(Ppn ppn, uint64_t *payloadOut)
{
    const PhysicalPageAddress a = decodePpn(geo_, ppn);
    const ChipCoord cc = chipOfPlane(a.plane);
    return chips_[cc.chip].readPage(cc.localPlane, a.block, a.page,
                                    payloadOut);
}

sim::SimDuration
NandArray::eraseBlock(Pbn pbn)
{
    assert(pbn < totalBlocks());
    const uint32_t plane = static_cast<uint32_t>(pbn / geo_.blocksPerPlane);
    const uint32_t block = static_cast<uint32_t>(pbn % geo_.blocksPerPlane);
    const ChipCoord cc = chipOfPlane(plane);
    return chips_[cc.chip].eraseBlock(cc.localPlane, block);
}

uint32_t
NandArray::blockWritePointer(Pbn pbn) const
{
    assert(pbn < totalBlocks());
    const uint32_t plane = static_cast<uint32_t>(pbn / geo_.blocksPerPlane);
    const uint32_t block = static_cast<uint32_t>(pbn % geo_.blocksPerPlane);
    const ChipCoord cc = chipOfPlane(plane);
    return chips_[cc.chip].writePointer(cc.localPlane, block);
}

uint32_t
NandArray::blockEraseCount(Pbn pbn) const
{
    assert(pbn < totalBlocks());
    const uint32_t plane = static_cast<uint32_t>(pbn / geo_.blocksPerPlane);
    const uint32_t block = static_cast<uint32_t>(pbn % geo_.blocksPerPlane);
    const ChipCoord cc = chipOfPlane(plane);
    return chips_[cc.chip].eraseCount(cc.localPlane, block);
}

uint32_t
NandArray::blockReadCount(Pbn pbn) const
{
    assert(pbn < totalBlocks());
    const uint32_t plane = static_cast<uint32_t>(pbn / geo_.blocksPerPlane);
    const uint32_t block = static_cast<uint32_t>(pbn % geo_.blocksPerPlane);
    const ChipCoord cc = chipOfPlane(plane);
    return chips_[cc.chip].readCount(cc.localPlane, block);
}

bool
NandArray::isProgrammed(Ppn ppn) const
{
    const PhysicalPageAddress a = decodePpn(geo_, ppn);
    const ChipCoord cc = chipOfPlane(a.plane);
    return chips_[cc.chip].isProgrammed(cc.localPlane, a.block, a.page);
}

sim::SimDuration
NandArray::batchProgramTime(uint64_t pages, bool slc) const
{
    if (pages == 0)
        return 0;
    const uint64_t waves =
        (pages + geo_.totalPlanes() - 1) / geo_.totalPlanes();
    const sim::SimDuration per =
        slc ? timing_.slcProgramLatency : timing_.programLatency;
    return static_cast<sim::SimDuration>(waves) * per;
}

sim::SimDuration
NandArray::batchReadTime(uint64_t pages) const
{
    if (pages == 0)
        return 0;
    const uint64_t waves =
        (pages + geo_.totalPlanes() - 1) / geo_.totalPlanes();
    return static_cast<sim::SimDuration>(waves) * timing_.readLatency;
}

void
NandArray::saveState(recovery::StateWriter &w) const
{
    w.u64(chips_.size());
    for (const NandChip &c : chips_)
        c.saveState(w);
}

bool
NandArray::loadState(recovery::StateReader &r)
{
    const uint64_t n = r.u64();
    if (r.ok() && n != chips_.size()) {
        r.fail("NAND chip count does not match this geometry");
        return false;
    }
    for (NandChip &c : chips_)
        if (!c.loadState(r))
            return false;
    return r.ok();
}

} // namespace ssdcheck::nand
