/**
 * @file
 * Logical volume managers (paper §IV-A, Fig. 9).
 *
 * A LogicalVolume is a remapping view onto a share of a parent block
 * device (the role of a Linux device-mapper target). Two layouts:
 *
 *  - Linear-LVM: each logical volume is a contiguous LBA range — the
 *    conventional scheme, oblivious to internal volumes, so tenants
 *    contend inside every internal volume.
 *  - VA-LVM: the logical-volume id is spliced into the LBA at the
 *    diagnosed internal-volume bit positions, pinning each logical
 *    volume to its own internal volume: no cross-tenant interference.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/block_device.h"

namespace ssdcheck::usecases {

/** A remapped view of a slice of a parent device. */
class LogicalVolume : public blockdev::BlockDevice
{
  public:
    using RemapFn = std::function<uint64_t(uint64_t)>;

    /**
     * @param parent the physical device (not owned).
     * @param capacitySectors logical capacity exposed.
     * @param remap logical sector -> physical sector (the device-
     *        mapper "map" function).
     */
    LogicalVolume(blockdev::BlockDevice &parent, uint64_t capacitySectors,
                  RemapFn remap, std::string name);

    blockdev::IoResult submit(const blockdev::IoRequest &req,
                              sim::SimTime now) override;
    uint64_t capacitySectors() const override { return capacity_; }
    void purge(sim::SimTime now) override;
    std::string name() const override { return name_; }

  private:
    blockdev::BlockDevice &parent_;
    uint64_t capacity_;
    RemapFn remap_;
    std::string name_;
};

/**
 * Conventional linear split of @p parent into @p count contiguous
 * logical volumes (Fig. 9a).
 */
std::vector<std::unique_ptr<LogicalVolume>>
makeLinearVolumes(blockdev::BlockDevice &parent, uint32_t count);

/**
 * Volume-aware split of @p parent along the diagnosed internal-volume
 * bit positions (Fig. 9b). Produces 2^bits logical volumes; logical
 * volume v only ever addresses internal volume v.
 * @param volumeBits sorted sector-LBA bit indices from SSDcheck.
 */
std::vector<std::unique_ptr<LogicalVolume>>
makeVolumeAwareVolumes(blockdev::BlockDevice &parent,
                       const std::vector<uint32_t> &volumeBits);

/**
 * The VA-LVM address transform (exposed for tests): splice the bits
 * of @p volumeId into @p logicalLba at the @p volumeBits positions
 * (ascending), shifting higher bits up.
 */
uint64_t spliceVolumeBits(uint64_t logicalLba, uint32_t volumeId,
                          const std::vector<uint32_t> &volumeBits);

} // namespace ssdcheck::usecases

