#include "usecases/runner.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace ssdcheck::usecases {

double
StreamResult::throughputMbps() const
{
    const sim::SimDuration span = endTime - startTime;
    if (span <= 0)
        return 0.0;
    return static_cast<double>(bytes) / 1e6 / sim::toSeconds(span);
}

namespace {

void
record(StreamResult &out, const blockdev::IoRequest &req,
       sim::SimTime issue, sim::SimTime baseline,
       const blockdev::IoResult &res)
{
    const sim::SimTime complete = res.completeTime;
    const sim::SimDuration lat = complete - baseline;
    out.latency.add(lat);
    if (req.isRead())
        out.readLatency.add(lat);
    else if (req.isWrite())
        out.writeLatency.add(lat);
    // Timeline windows are relative to the stream's own start so runs
    // launched late in virtual time don't carry empty leading windows.
    out.timeline.add(complete - out.startTime, req.bytes());
    ++out.requests;
    out.bytes += req.bytes();
    (void)issue;
}

} // namespace

StreamResult
runClosedLoop(blockdev::BlockDevice &dev, const workload::Trace &trace,
              uint32_t queueDepth, sim::SimDuration thinktime,
              sim::SimTime start)
{
    assert(queueDepth > 0);
    StreamResult out;
    out.name = trace.name();
    out.startTime = start;

    std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                        std::greater<>> inflight;
    sim::SimTime t = start;
    sim::SimTime lastComplete = start;
    for (const auto &rec : trace.records()) {
        if (inflight.size() >= queueDepth) {
            t = std::max(t, inflight.top());
            inflight.pop();
        }
        const auto res = dev.submit(rec.req, t);
        record(out, rec.req, t, t, res);
        inflight.push(res.completeTime + thinktime);
        lastComplete = std::max(lastComplete, res.completeTime);
    }
    out.endTime = lastComplete;
    return out;
}

std::vector<StreamResult>
runTenantsClosedLoop(const std::vector<TenantSpec> &tenants,
                     sim::SimTime start)
{
    struct State
    {
        size_t next = 0;           ///< Next trace index.
        sim::SimTime ready;    ///< Earliest next submission.
    };
    std::vector<StreamResult> out(tenants.size());
    std::vector<State> st(tenants.size());
    for (size_t i = 0; i < tenants.size(); ++i) {
        out[i].name = tenants[i].name.empty() ? tenants[i].trace->name()
                                              : tenants[i].name;
        out[i].startTime = start;
        out[i].endTime = start;
        st[i].ready = start;
    }

    auto allForegroundDone = [&]() {
        for (size_t i = 0; i < tenants.size(); ++i) {
            if (!tenants[i].loop && st[i].next < tenants[i].trace->size())
                return false;
        }
        return true;
    };

    while (!allForegroundDone()) {
        // Pick the runnable tenant with the earliest next submission.
        size_t best = tenants.size();
        for (size_t i = 0; i < tenants.size(); ++i) {
            if (!tenants[i].loop && st[i].next >= tenants[i].trace->size())
                continue;
            if (best == tenants.size() || st[i].ready < st[best].ready)
                best = i;
        }
        assert(best < tenants.size());

        State &s = st[best];
        const auto &rec =
            (*tenants[best].trace)[s.next % tenants[best].trace->size()];
        const auto res = tenants[best].dev->submit(rec.req, s.ready);
        record(out[best], rec.req, s.ready, s.ready, res);
        out[best].endTime = std::max(out[best].endTime, res.completeTime);
        s.ready = res.completeTime + tenants[best].thinktime;
        ++s.next;
    }
    return out;
}

ScheduledRunResult
runScheduled(blockdev::BlockDevice &dev, Scheduler &sched,
             const workload::Trace &trace, sim::SimTime start,
             core::SsdCheck *check, uint32_t dispatchWidth,
             core::HealthSupervisor *supervisor)
{
    assert(dispatchWidth > 0);
    assert(supervisor == nullptr || check != nullptr);
    ScheduledRunResult out;
    out.schedulerName = sched.name();
    out.stream.name = trace.name();
    out.stream.startTime = start;

    const auto &records = trace.records();
    size_t next = 0;
    uint64_t seq = 0;
    sim::SimTime t = start;
    // Completion times of requests currently at the device.
    std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                        std::greater<>> inflight;

    while (next < records.size() || !sched.empty()) {
        if (sched.empty()) {
            // Idle until the next arrival (in-flight work continues).
            t = std::max(t, start + records[next].arrival);
        }
        while (next < records.size() &&
               start + records[next].arrival <= t) {
            QueuedRequest qr;
            qr.req = records[next].req;
            qr.arrival = start + records[next].arrival;
            qr.seq = seq++;
            sched.enqueue(qr);
            ++next;
        }
        out.maxQueueDepth = std::max<uint64_t>(out.maxQueueDepth,
                                               sched.depth());
        if (sched.empty())
            continue;

        // Wait for a free dispatch slot.
        if (inflight.size() >= dispatchWidth) {
            t = std::max(t, inflight.top());
            inflight.pop();
            continue; // new arrivals may have landed meanwhile
        }

        if (supervisor != nullptr)
            t = supervisor->pump(t);
        const QueuedRequest qr = sched.dequeue(t);
        core::Prediction pred;
        if (check != nullptr) {
            pred = check->predict(qr.req, t);
            check->onSubmit(qr.req, t);
        }
        const auto res = dev.submit(qr.req, t);
        inflight.push(res.completeTime);
        if (check != nullptr) {
            const bool actualHl =
                check->onComplete(qr.req, pred, t, res.completeTime,
                                  res.status, res.attempts);
            if (supervisor != nullptr)
                supervisor->onCompletion(qr.req, actualHl, res);
        }
        // Latency includes queueing: completion minus arrival.
        record(out.stream, qr.req, t, qr.arrival, res);
        out.stream.endTime = std::max(out.stream.endTime, res.completeTime);
        if (dispatchWidth == 1) {
            // Classic QD1 dispatch: next decision at completion.
            t = res.completeTime;
            inflight.pop();
        }
    }
    return out;
}

} // namespace ssdcheck::usecases
