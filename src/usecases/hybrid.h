/**
 * @file
 * Hybrid (SSD + NVM) write tiering (paper §IV-B "Hybrid PAS").
 *
 * Two policies over the same two-device stack:
 *
 *  - Baseline: every write goes to the NVM until it fills; a
 *    background thread drains it to the SSD. Once full, backpressure
 *    exposes every write to the irregular SSD (Fig. 15a cliff).
 *  - Hybrid PAS ("selective delivery"): SSDcheck predicts each write;
 *    HL-predicted writes go to the NVM, NL writes go to the NVM only
 *    with probability W (the buffer weight) and otherwise straight to
 *    the SSD — keeping NVM pressure low so it is always available to
 *    absorb the requests that would actually stall.
 *
 * Reads are served from the NVM when it holds the newest copy.
 * The tier presents itself as a BlockDevice so every runner works on
 * it unchanged; the background drain is folded into virtual time
 * before each foreground submission.
 */
#pragma once

#include <cstdint>
#include <string>

#include "blockdev/block_device.h"
#include "core/ssdcheck.h"
#include "nvm/nvm_device.h"
#include "sim/rng.h"
#include "ssd/ssd_device.h"

namespace ssdcheck::usecases {

/** Tiering policy. */
enum class HybridMode { Baseline, HybridPas };

/** Tier tunables. */
struct HybridConfig
{
    /** Buffer weight W: fraction of NL writes sent to the NVM. */
    double bufferWeight = 0.8;
    /** Background drain cadence. */
    sim::SimDuration drainPeriod = sim::milliseconds(1);
    /** Pages written back to the SSD per drain tick. */
    uint32_t drainBatchPages = 8;
    /**
     * Drain only while occupancy exceeds this fraction of capacity
     * (watermark hysteresis): a lightly pressured NVM keeps hot pages
     * resident, coalescing their rewrites instead of cycling them
     * through the SSD.
     */
    double drainThresholdFraction = 0.5;
    uint64_t seed = 17;
};

/** The SSD+NVM stack under one block-device interface. */
class HybridTier : public blockdev::BlockDevice
{
  public:
    /**
     * @param check required for HybridPas (used for predictions);
     *        may be null for Baseline.
     */
    HybridTier(ssd::SsdDevice &ssd, nvm::NvmDevice &nvm,
               core::SsdCheck *check, HybridMode mode,
               HybridConfig cfg = {});

    blockdev::IoResult submit(const blockdev::IoRequest &req,
                              sim::SimTime now) override;
    uint64_t capacitySectors() const override
    {
        return ssd_.capacitySectors();
    }
    void purge(sim::SimTime now) override;
    std::string name() const override;

    // -- metrics ---------------------------------------------------------
    /** Pages absorbed by the NVM (Fig. 15c pressure metric). */
    uint64_t nvmWritePages() const { return nvm_.totalWritesAbsorbed(); }

    /** Foreground writes that went straight to the SSD. */
    uint64_t ssdDirectWrites() const { return ssdDirectWrites_; }

    /** Foreground writes that hit a full NVM (backpressure events). */
    uint64_t backpressureWrites() const { return backpressureWrites_; }

    const nvm::NvmDevice &nvm() const { return nvm_; }

  private:
    /** Run background drain ticks scheduled before @p now. */
    void drainUpTo(sim::SimTime now);

    /** Submit a write to the SSD, keeping the model in sync. */
    blockdev::IoResult ssdWrite(const blockdev::IoRequest &req,
                                sim::SimTime now);

    ssd::SsdDevice &ssd_;
    nvm::NvmDevice &nvm_;
    core::SsdCheck *check_;
    HybridMode mode_;
    HybridConfig cfg_;
    sim::Rng rng_;
    sim::SimTime nextDrain_;
    uint64_t ssdDirectWrites_ = 0;
    uint64_t backpressureWrites_ = 0;
};

} // namespace ssdcheck::usecases

