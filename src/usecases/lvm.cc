#include "usecases/lvm.h"

#include <algorithm>
#include <cassert>

namespace ssdcheck::usecases {

LogicalVolume::LogicalVolume(blockdev::BlockDevice &parent,
                             uint64_t capacitySectors, RemapFn remap,
                             std::string name)
    : parent_(parent), capacity_(capacitySectors), remap_(std::move(remap)),
      name_(std::move(name))
{
}

blockdev::IoResult
LogicalVolume::submit(const blockdev::IoRequest &req, sim::SimTime now)
{
    assert(req.lba + req.sectors <= capacity_);
    blockdev::IoRequest phys = req;
    phys.lba = remap_(req.lba);
    return parent_.submit(phys, now);
}

void
LogicalVolume::purge(sim::SimTime now)
{
    // A logical volume cannot TRIM just its share through this simple
    // mapper; purging is a whole-device operation handled by the
    // experiment setup.
    (void)now;
}

std::vector<std::unique_ptr<LogicalVolume>>
makeLinearVolumes(blockdev::BlockDevice &parent, uint32_t count)
{
    assert(count > 0);
    const uint64_t slice = parent.capacitySectors() / count;
    std::vector<std::unique_ptr<LogicalVolume>> out;
    for (uint32_t i = 0; i < count; ++i) {
        const uint64_t base = slice * i;
        out.push_back(std::make_unique<LogicalVolume>(
            parent, slice, [base](uint64_t lba) { return base + lba; },
            "linear-lv" + std::to_string(i)));
    }
    return out;
}

uint64_t
spliceVolumeBits(uint64_t logicalLba, uint32_t volumeId,
                 const std::vector<uint32_t> &volumeBits)
{
    assert(std::is_sorted(volumeBits.begin(), volumeBits.end()));
    uint64_t lba = logicalLba;
    // Insert ascending so previously inserted (lower) bits shift the
    // rest consistently.
    for (size_t i = 0; i < volumeBits.size(); ++i) {
        const uint32_t pos = volumeBits[i];
        const uint64_t low = lba & ((1ULL << pos) - 1);
        const uint64_t high = lba >> pos;
        const uint64_t bit = (volumeId >> i) & 1u;
        lba = (high << (pos + 1)) | (bit << pos) | low;
    }
    return lba;
}

std::vector<std::unique_ptr<LogicalVolume>>
makeVolumeAwareVolumes(blockdev::BlockDevice &parent,
                       const std::vector<uint32_t> &volumeBits)
{
    const uint32_t count = 1u << volumeBits.size();
    const uint64_t slice = parent.capacitySectors() / count;
    auto bits = volumeBits;
    std::sort(bits.begin(), bits.end());
    std::vector<std::unique_ptr<LogicalVolume>> out;
    for (uint32_t v = 0; v < count; ++v) {
        out.push_back(std::make_unique<LogicalVolume>(
            parent, slice,
            [bits, v](uint64_t lba) { return spliceVolumeBits(lba, v, bits); },
            "va-lv" + std::to_string(v)));
    }
    return out;
}

} // namespace ssdcheck::usecases
