/**
 * @file
 * Prediction-aware schedulers (paper §IV-B, Fig. 10).
 *
 * SSD-only PAS: when the queue mixes reads and writes, ask SSDcheck
 * whether the oldest read would be slow in its original position
 * (i.e. after the writes queued ahead of it — in particular whether
 * one of those writes will trigger a buffer flush). If so, dispatch
 * the read first, hiding the flush behind it. Otherwise dispatch in
 * arrival order.
 *
 * Ideal PAS: the same policy with a perfect oracle (ground truth from
 * the simulated device) — the paper's "ideal" bars in Fig. 14 that
 * bound the cost of misprediction.
 */
#pragma once

#include <deque>
#include <string>

#include "core/ssdcheck.h"
#include "ssd/ssd_device.h"
#include "usecases/scheduler.h"

namespace ssdcheck::usecases {

/** SSD-only PAS (paper §IV-B). */
class PasScheduler : public Scheduler
{
  public:
    /** @param check the SSDcheck instance driving this device. */
    explicit PasScheduler(const core::SsdCheck &check);

    void enqueue(const QueuedRequest &qr) override;
    bool empty() const override { return q_.empty(); }
    size_t depth() const override { return q_.size(); }
    QueuedRequest dequeue(sim::SimTime now) override;
    std::string name() const override { return "pas"; }

  private:
    /** Would the oldest read be HL if issued in original order? */
    bool oldestReadWouldBeSlow(sim::SimTime now) const;

    const core::SsdCheck &check_;
    std::deque<QueuedRequest> q_;
};

/** PAS with a perfect (device ground truth) predictor. */
class IdealPasScheduler : public Scheduler
{
  public:
    explicit IdealPasScheduler(const ssd::SsdDevice &dev);

    void enqueue(const QueuedRequest &qr) override;
    bool empty() const override { return q_.empty(); }
    size_t depth() const override { return q_.size(); }
    QueuedRequest dequeue(sim::SimTime now) override;
    std::string name() const override { return "ideal"; }

  private:
    bool oldestReadWouldBeSlow(sim::SimTime now) const;

    const ssd::SsdDevice &dev_;
    std::deque<QueuedRequest> q_;
};

} // namespace ssdcheck::usecases

