/**
 * @file
 * Experiment runners: the host-side replay engines every evaluation
 * uses.
 *
 *  - runClosedLoop: one stream at a fixed queue depth with optional
 *    thinktime (fio-style); used by the motivation and Fig. 3 benches.
 *  - runTenantsClosedLoop: several QD1 streams interleaved in global
 *    time order on (views of) one device; the multi-tenant VA-LVM
 *    experiments (Fig. 12).
 *  - runScheduled: open-loop arrival-timed replay through a Scheduler
 *    with QD1 dispatch; the PAS experiments (Figs. 13-14). When an
 *    SsdCheck instance is supplied it is kept in sync (onSubmit /
 *    onComplete) so prediction-aware schedulers stay calibrated.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blockdev/block_device.h"
#include "core/health_supervisor.h"
#include "core/ssdcheck.h"
#include "stats/latency_recorder.h"
#include "stats/timeline.h"
#include "usecases/scheduler.h"
#include "workload/trace.h"

namespace ssdcheck::usecases {

/** Results of one replayed stream. */
struct StreamResult
{
    std::string name;
    stats::LatencyRecorder latency;      ///< All requests.
    stats::LatencyRecorder readLatency;  ///< Reads only.
    stats::LatencyRecorder writeLatency; ///< Writes only.
    stats::Timeline timeline{sim::milliseconds(100)};
    sim::SimTime startTime;
    sim::SimTime endTime;
    uint64_t requests = 0;
    uint64_t bytes = 0;
    // Error accounting lives on the resilient path / registry
    // (ResilienceCounters, obs::Registry) — the replay engines no
    // longer keep a second tally.

    /** Mean throughput over the stream's lifetime in MB/s. */
    double throughputMbps() const;
};

/** Closed-loop replay of one trace at a queue depth. */
StreamResult runClosedLoop(blockdev::BlockDevice &dev,
                           const workload::Trace &trace, uint32_t queueDepth,
                           sim::SimDuration thinktime, sim::SimTime start);

/** One tenant of a multi-tenant run. */
struct TenantSpec
{
    const workload::Trace *trace = nullptr;
    blockdev::BlockDevice *dev = nullptr; ///< Usually a LogicalVolume.
    sim::SimDuration thinktime = 0;
    std::string name;
    /**
     * Cycle the trace until every non-looping tenant finishes —
     * keeps background interference running for the whole measurement
     * (the multi-tenant experiments need sustained colocation).
     */
    bool loop = false;
};

/**
 * Interleave several QD1 tenants in global time order. Each
 * non-looping tenant stops after its trace is exhausted; the run ends
 * when all of those do (at least one tenant must not loop).
 */
std::vector<StreamResult> runTenantsClosedLoop(
    const std::vector<TenantSpec> &tenants, sim::SimTime start);

/** Results of one open-loop scheduled run. */
struct ScheduledRunResult
{
    std::string schedulerName;
    StreamResult stream;
    uint64_t maxQueueDepth = 0;

    /** Latency here is completion - arrival (includes queueing). */
};

/**
 * Open-loop replay: requests arrive per trace arrival times, wait in
 * @p sched, and dispatch as device slots free up.
 * @param check optional SSDcheck kept in sync with the issued stream.
 * @param dispatchWidth requests kept in flight at the device (the
 *        dispatcher's queue depth; 1 reproduces the paper setup).
 * @param supervisor optional health supervisor (requires @p check):
 *        pumped for probe I/O before each dispatch and fed every
 *        completion.
 */
ScheduledRunResult runScheduled(blockdev::BlockDevice &dev, Scheduler &sched,
                                const workload::Trace &trace,
                                sim::SimTime start,
                                core::SsdCheck *check = nullptr,
                                uint32_t dispatchWidth = 1,
                                core::HealthSupervisor *supervisor = nullptr);

} // namespace ssdcheck::usecases

