#include "usecases/hybrid.h"

#include <algorithm>
#include <cassert>

namespace ssdcheck::usecases {

HybridTier::HybridTier(ssd::SsdDevice &ssd, nvm::NvmDevice &nvm,
                       core::SsdCheck *check, HybridMode mode,
                       HybridConfig cfg)
    : ssd_(ssd), nvm_(nvm), check_(check), mode_(mode), cfg_(cfg),
      rng_(cfg.seed), nextDrain_(cfg.drainPeriod)
{
    assert(mode != HybridMode::HybridPas || check != nullptr);
    assert(cfg_.bufferWeight >= 0.0 && cfg_.bufferWeight <= 1.0);
    assert(cfg_.drainBatchPages > 0);
}

std::string
HybridTier::name() const
{
    return mode_ == HybridMode::Baseline ? "baseline(nvm-first)"
                                         : "hybrid-pas";
}

blockdev::IoResult
HybridTier::ssdWrite(const blockdev::IoRequest &req, sim::SimTime now)
{
    core::Prediction pred;
    if (check_ != nullptr) {
        pred = check_->predict(req, now);
        check_->onSubmit(req, now);
    }
    const auto res = ssd_.submit(req, now);
    if (check_ != nullptr)
        check_->onComplete(req, pred, now, res.completeTime);
    return res;
}

void
HybridTier::drainUpTo(sim::SimTime now)
{
    const auto threshold = static_cast<uint64_t>(
        cfg_.drainThresholdFraction *
        static_cast<double>(nvm_.config().capacityPages));
    while (nextDrain_ <= now) {
        if (nvm_.dirtyPages() <= threshold) {
            nextDrain_ += cfg_.drainPeriod;
            continue;
        }
        const auto pages = nvm_.takeDirty(cfg_.drainBatchPages);
        sim::SimTime batchDone = nextDrain_;
        for (const uint64_t page : pages) {
            const auto res = ssdWrite(blockdev::makeWrite4k(page),
                                      nextDrain_);
            batchDone = std::max(batchDone, res.completeTime);
        }
        // The background thread is closed-loop: it waits for its
        // batch to complete before sleeping again, so it can never
        // build an unbounded backlog inside the SSD.
        nextDrain_ = std::max(nextDrain_ + cfg_.drainPeriod, batchDone);
    }
}

blockdev::IoResult
HybridTier::submit(const blockdev::IoRequest &req, sim::SimTime now)
{
    drainUpTo(now);

    if (req.isRead()) {
        // Serve from the NVM when it holds the newest copy.
        if (nvm_.holds(req.firstPage()))
            return nvm_.submit(req, now);
        // Keep the prediction model fed with the reads it does see.
        core::Prediction pred;
        if (check_ != nullptr) {
            pred = check_->predict(req, now);
            check_->onSubmit(req, now);
        }
        const auto res = ssd_.submit(req, now);
        if (check_ != nullptr)
            check_->onComplete(req, pred, now, res.completeTime);
        return res;
    }
    if (req.type == blockdev::IoType::Trim)
        return ssd_.submit(req, now);

    // Write routing.
    bool toNvm;
    if (mode_ == HybridMode::Baseline) {
        toNvm = !nvm_.full();
    } else {
        const core::Prediction pred = check_->predict(req, now);
        if (pred.hl)
            toNvm = !nvm_.full();
        else
            toNvm = !nvm_.full() && rng_.bernoulli(cfg_.bufferWeight);
    }

    if (toNvm)
        return nvm_.submit(req, now);
    if (nvm_.full())
        ++backpressureWrites_;
    ++ssdDirectWrites_;
    // The SSD now holds the newest copy: stale dirty NVM copies must
    // never be drained over it.
    for (uint32_t p = 0; p < req.pages(); ++p)
        nvm_.invalidate(req.firstPage() + p);
    return ssdWrite(req, now);
}

void
HybridTier::purge(sim::SimTime now)
{
    nvm_.purge(now);
    ssd_.purge(now);
}

} // namespace ssdcheck::usecases
