/**
 * @file
 * I/O schedulers (paper §IV-B / §V-D baselines).
 *
 * The queue discipline decides which pending request dispatches next
 * when the device frees up. Baselines mirror the Linux schedulers the
 * paper compares against: noop (FIFO), deadline (expiring reads jump
 * writes) and a simplified cfq (read/write service with a read-favored
 * quantum). The prediction-aware schedulers live in usecases/pas.h.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "blockdev/request.h"
#include "sim/sim_time.h"

namespace ssdcheck::usecases {

/** One request waiting in a scheduler queue. */
struct QueuedRequest
{
    blockdev::IoRequest req;
    sim::SimTime arrival;
    uint64_t seq = 0; ///< Submission order (FIFO tie-break).
    /**
     * Ordering barrier (paper §IV-B: "when the strict order is
     * necessary (e.g., barrier), PAS enforces the request order"):
     * no request may be reordered across a barrier request.
     */
    bool barrier = false;
};

/** Queue discipline interface. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Add a request to the queue. */
    virtual void enqueue(const QueuedRequest &qr) = 0;

    /** True when nothing is pending. */
    virtual bool empty() const = 0;

    /** Pending request count. */
    virtual size_t depth() const = 0;

    /** Remove and return the request to dispatch at time @p now. */
    virtual QueuedRequest dequeue(sim::SimTime now) = 0;

    /** Scheduler name for reports. */
    virtual std::string name() const = 0;
};

/** FIFO (the kernel's noop). */
class NoopScheduler : public Scheduler
{
  public:
    void enqueue(const QueuedRequest &qr) override;
    bool empty() const override { return q_.empty(); }
    size_t depth() const override { return q_.size(); }
    QueuedRequest dequeue(sim::SimTime now) override;
    std::string name() const override { return "noop"; }

  private:
    std::deque<QueuedRequest> q_;
};

/**
 * Deadline-style: reads dispatch before writes, but a write whose
 * wait exceeded its (longer) deadline goes first — starvation-free.
 */
class DeadlineScheduler : public Scheduler
{
  public:
    DeadlineScheduler(sim::SimDuration readDeadline = sim::microseconds(500),
                      sim::SimDuration writeDeadline = sim::milliseconds(5));

    void enqueue(const QueuedRequest &qr) override;
    bool empty() const override { return reads_.empty() && writes_.empty(); }
    size_t depth() const override { return reads_.size() + writes_.size(); }
    QueuedRequest dequeue(sim::SimTime now) override;
    std::string name() const override { return "deadline"; }

  private:
    sim::SimDuration readDeadline_;
    sim::SimDuration writeDeadline_;
    std::deque<QueuedRequest> reads_;
    std::deque<QueuedRequest> writes_;
};

/**
 * Simplified cfq: alternates read and write service slices with a
 * read-favored quantum (reads get readQuantum dispatches per
 * writeQuantum write dispatches).
 */
class CfqScheduler : public Scheduler
{
  public:
    CfqScheduler(uint32_t readQuantum = 4, uint32_t writeQuantum = 2);

    void enqueue(const QueuedRequest &qr) override;
    bool empty() const override { return reads_.empty() && writes_.empty(); }
    size_t depth() const override { return reads_.size() + writes_.size(); }
    QueuedRequest dequeue(sim::SimTime now) override;
    std::string name() const override { return "cfq"; }

  private:
    uint32_t readQuantum_;
    uint32_t writeQuantum_;
    uint32_t creditsLeft_;
    bool servingReads_ = true;
    std::deque<QueuedRequest> reads_;
    std::deque<QueuedRequest> writes_;
};

} // namespace ssdcheck::usecases

