#include "usecases/scheduler.h"

#include <cassert>

namespace ssdcheck::usecases {

void
NoopScheduler::enqueue(const QueuedRequest &qr)
{
    q_.push_back(qr);
}

QueuedRequest
NoopScheduler::dequeue(sim::SimTime now)
{
    (void)now;
    assert(!q_.empty());
    QueuedRequest qr = q_.front();
    q_.pop_front();
    return qr;
}

DeadlineScheduler::DeadlineScheduler(sim::SimDuration readDeadline,
                                     sim::SimDuration writeDeadline)
    : readDeadline_(readDeadline), writeDeadline_(writeDeadline)
{
}

void
DeadlineScheduler::enqueue(const QueuedRequest &qr)
{
    if (qr.req.isRead())
        reads_.push_back(qr);
    else
        writes_.push_back(qr);
}

QueuedRequest
DeadlineScheduler::dequeue(sim::SimTime now)
{
    assert(!empty());
    // Expired writes first (starvation avoidance), then reads, then
    // writes.
    if (!writes_.empty() &&
        now - writes_.front().arrival > writeDeadline_) {
        QueuedRequest qr = writes_.front();
        writes_.pop_front();
        return qr;
    }
    (void)readDeadline_; // reads are always favored in this variant
    if (!reads_.empty()) {
        QueuedRequest qr = reads_.front();
        reads_.pop_front();
        return qr;
    }
    QueuedRequest qr = writes_.front();
    writes_.pop_front();
    return qr;
}

CfqScheduler::CfqScheduler(uint32_t readQuantum, uint32_t writeQuantum)
    : readQuantum_(readQuantum), writeQuantum_(writeQuantum),
      creditsLeft_(readQuantum)
{
    assert(readQuantum > 0 && writeQuantum > 0);
}

void
CfqScheduler::enqueue(const QueuedRequest &qr)
{
    if (qr.req.isRead())
        reads_.push_back(qr);
    else
        writes_.push_back(qr);
}

QueuedRequest
CfqScheduler::dequeue(sim::SimTime now)
{
    (void)now;
    assert(!empty());
    auto take = [](std::deque<QueuedRequest> &q) {
        QueuedRequest qr = q.front();
        q.pop_front();
        return qr;
    };
    // Switch slices when the current class is idle or out of credits.
    if (creditsLeft_ == 0 || (servingReads_ ? reads_.empty()
                                            : writes_.empty())) {
        servingReads_ = !servingReads_;
        creditsLeft_ = servingReads_ ? readQuantum_ : writeQuantum_;
        if (servingReads_ ? reads_.empty() : writes_.empty()) {
            servingReads_ = !servingReads_;
            creditsLeft_ = servingReads_ ? readQuantum_ : writeQuantum_;
        }
    }
    --creditsLeft_;
    return servingReads_ ? take(reads_) : take(writes_);
}

} // namespace ssdcheck::usecases
