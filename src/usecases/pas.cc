#include "usecases/pas.h"

#include <cassert>

namespace ssdcheck::usecases {

namespace {

/**
 * First read in queue order within the reorder window (up to and not
 * across the first barrier), or nullptr.
 */
const QueuedRequest *
oldestRead(const std::deque<QueuedRequest> &q)
{
    for (const auto &qr : q) {
        if (qr.req.isRead())
            return &qr;
        if (qr.barrier)
            return nullptr; // cannot pull a read across a barrier
    }
    return nullptr;
}

/** True when the queue holds both reads and writes. */
bool
mixed(const std::deque<QueuedRequest> &q)
{
    bool hasRead = false, hasWrite = false;
    for (const auto &qr : q) {
        hasRead |= qr.req.isRead();
        hasWrite |= qr.req.isWrite();
        if (hasRead && hasWrite)
            return true;
    }
    return false;
}

/** Pop the first read inside the reorder window (must exist). */
QueuedRequest
takeOldestRead(std::deque<QueuedRequest> &q)
{
    for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->req.isRead()) {
            QueuedRequest qr = *it;
            q.erase(it);
            return qr;
        }
        assert(!it->barrier && "caller checked the reorder window");
    }
    assert(false && "no read in queue");
    return {};
}

} // namespace

PasScheduler::PasScheduler(const core::SsdCheck &check) : check_(check) {}

void
PasScheduler::enqueue(const QueuedRequest &qr)
{
    q_.push_back(qr);
}

bool
PasScheduler::oldestReadWouldBeSlow(sim::SimTime now) const
{
    const core::PredictionEngine *engine = check_.engine();
    if (engine == nullptr || !check_.enabled())
        return false;
    const QueuedRequest *r = oldestRead(q_);
    if (r == nullptr)
        return false;

    // Current-state prediction covers an already-busy volume and a
    // read-trigger flush on the current buffer contents.
    if (check_.predict(r->req, now).hl)
        return true;

    // "Based on the original order": account the writes queued ahead
    // of the read into the modeled buffer counter.
    const uint32_t vol = engine->volumeOf(r->req);
    uint32_t pagesAhead = 0;
    for (const auto &qr : q_) {
        if (&qr == r)
            break;
        if (qr.req.isWrite() && engine->volumeOf(qr.req) == vol)
            pagesAhead += qr.req.pages();
    }
    const core::WriteBufferModel &wb = engine->wbModel(vol);
    const uint32_t hypothetical = wb.counter() + pagesAhead;
    if (check_.features().flushAlgorithms.readTrigger)
        return hypothetical > 0; // any buffered page flushes on the read
    return hypothetical >= wb.size(); // a flush will land before the read
}

QueuedRequest
PasScheduler::dequeue(sim::SimTime now)
{
    assert(!q_.empty());
    if (!mixed(q_) || q_.front().req.isRead()) {
        QueuedRequest qr = q_.front();
        q_.pop_front();
        return qr;
    }
    if (oldestReadWouldBeSlow(now))
        return takeOldestRead(q_);
    QueuedRequest qr = q_.front();
    q_.pop_front();
    return qr;
}

IdealPasScheduler::IdealPasScheduler(const ssd::SsdDevice &dev) : dev_(dev)
{
}

void
IdealPasScheduler::enqueue(const QueuedRequest &qr)
{
    q_.push_back(qr);
}

bool
IdealPasScheduler::oldestReadWouldBeSlow(sim::SimTime now) const
{
    const QueuedRequest *r = oldestRead(q_);
    if (r == nullptr)
        return false;
    const ssd::SsdConfig &cfg = dev_.config();
    const uint32_t vol = cfg.volumeOf(r->req.lba);
    const ssd::Volume &v = dev_.volume(vol);

    if (v.nandBusyUntil() > now)
        return true; // the read would wait on an active flush/GC
    uint32_t pagesAhead = 0;
    for (const auto &qr : q_) {
        if (&qr == r)
            break;
        if (qr.req.isWrite() && cfg.volumeOf(qr.req.lba) == vol)
            pagesAhead += qr.req.pages();
    }
    const uint32_t hypothetical = v.bufferFill() + pagesAhead;
    if (cfg.readTriggerFlush)
        return hypothetical > 0;
    return hypothetical >= cfg.bufferPages();
}

QueuedRequest
IdealPasScheduler::dequeue(sim::SimTime now)
{
    assert(!q_.empty());
    if (!mixed(q_) || q_.front().req.isRead()) {
        QueuedRequest qr = q_.front();
        q_.pop_front();
        return qr;
    }
    if (oldestReadWouldBeSlow(now))
        return takeOldestRead(q_);
    QueuedRequest qr = q_.front();
    q_.pop_front();
    return qr;
}

} // namespace ssdcheck::usecases
