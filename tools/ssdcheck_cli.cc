/**
 * @file
 * ssdcheck — command-line front end to the framework (the paper's
 * "software release" artifact).
 *
 *   ssdcheck fingerprint [--device A..G|nvm | --all]
 *       Run the §III-B diagnosis snippets and print the device's
 *       internal features (Table-I style).
 *
 *   ssdcheck accuracy --device X [--workload NAME] [--scale F]
 *       Diagnose, build the runtime model, replay a workload in
 *       predict-before-issue mode and report NL/HL accuracy.
 *
 *   ssdcheck synth --workload NAME --out FILE [--scale F] [--span P]
 *       Generate a synthetic trace (Table-II equivalents) to a file.
 *
 *   ssdcheck replay --device X --trace FILE
 *       Replay a saved trace and print the latency distribution.
 *
 * Devices are the simulated presets; on a real system the same code
 * would sit behind an ioctl-capable block device.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "core/accuracy.h"
#include "core/ssdcheck.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

namespace {

/** argv parsed into --key value pairs + positionals. */
struct Args
{
    std::string command;
    std::map<std::string, std::string> options;
    bool has(const std::string &k) const { return options.count(k) > 0; }
    std::string get(const std::string &k, const std::string &dflt) const
    {
        const auto it = options.find(k);
        return it == options.end() ? dflt : it->second;
    }
};

Args
parse(int argc, char **argv)
{
    Args a;
    if (argc >= 2)
        a.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            continue;
        key = key.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            a.options[key] = argv[++i];
        } else {
            a.options[key] = "";
        }
    }
    return a;
}

/** Build a device by name ("A".."G" or "nvm"). */
std::unique_ptr<ssd::SsdDevice>
makeDevice(const std::string &name)
{
    if (name == "nvm")
        return std::make_unique<ssd::SsdDevice>(ssd::makeNvmBackedSsd());
    if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'G') {
        const auto model = static_cast<ssd::SsdModel>(name[0] - 'A');
        return std::make_unique<ssd::SsdDevice>(ssd::makePreset(model));
    }
    return nullptr;
}

workload::SniaWorkload
workloadByName(const std::string &name, bool *ok)
{
    *ok = true;
    for (const auto w : workload::allSniaWorkloads()) {
        if (toString(w) == name)
            return w;
    }
    *ok = false;
    return workload::SniaWorkload::RwMixed;
}

int
cmdFingerprint(const Args &args)
{
    std::vector<std::string> names;
    if (args.has("all")) {
        for (const auto m : ssd::allModels())
            names.push_back(ssd::toString(m));
        names.push_back("nvm");
    } else {
        names.push_back(args.get("device", "A"));
    }
    for (const auto &n : names) {
        auto dev = makeDevice(n);
        if (!dev) {
            std::fprintf(stderr, "unknown device '%s'\n", n.c_str());
            return 2;
        }
        core::DiagnosisRunner runner(*dev, core::DiagnosisConfig{});
        const core::FeatureSet fs = runner.extractFeatures();
        std::printf("%-8s %s\n", dev->name().c_str(),
                    fs.summary().c_str());
    }
    return 0;
}

int
cmdAccuracy(const Args &args)
{
    auto dev = makeDevice(args.get("device", "A"));
    if (!dev) {
        std::fprintf(stderr, "unknown device\n");
        return 2;
    }
    bool ok = true;
    const auto w = workloadByName(args.get("workload", "RW Mixed"), &ok);
    if (!ok) {
        std::fprintf(stderr, "unknown workload\n");
        return 2;
    }
    const double scale = std::stod(args.get("scale", "0.05"));

    core::DiagnosisRunner runner(*dev, core::DiagnosisConfig{});
    const core::FeatureSet fs = runner.extractFeatures();
    std::printf("features: %s\n", fs.summary().c_str());
    if (!fs.bufferModelUsable()) {
        std::printf("no usable buffer model; prediction disabled\n");
        return 0;
    }
    core::SsdCheck check(fs);
    const auto trace =
        workload::buildSniaTrace(w, dev->capacityPages(), scale);
    const auto acc = core::evaluatePredictionAccuracy(*dev, check, trace,
                                                      runner.now());
    std::printf("workload: %s (%zu requests, HL fraction %.2f%%)\n",
                trace.name().c_str(), trace.size(),
                acc.hlFraction() * 100);
    std::printf("NL accuracy: %.2f%%\nHL accuracy: %.2f%%\n",
                acc.nlAccuracy() * 100, acc.hlAccuracy() * 100);
    return 0;
}

int
cmdSynth(const Args &args)
{
    bool ok = true;
    const auto w = workloadByName(args.get("workload", "RW Mixed"), &ok);
    if (!ok) {
        std::fprintf(stderr, "unknown workload\n");
        return 2;
    }
    const std::string out = args.get("out", "");
    if (out.empty()) {
        std::fprintf(stderr, "--out FILE required\n");
        return 2;
    }
    const double scale = std::stod(args.get("scale", "0.05"));
    const uint64_t span = std::stoull(args.get("span", "131072"));
    const auto trace = workload::buildSniaTrace(w, span, scale);
    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 2;
    }
    trace.saveText(os);
    std::printf("wrote %zu records to %s\n", trace.size(), out.c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    auto dev = makeDevice(args.get("device", "A"));
    if (!dev) {
        std::fprintf(stderr, "unknown device\n");
        return 2;
    }
    const std::string path = args.get("trace", "");
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    const auto trace = workload::Trace::loadText(is);
    if (!trace) {
        std::fprintf(stderr, "malformed trace file\n");
        return 2;
    }
    core::DiagnosisRunner prep(*dev, core::DiagnosisConfig{});
    prep.precondition();
    const auto res =
        usecases::runClosedLoop(*dev, *trace, 1, 0, prep.now());
    std::printf("%s on %s: %llu requests, %.1f MB/s\n",
                trace->name().c_str(), dev->name().c_str(),
                static_cast<unsigned long long>(res.requests),
                res.throughputMbps());
    for (const double p : {50.0, 90.0, 99.0, 99.5, 99.9}) {
        std::printf("  p%-5.1f %s\n", p,
                    sim::formatDuration(res.latency.percentile(p)).c_str());
    }
    return 0;
}

int
usage()
{
    std::printf(
        "ssdcheck <command> [options]\n"
        "  fingerprint [--device A..G|nvm | --all]\n"
        "  accuracy   --device X [--workload NAME] [--scale F]\n"
        "  synth      --workload NAME --out FILE [--scale F] [--span P]\n"
        "  replay     --device X --trace FILE\n"
        "workloads: TPCE Homes Web Exch Live Build 'RW Mixed'\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.command == "fingerprint")
        return cmdFingerprint(args);
    if (args.command == "accuracy")
        return cmdAccuracy(args);
    if (args.command == "synth")
        return cmdSynth(args);
    if (args.command == "replay")
        return cmdReplay(args);
    return usage();
}
