/**
 * @file
 * ssdcheck — command-line front end to the framework (the paper's
 * "software release" artifact).
 *
 *   ssdcheck fingerprint [--device A..G|nvm | --all]
 *       Run the §III-B diagnosis snippets and print the device's
 *       internal features (Table-I style).
 *
 *   ssdcheck accuracy --device X [--workload NAME] [--scale F]
 *       Diagnose, build the runtime model, replay a workload in
 *       predict-before-issue mode and report NL/HL accuracy. With
 *       --supervisor the health supervisor watches the model, repairs
 *       drift online and prints its report; --min-recovered-accuracy F
 *       makes the command exit 3 when the run ends below F rolling HL
 *       accuracy or with the model disabled (CI soak-test hook).
 *
 *   ssdcheck synth --workload NAME --out FILE [--scale F] [--span P]
 *       Generate a synthetic trace (Table-II equivalents) to a file.
 *
 *   ssdcheck replay --device X --trace FILE
 *       Replay a saved trace and print the latency distribution.
 *
 *   ssdcheck trace --device X [--workload NAME] [--scale F]
 *                  [--out FILE] [--binary-out FILE] [--metrics-out FILE]
 *                  [--audit-out FILE] [--timeline-ms N] [--supervisor]
 *                  [--faults PROFILE]
 *       Run the accuracy replay with full observability attached:
 *       write a Chrome trace-event JSON (open in chrome://tracing or
 *       Perfetto), a metrics-registry snapshot and a misprediction
 *       audit JSONL, then print the audit report. --binary-out also
 *       writes the compact trace.bin form (obs/trace_binary.h).
 *
 *   ssdcheck trace-convert [--in trace.bin] [--out trace.json]
 *       Offline converter: turn a binary trace into Chrome JSON,
 *       byte-identical to what `ssdcheck trace` itself would have
 *       written for that run.
 *
 *   ssdcheck trace-stats [--in trace.bin] [--format text|json] [--top N]
 *       Offline analytics over a recorded binary trace: per-volume GC
 *       duty cycle, stall count/duration histogram, write-buffer hit
 *       rate, and the top-N longest host requests.
 *
 *   ssdcheck run --device X [--workload NAME] [--scale F] ...
 *       The accuracy replay as a checkpointable run: with
 *       --checkpoint-every N --checkpoint-out F a complete snapshot of
 *       the deterministic simulation state is atomically written every
 *       N requests; --resume F continues a run bit-exactly from such a
 *       snapshot (exit 5 on a corrupt snapshot, 6 on a config
 *       mismatch). --kill-after-requests / --kill-in-checkpoint are
 *       the chaos hooks the soak harness (tools/soak) drives; see
 *       DESIGN.md "Crash consistency & state serialization".
 *       --listen PORT serves live telemetry (GET /metrics /runz
 *       /healthz) from immutable snapshots published every
 *       --publish-every requests and at checkpoints — attaching it is
 *       bit-identical to running without. --profile-stages attributes
 *       wall-ns/request to simulator stages (wb gc nand model trace
 *       policy) and prints the attribution table.
 *
 *   ssdcheck faults
 *       List the fault-injection profiles.
 *
 *   ssdcheck chaos --scenario FILE [--jobs N] [--verify]
 *       Run an adversarial fault campaign: parse a chaos scenario
 *       (correlated fault phases + resilience policy + SLO
 *       assertions, see examples/chaos/), replay it once per seed
 *       sharded over N threads, and fail (exit 8) if any shard
 *       violates its SLOs or, with --verify, if a --jobs 1 rerun does
 *       not reproduce the campaign digest bit-for-bit.
 *
 *   ssdcheck bench [--jobs N] [--scale F] [--seeds K] [--out FILE]
 *                  [--baseline FILE] [--max-regress F]
 *       Run the Fig. 11 experiment grid sharded over N worker threads
 *       (default: all cores), write the BENCH_grid.json wall-clock
 *       report and, when --baseline is given, exit 4 if aggregate
 *       simulated-IOs/sec dropped more than --max-regress (default
 *       0.30) below the baseline file's value — the CI perf gate.
 *
 * Any device-taking command accepts --faults <profile> to run the
 * device with injected faults behind the host-side resilient I/O
 * path; error counters are reported after the run.
 *
 * Devices are the simulated presets; on a real system the same code
 * would sit behind an ioctl-capable block device.
 */
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "blockdev/resilient_device.h"
#include "exit_codes.h"
#include "resilience/chaos.h"
#include "core/accuracy.h"
#include "core/diagnosis.h"
#include "core/health_supervisor.h"
#include "core/ssdcheck.h"
#include "obs/exporter/http_server.h"
#include "obs/exporter/telemetry.h"
#include "obs/sink.h"
#include "obs/stage_profiler.h"
#include "obs/trace_binary.h"
#include "obs/trace_stats.h"
#include "perf/grid.h"
#include "perf/thread_pool.h"
#include "perf/wall_clock.h"
#include "recovery/invariants.h"
#include "recovery/run_state.h"
#include "recovery/snapshot.h"
#include "ssd/fault_injector.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "stats/table_printer.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"

using namespace ssdcheck;

namespace {

/** argv parsed into --key value pairs + positionals. */
struct Args
{
    std::string command;
    std::map<std::string, std::string> options;
    bool has(const std::string &k) const { return options.count(k) > 0; }
    std::string get(const std::string &k, const std::string &dflt) const
    {
        const auto it = options.find(k);
        return it == options.end() ? dflt : it->second;
    }
};

Args
parse(int argc, char **argv)
{
    Args a;
    if (argc >= 2)
        a.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            continue;
        key = key.substr(2);
        // Both spellings: `--format json` and `--format=json`.
        const size_t eq = key.find('=');
        if (eq != std::string::npos) {
            a.options[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            a.options[key] = argv[++i];
        } else {
            a.options[key] = "";
        }
    }
    return a;
}

/** Build a device by name ("A".."G" or "nvm"), with optional faults. */
std::unique_ptr<ssd::SsdDevice>
makeDevice(const std::string &name, const Args &args)
{
    ssd::FaultProfile faults;
    const std::string profileName = args.get("faults", "none");
    if (!ssd::faultProfileByName(profileName, &faults)) {
        std::fprintf(stderr, "unknown fault profile '%s' (try: ",
                     profileName.c_str());
        for (const auto &p : ssd::allFaultProfiles())
            std::fprintf(stderr, "%s ", p.name.c_str());
        std::fprintf(stderr, ")\n");
        return nullptr;
    }
    ssd::SsdConfig cfg;
    if (name == "nvm") {
        cfg = ssd::makeNvmBackedSsd();
    } else if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'G') {
        cfg = ssd::makePreset(static_cast<ssd::SsdModel>(name[0] - 'A'));
    } else {
        std::fprintf(stderr, "unknown device '%s'\n", name.c_str());
        return nullptr;
    }
    cfg.faults = faults;
    return std::make_unique<ssd::SsdDevice>(cfg);
}

/** Print device-side injections and host-side error counters. */
void
printFaultReport(const ssd::SsdDevice &dev,
                 const blockdev::ResilientDevice &rdev)
{
    if (dev.config().faults.inert())
        return;
    stats::printBanner(std::cout, "fault report (profile '" +
                                      dev.config().faults.name + "')");
    stats::TablePrinter t;
    t.header({"counter", "value"});
    const ssd::FaultCounters &fc = dev.faultCounters();
    t.row({"injected: transient UNC reads", std::to_string(fc.readUncTransient)});
    t.row({"injected: hard UNC reads", std::to_string(fc.readUncHard)});
    t.row({"injected: program failures", std::to_string(fc.programFailures)});
    t.row({"injected: erase failures", std::to_string(fc.eraseFailures)});
    t.row({"injected: blocks retired", std::to_string(fc.blocksRetired)});
    t.row({"injected: stalls", std::to_string(fc.stalls)});
    t.row({"injected: drift events", std::to_string(fc.driftEvents)});
    const blockdev::ResilienceCounters &rc = rdev.counters();
    t.row({"host: media errors seen", std::to_string(rc.mediaErrors)});
    t.row({"host: timeouts classified", std::to_string(rc.timeouts)});
    t.row({"host: device faults", std::to_string(rc.deviceFaults)});
    t.row({"host: retries issued", std::to_string(rc.retries)});
    t.row({"host: recovered by retry", std::to_string(rc.recovered)});
    t.row({"host: retries exhausted", std::to_string(rc.exhausted)});
    t.row({"host: errored requests", std::to_string(rc.erroredRequests)});
    t.print(std::cout);
}

/** Attach one sink to the whole stack (device, resilient path, model,
 *  optional supervisor) and name the trace tracks. */
void
attachStack(const obs::Sink &sink, ssd::SsdDevice &dev,
            blockdev::ResilientDevice &rdev, core::SsdCheck &check,
            core::HealthSupervisor *sup)
{
    dev.attachObservability(sink);
    rdev.attachObservability(sink);
    check.attachObservability(sink);
    if (sup != nullptr)
        sup->attachObservability(sink);
    if (sink.trace != nullptr) {
        obs::TraceRecorder &tr = *sink.trace;
        tr.setProcessName(obs::kHostPid, "host");
        tr.setProcessName(obs::kDevicePid, "ssd " + dev.name());
        tr.setThreadName({obs::kHostPid, obs::kHostWorkloadTid},
                         "workload");
        tr.setThreadName({obs::kHostPid, obs::kHostResilientTid},
                         "resilient-io");
        tr.setThreadName({obs::kHostPid, obs::kHostModelTid},
                         "ssdcheck-model");
        tr.setThreadName({obs::kHostPid, obs::kHostSupervisorTid},
                         "supervisor");
        tr.setThreadName({obs::kDevicePid, obs::kDeviceInterfaceTid},
                         "interface");
        for (uint32_t v = 0; v < dev.config().numVolumes(); ++v)
            tr.setThreadName({obs::kDevicePid, v},
                             "volume " + std::to_string(v));
    }
}

/** Write @p body via @p writer to @p path; false + stderr on failure. */
template <typename Writer>
bool
writeFile(const std::string &path, Writer &&writer)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    writer(os);
    return true;
}

workload::SniaWorkload
workloadByName(const std::string &name, bool *ok)
{
    *ok = true;
    for (const auto w : workload::allSniaWorkloads()) {
        if (toString(w) == name)
            return w;
    }
    *ok = false;
    return workload::SniaWorkload::RwMixed;
}

/**
 * The live telemetry endpoint of one command invocation: a hub the
 * run loop publishes into plus the HTTP server scraping it. Inactive
 * (hub unused, no server) unless --listen was given.
 */
struct Telemetry
{
    obs::TelemetryHub hub;
    std::unique_ptr<obs::HttpServer> server;

    bool active() const { return server != nullptr; }
    obs::TelemetryHub *hubPtr() { return active() ? &hub : nullptr; }
};

/**
 * Start the telemetry server when --listen PORT is present (PORT 0 =
 * ephemeral; the bound port is printed either way). --stale-ms N
 * tunes the /healthz staleness watchdog (default 10s).
 * @return false when the server could not start (@p rc set).
 */
bool
startTelemetry(const Args &args, Telemetry *t, int *rc)
{
    if (!args.has("listen"))
        return true;
    const uint16_t port =
        static_cast<uint16_t>(std::stoul(args.get("listen", "0")));
    t->server = std::make_unique<obs::HttpServer>(t->hub);
    if (args.has("stale-ms"))
        t->server->setStaleNs(
            std::stoull(args.get("stale-ms", "10000")) * 1000000ull);
    std::string err;
    if (!t->server->start(port, &err)) {
        std::fprintf(stderr, "cannot start telemetry server: %s\n",
                     err.c_str());
        t->server.reset();
        *rc = cli::kBadArgs;
        return false;
    }
    std::printf("telemetry: http://127.0.0.1:%u  "
                "(/metrics /runz /healthz)\n",
                t->server->port());
    // Scrape harnesses grep this line from a redirected log while the
    // run is still going; don't leave it in the stdio buffer.
    std::fflush(stdout);
    return true;
}

/** Snapshot the run's progress for a telemetry publish. */
obs::RunStatus
runStatusOf(const recovery::CheckpointableRun &run, const char *phase,
            uint64_t checkpoints)
{
    obs::RunStatus st;
    st.phase = phase;
    st.cursor = run.cursor();
    st.totalRequests = run.trace().size();
    st.simTimeNs = run.now().ns();
    st.checkpoints = checkpoints;
    if (const resilience::PolicyDevice *p = run.policyPtr()) {
        st.breakerState = static_cast<uint8_t>(p->breakerState());
        st.ladderLevel = static_cast<uint8_t>(p->ladderLevel());
        st.shedTotal = p->counters().shedTotal();
        const int64_t ppm = p->errorBudgetPpm();
        st.errorBudgetPpm = ppm > 0 ? static_cast<uint64_t>(ppm) : 0;
    }
    if (const core::HealthSupervisor *s = run.supervisorPtr())
        st.supervisorState = static_cast<uint8_t>(s->state());
    return st;
}

/** Print the per-stage cost attribution table (--profile-stages). */
void
printStageReport(const obs::StageProfiler &prof)
{
    stats::printBanner(std::cout, "per-stage cost attribution");
    stats::TablePrinter t;
    t.header({"stage", "self wall", "calls", "ns/request"});
    for (size_t i = 0; i < obs::kStageCount; ++i) {
        const auto s = static_cast<obs::Stage>(i);
        t.row({obs::stageName(s),
               stats::TablePrinter::num(
                   static_cast<double>(prof.selfNs(s)) / 1e6, 1) +
                   "ms",
               std::to_string(prof.calls(s)),
               std::to_string(prof.nsPerRequest(s))});
    }
    t.print(std::cout);
    std::printf("%llu requests, %.1fms attributed in total\n",
                static_cast<unsigned long long>(prof.requests()),
                static_cast<double>(prof.totalNs()) / 1e6);
}

int
cmdFingerprint(const Args &args)
{
    std::vector<std::string> names;
    if (args.has("all")) {
        for (const auto m : ssd::allModels())
            names.push_back(ssd::toString(m));
        names.push_back("nvm");
    } else {
        names.push_back(args.get("device", "A"));
    }
    for (const auto &n : names) {
        auto dev = makeDevice(n, args);
        if (!dev)
            return cli::kBadArgs;
        core::DiagnosisRunner runner(*dev, core::DiagnosisConfig{});
        const core::FeatureSet fs = runner.extractFeatures();
        std::printf("%-8s %s\n", dev->name().c_str(),
                    fs.summary().c_str());
    }
    return 0;
}

int
cmdAccuracy(const Args &args)
{
    auto dev = makeDevice(args.get("device", "A"), args);
    if (!dev)
        return cli::kBadArgs;
    bool ok = true;
    const auto w = workloadByName(args.get("workload", "RW Mixed"), &ok);
    if (!ok) {
        std::fprintf(stderr, "unknown workload\n");
        return cli::kBadArgs;
    }
    const double scale = std::stod(args.get("scale", "0.05"));

    // The host stack always talks to the device through the resilient
    // path; on a healthy device it is a transparent pass-through.
    blockdev::ResilientDevice rdev(*dev);

    // Diagnosis is a one-time offline procedure: features come from a
    // healthy twin (same model, no faults), so the whole fault budget
    // lands on the measured run and the runtime machinery — retries,
    // tainted-completion exclusion, drift response — is what's tested.
    ssd::SsdConfig cleanCfg = dev->config();
    cleanCfg.faults = ssd::FaultProfile{};
    ssd::SsdDevice cleanDev(cleanCfg);
    core::DiagnosisRunner runner(cleanDev, core::DiagnosisConfig{});
    const core::FeatureSet fs = runner.extractFeatures();
    std::printf("features: %s\n", fs.summary().c_str());
    if (!fs.bufferModelUsable()) {
        std::printf("no usable buffer model; prediction disabled\n");
        return 0;
    }
    core::SsdCheck check(fs);
    std::unique_ptr<core::HealthSupervisor> sup;
    if (args.has("supervisor"))
        sup = std::make_unique<core::HealthSupervisor>(check, rdev);

    // Optional metrics snapshot of the run (registry views over every
    // layer's counters; attaching never changes the results).
    obs::Registry registry;
    obs::Sink sink;
    const bool wantMetrics = args.has("metrics-out");
    if (wantMetrics) {
        sink.metrics = &registry;
        if (args.has("timeline-ms"))
            registry.enableTimeline(sim::milliseconds(
                std::stoll(args.get("timeline-ms", "100"))));
        attachStack(sink, *dev, rdev, check, sup.get());
    }

    dev->precondition();
    const auto trace =
        workload::buildSniaTrace(w, dev->capacityPages(), scale);
    sim::SimTime end;
    const auto acc = core::evaluatePredictionAccuracy(
        rdev, check, trace, runner.now(), &end, sup.get(),
        wantMetrics ? &sink : nullptr);
    if (wantMetrics) {
        const std::string path = args.get("metrics-out", "metrics.json");
        if (!writeFile(path,
                       [&](std::ostream &os) { registry.writeJson(os, end); }))
            return cli::kBadArgs;
        std::printf("wrote %zu metrics to %s\n", registry.size(),
                    path.c_str());
    }
    std::printf("workload: %s (%zu requests, HL fraction %.2f%%)\n",
                trace.name().c_str(), trace.size(),
                acc.hlFraction() * 100);
    std::printf("NL accuracy: %.2f%%\nHL accuracy: %.2f%%\n",
                acc.nlAccuracy() * 100, acc.hlAccuracy() * 100);
    if (acc.faulted > 0)
        std::printf("faulted requests excluded from recall: %llu\n",
                    static_cast<unsigned long long>(acc.faulted));
    printFaultReport(*dev, rdev);

    const double rollingHl = check.monitor().rollingHlAccuracy();
    if (sup) {
        stats::printBanner(std::cout, "model health");
        std::printf("%s", sup->report().c_str());
        std::printf("rolling HL accuracy at end of run: %.2f%%\n",
                    rollingHl * 100);
    }
    if (args.has("min-recovered-accuracy")) {
        const double floor =
            std::stod(args.get("min-recovered-accuracy", "0"));
        const bool disabled =
            (sup && sup->state() == core::HealthState::Disabled) ||
            !check.enabled();
        if (disabled || rollingHl < floor) {
            std::fprintf(stderr,
                         "FAIL: run ended %s with rolling HL accuracy "
                         "%.2f%% (floor %.2f%%)\n",
                         disabled ? "disabled" : "enabled",
                         rollingHl * 100, floor * 100);
            return cli::kRecoveryFloor;
        }
        std::printf("rolling HL accuracy %.2f%% meets floor %.2f%%\n",
                    rollingHl * 100, floor * 100);
    }
    return 0;
}

int
cmdSynth(const Args &args)
{
    bool ok = true;
    const auto w = workloadByName(args.get("workload", "RW Mixed"), &ok);
    if (!ok) {
        std::fprintf(stderr, "unknown workload\n");
        return cli::kBadArgs;
    }
    const std::string out = args.get("out", "");
    if (out.empty()) {
        std::fprintf(stderr, "--out FILE required\n");
        return cli::kBadArgs;
    }
    const double scale = std::stod(args.get("scale", "0.05"));
    const uint64_t span = std::stoull(args.get("span", "131072"));
    const auto trace = workload::buildSniaTrace(w, span, scale);
    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return cli::kBadArgs;
    }
    trace.saveText(os);
    std::printf("wrote %zu records to %s\n", trace.size(), out.c_str());
    return 0;
}

int
cmdReplay(const Args &args)
{
    auto dev = makeDevice(args.get("device", "A"), args);
    if (!dev)
        return cli::kBadArgs;
    const std::string path = args.get("trace", "");
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return cli::kBadArgs;
    }
    size_t errorLine = 0;
    const auto trace = workload::Trace::loadText(is, &errorLine);
    if (!trace) {
        if (errorLine == 0)
            std::fprintf(stderr, "malformed trace file %s: empty\n",
                         path.c_str());
        else
            std::fprintf(stderr, "malformed trace file %s: line %zu\n",
                         path.c_str(), errorLine);
        return cli::kBadArgs;
    }
    blockdev::ResilientDevice rdev(*dev);
    core::DiagnosisRunner prep(rdev, core::DiagnosisConfig{});
    prep.precondition();
    const auto res =
        usecases::runClosedLoop(rdev, *trace, 1, 0, prep.now());
    std::printf("%s on %s: %llu requests, %.1f MB/s\n",
                trace->name().c_str(), dev->name().c_str(),
                static_cast<unsigned long long>(res.requests),
                res.throughputMbps());
    for (const double p : {50.0, 90.0, 99.0, 99.5, 99.9}) {
        std::printf("  p%-5.1f %s\n", p,
                    sim::formatDuration(res.latency.percentile(p)).c_str());
    }
    // Error accounting comes from the resilient path's counters (the
    // single tally; replay engines no longer duplicate it).
    const blockdev::ResilienceCounters &rc = rdev.counters();
    if (rc.erroredRequests > 0 || rc.retries > 0)
        std::printf("errors: %llu media, %llu timeout, %llu fault; "
                    "%llu of %llu requests errored (%.2f%%)\n",
                    static_cast<unsigned long long>(rc.mediaErrors),
                    static_cast<unsigned long long>(rc.timeouts),
                    static_cast<unsigned long long>(rc.deviceFaults),
                    static_cast<unsigned long long>(rc.erroredRequests),
                    static_cast<unsigned long long>(rc.submissions),
                    rc.errorRate() * 100);
    printFaultReport(*dev, rdev);
    return 0;
}

int
cmdTrace(const Args &args)
{
    auto dev = makeDevice(args.get("device", "A"), args);
    if (!dev)
        return cli::kBadArgs;
    bool ok = true;
    const auto w = workloadByName(args.get("workload", "RW Mixed"), &ok);
    if (!ok) {
        std::fprintf(stderr, "unknown workload\n");
        return cli::kBadArgs;
    }
    const double scale = std::stod(args.get("scale", "0.05"));

    blockdev::ResilientDevice rdev(*dev);
    ssd::SsdConfig cleanCfg = dev->config();
    cleanCfg.faults = ssd::FaultProfile{};
    ssd::SsdDevice cleanDev(cleanCfg);
    core::DiagnosisRunner runner(cleanDev, core::DiagnosisConfig{});
    const core::FeatureSet fs = runner.extractFeatures();
    if (!fs.bufferModelUsable()) {
        std::fprintf(stderr,
                     "no usable buffer model; nothing to trace\n");
        return cli::kBadArgs;
    }
    core::SsdCheck check(fs);
    std::unique_ptr<core::HealthSupervisor> sup;
    if (args.has("supervisor"))
        sup = std::make_unique<core::HealthSupervisor>(check, rdev);

    obs::TraceRecorder recorder;
    obs::Registry registry;
    obs::AuditLog audit;
    const obs::Sink sink{&recorder, &registry, &audit};
    if (args.has("timeline-ms"))
        registry.enableTimeline(
            sim::milliseconds(std::stoll(args.get("timeline-ms", "100"))));
    attachStack(sink, *dev, rdev, check, sup.get());

    dev->precondition();
    const auto trace =
        workload::buildSniaTrace(w, dev->capacityPages(), scale);
    sim::SimTime end;
    const auto acc = core::evaluatePredictionAccuracy(
        rdev, check, trace, runner.now(), &end, sup.get(), &sink);
    std::printf("workload: %s (%zu requests, HL fraction %.2f%%)\n"
                "NL accuracy: %.2f%%\nHL accuracy: %.2f%%\n",
                trace.name().c_str(), trace.size(),
                acc.hlFraction() * 100, acc.nlAccuracy() * 100,
                acc.hlAccuracy() * 100);

    const std::string tracePath = args.get("out", "trace.json");
    if (!writeFile(tracePath,
                   [&](std::ostream &os) { recorder.writeChromeJson(os); }))
        return cli::kBadArgs;
    std::printf("wrote %zu trace events to %s "
                "(open in chrome://tracing or ui.perfetto.dev)\n",
                recorder.events(), tracePath.c_str());
    if (args.has("metrics-out")) {
        const std::string path = args.get("metrics-out", "metrics.json");
        if (!writeFile(path,
                       [&](std::ostream &os) { registry.writeJson(os, end); }))
            return cli::kBadArgs;
        std::printf("wrote %zu metrics to %s\n", registry.size(),
                    path.c_str());
    }
    if (args.has("binary-out")) {
        const std::string path = args.get("binary-out", "trace.bin");
        if (!writeFile(path, [&](std::ostream &os) {
                obs::writeTraceBinary(recorder, os);
            }))
            return cli::kBadArgs;
        std::printf("wrote binary trace to %s "
                    "(convert with `ssdcheck trace-convert`)\n",
                    path.c_str());
    }
    if (args.has("audit-out")) {
        const std::string path = args.get("audit-out", "audit.jsonl");
        if (!writeFile(path,
                       [&](std::ostream &os) { audit.writeJsonl(os); }))
            return cli::kBadArgs;
        std::printf("wrote %zu audit records to %s\n", audit.size(),
                    path.c_str());
    }

    stats::printBanner(std::cout, "misprediction audit");
    std::printf("%s", audit.analyze().format().c_str());
    printFaultReport(*dev, rdev);
    return 0;
}

int
cmdTraceConvert(const Args &args)
{
    const std::string inPath = args.get("in", "trace.bin");
    const std::string outPath = args.get("out", "trace.json");
    std::ifstream is(inPath, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", inPath.c_str());
        return cli::kBadArgs;
    }
    obs::TraceBinaryReader reader;
    if (!reader.read(is)) {
        std::fprintf(stderr, "%s: %s\n", inPath.c_str(),
                     reader.error().c_str());
        return cli::kBadArgs;
    }
    if (!writeFile(outPath, [&](std::ostream &os) {
            reader.recorder().writeChromeJson(os);
        }))
        return cli::kBadArgs;
    std::printf("converted %zu trace events: %s -> %s\n",
                reader.recorder().events(), inPath.c_str(),
                outPath.c_str());
    return 0;
}

/**
 * The per-stage cost-attribution pass of `ssdcheck bench`: one serial
 * profiled replay of every workload on device A behind the guarded
 * policy stack (the full hot path: wb/gc/nand + model + policy +
 * trace-stage registry upkeep), mirroring the grid shard protocol so
 * ns/request is attributable to the same code the gate times.
 */
bool
profileStagePass(double scale, obs::StageProfiler *prof, std::string *err)
{
    auto dev = std::make_unique<ssd::SsdDevice>(
        ssd::makePreset(ssd::SsdModel::A));
    blockdev::ResilientDevice rdev(*dev);
    resilience::ResiliencePolicy policy;
    resilience::resiliencePolicyByName("guarded", &policy);
    resilience::PolicyDevice pdev(rdev, policy);
    core::DiagnosisRunner runner(*dev, core::DiagnosisConfig{});
    const core::FeatureSet fs = runner.extractFeatures();
    if (!fs.bufferModelUsable()) {
        *err = "no usable buffer model on device A";
        return false;
    }
    core::SsdCheck check(fs);
    obs::Sink sink;
    sink.stages = prof;
    dev->attachObservability(sink);
    rdev.attachObservability(sink);
    pdev.attachObservability(sink);
    check.attachObservability(sink);
    sim::SimTime now = runner.now();
    for (const auto w : workload::allSniaWorkloads()) {
        const auto trace = workload::buildSniaTrace(
            w, dev->capacityPages(), scale,
            1000 + static_cast<uint64_t>(w));
        sim::SimTime end = now;
        (void)core::evaluatePredictionAccuracy(pdev, check, trace, now,
                                               &end, nullptr, &sink);
        now = end + sim::milliseconds(100);
    }
    return true;
}

/** The "stage_ns" member of BENCH_grid.json (integers only). */
std::string
renderStageNsJson(const obs::StageProfiler &prof)
{
    std::ostringstream os;
    os << "\"stage_ns\": {";
    for (size_t i = 0; i < obs::kStageCount; ++i) {
        const auto s = static_cast<obs::Stage>(i);
        os << (i > 0 ? ", " : "") << "\"" << obs::stageName(s)
           << "\": {\"self_ns\": " << prof.selfNs(s)
           << ", \"calls\": " << prof.calls(s)
           << ", \"ns_per_request\": " << prof.nsPerRequest(s) << "}";
    }
    os << ", \"requests\": " << prof.requests()
       << ", \"total_ns\": " << prof.totalNs() << "}";
    return os.str();
}

int
cmdTraceStats(const Args &args)
{
    const std::string inPath = args.get("in", "trace.bin");
    std::ifstream is(inPath, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", inPath.c_str());
        return cli::kBadArgs;
    }
    obs::TraceBinaryReader reader;
    if (!reader.read(is)) {
        std::fprintf(stderr, "%s: %s\n", inPath.c_str(),
                     reader.error().c_str());
        return cli::kBadArgs;
    }
    const size_t topN =
        static_cast<size_t>(std::stoull(args.get("top", "10")));
    const obs::TraceStats stats =
        obs::computeTraceStats(reader.recorder(), topN);
    const std::string format = args.get("format", "text");
    if (format == "json") {
        std::printf("%s", obs::renderTraceStatsJson(stats).c_str());
    } else if (format == "text") {
        std::printf("%s", obs::renderTraceStatsText(stats).c_str());
    } else {
        std::fprintf(stderr,
                     "unknown --format '%s' (text or json)\n",
                     format.c_str());
        return cli::kBadArgs;
    }
    return cli::kOk;
}

int
cmdBench(const Args &args)
{
    const unsigned jobs = static_cast<unsigned>(
        std::stoul(args.get("jobs",
                            std::to_string(perf::ThreadPool::defaultJobs()))));
    const double scale = std::stod(args.get("scale", "0.03"));
    const uint64_t seedCount = std::stoull(args.get("seeds", "1"));
    if (seedCount == 0 || scale <= 0) {
        std::fprintf(stderr, "--seeds and --scale must be positive\n");
        return cli::kBadArgs;
    }

    Telemetry tele;
    int rc = cli::kOk;
    if (!startTelemetry(args, &tele, &rc))
        return rc;

    perf::GridSpec spec = perf::GridSpec::fig11(scale);
    spec.seeds.clear();
    for (uint64_t s = 0; s < seedCount; ++s)
        spec.seeds.push_back(s);
    spec.telemetry = tele.hubPtr();

    std::printf("grid: %zu models x %zu workloads x %llu seeds, "
                "jobs=%u, scale=%.3f\n",
                spec.models.size(), spec.workloads.size(),
                static_cast<unsigned long long>(seedCount), jobs, scale);
    const perf::GridResult grid = perf::runGrid(spec, jobs);

    // Serial cost-attribution pass: which stage owns each wall-ns.
    obs::StageProfiler profiler(&perf::wallNowNs);
    std::string perr;
    if (!profileStagePass(scale, &profiler, &perr)) {
        std::fprintf(stderr, "stage profile pass failed: %s\n",
                     perr.c_str());
        return cli::kBadArgs;
    }
    printStageReport(profiler);

    stats::TablePrinter t;
    t.header({"shard", "requests", "wall", "IOs/s"});
    for (const auto &task : grid.timing.tasks)
        t.row({task.label, std::to_string(task.simulatedIos),
               stats::TablePrinter::num(task.wallSeconds, 2) + "s",
               stats::TablePrinter::num(task.iosPerSec(), 0)});
    t.print(std::cout);
    std::printf("\nwall %.2fs (serial estimate %.2fs), aggregate "
                "speedup %.2fx, %.0f simulated IOs/s\n",
                grid.timing.wallSeconds, grid.timing.taskWallSum(),
                grid.timing.aggregateSpeedup(),
                grid.timing.iosPerSec());

    const std::string out = args.get("out", "BENCH_grid.json");
    if (!perf::writeBenchGridJson(out, "cli_bench_grid", grid.timing,
                                  renderStageNsJson(profiler))) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return cli::kBadArgs;
    }
    std::printf("wrote %s\n", out.c_str());

    if (args.has("baseline")) {
        const std::string basePath = args.get("baseline", "");
        const auto baseline = perf::readBaselineIosPerSec(basePath);
        if (!baseline) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         basePath.c_str());
            return cli::kBadArgs;
        }
        const double maxRegress =
            std::stod(args.get("max-regress", "0.30"));
        const double floor = *baseline * (1.0 - maxRegress);
        const double measured = grid.timing.iosPerSec();
        if (measured < floor) {
            std::fprintf(stderr,
                         "FAIL: %.0f IOs/s is below the regression floor "
                         "%.0f (baseline %.0f, max regress %.0f%%)\n",
                         measured, floor, *baseline, maxRegress * 100);
            return cli::kPerfGate;
        }
        std::printf("perf gate OK: %.0f IOs/s vs floor %.0f "
                    "(baseline %.0f, max regress %.0f%%)\n",
                    measured, floor, *baseline, maxRegress * 100);
        // Two-sided: a result far above the baseline is not an error,
        // but it means the floor has lost its teeth — a subsequent
        // regression back to the stale baseline would pass the gate.
        // Warn (never fail) so the baseline gets re-recorded.
        const double ceiling = *baseline * (1.0 + maxRegress);
        if (measured > ceiling)
            std::printf(
                "WARN: %.0f IOs/s is more than %.0f%% above the "
                "baseline %.0f — re-baseline bench/baseline.json so "
                "the regression floor keeps its teeth\n",
                measured, maxRegress * 100, *baseline);

        // Per-stage two-sided gate: the aggregate gate says *that*
        // throughput regressed, this one says *which* stage did.
        // Per-stage wall-ns is noisier than the aggregate, so the
        // allowed band is deliberately generous (default 3x each
        // way); the high side fails, the low side only warns that
        // the baseline has gone stale — like the aggregate gate.
        const double maxStage =
            std::stod(args.get("max-stage-regress", "3.0"));
        bool stageFail = false;
        for (size_t i = 0; i < obs::kStageCount; ++i) {
            const auto s = static_cast<obs::Stage>(i);
            const auto base =
                perf::readBaselineStageNs(basePath, obs::stageName(s));
            if (!base || *base <= 0)
                continue; // absent/zero entry: nothing to gate against
            const auto stageNs =
                static_cast<double>(profiler.nsPerRequest(s));
            const double stageCeil =
                static_cast<double>(*base) * (1.0 + maxStage);
            if (stageNs > stageCeil) {
                std::fprintf(
                    stderr,
                    "FAIL: stage '%s' costs %.0f ns/request, over the "
                    "%.0f ceiling (baseline %lld, max regress "
                    "%.0f%%)\n",
                    obs::stageName(s), stageNs, stageCeil,
                    static_cast<long long>(*base), maxStage * 100);
                stageFail = true;
            } else if (stageNs * (1.0 + maxStage) <
                       static_cast<double>(*base)) {
                std::printf(
                    "WARN: stage '%s' costs %.0f ns/request, far below "
                    "the baseline %lld — re-baseline "
                    "bench/baseline.json so the stage gate keeps its "
                    "teeth\n",
                    obs::stageName(s), stageNs,
                    static_cast<long long>(*base));
            }
        }
        if (stageFail)
            return cli::kPerfGate;
        std::printf("stage gate OK (max regress %.0f%% per stage)\n",
                    maxStage * 100);
    }
    return 0;
}

/** True when @p path names a readable file. */
bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/**
 * Chaos hook: start writing a checkpoint the non-atomic way — dump
 * half the bytes into the temp file — then die by SIGKILL, leaving a
 * torn temp next to the intact previous checkpoint. The soak harness
 * uses this to prove the atomic-rename protocol: a resume must load
 * the previous checkpoint, never the torn temp.
 */
[[noreturn]] void
dieInCheckpointWrite(const std::string &path,
                     const std::vector<uint8_t> &bytes)
{
    std::ofstream os(path + ".tmp", std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size() / 2));
    os.flush();
    std::raise(SIGKILL);
    std::abort(); // unreachable; SIGKILL cannot be handled
}

int
cmdRun(const Args &args)
{
    recovery::RunParams params;
    params.device = args.get("device", "A");
    params.faults = args.get("faults", "none");
    params.workload = args.get("workload", "RW Mixed");
    params.scale = std::stod(args.get("scale", "0.05"));
    params.supervisor = args.has("supervisor");
    params.timelineMs = std::stoll(args.get("timeline-ms", "0"));
    params.resilience = args.get("resilience", "off");

    const std::string resumePath = args.get("resume", "");
    const std::string ckptOut = args.get("checkpoint-out", "");
    const uint64_t ckptEvery =
        std::stoull(args.get("checkpoint-every", "0"));
    const std::string finalOut = args.get("final-state-out", "");
    const bool force = args.has("force");
    const uint64_t killAfter =
        std::stoull(args.get("kill-after-requests", "0"));
    const bool killInCkpt = args.has("kill-in-checkpoint");
    uint64_t publishEvery =
        std::stoull(args.get("publish-every", "1024"));
    if (publishEvery == 0)
        publishEvery = 1;
    // Chaos hook for the telemetry watchdog: park the sim thread after
    // N requests so /healthz flips 503 once the snapshot goes stale.
    const uint64_t hangAfter =
        std::stoull(args.get("hang-after-requests", "0"));

    if ((ckptEvery > 0) != !ckptOut.empty()) {
        std::fprintf(stderr, "--checkpoint-every and --checkpoint-out "
                             "must be given together\n");
        return cli::kBadArgs;
    }
    if (!ckptOut.empty() && ckptOut != resumePath &&
        fileExists(ckptOut) && !force) {
        std::fprintf(stderr,
                     "refusing to overwrite existing checkpoint %s; "
                     "pass --force to allow it\n",
                     ckptOut.c_str());
        return cli::kBadArgs;
    }

    recovery::Snapshot snap;
    const bool resuming = !resumePath.empty();
    if (resuming) {
        std::vector<uint8_t> bytes;
        std::string detail;
        recovery::LoadError e =
            recovery::readFile(resumePath, &bytes, &detail);
        if (e != recovery::LoadError::Ok) {
            std::fprintf(stderr, "cannot read snapshot %s: %s\n",
                         resumePath.c_str(), detail.c_str());
            return cli::kBadArgs;
        }
        e = snap.parse(bytes, &detail);
        if (e != recovery::LoadError::Ok) {
            std::fprintf(stderr,
                         "corrupt snapshot %s [%s]: %s\n"
                         "the file cannot be resumed; re-run without "
                         "--resume to start over\n",
                         resumePath.c_str(),
                         recovery::toString(e).c_str(), detail.c_str());
            return cli::kCorruptSnapshot;
        }
        if (snap.configHash() != params.configHash() && !force) {
            std::string taken = "<unrecorded>";
            if (const auto *p =
                    snap.section(recovery::SectionId::RunParams)) {
                recovery::StateReader r(*p);
                taken = r.str();
            }
            std::fprintf(stderr,
                         "config mismatch: snapshot %s was taken with\n"
                         "  %s\nbut this run is configured as\n  %s\n"
                         "re-run with matching flags, or pass --force "
                         "to resume anyway\n",
                         resumePath.c_str(), taken.c_str(),
                         params.canonical().c_str());
            return cli::kConfigMismatch;
        }
    }

    Telemetry tele;
    int rc = cli::kOk;
    if (!startTelemetry(args, &tele, &rc))
        return rc;
    std::unique_ptr<obs::StageProfiler> profiler;
    if (args.has("profile-stages"))
        profiler =
            std::make_unique<obs::StageProfiler>(&perf::wallNowNs);

    std::string err;
    auto run = recovery::CheckpointableRun::create(params, resuming, &err,
                                                  profiler.get());
    if (!run) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return cli::kBadArgs;
    }
    if (resuming) {
        std::string detail;
        const recovery::LoadError e = run->restore(snap, &detail, force);
        if (e == recovery::LoadError::ConfigMismatch) {
            std::fprintf(stderr, "config mismatch: %s\n", detail.c_str());
            return cli::kConfigMismatch;
        }
        if (e != recovery::LoadError::Ok) {
            std::fprintf(stderr, "unusable snapshot %s [%s]: %s\n",
                         resumePath.c_str(),
                         recovery::toString(e).c_str(), detail.c_str());
            return cli::kCorruptSnapshot;
        }
        std::printf("resumed %s at request %llu of %zu (t=%s)\n",
                    resumePath.c_str(),
                    static_cast<unsigned long long>(run->cursor()),
                    run->trace().size(),
                    sim::formatDuration(run->now().ns()).c_str());
    }

    uint64_t checkpoints = 0;
    if (tele.active())
        tele.hub.publish(run->registry(),
                         runStatusOf(*run, "run", checkpoints));

    uint64_t nextCkpt =
        ckptEvery > 0 ? (run->cursor() / ckptEvery + 1) * ckptEvery : 0;
    while (!run->done()) {
        run->step();
        if (ckptEvery > 0 && run->cursor() >= nextCkpt) {
            const std::vector<uint8_t> bytes =
                run->checkpoint().serialize();
            if (killInCkpt && killAfter > 0 && run->cursor() >= killAfter)
                dieInCheckpointWrite(ckptOut, bytes);
            const std::string werr =
                recovery::writeFileAtomic(ckptOut, bytes);
            if (!werr.empty()) {
                std::fprintf(stderr, "checkpoint failed: %s\n",
                             werr.c_str());
                return cli::kBadArgs;
            }
            nextCkpt += ckptEvery;
            ++checkpoints;
            // Checkpoint boundaries are natural publish points: the
            // run is quiescent and the registry self-consistent.
            if (tele.active())
                tele.hub.publish(run->registry(),
                                 runStatusOf(*run, "run", checkpoints));
        }
        if (tele.active() && run->cursor() % publishEvery == 0)
            tele.hub.publish(run->registry(),
                             runStatusOf(*run, "run", checkpoints));
        if (hangAfter > 0 && run->cursor() >= hangAfter) {
            std::printf("hanging after %llu requests (telemetry "
                        "watchdog hook); kill me\n",
                        static_cast<unsigned long long>(run->cursor()));
            std::fflush(stdout);
            for (;;)
                std::this_thread::sleep_for(std::chrono::seconds(3600));
        }
        if (killAfter > 0 && !killInCkpt && run->cursor() >= killAfter)
            std::raise(SIGKILL);
    }
    if (tele.active())
        tele.hub.publish(run->registry(),
                         runStatusOf(*run, "done", checkpoints));

    if (!ckptOut.empty()) {
        const std::string werr =
            recovery::writeFileAtomic(ckptOut,
                                      run->checkpoint().serialize());
        if (!werr.empty()) {
            std::fprintf(stderr, "checkpoint failed: %s\n", werr.c_str());
            return cli::kBadArgs;
        }
    }
    if (!finalOut.empty()) {
        const std::string werr = recovery::writeFileAtomic(
            finalOut, run->checkpoint().serialize());
        if (!werr.empty()) {
            std::fprintf(stderr, "final state write failed: %s\n",
                         werr.c_str());
            return cli::kBadArgs;
        }
    }
    if (args.has("metrics-out")) {
        const std::string path = args.get("metrics-out", "metrics.json");
        if (!writeFile(path, [&](std::ostream &os) {
                os << run->metricsJson();
            }))
            return cli::kBadArgs;
    }

    const core::AccuracyResult &acc = run->accuracy();
    std::printf("workload: %s (%zu requests, HL fraction %.2f%%)\n",
                run->trace().name().c_str(), run->trace().size(),
                acc.hlFraction() * 100);
    std::printf("NL accuracy: %.2f%%\nHL accuracy: %.2f%%\n",
                acc.nlAccuracy() * 100, acc.hlAccuracy() * 100);
    if (acc.faulted > 0)
        std::printf("faulted requests excluded from recall: %llu\n",
                    static_cast<unsigned long long>(acc.faulted));
    if (run->supervisorPtr() != nullptr) {
        stats::printBanner(std::cout, "model health");
        std::printf("%s", run->supervisorPtr()->report().c_str());
    }
    printFaultReport(run->device(), run->resilient());
    if (profiler)
        printStageReport(*profiler);

    if (args.has("check-invariants")) {
        const auto violations = recovery::checkInvariants(*run);
        for (const std::string &v : violations)
            std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", v.c_str());
        if (!violations.empty())
            return cli::kInvariantViolation;
        std::printf("cross-layer invariants: OK\n");
    }
    return 0;
}

int
cmdChaos(const Args &args)
{
    const std::string path = args.get("scenario", "");
    if (path.empty()) {
        std::fprintf(stderr, "--scenario FILE required\n");
        return cli::kBadArgs;
    }
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return cli::kBadArgs;
    }
    std::stringstream buf;
    buf << is.rdbuf();

    resilience::ChaosScenario scenario;
    std::string err;
    if (!resilience::ChaosScenario::parse(buf.str(), &scenario, &err)) {
        std::fprintf(stderr, "bad scenario %s: %s\n", path.c_str(),
                     err.c_str());
        return cli::kBadArgs;
    }
    const unsigned jobs = static_cast<unsigned>(
        std::stoul(args.get("jobs",
                            std::to_string(perf::ThreadPool::defaultJobs()))));
    Telemetry tele;
    int rc = cli::kOk;
    if (!startTelemetry(args, &tele, &rc))
        return rc;

    std::printf("chaos campaign '%s': %zu seeds, jobs=%u, policy "
                "deadline %s\n",
                scenario.name.c_str(), scenario.seeds.size(), jobs,
                sim::formatDuration(scenario.policy.deadlineBudget).c_str());
    const resilience::ChaosCampaignResult res =
        resilience::runChaosCampaign(scenario, jobs, tele.hubPtr());
    if (!res.error.empty()) {
        std::fprintf(stderr, "%s\n", res.error.c_str());
        return cli::kBadArgs;
    }

    stats::TablePrinter t;
    t.header({"seed", "ok", "shed", "expired", "hedges(won)", "breaker",
              "p99.9", "verdict"});
    for (const resilience::ChaosShardResult &s : res.shards) {
        t.row({std::to_string(s.seed), std::to_string(s.completedOk),
               std::to_string(s.shed), std::to_string(s.deadlineExpired),
               std::to_string(s.hedgesIssued) + "(" +
                   std::to_string(s.hedgeWins) + ")",
               std::to_string(s.breakerOpens) + "/" +
                   std::to_string(s.breakerCloses),
               sim::formatDuration(s.p999),
               s.failures.empty() ? "pass" : "FAIL"});
    }
    t.print(std::cout);
    for (const resilience::ChaosShardResult &s : res.shards)
        for (const std::string &f : s.failures)
            std::fprintf(stderr, "seed %llu: %s\n",
                         static_cast<unsigned long long>(s.seed),
                         f.c_str());
    std::printf("campaign digest: %016llx\n",
                static_cast<unsigned long long>(res.campaignDigest));

    if (args.has("verify")) {
        // Bit-exactness gate: the whole campaign must reproduce on a
        // single thread — any divergence means hidden cross-shard
        // state or nondeterminism in the policy stack.
        const resilience::ChaosCampaignResult serial =
            resilience::runChaosCampaign(scenario, 1);
        if (serial.campaignDigest != res.campaignDigest) {
            std::fprintf(stderr,
                         "FAIL: --jobs 1 rerun digest %016llx differs "
                         "from %016llx\n",
                         static_cast<unsigned long long>(
                             serial.campaignDigest),
                         static_cast<unsigned long long>(
                             res.campaignDigest));
            return cli::kSloViolation;
        }
        std::printf("determinism verify OK: --jobs 1 rerun reproduced "
                    "the digest\n");
    }
    if (!res.pass)
        return cli::kSloViolation;
    std::printf("all %zu shards passed their SLO assertions\n",
                res.shards.size());
    return cli::kOk;
}

int
cmdFaults()
{
    stats::TablePrinter t;
    t.header({"profile", "unc-read", "prog-fail", "erase-fail", "stall",
              "drift"});
    for (const auto &p : ssd::allFaultProfiles()) {
        t.row({p.name, stats::TablePrinter::pct(p.readUncProbability),
               stats::TablePrinter::pct(p.programFailProbability),
               stats::TablePrinter::pct(p.eraseFailProbability),
               stats::TablePrinter::pct(p.stallProbability),
               p.driftAfterRequests == 0
                   ? "-"
                   : toString(p.driftKind) + " @" +
                         std::to_string(p.driftAfterRequests)});
    }
    t.print(std::cout);
    return 0;
}

int
usage(int rc)
{
    std::printf(
        "ssdcheck <command> [options]\n"
        "  fingerprint [--device A..G|nvm | --all] [--faults PROFILE]\n"
        "  accuracy   --device X [--workload NAME] [--scale F]"
        " [--faults PROFILE]\n"
        "             [--supervisor] [--min-recovered-accuracy F]\n"
        "             [--metrics-out FILE] [--timeline-ms N]\n"
        "  trace      --device X [--workload NAME] [--scale F]"
        " [--faults PROFILE]\n"
        "             [--out FILE] [--binary-out FILE]"
        " [--metrics-out FILE]\n"
        "             [--audit-out FILE] [--timeline-ms N]"
        " [--supervisor]\n"
        "  trace-convert [--in trace.bin] [--out trace.json]\n"
        "  trace-stats [--in trace.bin] [--format text|json] [--top N]\n"
        "  synth      --workload NAME --out FILE [--scale F] [--span P]\n"
        "  replay     --device X --trace FILE [--faults PROFILE]\n"
        "  run        --device X [--workload NAME] [--scale F]"
        " [--faults PROFILE]\n"
        "             [--supervisor] [--resilience off|guarded|strict]\n"
        "             [--timeline-ms N] [--metrics-out FILE]\n"
        "             [--checkpoint-every N --checkpoint-out FILE]"
        " [--resume FILE]\n"
        "             [--force] [--final-state-out FILE]"
        " [--check-invariants]\n"
        "             [--kill-after-requests N] [--kill-in-checkpoint]\n"
        "             [--listen PORT] [--stale-ms N] [--publish-every N]\n"
        "             [--profile-stages]\n"
        "  chaos      --scenario FILE [--jobs N] [--verify]"
        " [--listen PORT]\n"
        "  faults\n"
        "  bench      [--jobs N] [--scale F] [--seeds K] [--out FILE]\n"
        "             [--baseline FILE] [--max-regress F]"
        " [--max-stage-regress F]\n"
        "             [--listen PORT]\n"
        "  help\n"
        "workloads: TPCE Homes Web Exch Live Build 'RW Mixed'\n"
        "fault profiles: none flaky-reads wearout stalls drift storms"
        " hostile\n"
        "resilience policies: off guarded strict\n"
        "%s",
        cli::kExitCodeTable);
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.command == "fingerprint")
        return cmdFingerprint(args);
    if (args.command == "accuracy")
        return cmdAccuracy(args);
    if (args.command == "synth")
        return cmdSynth(args);
    if (args.command == "replay")
        return cmdReplay(args);
    if (args.command == "trace")
        return cmdTrace(args);
    if (args.command == "trace-convert")
        return cmdTraceConvert(args);
    if (args.command == "trace-stats")
        return cmdTraceStats(args);
    if (args.command == "run")
        return cmdRun(args);
    if (args.command == "chaos")
        return cmdChaos(args);
    if (args.command == "bench")
        return cmdBench(args);
    if (args.command == "faults")
        return cmdFaults();
    if (args.command == "help" || args.command == "--help" ||
        args.command == "-h")
        return usage(cli::kOk);
    return usage(cli::kUsage);
}
