/**
 * @file
 * Symbol-level lint rules R8/R9, driven by the declaration index
 * (decl_index.h) rather than per-line token scans:
 *
 *   R8 snapshot-coverage  every non-static data member of a class
 *                         that defines saveState/loadState must be
 *                         referenced in *both* bodies, or carry a
 *                         reasoned `// snapshot:skip(<reason>)`.
 *                         Catches the classic checkpoint bug: a new
 *                         field compiles, ships, and silently resets
 *                         on restore. A skip marker outside a member
 *                         declaration is dead and reported too.
 *
 *   R9 typed-ids          public signatures in the typed domains
 *                         (src/ssd, src/nand, src/sim, src/workload)
 *                         may not take a raw uint64_t/uint32_t where
 *                         a strong id type exists: parameters whose
 *                         name ends in lpn/ppn/pbn must be core::Lpn,
 *                         nand::Ppn, nand::Pbn. Keeps the Lpn/Ppn
 *                         address spaces from silently mixing at API
 *                         boundaries.
 */
#include "lint/decl_index.h"
#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace ssdcheck::lint {

namespace {

// -- R8: snapshot-coverage ------------------------------------------------

class SnapshotCoverageRule : public GlobalRule
{
  public:
    std::string id() const override { return "snapshot-coverage"; }

    void check(const DeclIndex &idx, const std::vector<SourceFile> &,
               std::vector<Finding> &out) const override
    {
        // Lines whose skip marker annotates a real member — anything
        // left over at the end is a dead marker.
        std::set<std::pair<std::string, uint32_t>> claimed;

        for (const auto &cls : idx.classes) {
            const bool declares = cls.findMethod("saveState") != nullptr ||
                                  cls.findMethod("loadState") != nullptr;
            const std::string save = idx.methodBodyText(cls, "saveState");
            const std::string load = idx.methodBodyText(cls, "loadState");
            const bool snapshotClass =
                declares || !save.empty() || !load.empty();
            if (!snapshotClass) {
                // Members of non-snapshot classes still claim their
                // markers (a nested helper struct may carry one for
                // documentation); the orphan check below only fires
                // on markers attached to nothing.
                continue;
            }
            if (save.empty() && load.empty())
                continue; // Declared but never defined in the scan set.
            for (const auto &m : cls.members) {
                if (m.skip.present)
                    claimed.insert({cls.file, m.line});
                if (m.skip.present && m.skip.hasReason)
                    continue;
                if (m.skip.present && !m.skip.hasReason) {
                    out.push_back(Finding{
                        cls.file, m.line, id(),
                        "snapshot:skip on `" + cls.name + "::" + m.name +
                            "` needs a reason: `// snapshot:skip(<why "
                            "this field is rebuilt or derived on "
                            "load>)`"});
                    continue;
                }
                const bool inSave =
                    save.empty() || containsWord(save, m.name);
                const bool inLoad =
                    load.empty() || containsWord(load, m.name);
                if (inSave && inLoad)
                    continue;
                const char *missing =
                    !inSave && !inLoad
                        ? "saveState or loadState"
                        : (!inSave ? "saveState" : "loadState");
                out.push_back(Finding{
                    cls.file, m.line, id(),
                    "field `" + cls.name + "::" + m.name +
                        "` is not referenced in " + missing +
                        " — serialize it or annotate `// snapshot:skip"
                        "(<reason>)` if it is rebuilt on load"});
            }
        }

        // Markers that annotate nothing: outside any class, on a
        // non-member line, or in a class the indexer never saw.
        for (const auto &cls : idx.classes)
            for (const auto &m : cls.members)
                if (m.skip.present)
                    claimed.insert({cls.file, m.line});
        for (const auto &marker : idx.skipMarkers) {
            bool attached = false;
            for (const auto &c : claimed)
                if (c.first == marker.file && c.second == marker.line)
                    attached = true;
            if (!attached)
                out.push_back(Finding{
                    marker.file, marker.line, id(),
                    "snapshot:skip marker is not attached to a class "
                    "data member — it has no effect here"});
        }
    }
};

// -- R9: typed-ids --------------------------------------------------------

class TypedIdsRule : public GlobalRule
{
  public:
    std::string id() const override { return "typed-ids"; }

    void check(const DeclIndex &idx, const std::vector<SourceFile> &,
               std::vector<Finding> &out) const override
    {
        for (const auto &cls : idx.classes) {
            if (!inTypedDomain(cls.file))
                continue;
            for (const auto &m : cls.methods) {
                if (!m.isPublic)
                    continue;
                checkParams(cls.file, m.line,
                            cls.name + "::" + m.name, m.params, out);
            }
        }
        for (const auto &fn : idx.freeFunctions) {
            if (!inTypedDomain(fn.file))
                continue;
            checkParams(fn.file, fn.line, fn.name, fn.params, out);
        }
    }

  private:
    static bool inTypedDomain(const std::string &file)
    {
        // Headers only: signatures in headers are the public API; a
        // .cc is its mirror and would double-report.
        if (file.size() < 2 ||
            file.compare(file.size() - 2, 2, ".h") != 0)
            return false;
        for (const char *dir :
             {"src/ssd/", "src/nand/", "src/sim/", "src/workload/"})
            if (file.compare(0, std::string(dir).size(), dir) == 0)
                return true;
        return false;
    }

    /** The strong type a raw-integer parameter of this name must
     *  use, or nullptr when the name carries no id meaning. */
    static const char *domainTypeFor(const std::string &paramName)
    {
        std::string n;
        for (char c : paramName)
            n += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        while (!n.empty() && n.back() == '_')
            n.pop_back();
        const auto endsWith = [&](const char *suffix) {
            const std::string s(suffix);
            return n.size() >= s.size() &&
                   n.compare(n.size() - s.size(), s.size(), s) == 0;
        };
        if (endsWith("lpn"))
            return "core::Lpn";
        if (endsWith("ppn"))
            return "nand::Ppn";
        if (endsWith("pbn"))
            return "nand::Pbn";
        return nullptr;
    }

    void checkParams(const std::string &file, uint32_t line,
                     const std::string &what,
                     const std::vector<Param> &params,
                     std::vector<Finding> &out) const
    {
        for (const auto &p : params) {
            if (p.name.empty())
                continue;
            if (!containsWord(p.type, "uint64_t") &&
                !containsWord(p.type, "uint32_t"))
                continue;
            const char *want = domainTypeFor(p.name);
            if (want == nullptr)
                continue;
            out.push_back(Finding{
                file, line, id(),
                "`" + what + "` takes raw `" + p.type + " " + p.name +
                    "` — use the strong id type " + want +
                    " so address spaces cannot mix"});
        }
    }
};

} // namespace

std::vector<std::unique_ptr<GlobalRule>>
makeGlobalRules()
{
    std::vector<std::unique_ptr<GlobalRule>> rules;
    rules.push_back(std::make_unique<SnapshotCoverageRule>());
    rules.push_back(std::make_unique<TypedIdsRule>());
    return rules;
}

} // namespace ssdcheck::lint
