/**
 * @file
 * ssdcheck_lint engine: file walking, comment/literal blanking,
 * suppression collection, and the rule-driving loop.
 */
#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/decl_index.h"
#include "perf/thread_pool.h"

namespace ssdcheck::lint {

namespace fs = std::filesystem;

std::string
Finding::format() const
{
    std::ostringstream os;
    os << file << ":" << line << ": " << rule << ": " << message;
    return os.str();
}

bool
SourceFile::isHeader() const
{
    return relPath.size() >= 2 &&
           relPath.compare(relPath.size() - 2, 2, ".h") == 0;
}

bool
SourceFile::underDir(const std::string &dir) const
{
    return relPath.size() > dir.size() + 1 &&
           relPath.compare(0, dir.size(), dir) == 0 &&
           relPath[dir.size()] == '/';
}

uint32_t
JoinedCode::lineAt(size_t offset) const
{
    // Last lineStart <= offset; lineStart is ascending.
    const auto it = std::upper_bound(lineStart.begin(), lineStart.end(),
                                     offset);
    return static_cast<uint32_t>(it - lineStart.begin());
}

JoinedCode
JoinedCode::from(const SourceFile &f)
{
    JoinedCode j;
    j.lineStart.reserve(f.code.size());
    for (const auto &line : f.code) {
        j.lineStart.push_back(j.text.size());
        j.text += line;
        j.text += '\n';
    }
    return j;
}

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** A plausible rule id: kebab-case, non-empty. Anything else (e.g.
 *  the `<rule>` placeholder in documentation) is not a marker. */
bool
validRuleId(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (std::islower(static_cast<unsigned char>(c)) == 0 &&
            std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '-')
            return false;
    return true;
}

/** Collect `lint:allow(<rule>)[: reason]` markers from one raw line. */
void
collectAllows(const std::string &raw, uint32_t lineNo,
              std::multimap<uint32_t, Allow> &out)
{
    const std::string marker = "lint:allow(";
    size_t pos = 0;
    while ((pos = raw.find(marker, pos)) != std::string::npos) {
        const size_t open = pos + marker.size();
        const size_t close = raw.find(')', open);
        if (close == std::string::npos)
            break;
        Allow a;
        a.rule = raw.substr(open, close - open);
        if (!validRuleId(a.rule)) {
            pos = close;
            continue;
        }
        size_t after = close + 1;
        if (after < raw.size() && raw[after] == ':') {
            std::string reason = raw.substr(after + 1);
            const size_t firstNonSpace = reason.find_first_not_of(" \t");
            a.hasReason = firstNonSpace != std::string::npos;
        }
        out.emplace(lineNo, a);
        pos = close;
    }
}

/** Lexer state carried across physical lines. */
enum class LexState : uint8_t
{
    Code,
    BlockComment,
    RawString,
};

/**
 * Blank comments and string/char literals in @p line (to spaces,
 * preserving columns), updating the cross-line lexer state.
 * @p rawEnd is the `)delim"` terminator while inside a raw string.
 */
std::string
blankLine(const std::string &line, LexState &st, std::string &rawEnd)
{
    std::string out = line;
    size_t i = 0;
    const size_t n = line.size();
    // Line-local literal states: a string or char literal that hits
    // end-of-line without a continuation is treated as closed.
    bool inStr = false;
    bool inChr = false;
    while (i < n) {
        const char c = line[i];
        if (st == LexState::BlockComment) {
            if (c == '*' && i + 1 < n && line[i + 1] == '/') {
                out[i] = out[i + 1] = ' ';
                i += 2;
                st = LexState::Code;
            } else {
                out[i++] = ' ';
            }
            continue;
        }
        if (st == LexState::RawString) {
            const size_t end = line.find(rawEnd, i);
            if (end == std::string::npos) {
                for (size_t k = i; k < n; ++k)
                    out[k] = ' ';
                i = n;
            } else {
                for (size_t k = i; k < end + rawEnd.size(); ++k)
                    out[k] = ' ';
                i = end + rawEnd.size();
                st = LexState::Code;
            }
            continue;
        }
        if (inStr || inChr) {
            const char quote = inStr ? '"' : '\'';
            if (c == '\\' && i + 1 < n) {
                out[i] = out[i + 1] = ' ';
                i += 2;
            } else {
                if (c == quote)
                    inStr = inChr = false;
                out[i++] = ' ';
            }
            continue;
        }
        // Plain code.
        if (c == '/' && i + 1 < n && line[i + 1] == '/') {
            for (size_t k = i; k < n; ++k)
                out[k] = ' ';
            break;
        }
        if (c == '/' && i + 1 < n && line[i + 1] == '*') {
            out[i] = out[i + 1] = ' ';
            i += 2;
            st = LexState::BlockComment;
            continue;
        }
        if (c == '"') {
            const bool rawPrefix = i > 0 && line[i - 1] == 'R' &&
                                   (i < 2 || !identChar(line[i - 2]));
            if (rawPrefix) {
                const size_t open = line.find('(', i + 1);
                if (open != std::string::npos) {
                    rawEnd = ")" + line.substr(i + 1, open - i - 1) + "\"";
                    for (size_t k = i; k <= open && k < n; ++k)
                        out[k] = ' ';
                    i = open + 1;
                    st = LexState::RawString;
                    continue;
                }
            }
            out[i++] = ' ';
            inStr = true;
            continue;
        }
        if (c == '\'' && i > 0 && identChar(line[i - 1]) &&
            i + 1 < n && std::isdigit(static_cast<unsigned char>(line[i + 1]))) {
            // C++14 digit separator (1'000'000) — not a char literal.
            ++i;
            continue;
        }
        if (c == '\'') {
            out[i++] = ' ';
            inChr = true;
            continue;
        }
        ++i;
    }
    return out;
}

} // namespace

SourceFile
loadSourceFile(const std::string &path, const std::string &relPath,
               std::string *err)
{
    SourceFile f;
    f.path = path;
    f.relPath = relPath;
    std::ifstream is(path);
    if (!is) {
        if (err != nullptr)
            *err = "cannot open " + path;
        return f;
    }
    std::string line;
    LexState st = LexState::Code;
    std::string rawEnd;
    while (std::getline(is, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        f.raw.push_back(line);
        collectAllows(line, static_cast<uint32_t>(f.raw.size()), f.allows);
        f.code.push_back(blankLine(line, st, rawEnd));
    }
    return f;
}

namespace {

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc";
}

std::string
forwardSlashes(std::string s)
{
    std::replace(s.begin(), s.end(), '\\', '/');
    return s;
}

} // namespace

std::vector<std::string>
collectFiles(const std::string &root, const std::vector<std::string> &paths,
             std::string *err)
{
    std::vector<std::string> out;
    const fs::path rootPath(root);
    for (const auto &p : paths) {
        const fs::path full = rootPath / p;
        std::error_code ec;
        if (fs::is_directory(full, ec)) {
            for (fs::recursive_directory_iterator it(full, ec), end;
                 it != end && !ec; it.increment(ec)) {
                if (it->is_regular_file() && lintableFile(it->path()))
                    out.push_back(forwardSlashes(
                        fs::relative(it->path(), rootPath).string()));
            }
            if (ec && err != nullptr)
                *err = "cannot walk " + full.string() + ": " + ec.message();
        } else if (fs::is_regular_file(full, ec)) {
            out.push_back(forwardSlashes(
                fs::relative(full, rootPath).string()));
        } else {
            if (err != nullptr)
                *err = "no such file or directory: " + full.string();
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

namespace {

/** Drop findings absorbed by a reasoned `lint:allow(<rule>)` on
 *  their line; @p f is the file the findings belong to. */
void
applyAllows(const SourceFile &f, std::vector<Finding> &raw,
            std::vector<Finding> &out)
{
    for (auto &fi : raw) {
        bool suppressed = false;
        const auto range = f.allows.equal_range(fi.line);
        for (auto it = range.first; it != range.second; ++it)
            if (it->second.rule == fi.rule && it->second.hasReason)
                suppressed = true;
        if (!suppressed)
            out.push_back(std::move(fi));
    }
}

} // namespace

LintResult
runLint(const std::string &root, const std::vector<std::string> &paths,
        unsigned jobs)
{
    LintResult result;
    std::string err;
    const std::vector<std::string> files = collectFiles(root, paths, &err);
    if (!err.empty()) {
        result.ioError = true;
        result.errorText = err;
        return result;
    }

    // Stage 1 — load + pre-lex + per-file rules, sharded over the
    // pool. Every shard writes only its own slot, so the merge below
    // is path-ordered and identical at any --jobs value.
    const auto rules = makeDefaultRules();
    std::vector<SourceFile> sources(files.size());
    std::vector<std::string> loadErrs(files.size());
    std::vector<std::vector<Finding>> perFile(files.size());
    const auto scanOne = [&](size_t k) {
        sources[k] = loadSourceFile((fs::path(root) / files[k]).string(),
                                    files[k], &loadErrs[k]);
        if (!loadErrs[k].empty())
            return;
        std::vector<Finding> raw;
        for (const auto &rule : rules)
            rule->check(sources[k], raw);
        applyAllows(sources[k], raw, perFile[k]);
    };
    if (jobs > 1 && files.size() > 1) {
        perf::ThreadPool pool(jobs);
        for (size_t k = 0; k < files.size(); ++k)
            pool.submit([&, k]() { scanOne(k); });
        pool.wait();
    } else {
        for (size_t k = 0; k < files.size(); ++k)
            scanOne(k);
    }
    for (size_t k = 0; k < files.size(); ++k) {
        if (!loadErrs[k].empty()) {
            result.ioError = true;
            result.errorText = loadErrs[k];
            return result;
        }
        ++result.filesScanned;
        for (auto &fi : perFile[k])
            result.findings.push_back(std::move(fi));
    }

    // Stage 2 — symbol-level rules over the whole-scan declaration
    // index (serial: the index is cheap and order-dependent).
    const DeclIndex idx = DeclIndex::build(sources);
    std::vector<Finding> globalRaw;
    for (const auto &rule : makeGlobalRules())
        rule->check(idx, sources, globalRaw);
    for (size_t k = 0; k < sources.size(); ++k) {
        std::vector<Finding> mine;
        for (auto &fi : globalRaw)
            if (fi.file == sources[k].relPath)
                mine.push_back(fi);
        applyAllows(sources[k], mine, result.findings);
    }

    // A reasonless allow absorbs nothing and is itself a finding.
    for (const auto &f : sources)
        for (const auto &[line, allow] : f.allows)
            if (!allow.hasReason)
                result.findings.push_back(Finding{
                    f.relPath, line, "suppression",
                    "lint:allow(" + allow.rule +
                        ") needs a reason: `// lint:allow(" + allow.rule +
                        "): <why ordering/time cannot escape>`"});

    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return result;
}

} // namespace ssdcheck::lint
