/**
 * @file
 * ssdcheck_lint: repo-specific determinism & hygiene rules.
 *
 * The simulator's contract is that results are a pure function of
 * (config, seed, trace): bit-identical at any --jobs value, on any
 * machine. The type system cannot express that, and the golden tests
 * only catch a violation after it has shipped a wrong number. This
 * linter closes the gap at review time with nine rules (see DESIGN.md
 * "Static analysis & determinism invariants"):
 *
 *   wall-clock      (R1) no wall-clock or ambient-entropy sources in
 *                        deterministic dirs (src/sim, src/ssd,
 *                        src/nand, src/core) — virtual time and the
 *                        seeded sim::Rng only. src/perf is the
 *                        allowlisted timing layer.
 *   unordered-iter  (R2) no iteration over std::unordered_{map,set}
 *                        in deterministic dirs: iteration order is
 *                        implementation-defined and leaks straight
 *                        into results.
 *   std-function    (R3) no std::function in src/sim or src/ssd; the
 *                        hot path uses sim::SmallCallback (PR 3) and
 *                        must not regress to heap-allocating erasure.
 *   header-hygiene  (R4) every scanned header starts with
 *                        #pragma once and directly includes the std
 *                        headers for the std names it uses.
 *   console-io      (R5) no console I/O (std::cout/cerr/clog, printf
 *                        family) in the library dirs (src/sim,
 *                        src/ssd, src/nand, src/core, src/blockdev,
 *                        src/obs) — reporting belongs to tools/ and
 *                        src/stats; libraries return data.
 *   nodiscard       (R6) status-returning public APIs in
 *                        src/blockdev, src/resilience and
 *                        src/recovery headers must be [[nodiscard]].
 *   heap-alloc      (R7) no `new`/std::make_unique/std::make_shared
 *                        in the allocation-free core (src/sim,
 *                        src/nand, and the FTL hot files
 *                        src/ssd/{page_mapper,garbage_collector,
 *                        write_buffer}.cc). Placement `new (` is
 *                        exempt (inline-storage construction).
 *
 * R1-R7 are per-file token scans. R8/R9 are symbol-level rules over a
 * declaration index built from the same blanked text (decl_index.h):
 *
 *   snapshot-coverage (R8) every non-static data member of a class
 *                        defining saveState/loadState must be
 *                        referenced in both bodies, or carry a
 *                        reasoned `// snapshot:skip(<reason>)`.
 *   typed-ids       (R9) public signatures in src/{ssd,nand,sim,
 *                        workload} headers may not take raw
 *                        uint64_t/uint32_t where a strong id type
 *                        (core::Lpn, nand::Ppn, nand::Pbn) exists.
 *
 * Suppressions: append `// lint:allow(<rule-id>): <reason>` to the
 * offending line. The reason is mandatory — a reasonless allow is
 * itself reported (rule id "suppression").
 *
 * Deliberately token-level, not a clang plugin: it must build and run
 * in seconds on any toolchain the repo supports (incl. GCC-only
 * boxes), and the rules only need lexical context. Comments, string
 * and char literals are blanked before matching.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ssdcheck::lint {

/** One reported violation. */
struct Finding
{
    std::string file; ///< Forward-slash path relative to the scan root.
    uint32_t line = 0;
    std::string rule;
    std::string message;

    /** The canonical "file:line: rule-id: message" form. */
    std::string format() const;
};

/** A `lint:allow(<rule>)` marker found on a line. */
struct Allow
{
    std::string rule;
    bool hasReason = false;
};

/** A loaded file, pre-lexed for the rules. */
struct SourceFile
{
    std::string path;    ///< As opened (absolute or cwd-relative).
    std::string relPath; ///< Forward-slash path relative to the root.
    std::vector<std::string> raw;  ///< Original lines.
    /** Lines with comments, string and char literals blanked to
     *  spaces (columns preserved). Rules match against these. */
    std::vector<std::string> code;
    std::multimap<uint32_t, Allow> allows; ///< line -> markers.

    bool isHeader() const;
    /** True when relPath lives under @p dir ("src/sim", ...). */
    bool underDir(const std::string &dir) const;
};

/** code lines joined with '\n' plus offset->line lookup, for rules
 *  whose patterns span physical lines (declarations, for-headers). */
struct JoinedCode
{
    std::string text;
    std::vector<size_t> lineStart; ///< Offset of each line's start.

    uint32_t lineAt(size_t offset) const;
    static JoinedCode from(const SourceFile &f);
};

/** A lint rule: stateless check over one pre-lexed file. */
class Rule
{
  public:
    virtual ~Rule() = default;
    virtual std::string id() const = 0;
    virtual void check(const SourceFile &f,
                       std::vector<Finding> &out) const = 0;
};

/** The per-file repo rule set, R1..R7. */
std::vector<std::unique_ptr<Rule>> makeDefaultRules();

struct DeclIndex; // decl_index.h

/** A symbol-level rule: one check over the whole-scan declaration
 *  index (cross-file: members in headers, bodies in .cc files). */
class GlobalRule
{
  public:
    virtual ~GlobalRule() = default;
    virtual std::string id() const = 0;
    virtual void check(const DeclIndex &idx,
                       const std::vector<SourceFile> &files,
                       std::vector<Finding> &out) const = 0;
};

/** The symbol-level rule set, R8..R9. */
std::vector<std::unique_ptr<GlobalRule>> makeGlobalRules();

// -- engine ---------------------------------------------------------------

/** Load + pre-lex one file. @p relPath scopes the rules. */
SourceFile loadSourceFile(const std::string &path,
                          const std::string &relPath, std::string *err);

/**
 * Recursively collect .h/.cc files under @p root for each entry of
 * @p paths (root-relative files or directories), sorted for
 * deterministic output.
 */
std::vector<std::string> collectFiles(const std::string &root,
                                      const std::vector<std::string> &paths,
                                      std::string *err);

struct LintResult
{
    std::vector<Finding> findings; ///< Sorted by (file, line, rule).
    size_t filesScanned = 0;
    bool ioError = false;
    std::string errorText;
};

/**
 * Lint @p paths under @p root with the default per-file rules plus
 * the symbol-level rules, honouring reasoned `lint:allow`
 * suppressions and reporting reasonless ones.
 *
 * @p jobs > 1 shards file loading and the per-file rules over a
 * perf::ThreadPool. Output is deterministic at any job count: files
 * are collected sorted, per-file findings land in per-file slots
 * merged in path order, and the declaration index plus global rules
 * run serially over the already-ordered file set.
 */
LintResult runLint(const std::string &root,
                   const std::vector<std::string> &paths,
                   unsigned jobs = 1);

} // namespace ssdcheck::lint
