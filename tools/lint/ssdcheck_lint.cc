/**
 * @file
 * ssdcheck_lint CLI.
 *
 *   ssdcheck_lint [--root DIR] [path...]
 *
 * Paths are files or directories relative to the root (default root:
 * the current directory; default paths: `src` and `tools`). Findings
 * print to stdout as `file:line: rule-id: message`.
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error — so both CI
 * and the `lint` CMake target fail the build on any violation.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [path...]\n"
                 "  Lints .h/.cc files under each path (default: src "
                 "tools) against\n"
                 "  the ssdcheck determinism & hygiene rules. See "
                 "DESIGN.md.\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "tools"};

    const ssdcheck::lint::LintResult result =
        ssdcheck::lint::runLint(root, paths);
    if (result.ioError) {
        std::fprintf(stderr, "ssdcheck_lint: error: %s\n",
                     result.errorText.c_str());
        return 2;
    }
    for (const auto &f : result.findings)
        std::printf("%s\n", f.format().c_str());
    std::fprintf(stderr, "ssdcheck_lint: %zu finding(s) in %zu file(s)\n",
                 result.findings.size(), result.filesScanned);
    return result.findings.empty() ? 0 : 1;
}
