/**
 * @file
 * ssdcheck_lint CLI.
 *
 *   ssdcheck_lint [--root DIR] [--jobs N] [--format text|json|github]
 *                 [path...]
 *
 * Paths are files or directories relative to the root (default root:
 * the current directory; default paths: `src` and `tools`). Findings
 * print to stdout:
 *
 *   text    `file:line: rule-id: message` (default)
 *   json    one object: {"filesScanned": N, "findings": [...]}
 *   github  the text lines plus `::error file=...` workflow command
 *           lines, so CI findings annotate the diff in the PR view
 *
 * Output is deterministic at any --jobs value (findings are sorted
 * by path/line/rule after the parallel scan).
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error — so both CI
 * and the `lint` CMake target fail the build on any violation.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "perf/thread_pool.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--jobs N] "
                 "[--format text|json|github] [path...]\n"
                 "  Lints .h/.cc files under each path (default: src "
                 "tools) against\n"
                 "  the ssdcheck determinism & hygiene rules. See "
                 "DESIGN.md.\n",
                 argv0);
    return 2;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
printJson(const ssdcheck::lint::LintResult &result)
{
    std::printf("{\n  \"filesScanned\": %zu,\n  \"findings\": [",
                result.filesScanned);
    for (size_t i = 0; i < result.findings.size(); ++i) {
        const auto &f = result.findings[i];
        std::printf("%s\n    {\"file\": \"%s\", \"line\": %u, "
                    "\"rule\": \"%s\", \"message\": \"%s\"}",
                    i == 0 ? "" : ",", jsonEscape(f.file).c_str(), f.line,
                    jsonEscape(f.rule).c_str(),
                    jsonEscape(f.message).c_str());
    }
    std::printf("%s]\n}\n", result.findings.empty() ? "" : "\n  ");
}

/** GitHub workflow commands: `%` `\r` `\n` are property-escaped. */
std::string
ghEscape(const std::string &s, bool property)
{
    std::string out;
    for (char c : s) {
        if (c == '%')
            out += "%25";
        else if (c == '\r')
            out += "%0D";
        else if (c == '\n')
            out += "%0A";
        else if (property && c == ',')
            out += "%2C";
        else if (property && c == ':')
            out += "%3A";
        else
            out += c;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string format = "text";
    unsigned jobs = ssdcheck::perf::ThreadPool::defaultJobs();
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both `--opt value` and `--opt=value`.
        std::string inlineValue;
        bool hasInline = false;
        if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
            const size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inlineValue = arg.substr(eq + 1);
                arg.resize(eq);
                hasInline = true;
            }
        }
        const auto value = [&]() -> const char * {
            if (hasInline)
                return inlineValue.c_str();
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--root") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            root = v;
        } else if (arg == "--jobs") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            if (jobs == 0)
                jobs = 1;
        } else if (arg == "--format") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            format = v;
            if (format != "text" && format != "json" &&
                format != "github")
                return usage(argv[0]);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "tools"};

    const ssdcheck::lint::LintResult result =
        ssdcheck::lint::runLint(root, paths, jobs);
    if (result.ioError) {
        std::fprintf(stderr, "ssdcheck_lint: error: %s\n",
                     result.errorText.c_str());
        return 2;
    }
    if (format == "json") {
        printJson(result);
    } else {
        for (const auto &f : result.findings) {
            std::printf("%s\n", f.format().c_str());
            if (format == "github")
                std::printf("::error file=%s,line=%u,title=ssdcheck_lint "
                            "%s::%s\n",
                            ghEscape(f.file, true).c_str(), f.line,
                            ghEscape(f.rule, true).c_str(),
                            ghEscape(f.message, false).c_str());
        }
    }
    std::fprintf(stderr, "ssdcheck_lint: %zu finding(s) in %zu file(s)\n",
                 result.findings.size(), result.filesScanned);
    return result.findings.empty() ? 0 : 1;
}
