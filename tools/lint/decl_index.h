/**
 * @file
 * A lightweight C++ declaration indexer for ssdcheck_lint.
 *
 * Built on the same comment/string-blanking lexer as the token rules
 * (lint.h), one step up: a single linear pass over each file's blanked
 * text with an explicit scope stack recovers, per class, the
 * non-static data members and method signatures, and, per translation
 * unit, the out-of-line method bodies (`Ret Class::method(...) {...}`).
 * That is exactly the shape the symbol-level rules need:
 *
 *   R8 snapshot-coverage  members of a class defining saveState /
 *                         loadState must be referenced in both bodies
 *                         (or carry a reasoned `snapshot:skip`).
 *   R9 typed-ids          public signatures in the typed domains may
 *                         not take raw uint64_t/uint32_t where a
 *                         strong id type (core::Lpn, nand::Ppn,
 *                         nand::Pbn) exists.
 *
 * Deliberately not libclang: the indexer must build everywhere the
 * repo builds (GCC-only boxes included) and run in milliseconds over
 * the whole tree. It understands the subset of C++ the repo uses —
 * classes/structs (nested included), access sections, templates,
 * in-class brace/equals initializers, enum class, using aliases — and
 * ignores what it cannot parse rather than guessing.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace ssdcheck::lint {

/** One function parameter, as written (type text is normalized to
 *  single spaces; default arguments stripped). */
struct Param
{
    std::string type;
    std::string name; ///< Empty for unnamed parameters.
};

/** A `// snapshot:skip(<reason>)` marker attached to a member. */
struct SnapshotSkip
{
    bool present = false;
    bool hasReason = false;
};

/** One non-static data member. */
struct Member
{
    std::string name;
    std::string type; ///< Declaration text left of the name, trimmed.
    uint32_t line = 0;
    SnapshotSkip skip;
};

/** One method declared in a class body. */
struct Method
{
    std::string name;
    std::vector<Param> params;
    uint32_t line = 0;
    bool isPublic = false;
    bool isStatic = false;
    bool hasBody = false; ///< Defined inline in the class.
    std::string body;     ///< Blanked body text when hasBody.
};

/** One class or struct with a body. */
struct ClassInfo
{
    std::string name; ///< Unqualified.
    std::string file; ///< relPath of the declaring file.
    uint32_t line = 0;
    bool isStruct = false;
    std::vector<Member> members;
    std::vector<Method> methods;

    const Method *findMethod(const std::string &n) const;
};

/** An out-of-line member function definition `Ret Class::m(...) {}`. */
struct MethodBody
{
    std::string className;
    std::string method;
    std::string file;
    uint32_t line = 0;
    std::string body; ///< Blanked text between the braces.
};

/** A free function declared at namespace scope in a header. */
struct FreeFunction
{
    std::string name;
    std::vector<Param> params;
    std::string file;
    uint32_t line = 0;
};

/** A snapshot:skip marker seen anywhere in a file (line-keyed), used
 *  to diagnose markers that did not attach to any member. */
struct SkipMarker
{
    std::string file;
    uint32_t line = 0;
};

/**
 * The symbol index over a set of pre-lexed files. Classes appear in
 * (file, declaration) order; lookups are linear — the whole tree is a
 * few hundred classes, so an index structure would be noise.
 */
struct DeclIndex
{
    std::vector<ClassInfo> classes;
    std::vector<MethodBody> bodies;
    std::vector<FreeFunction> freeFunctions;
    std::vector<SkipMarker> skipMarkers; ///< All markers, attached or not.

    /** Parse one file into the index. */
    void addFile(const SourceFile &f);

    /** Index every file (call order = file order = deterministic). */
    static DeclIndex build(const std::vector<SourceFile> &files);

    /** All classes named @p name (usually one; collisions merged by
     *  the rules). */
    std::vector<const ClassInfo *>
    classesNamed(const std::string &name) const;

    /** Concatenated body text of @p method for class @p cls: inline
     *  definitions plus every out-of-line `cls::method`. Empty when
     *  the method is declared but never defined in the scanned set. */
    std::string methodBodyText(const ClassInfo &cls,
                               const std::string &method) const;
};

/** Whole-identifier containment: is @p word a token of @p text? */
bool containsWord(const std::string &text, const std::string &word);

} // namespace ssdcheck::lint
