/**
 * @file
 * The seven ssdcheck_lint rules. Each is a token-level check over the
 * pre-lexed (comment/literal-blanked) source; see lint.h for the
 * rationale and DESIGN.md for the rule table.
 */
#include "lint/lint.h"

#include <array>
#include <cctype>
#include <initializer_list>
#include <set>

namespace ssdcheck::lint {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** Is text[pos..pos+len) a whole identifier token? */
bool
wholeWord(const std::string &text, size_t pos, size_t len)
{
    const bool leftOk = pos == 0 || !identChar(text[pos - 1]);
    const bool rightOk =
        pos + len >= text.size() || !identChar(text[pos + len]);
    return leftOk && rightOk;
}

/** First non-space position at or after @p pos. */
size_t
skipSpaces(const std::string &text, size_t pos)
{
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0)
        ++pos;
    return pos;
}

bool
underAny(const SourceFile &f, std::initializer_list<const char *> dirs)
{
    for (const char *d : dirs)
        if (f.underDir(d))
            return true;
    return false;
}

/** Dirs whose results must be a pure function of (config, seed). */
constexpr std::initializer_list<const char *> kDeterministicDirs = {
    "src/sim", "src/ssd", "src/nand", "src/core", "src/obs",
    "src/resilience"};

// -- R1: wall-clock -------------------------------------------------------

class WallClockRule : public Rule
{
  public:
    std::string id() const override { return "wall-clock"; }

    void check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        if (!underAny(f, kDeterministicDirs))
            return;
        // The telemetry endpoint layer is the one obs carve-out: it
        // stamps published snapshots with wall time for /healthz
        // staleness and never feeds the simulation (like src/perf).
        // Everything else under src/obs stays sim-time-only.
        if (f.underDir("src/obs/exporter"))
            return;
        // Identifiers banned anywhere (types and functions that read
        // wall-clock time or ambient entropy).
        static const std::array<const char *, 10> banned = {
            "steady_clock",   "system_clock", "high_resolution_clock",
            "clock_gettime",  "gettimeofday", "random_device",
            "srand",          "localtime",    "gmtime",
            "mktime"};
        // Identifiers banned only as a call (common English words).
        static const std::array<const char *, 3> bannedCalls = {
            "time", "rand", "clock"};
        for (size_t li = 0; li < f.code.size(); ++li) {
            const std::string &line = f.code[li];
            const uint32_t lineNo = static_cast<uint32_t>(li + 1);
            for (const char *word : banned)
                findWord(line, word, false, lineNo, f, out);
            for (const char *word : bannedCalls)
                findWord(line, word, true, lineNo, f, out);
        }
    }

  private:
    void findWord(const std::string &line, const std::string &word,
                  bool callOnly, uint32_t lineNo, const SourceFile &f,
                  std::vector<Finding> &out) const
    {
        size_t pos = 0;
        while ((pos = line.find(word, pos)) != std::string::npos) {
            const size_t after = pos + word.size();
            if (wholeWord(line, pos, word.size()) &&
                (!callOnly || (skipSpaces(line, after) < line.size() &&
                               line[skipSpaces(line, after)] == '('))) {
                out.push_back(Finding{
                    f.relPath, lineNo, id(),
                    "`" + word +
                        "` in a deterministic dir — use virtual time "
                        "(sim::SimTime) or the seeded sim::Rng"});
            }
            pos = after;
        }
    }
};

// -- R2: unordered-iter ---------------------------------------------------

class UnorderedIterRule : public Rule
{
  public:
    std::string id() const override { return "unordered-iter"; }

    void check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        if (!underAny(f, kDeterministicDirs))
            return;
        const JoinedCode j = JoinedCode::from(f);
        const std::set<std::string> names = unorderedNames(j.text);
        if (names.empty())
            return;
        flagRangeFors(j, names, f, out);
        flagBeginCalls(j, names, f, out);
    }

  private:
    /** Names declared in this file with an unordered container type
     *  (fields, locals, parameters). File-local heuristic: aliases
     *  and cross-file types are out of reach for a token scanner. */
    static std::set<std::string> unorderedNames(const std::string &text)
    {
        std::set<std::string> names;
        for (const char *type : {"unordered_map", "unordered_set"}) {
            size_t pos = 0;
            const std::string t(type);
            while ((pos = text.find(t, pos)) != std::string::npos) {
                const size_t after = pos + t.size();
                if (!wholeWord(text, pos, t.size())) {
                    pos = after;
                    continue;
                }
                size_t i = skipSpaces(text, after);
                if (i >= text.size() || text[i] != '<') {
                    pos = after;
                    continue;
                }
                // Skip balanced template arguments.
                int depth = 0;
                for (; i < text.size(); ++i) {
                    if (text[i] == '<')
                        ++depth;
                    else if (text[i] == '>' && --depth == 0) {
                        ++i;
                        break;
                    }
                }
                // Skip refs/pointers/cv, then read the declared name.
                while (i < text.size() &&
                       (std::isspace(static_cast<unsigned char>(text[i])) !=
                            0 ||
                        text[i] == '&' || text[i] == '*'))
                    ++i;
                size_t nameEnd = i;
                while (nameEnd < text.size() && identChar(text[nameEnd]))
                    ++nameEnd;
                if (nameEnd > i)
                    names.insert(text.substr(i, nameEnd - i));
                pos = after;
            }
        }
        names.erase("const"); // `unordered_map<K,V> const x` edge.
        return names;
    }

    void flagRangeFors(const JoinedCode &j, const std::set<std::string> &names,
                       const SourceFile &f, std::vector<Finding> &out) const
    {
        const std::string &text = j.text;
        size_t pos = 0;
        while ((pos = text.find("for", pos)) != std::string::npos) {
            const size_t forPos = pos;
            pos += 3;
            if (!wholeWord(text, forPos, 3))
                continue;
            size_t open = skipSpaces(text, forPos + 3);
            if (open >= text.size() || text[open] != '(')
                continue;
            // Find the matching ')' and a top-level ':'.
            int depth = 0;
            size_t colon = std::string::npos;
            size_t close = std::string::npos;
            for (size_t i = open; i < text.size(); ++i) {
                const char c = text[i];
                if (c == '(')
                    ++depth;
                else if (c == ')') {
                    if (--depth == 0) {
                        close = i;
                        break;
                    }
                } else if (c == ':' && depth == 1 &&
                           (i == 0 || text[i - 1] != ':') &&
                           (i + 1 >= text.size() || text[i + 1] != ':')) {
                    colon = i;
                }
            }
            if (colon == std::string::npos || close == std::string::npos)
                continue;
            std::string range = text.substr(colon + 1, close - colon - 1);
            // Strip decoration: *x, (x), this->x, x_ stays.
            std::string bare;
            for (char c : range)
                if (identChar(c))
                    bare += c;
                else if (!bare.empty())
                    break; // first identifier only (handles `m.keys`).
            if (names.count(bare) != 0)
                out.push_back(Finding{
                    f.relPath, j.lineAt(forPos), id(),
                    "range-for over unordered container `" + bare +
                        "` — iteration order is not deterministic"});
        }
    }

    void flagBeginCalls(const JoinedCode &j, const std::set<std::string> &names,
                        const SourceFile &f, std::vector<Finding> &out) const
    {
        const std::string &text = j.text;
        for (const char *method : {"begin", "cbegin", "rbegin"}) {
            const std::string m(method);
            size_t pos = 0;
            while ((pos = text.find(m, pos)) != std::string::npos) {
                const size_t mPos = pos;
                pos += m.size();
                if (!wholeWord(text, mPos, m.size()))
                    continue;
                const size_t paren = skipSpaces(text, mPos + m.size());
                if (paren >= text.size() || text[paren] != '(')
                    continue;
                // Require `<name>.` or `<name>->` immediately before.
                size_t i = mPos;
                if (i >= 1 && text[i - 1] == '.')
                    i -= 1;
                else if (i >= 2 && text[i - 2] == '-' && text[i - 1] == '>')
                    i -= 2;
                else
                    continue;
                size_t nameEnd = i;
                while (i > 0 && identChar(text[i - 1]))
                    --i;
                if (nameEnd == i)
                    continue;
                const std::string name = text.substr(i, nameEnd - i);
                if (names.count(name) != 0)
                    out.push_back(Finding{
                        f.relPath, j.lineAt(mPos), id(),
                        "iterator over unordered container `" + name +
                            "` — iteration order is not deterministic"});
            }
        }
    }
};

// -- R3: std-function -----------------------------------------------------

class StdFunctionRule : public Rule
{
  public:
    std::string id() const override { return "std-function"; }

    void check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        if (!underAny(f, {"src/sim", "src/ssd"}))
            return;
        const std::string token = "std::function";
        for (size_t li = 0; li < f.code.size(); ++li) {
            const std::string &line = f.code[li];
            size_t pos = 0;
            while ((pos = line.find(token, pos)) != std::string::npos) {
                if (pos + token.size() >= line.size() ||
                    !identChar(line[pos + token.size()]))
                    out.push_back(Finding{
                        f.relPath, static_cast<uint32_t>(li + 1), id(),
                        "std::function on the simulator hot path — use "
                        "sim::SmallCallback (no heap-allocating type "
                        "erasure in src/sim or src/ssd)"});
                pos += token.size();
            }
        }
    }
};

// -- R4: header-hygiene ---------------------------------------------------

/** std name -> headers any of which satisfies the direct include. */
struct StdName
{
    const char *token;
    std::initializer_list<const char *> headers;
};

class HeaderHygieneRule : public Rule
{
  public:
    std::string id() const override { return "header-hygiene"; }

    void check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        if (!f.isHeader())
            return;
        checkPragmaOnce(f, out);
        checkStdIncludes(f, out);
    }

  private:
    void checkPragmaOnce(const SourceFile &f, std::vector<Finding> &out) const
    {
        for (size_t li = 0; li < f.code.size(); ++li) {
            const std::string &line = f.code[li];
            const size_t first = line.find_first_not_of(" \t");
            if (first == std::string::npos)
                continue;
            std::string stripped = line.substr(first);
            while (!stripped.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       stripped.back())) != 0)
                stripped.pop_back();
            if (stripped == "#pragma once")
                return;
            out.push_back(Finding{
                f.relPath, static_cast<uint32_t>(li + 1), id(),
                "header must open with `#pragma once` (before any other "
                "code; include guards are not used in this repo)"});
            return;
        }
        out.push_back(Finding{f.relPath, 1, id(),
                              "header must contain `#pragma once`"});
    }

    void checkStdIncludes(const SourceFile &f,
                          std::vector<Finding> &out) const
    {
        // Curated map: common std vocabulary a header may name. A
        // header naming one must directly include a header providing
        // it — relying on transitive includes breaks the next
        // refactor. Deliberately not exhaustive: high-signal types
        // only, so the check stays quiet on fundamentals.
        static const std::array<StdName, 24> kNames = {{
            {"std::vector", {"<vector>"}},
            {"std::deque", {"<deque>"}},
            {"std::string", {"<string>"}},
            {"std::unordered_map", {"<unordered_map>"}},
            {"std::unordered_set", {"<unordered_set>"}},
            {"std::optional", {"<optional>"}},
            {"std::function", {"<functional>"}},
            {"std::unique_ptr", {"<memory>"}},
            {"std::shared_ptr", {"<memory>"}},
            {"std::make_unique", {"<memory>"}},
            {"std::mutex", {"<mutex>"}},
            {"std::lock_guard", {"<mutex>"}},
            {"std::unique_lock", {"<mutex>"}},
            {"std::condition_variable", {"<condition_variable>"}},
            {"std::condition_variable_any", {"<condition_variable>"}},
            {"std::thread", {"<thread>"}},
            {"std::atomic", {"<atomic>"}},
            {"std::array", {"<array>"}},
            {"std::pair", {"<utility>"}},
            {"std::exception_ptr", {"<exception>"}},
            {"std::ostream", {"<ostream>", "<iosfwd>", "<iostream>"}},
            {"std::istream", {"<istream>", "<iosfwd>", "<iostream>"}},
            {"std::multimap", {"<map>"}},
            {"std::map", {"<map>"}},
        }};
        std::set<std::string> includes;
        for (const auto &line : f.code) {
            const size_t hash = line.find('#');
            if (hash == std::string::npos)
                continue;
            const size_t inc = line.find("include", hash);
            if (inc == std::string::npos)
                continue;
            const size_t open = line.find('<', inc);
            const size_t close = line.find('>', open);
            if (open != std::string::npos && close != std::string::npos)
                includes.insert(line.substr(open, close - open + 1));
        }
        for (const auto &name : kNames) {
            const std::string token(name.token);
            bool satisfied = false;
            for (const char *h : name.headers)
                if (includes.count(h) != 0)
                    satisfied = true;
            if (satisfied)
                continue;
            for (size_t li = 0; li < f.code.size() && !satisfied; ++li) {
                const std::string &line = f.code[li];
                size_t pos = 0;
                while ((pos = line.find(token, pos)) != std::string::npos) {
                    if (pos + token.size() >= line.size() ||
                        !identChar(line[pos + token.size()])) {
                        out.push_back(Finding{
                            f.relPath, static_cast<uint32_t>(li + 1), id(),
                            "uses `" + token + "` but does not include " +
                                *name.headers.begin() +
                                " directly (include what you name)"});
                        satisfied = true; // report once per name.
                        break;
                    }
                    pos += token.size();
                }
            }
        }
    }
};

// -- R5: console-io -------------------------------------------------------

class ConsoleIoRule : public Rule
{
  public:
    std::string id() const override { return "console-io"; }

    void check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        // The library layers must stay silent: reporting belongs to
        // tools/ and src/stats (and the obs registry/trace exports).
        // A stray printf in the device model is both a layering leak
        // and an unmeasured hot-path cost.
        if (!underAny(f, {"src/sim", "src/ssd", "src/nand", "src/core",
                          "src/blockdev", "src/obs", "src/resilience"}))
            return;
        // Stream objects banned anywhere they are named.
        static const std::array<const char *, 3> banned = {
            "cout", "cerr", "clog"};
        // stdio banned only as a call (`puts` et al. are common words;
        // snprintf-into-buffer stays legal — it does not do I/O).
        static const std::array<const char *, 5> bannedCalls = {
            "printf", "fprintf", "puts", "fputs", "putchar"};
        for (size_t li = 0; li < f.code.size(); ++li) {
            const std::string &line = f.code[li];
            const uint32_t lineNo = static_cast<uint32_t>(li + 1);
            for (const char *word : banned)
                findWord(line, word, false, lineNo, f, out);
            for (const char *word : bannedCalls)
                findWord(line, word, true, lineNo, f, out);
        }
    }

  private:
    void findWord(const std::string &line, const std::string &word,
                  bool callOnly, uint32_t lineNo, const SourceFile &f,
                  std::vector<Finding> &out) const
    {
        size_t pos = 0;
        while ((pos = line.find(word, pos)) != std::string::npos) {
            const size_t after = pos + word.size();
            if (wholeWord(line, pos, word.size()) &&
                (!callOnly || (skipSpaces(line, after) < line.size() &&
                               line[skipSpaces(line, after)] == '('))) {
                out.push_back(Finding{
                    f.relPath, lineNo, id(),
                    "`" + word +
                        "` in a library dir — console I/O belongs to "
                        "tools/ or src/stats; return data instead"});
            }
            pos = after;
        }
    }
};

// -- R6: nodiscard --------------------------------------------------------

class NodiscardRule : public Rule
{
  public:
    std::string id() const override { return "nodiscard"; }

    void check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        // An IoResult carries the request's error status and an
        // ignored LoadError is a silently-swallowed restore failure —
        // both must be [[nodiscard]] on the I/O-path and recovery
        // public APIs so call sites cannot drop them.
        if (!f.isHeader() ||
            !underAny(f, {"src/blockdev", "src/resilience",
                          "src/recovery"}))
            return;
        const JoinedCode j = JoinedCode::from(f);
        for (const char *type : {"IoResult", "LoadError"})
            checkType(j, type, f, out);
    }

  private:
    void checkType(const JoinedCode &j, const std::string &type,
                   const SourceFile &f, std::vector<Finding> &out) const
    {
        const std::string &text = j.text;
        size_t pos = 0;
        while ((pos = text.find(type, pos)) != std::string::npos) {
            const size_t typePos = pos;
            pos += type.size();
            if (!wholeWord(text, typePos, type.size()))
                continue;
            // Must read as a declaration `Type name(`: an identifier
            // then '(' right after the type. Anything else (a local,
            // a parameter, a member, `= Type`, a cast) is not a
            // returning API.
            size_t i = skipSpaces(text, typePos + type.size());
            const size_t nameBegin = i;
            while (i < text.size() && identChar(text[i]))
                ++i;
            if (i == nameBegin)
                continue;
            const std::string name = text.substr(nameBegin, i - nameBegin);
            i = skipSpaces(text, i);
            if (i >= text.size() || text[i] != '(')
                continue;
            // Back up over namespace qualifiers (`blockdev::IoResult`)
            // to the start of the return-type expression.
            size_t declBegin = typePos;
            while (declBegin >= 2 && text[declBegin - 1] == ':' &&
                   text[declBegin - 2] == ':') {
                declBegin -= 2;
                while (declBegin > 0 && identChar(text[declBegin - 1]))
                    --declBegin;
            }
            // The declaration's specifier region runs from the
            // previous statement/brace boundary; [[nodiscard]] (or a
            // disqualifying token) must appear in it.
            size_t regionBegin = declBegin;
            while (regionBegin > 0 && text[regionBegin - 1] != ';' &&
                   text[regionBegin - 1] != '{' &&
                   text[regionBegin - 1] != '}')
                --regionBegin;
            const std::string region =
                text.substr(regionBegin, i - regionBegin);
            // `= IoResult(...)`, `return IoResult(...)`, `(IoResult(`:
            // expression uses of the type name, not declarations.
            const std::string prefix =
                text.substr(regionBegin, declBegin - regionBegin);
            if (prefix.find('=') != std::string::npos ||
                prefix.find('(') != std::string::npos ||
                prefix.find("return") != std::string::npos ||
                prefix.find("new") != std::string::npos)
                continue;
            if (region.find("[[nodiscard]]") != std::string::npos)
                continue;
            out.push_back(Finding{
                f.relPath, j.lineAt(typePos), id(),
                "public API `" + name + "` returns " + type +
                    " without [[nodiscard]] — dropping an I/O status "
                    "or load error must not compile silently"});
        }
    }
};

// -- R7: heap-alloc -------------------------------------------------------

class HeapAllocRule : public Rule
{
  public:
    std::string id() const override { return "heap-alloc"; }

    void check(const SourceFile &f, std::vector<Finding> &out) const override
    {
        // The SoA rework made the per-request core allocation-free:
        // arenas, flat tables and packed bitmaps only. Ban the
        // allocating vocabulary (`new`, std::make_unique/make_shared)
        // in that core so a convenience allocation cannot creep back
        // onto the hot path. Placement new (`new (`) stays legal —
        // sim::SmallCallback constructs into inline storage — and a
        // deliberate cold-path allocation can carry a reasoned allow
        // marker for this rule.
        static const std::array<const char *, 3> kHotFiles = {
            "src/ssd/page_mapper.cc", "src/ssd/garbage_collector.cc",
            "src/ssd/write_buffer.cc"};
        bool scoped = underAny(f, {"src/sim", "src/nand"});
        for (const char *p : kHotFiles)
            scoped = scoped || f.relPath == p;
        if (!scoped)
            return;
        for (size_t li = 0; li < f.code.size(); ++li) {
            const std::string &line = f.code[li];
            const uint32_t lineNo = static_cast<uint32_t>(li + 1);
            const size_t first = line.find_first_not_of(" \t");
            if (first != std::string::npos && line[first] == '#')
                continue; // preprocessor (`#include <new>`).
            findNew(line, lineNo, f, out);
            for (const char *word :
                 {"make_unique", "make_shared",
                  "make_unique_for_overwrite",
                  "make_shared_for_overwrite"})
                findMaker(line, word, lineNo, f, out);
        }
    }

  private:
    void findNew(const std::string &line, uint32_t lineNo,
                 const SourceFile &f, std::vector<Finding> &out) const
    {
        size_t pos = 0;
        while ((pos = line.find("new", pos)) != std::string::npos) {
            const size_t after = pos + 3;
            if (!wholeWord(line, pos, 3)) {
                pos = after;
                continue;
            }
            // Placement new constructs into caller-owned storage: the
            // next token is '('. A heap `new T` starts with a type
            // name (possibly cv-qualified or ::-scoped).
            const size_t next = skipSpaces(line, after);
            if (next < line.size() && line[next] == '(') {
                pos = after;
                continue;
            }
            out.push_back(Finding{
                f.relPath, lineNo, id(),
                "`new` in the allocation-free core — use an arena, a "
                "flat table, or inline storage (placement `new (` is "
                "exempt)"});
            pos = after;
        }
    }

    void findMaker(const std::string &line, const std::string &word,
                   uint32_t lineNo, const SourceFile &f,
                   std::vector<Finding> &out) const
    {
        size_t pos = 0;
        while ((pos = line.find(word, pos)) != std::string::npos) {
            const size_t after = pos + word.size();
            if (wholeWord(line, pos, word.size()))
                out.push_back(Finding{
                    f.relPath, lineNo, id(),
                    "`" + word +
                        "` in the allocation-free core — no per-"
                        "request heap allocation in src/sim, src/nand "
                        "or the FTL hot files"});
            pos = after;
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
makeDefaultRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<WallClockRule>());
    rules.push_back(std::make_unique<UnorderedIterRule>());
    rules.push_back(std::make_unique<StdFunctionRule>());
    rules.push_back(std::make_unique<HeaderHygieneRule>());
    rules.push_back(std::make_unique<ConsoleIoRule>());
    rules.push_back(std::make_unique<NodiscardRule>());
    rules.push_back(std::make_unique<HeapAllocRule>());
    return rules;
}

} // namespace ssdcheck::lint
