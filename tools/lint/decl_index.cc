/**
 * @file
 * Declaration indexer implementation: one linear pass over the
 * blanked text with an explicit scope stack. See decl_index.h for
 * scope and rationale.
 */
#include "lint/decl_index.h"

#include <algorithm>
#include <cctype>

namespace ssdcheck::lint {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
spaceChar(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/** Collapse runs of whitespace to single spaces and trim. */
std::string
normalize(const std::string &s)
{
    std::string out;
    bool pendingSpace = false;
    for (char c : s) {
        if (spaceChar(c)) {
            pendingSpace = !out.empty();
            continue;
        }
        if (pendingSpace) {
            out += ' ';
            pendingSpace = false;
        }
        out += c;
    }
    return out;
}

std::vector<std::string>
tokens(const std::string &s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        if (identChar(s[i])) {
            size_t j = i;
            while (j < s.size() && identChar(s[j]))
                ++j;
            out.push_back(s.substr(i, j - i));
            i = j;
        } else {
            ++i;
        }
    }
    return out;
}

bool
startsWithWord(const std::string &s, const std::string &word)
{
    return s.compare(0, word.size(), word) == 0 &&
           (s.size() == word.size() || !identChar(s[word.size()]));
}

/**
 * Offset of the first '(' at zero ()/[]/{} nesting, or npos. Used to
 * split "declares a function" from "declares a variable": attribute
 * arguments like [[deprecated( )]] sit inside brackets and do not
 * count.
 */
size_t
firstTopLevelParen(const std::string &s)
{
    int square = 0, brace = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '[')
            ++square;
        else if (c == ']')
            --square;
        else if (c == '{')
            ++brace;
        else if (c == '}')
            --brace;
        else if (c == '(' && square == 0 && brace == 0)
            return i;
    }
    return std::string::npos;
}

/** Does a top-level '=' appear in s before offset @p end? */
bool
topLevelEqBefore(const std::string &s, size_t end)
{
    int square = 0, brace = 0, angle = 0;
    for (size_t i = 0; i < end && i < s.size(); ++i) {
        const char c = s[i];
        if (c == '[')
            ++square;
        else if (c == ']')
            --square;
        else if (c == '{')
            ++brace;
        else if (c == '}')
            --brace;
        else if (c == '<' && i > 0 && (identChar(s[i - 1]) || s[i - 1] == '>'))
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == '=' && square == 0 && brace == 0 && angle == 0) {
            // Not ==, <=, >=, !=, +=, ... and not `operator=`.
            const bool cmp =
                (i + 1 < s.size() && s[i + 1] == '=') ||
                (i > 0 && (s[i - 1] == '=' || s[i - 1] == '<' ||
                           s[i - 1] == '>' || s[i - 1] == '!' ||
                           s[i - 1] == '+' || s[i - 1] == '-' ||
                           s[i - 1] == '*' || s[i - 1] == '/' ||
                           s[i - 1] == '&' || s[i - 1] == '|' ||
                           s[i - 1] == '^' || s[i - 1] == '%'));
            const bool opAssign =
                i >= 8 && s.compare(i - 8, 8, "operator") == 0;
            if (!cmp && !opAssign)
                return true;
        }
    }
    return false;
}

/** Split on commas at zero <>/()/[]/{} nesting. */
std::vector<std::string>
splitTopLevelCommas(const std::string &s)
{
    std::vector<std::string> out;
    int paren = 0, square = 0, brace = 0, angle = 0;
    size_t start = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(')
            ++paren;
        else if (c == ')')
            --paren;
        else if (c == '[')
            ++square;
        else if (c == ']')
            --square;
        else if (c == '{')
            ++brace;
        else if (c == '}')
            --brace;
        else if (c == '<' && i > 0 && (identChar(s[i - 1]) || s[i - 1] == '>'))
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == ',' && paren == 0 && square == 0 && brace == 0 &&
                 angle == 0) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    out.push_back(s.substr(start));
    return out;
}

/** Parse one parameter declarator into (type, name). */
Param
parseParam(const std::string &raw)
{
    Param p;
    std::string s = normalize(raw);
    // Strip a default argument.
    int square = 0, brace = 0, angle = 0, paren = 0;
    for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(')
            ++paren;
        else if (c == ')')
            --paren;
        else if (c == '[')
            ++square;
        else if (c == ']')
            --square;
        else if (c == '{')
            ++brace;
        else if (c == '}')
            --brace;
        else if (c == '<' && i > 0 && (identChar(s[i - 1]) || s[i - 1] == '>'))
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == '=' && paren == 0 && square == 0 && brace == 0 &&
                 angle == 0) {
            s = s.substr(0, i);
            break;
        }
    }
    // Drop an array suffix (`int a[4]`).
    const size_t arr = s.find('[');
    if (arr != std::string::npos)
        s = s.substr(0, arr);
    while (!s.empty() && spaceChar(s.back()))
        s.pop_back();
    if (s.empty() || s == "void" || s == "...")
        return p;
    // The name is a trailing identifier that is not the sole token
    // (a lone `uint64_t` is an unnamed parameter of that type).
    size_t end = s.size();
    size_t begin = end;
    while (begin > 0 && identChar(s[begin - 1]))
        --begin;
    const std::string last = s.substr(begin, end - begin);
    static const char *kTypeWords[] = {
        "int",      "long",   "short", "char",   "bool",     "float",
        "double",   "auto",   "void",  "size_t", "uint8_t",  "uint16_t",
        "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t",
        "int64_t",  "unsigned", "signed", "const"};
    bool lastIsTypeWord = false;
    for (const char *w : kTypeWords)
        lastIsTypeWord = lastIsTypeWord || last == w;
    const std::string before = normalize(s.substr(0, begin));
    const bool qualified = !before.empty() && before.size() >= 2 &&
                           before.compare(before.size() - 2, 2, "::") == 0;
    if (!last.empty() && !lastIsTypeWord && !before.empty() && !qualified &&
        std::isdigit(static_cast<unsigned char>(last[0])) == 0) {
        p.name = last;
        p.type = before;
        while (!p.type.empty() && spaceChar(p.type.back()))
            p.type.pop_back();
    } else {
        p.type = s;
    }
    return p;
}

std::vector<Param>
parseParams(const std::string &inside)
{
    std::vector<Param> out;
    const std::string body = normalize(inside);
    if (body.empty() || body == "void")
        return out;
    for (const auto &piece : splitTopLevelCommas(body)) {
        Param p = parseParam(piece);
        if (!p.type.empty() || !p.name.empty())
            out.push_back(std::move(p));
    }
    return out;
}

/** Keywords that head statements the member parser must ignore. */
bool
skippableClassStatement(const std::string &stmt)
{
    for (const char *kw : {"using", "typedef", "friend", "static_assert",
                           "enum", "class", "struct", "union", "public",
                           "private", "protected"})
        if (startsWithWord(stmt, kw))
            return true;
    return false;
}

/** Strip declaration specifiers that precede the type. Returns the
 *  stripped statement; sets flags for the ones the rules care about. */
std::string
stripSpecifiers(std::string s, bool *isStatic, bool *isVirtual)
{
    bool changed = true;
    while (changed) {
        changed = false;
        while (!s.empty() && spaceChar(s.front()))
            s.erase(s.begin());
        // Attributes.
        if (s.size() >= 2 && s[0] == '[' && s[1] == '[') {
            const size_t close = s.find("]]");
            if (close == std::string::npos)
                break;
            s.erase(0, close + 2);
            changed = true;
            continue;
        }
        for (const char *kw : {"static", "virtual", "inline", "constexpr",
                               "explicit", "mutable", "extern"}) {
            if (startsWithWord(s, kw)) {
                if (std::string(kw) == "static" && isStatic != nullptr)
                    *isStatic = true;
                if (std::string(kw) == "virtual" && isVirtual != nullptr)
                    *isVirtual = true;
                s.erase(0, std::string(kw).size());
                changed = true;
                break;
            }
        }
        // A template<...> prefix on a member template.
        if (startsWithWord(s, "template")) {
            const size_t open = s.find('<');
            if (open == std::string::npos)
                break;
            int depth = 0;
            size_t i = open;
            for (; i < s.size(); ++i) {
                if (s[i] == '<')
                    ++depth;
                else if (s[i] == '>' && --depth == 0)
                    break;
            }
            if (i >= s.size())
                break;
            s.erase(0, i + 1);
            changed = true;
        }
    }
    return s;
}

/** Name of the entity declared by a function-shaped statement: the
 *  identifier (or operator token) immediately left of @p parenPos. */
std::string
functionName(const std::string &stmt, size_t parenPos)
{
    size_t end = parenPos;
    while (end > 0 && spaceChar(stmt[end - 1]))
        --end;
    size_t begin = end;
    while (begin > 0 && identChar(stmt[begin - 1]))
        --begin;
    std::string name = stmt.substr(begin, end - begin);
    if (begin > 0 && stmt[begin - 1] == '~')
        name = "~" + name;
    if (name.empty()) {
        // operator==, operator+, operator() ... : back up over the
        // symbol run to the `operator` keyword.
        size_t i = end;
        while (i > 0 && !identChar(stmt[i - 1]) && !spaceChar(stmt[i - 1]))
            --i;
        size_t kwBegin = i;
        while (kwBegin > 0 && identChar(stmt[kwBegin - 1]))
            --kwBegin;
        if (stmt.compare(kwBegin, i - kwBegin, "operator") == 0)
            name = stmt.substr(kwBegin, end - kwBegin);
    }
    return name;
}

/** For out-of-line definitions: the qualifier immediately left of
 *  `::name`, skipping a template argument list (`Foo<T>::name`). */
std::string
qualifierBefore(const std::string &stmt, size_t nameBegin)
{
    size_t i = nameBegin;
    while (i > 0 && spaceChar(stmt[i - 1]))
        --i;
    if (i < 2 || stmt[i - 1] != ':' || stmt[i - 2] != ':')
        return "";
    i -= 2;
    while (i > 0 && spaceChar(stmt[i - 1]))
        --i;
    if (i > 0 && stmt[i - 1] == '>') {
        int depth = 0;
        while (i > 0) {
            if (stmt[i - 1] == '>')
                ++depth;
            else if (stmt[i - 1] == '<' && --depth == 0) {
                --i;
                break;
            }
            --i;
        }
        while (i > 0 && spaceChar(stmt[i - 1]))
            --i;
    }
    size_t begin = i;
    while (begin > 0 && identChar(stmt[begin - 1]))
        --begin;
    return stmt.substr(begin, i - begin);
}

/**
 * Parse a `snapshot:skip(<reason>)` marker on one raw line. Only the
 * paren form counts, and a reason containing angle brackets or quotes
 * is documentation (`snapshot:skip(<reason>)` in a rule description),
 * not an annotation — mirroring how validRuleId keeps `lint:allow`
 * placeholders out of the suppression set.
 */
SnapshotSkip
parseSkipLine(const std::string &raw)
{
    SnapshotSkip skip;
    const size_t pos = raw.find("snapshot:skip(");
    if (pos == std::string::npos)
        return skip;
    const size_t open = pos + std::string("snapshot:skip").size();
    const size_t close = raw.find(')', open);
    if (close == std::string::npos)
        return skip;
    const std::string reason = raw.substr(open + 1, close - open - 1);
    if (reason.find_first_of("<>\"") != std::string::npos)
        return skip;
    skip.present = true;
    skip.hasReason = reason.find_first_not_of(" \t") != std::string::npos;
    return skip;
}

/** Raw-line scan for a snapshot:skip marker in [first, last]. */
SnapshotSkip
findSkipMarker(const SourceFile &f, uint32_t first, uint32_t last)
{
    SnapshotSkip skip;
    for (uint32_t ln = first; ln <= last && ln <= f.raw.size(); ++ln) {
        const SnapshotSkip s = parseSkipLine(f.raw[ln - 1]);
        if (s.present)
            skip = s;
    }
    return skip;
}

/** Scope-stack entry for the linear scan. */
struct Scope
{
    enum class Kind : uint8_t
    {
        Namespace,
        Class,
        Block,
    };
    Kind kind = Kind::Block;
    size_t classIdx = 0; ///< Into a file-local class list, for Kind::Class.
    bool publicAccess = false;
};

} // namespace

bool
containsWord(const std::string &text, const std::string &word)
{
    size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        const bool left = pos == 0 || !identChar(text[pos - 1]);
        const size_t after = pos + word.size();
        const bool right = after >= text.size() || !identChar(text[after]);
        if (left && right)
            return true;
        pos = after;
    }
    return false;
}

const Method *
ClassInfo::findMethod(const std::string &n) const
{
    for (const auto &m : methods)
        if (m.name == n)
            return &m;
    return nullptr;
}

std::vector<const ClassInfo *>
DeclIndex::classesNamed(const std::string &name) const
{
    std::vector<const ClassInfo *> out;
    for (const auto &c : classes)
        if (c.name == name)
            out.push_back(&c);
    return out;
}

namespace {

/** Path without its extension, for header/.cc pairing. */
std::string
pathStem(const std::string &path)
{
    const size_t dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(0, dot);
}

} // namespace

std::string
DeclIndex::methodBodyText(const ClassInfo &cls,
                          const std::string &method) const
{
    std::string out;
    for (const auto &m : cls.methods)
        if (m.name == method && m.hasBody)
            out += m.body + "\n";
    // Out-of-line bodies must come from the class's own translation
    // unit (the same file, or the header's sibling .cc) — matching on
    // the bare class name alone would cross-wire same-named classes
    // in different namespaces.
    for (const auto &b : bodies)
        if (b.className == cls.name && b.method == method &&
            (b.file == cls.file ||
             pathStem(b.file) == pathStem(cls.file)))
            out += b.body + "\n";
    return out;
}

void
DeclIndex::addFile(const SourceFile &f)
{
    // Join the blanked lines, additionally blanking preprocessor
    // directives (incl. backslash continuations) so macro bodies
    // cannot unbalance the scanner's brace accounting.
    std::string text;
    std::vector<size_t> lineStart;
    lineStart.reserve(f.code.size());
    bool continued = false;
    for (size_t li = 0; li < f.code.size(); ++li) {
        lineStart.push_back(text.size());
        std::string line = f.code[li];
        const size_t first = line.find_first_not_of(" \t");
        const bool pp =
            continued || (first != std::string::npos && line[first] == '#');
        continued = pp && !line.empty() && line.back() == '\\';
        if (pp)
            line.assign(line.size(), ' ');
        text += line;
        text += '\n';
    }
    const auto lineAt = [&](size_t offset) {
        const auto it = std::upper_bound(lineStart.begin(), lineStart.end(),
                                         offset);
        return static_cast<uint32_t>(it - lineStart.begin());
    };

    // Record every snapshot:skip marker; the coverage rule later
    // diagnoses the ones no member claimed.
    for (size_t li = 0; li < f.raw.size(); ++li)
        if (parseSkipLine(f.raw[li]).present)
            skipMarkers.push_back(
                SkipMarker{f.relPath, static_cast<uint32_t>(li + 1)});

    std::vector<ClassInfo> fileClasses;
    std::vector<Scope> stack;
    stack.push_back(Scope{Scope::Kind::Namespace, 0, true});

    std::string stmt;
    size_t stmtStart = 0; ///< Offset of the statement's first char.

    const auto resetStmt = [&]() { stmt.clear(); };
    const auto appendChar = [&](char c, size_t offset) {
        if (spaceChar(c)) {
            if (!stmt.empty() && stmt.back() != ' ')
                stmt += ' ';
            return;
        }
        if (stmt.empty() || stmt == " ") {
            stmt.clear();
            stmtStart = offset;
        }
        stmt += c;
    };

    /** Capture a balanced-brace body starting at text[open] == '{'.
     *  Returns offset just past the closing brace. */
    const auto captureBody = [&](size_t open, std::string *body) {
        int depth = 0;
        size_t i = open;
        for (; i < text.size(); ++i) {
            if (text[i] == '{')
                ++depth;
            else if (text[i] == '}' && --depth == 0) {
                ++i;
                break;
            }
        }
        if (body != nullptr)
            *body = text.substr(open + 1,
                                i > open + 2 ? i - open - 2 : 0);
        return i;
    };

    /** Parse the pending statement as a class-scope declaration
     *  ending at line @p endLine. @p bodyOpen is the offset of an
     *  inline body's '{', or npos for a plain `;` declaration.
     *  Returns past-the-body offset (or npos when no body). */
    const auto classMember = [&](Scope &sc, uint32_t endLine,
                                 size_t bodyOpen) -> size_t {
        ClassInfo &cls = fileClasses[sc.classIdx];
        std::string s = normalize(stmt);
        if (s.empty() || skippableClassStatement(s))
            return bodyOpen == std::string::npos
                       ? std::string::npos
                       : captureBody(bodyOpen, nullptr);
        bool isStatic = false;
        s = stripSpecifiers(s, &isStatic, nullptr);
        const size_t paren = firstTopLevelParen(s);
        const bool isFunction =
            paren != std::string::npos && !topLevelEqBefore(s, paren);
        if (isFunction) {
            Method m;
            m.name = functionName(s, paren);
            int depth = 0;
            size_t close = paren;
            for (; close < s.size(); ++close) {
                if (s[close] == '(')
                    ++depth;
                else if (s[close] == ')' && --depth == 0)
                    break;
            }
            m.params = parseParams(s.substr(paren + 1, close - paren - 1));
            m.line = lineAt(stmtStart);
            m.isPublic = sc.publicAccess;
            m.isStatic = isStatic;
            size_t next = std::string::npos;
            if (bodyOpen != std::string::npos) {
                m.hasBody = true;
                next = captureBody(bodyOpen, &m.body);
            }
            if (!m.name.empty())
                cls.methods.push_back(std::move(m));
            return next;
        }
        if (isStatic) // static data member: not snapshot state.
            return std::string::npos;
        // Member variable(s). Cut each declarator at its initializer
        // or bit-field width, then take the trailing identifier.
        for (const auto &piece : splitTopLevelCommas(s)) {
            std::string d = piece;
            int angle = 0, sq = 0, br = 0;
            for (size_t i = 0; i < d.size(); ++i) {
                const char c = d[i];
                if (angle == 0 && sq == 0 && br == 0) {
                    const bool scopeColon =
                        c == ':' &&
                        ((i + 1 < d.size() && d[i + 1] == ':') ||
                         (i > 0 && d[i - 1] == ':'));
                    if (c == '=' || c == '{' ||
                        (c == ':' && !scopeColon)) {
                        d = d.substr(0, i);
                        break;
                    }
                }
                if (c == '<' && i > 0 &&
                    (identChar(d[i - 1]) || d[i - 1] == '>'))
                    ++angle;
                else if (c == '>' && angle > 0)
                    --angle;
                else if (c == '[')
                    ++sq;
                else if (c == ']')
                    --sq;
                else if (c == '{')
                    ++br;
                else if (c == '}')
                    --br;
            }
            const size_t arr = d.find('[');
            if (arr != std::string::npos)
                d = d.substr(0, arr);
            while (!d.empty() && spaceChar(d.back()))
                d.pop_back();
            size_t end = d.size();
            size_t begin = end;
            while (begin > 0 && identChar(d[begin - 1]))
                --begin;
            if (begin == end || begin == 0)
                continue; // No `type name` shape.
            std::string type = normalize(d.substr(0, begin));
            if (type.empty() ||
                (type.size() >= 2 &&
                 type.compare(type.size() - 2, 2, "::") == 0))
                continue;
            Member mem;
            mem.name = d.substr(begin, end - begin);
            mem.type = std::move(type);
            mem.line = lineAt(stmtStart);
            mem.skip = findSkipMarker(f, mem.line, endLine);
            cls.members.push_back(std::move(mem));
        }
        return std::string::npos;
    };

    size_t i = 0;
    while (i < text.size()) {
        const char c = text[i];
        if (c == '{') {
            std::string head = normalize(stmt);
            Scope &top = stack.back();
            // A '{' while the statement's parens are still open is a
            // braced default argument (`Config cfg = {}` mid-
            // parameter-list), not a body: consume it and keep
            // collecting the declaration.
            int parenDepth = 0;
            for (char hc : head) {
                if (hc == '(')
                    ++parenDepth;
                else if (hc == ')')
                    --parenDepth;
            }
            if (parenDepth > 0) {
                i = captureBody(i, nullptr);
                stmt += "{}";
                continue;
            }
            // Class/struct head (not a forward reference inside a
            // statement: the keyword must lead, after template<>).
            std::string stripped =
                stripSpecifiers(head, nullptr, nullptr);
            const bool classHead =
                (startsWithWord(stripped, "class") ||
                 startsWithWord(stripped, "struct")) &&
                !startsWithWord(stripped, "struct {");
            if (startsWithWord(stripped, "namespace")) {
                stack.push_back(Scope{Scope::Kind::Namespace, 0, true});
                resetStmt();
                ++i;
                continue;
            }
            if (startsWithWord(stripped, "enum") ||
                startsWithWord(stripped, "union")) {
                i = captureBody(i, nullptr);
                resetStmt();
                continue;
            }
            if (classHead) {
                const bool isStruct = startsWithWord(stripped, "struct");
                std::string rest =
                    stripped.substr(isStruct ? 6 : 5);
                // Cut the base clause at a single ':' (skipping `::`
                // scope qualifiers) and any template argument list,
                // then the name is the last remaining identifier —
                // handles `Outer::Nested` and `hash<TypedId<Tag>>`.
                for (size_t k = 0; k < rest.size(); ++k) {
                    if (rest[k] != ':')
                        continue;
                    if (k + 1 < rest.size() && rest[k + 1] == ':') {
                        ++k;
                        continue;
                    }
                    if (k > 0 && rest[k - 1] == ':')
                        continue;
                    rest = rest.substr(0, k);
                    break;
                }
                const size_t angleOpen = rest.find('<');
                if (angleOpen != std::string::npos)
                    rest = rest.substr(0, angleOpen);
                std::string name;
                for (const auto &tok : tokens(rest)) {
                    if (tok == "final" || tok == "alignas")
                        continue;
                    name = tok;
                }
                if (name.empty()) {
                    // Anonymous struct: treat as an opaque block.
                    stack.push_back(Scope{Scope::Kind::Block, 0, false});
                    resetStmt();
                    ++i;
                    continue;
                }
                ClassInfo cls;
                cls.name = name;
                cls.file = f.relPath;
                cls.line = lineAt(stmtStart);
                cls.isStruct = isStruct;
                fileClasses.push_back(std::move(cls));
                stack.push_back(Scope{Scope::Kind::Class,
                                      fileClasses.size() - 1, isStruct});
                resetStmt();
                ++i;
                continue;
            }
            if (top.kind == Scope::Kind::Class) {
                const std::string s =
                    stripSpecifiers(head, nullptr, nullptr);
                const size_t paren = firstTopLevelParen(s);
                if (paren != std::string::npos &&
                    !topLevelEqBefore(s, paren)) {
                    // Inline method body.
                    i = classMember(top, lineAt(i), i);
                    resetStmt();
                    continue;
                }
                // Brace initializer inside a member declaration:
                // consume it and keep collecting until ';'.
                std::string ignored;
                i = captureBody(i, &ignored);
                stmt += "{}";
                continue;
            }
            if (top.kind == Scope::Kind::Namespace) {
                const std::string s =
                    stripSpecifiers(head, nullptr, nullptr);
                const size_t paren = firstTopLevelParen(s);
                if (paren != std::string::npos &&
                    !topLevelEqBefore(s, paren)) {
                    const std::string name = functionName(s, paren);
                    size_t nameBegin = s.rfind(name, paren);
                    const std::string qual =
                        nameBegin == std::string::npos
                            ? ""
                            : qualifierBefore(s, nameBegin);
                    std::string body;
                    i = captureBody(i, &body);
                    if (!qual.empty()) {
                        bodies.push_back(MethodBody{
                            qual, name, f.relPath, lineAt(stmtStart),
                            std::move(body)});
                    } else if (!name.empty()) {
                        int depth = 0;
                        size_t close = paren;
                        for (; close < s.size(); ++close) {
                            if (s[close] == '(')
                                ++depth;
                            else if (s[close] == ')' && --depth == 0)
                                break;
                        }
                        freeFunctions.push_back(FreeFunction{
                            name,
                            parseParams(
                                s.substr(paren + 1, close - paren - 1)),
                            f.relPath, lineAt(stmtStart)});
                    }
                    resetStmt();
                    continue;
                }
            }
            stack.push_back(Scope{Scope::Kind::Block, 0, false});
            resetStmt();
            ++i;
            continue;
        }
        if (c == '}') {
            if (stack.size() > 1)
                stack.pop_back();
            resetStmt();
            ++i;
            continue;
        }
        if (c == ';') {
            Scope &top = stack.back();
            if (top.kind == Scope::Kind::Class) {
                classMember(top, lineAt(i), std::string::npos);
            } else if (top.kind == Scope::Kind::Namespace) {
                // Free-function prototype in a header.
                const std::string s = stripSpecifiers(normalize(stmt),
                                                      nullptr, nullptr);
                const size_t paren = firstTopLevelParen(s);
                if (paren != std::string::npos &&
                    !topLevelEqBefore(s, paren)) {
                    const std::string name = functionName(s, paren);
                    const size_t nameBegin = s.rfind(name, paren);
                    const bool qualified =
                        nameBegin != std::string::npos &&
                        !qualifierBefore(s, nameBegin).empty();
                    if (!name.empty() && !qualified) {
                        int depth = 0;
                        size_t close = paren;
                        for (; close < s.size(); ++close) {
                            if (s[close] == '(')
                                ++depth;
                            else if (s[close] == ')' && --depth == 0)
                                break;
                        }
                        freeFunctions.push_back(FreeFunction{
                            name,
                            parseParams(
                                s.substr(paren + 1, close - paren - 1)),
                            f.relPath, lineAt(stmtStart)});
                    }
                }
            }
            resetStmt();
            ++i;
            continue;
        }
        if (c == ':' && stack.back().kind == Scope::Kind::Class) {
            const std::string s = normalize(stmt);
            bool isLabel = false;
            for (const char *kw : {"public", "private", "protected"}) {
                if (s == kw) {
                    stack.back().publicAccess = s == "public";
                    isLabel = true;
                }
            }
            if (isLabel) {
                resetStmt();
                ++i;
                continue;
            }
        }
        appendChar(c, i);
        ++i;
    }

    for (auto &cls : fileClasses)
        classes.push_back(std::move(cls));
}

DeclIndex
DeclIndex::build(const std::vector<SourceFile> &files)
{
    DeclIndex idx;
    for (const auto &f : files)
        idx.addFile(f);
    return idx;
}

} // namespace ssdcheck::lint
