/**
 * @file
 * The ssdcheck CLI's consolidated exit-code contract.
 *
 * Every gate the CLI can fail maps to one stable nonzero code so CI
 * jobs and the soak/chaos harnesses can branch on *why* a run failed
 * without scraping stderr. The table below is printed by
 * `ssdcheck help` and asserted verbatim by tests/cli_exit_codes_test,
 * so changing a code is an interface break, not a refactor.
 */
#pragma once

namespace ssdcheck::cli {

enum ExitCode : int
{
    kOk = 0,
    /** Unknown command / help requested via a failing path. */
    kUsage = 1,
    /** Bad flag values, unreadable files, unknown presets. */
    kBadArgs = 2,
    /** accuracy --min-recovered-accuracy floor violated. */
    kRecoveryFloor = 3,
    /** bench --baseline perf gate regression. */
    kPerfGate = 4,
    /** run --resume met a corrupt/unparseable snapshot. */
    kCorruptSnapshot = 5,
    /** run --resume met a snapshot from a different config. */
    kConfigMismatch = 6,
    /** run --check-invariants found a cross-layer violation. */
    kInvariantViolation = 7,
    /** chaos campaign: an SLO assertion or the bit-exactness
     *  (--verify) check failed. */
    kSloViolation = 8,
};

/** The operator-facing table (printed by `ssdcheck help`). */
inline constexpr char kExitCodeTable[] =
    "exit codes:\n"
    "  0  success\n"
    "  1  usage error (unknown command)\n"
    "  2  bad arguments / unreadable input\n"
    "  3  recovered-accuracy floor violated (accuracy)\n"
    "  4  perf-gate regression (bench --baseline)\n"
    "  5  corrupt snapshot (run --resume)\n"
    "  6  snapshot config mismatch (run --resume)\n"
    "  7  cross-layer invariant violation (run --check-invariants)\n"
    "  8  SLO violation or nondeterminism (chaos)\n";

} // namespace ssdcheck::cli
