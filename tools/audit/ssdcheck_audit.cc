/**
 * @file
 * ssdcheck_audit — misprediction forensics over an audit JSONL.
 *
 *   ssdcheck_audit <audit.jsonl> [--gc-threshold-ns N]
 *
 * Reads the per-request audit records `ssdcheck trace --audit-out`
 * produced, buckets the HL misses by proximate cause (fault-taint,
 * gc-drift, unmodeled-flush, unknown) and prints the report. The
 * optional --gc-threshold-ns overrides the drift bound used for
 * re-classification (default: the paper-default 3ms GC threshold,
 * matching an unadapted LatencyMonitor).
 *
 * Exit codes: 0 report printed, 1 usage, 2 unreadable/malformed input.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/audit_log.h"

int
main(int argc, char **argv)
{
    std::string path;
    ssdcheck::sim::SimDuration gcThreshold =
        ssdcheck::sim::milliseconds(3);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--gc-threshold-ns") == 0 &&
            i + 1 < argc) {
            gcThreshold = std::strtoll(argv[++i], nullptr, 10);
        } else if (path.empty()) {
            path = argv[i];
        } else {
            path.clear();
            break;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: ssdcheck_audit <audit.jsonl> "
                     "[--gc-threshold-ns N]\n");
        return 1;
    }

    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    ssdcheck::obs::AuditLog log(gcThreshold);
    size_t errorLine = 0;
    if (!ssdcheck::obs::AuditLog::readJsonl(is, &log, &errorLine)) {
        std::fprintf(stderr, "malformed audit file %s: line %zu\n",
                     path.c_str(), errorLine);
        return 2;
    }
    std::printf("%s", log.analyze().format().c_str());
    return 0;
}
