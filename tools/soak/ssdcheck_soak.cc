/**
 * @file
 * ssdcheck_soak — kill-and-resume chaos campaign over the
 * checkpoint/restore subsystem (see DESIGN.md "Crash consistency &
 * state serialization").
 *
 * The harness proves one property end to end: a run that is
 * SIGKILLed at arbitrary request counts — including in the middle of
 * writing a checkpoint — and resumed from its last checkpoint file
 * reaches the *bit-identical* final state of an uninterrupted run.
 *
 *   1. Golden run: the full workload replayed in-process with no
 *      interruptions; its final snapshot bytes are the reference.
 *   2. Chaos cycles: a child `ssdcheck run` process checkpoints every
 *      N requests and SIGKILLs itself at a seeded-random request
 *      count (every --torn-every'th cycle it dies halfway through
 *      writing the checkpoint temp file instead, exercising the
 *      atomic-rename protocol). After each death the harness parses
 *      the surviving checkpoint, restores it in-process and asserts
 *      the cross-layer invariant registry (FTL/NAND agreement, victim
 *      selection, buffer bounds, counter conservation, monotonic
 *      progress).
 *   3. Final cycle: an uninterrupted child resumes from the last
 *      checkpoint, finishes the workload and writes its final state,
 *      which must equal the golden bytes exactly.
 *   4. Telemetry probe (skip with --no-telemetry-probe): a child run
 *      with --listen is parked mid-run via --hang-after-requests; the
 *      harness scrapes /metrics and /runz from the live server, then
 *      asserts /healthz flips to 503 once the parked run stops
 *      publishing (the staleness watchdog is what pages an operator
 *      when a real run wedges), and SIGKILLs the child.
 *
 * Exit 0 only when every cycle verified and the final comparison is
 * byte-for-byte identical. All randomness is seeded (--seed); the
 * campaign itself is reproducible.
 */
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "obs/exporter/http_server.h"
#include "recovery/invariants.h"
#include "recovery/run_state.h"
#include "recovery/snapshot.h"

using namespace ssdcheck;

namespace {

struct Args
{
    std::map<std::string, std::string> options;
    bool has(const std::string &k) const { return options.count(k) > 0; }
    std::string get(const std::string &k, const std::string &dflt) const
    {
        const auto it = options.find(k);
        return it == options.end() ? dflt : it->second;
    }
};

Args
parse(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            continue;
        key = key.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
            a.options[key] = argv[++i];
        else
            a.options[key] = "";
    }
    return a;
}

/** Directory of this executable (to find the sibling ssdcheck CLI). */
std::string
selfDir()
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        return ".";
    buf[n] = '\0';
    std::string path(buf);
    const size_t slash = path.rfind('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Spawn `ssdcheck run` with @p args; return the raw waitpid status. */
int
spawnRun(const std::string &cli, const std::vector<std::string> &args)
{
    std::vector<std::string> full = {cli, "run"};
    full.insert(full.end(), args.begin(), args.end());
    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        return -1;
    }
    if (pid == 0) {
        // Child: silence the per-run report; keep stderr for errors.
        if (FILE *sink = std::fopen("/dev/null", "w")) {
            dup2(fileno(sink), STDOUT_FILENO);
            std::fclose(sink);
        }
        std::vector<char *> argv;
        argv.reserve(full.size() + 1);
        for (std::string &s : full)
            argv.push_back(s.data());
        argv.push_back(nullptr);
        execv(cli.c_str(), argv.data());
        std::perror("execv");
        _exit(127);
    }
    int status = 0;
    if (waitpid(pid, &status, 0) < 0) {
        std::perror("waitpid");
        return -1;
    }
    return status;
}

/** Load + parse + restore + invariant-check one checkpoint file.
 *  @return the checkpoint's cursor, or UINT64_MAX on failure. */
uint64_t
verifyCheckpoint(const recovery::RunParams &params,
                 const std::string &path)
{
    std::vector<uint8_t> bytes;
    std::string detail;
    recovery::LoadError e = recovery::readFile(path, &bytes, &detail);
    if (e != recovery::LoadError::Ok) {
        std::fprintf(stderr, "FAIL: cannot read %s: %s\n", path.c_str(),
                     detail.c_str());
        return UINT64_MAX;
    }
    recovery::Snapshot snap;
    e = snap.parse(bytes, &detail);
    if (e != recovery::LoadError::Ok) {
        std::fprintf(stderr,
                     "FAIL: checkpoint %s did not survive the kill "
                     "[%s]: %s\n",
                     path.c_str(), recovery::toString(e).c_str(),
                     detail.c_str());
        return UINT64_MAX;
    }
    std::string err;
    auto run = recovery::CheckpointableRun::create(params, true, &err);
    if (!run) {
        std::fprintf(stderr, "FAIL: cannot build resume stack: %s\n",
                     err.c_str());
        return UINT64_MAX;
    }
    e = run->restore(snap, &detail);
    if (e != recovery::LoadError::Ok) {
        std::fprintf(stderr, "FAIL: restore of %s failed [%s]: %s\n",
                     path.c_str(), recovery::toString(e).c_str(),
                     detail.c_str());
        return UINT64_MAX;
    }
    const auto violations = recovery::checkInvariants(*run);
    for (const std::string &v : violations)
        std::fprintf(stderr, "FAIL: invariant violated at request %llu: "
                             "%s\n",
                     static_cast<unsigned long long>(run->cursor()),
                     v.c_str());
    if (!violations.empty())
        return UINT64_MAX;
    return run->cursor();
}

std::vector<uint8_t>
readAll(const std::string &path)
{
    std::vector<uint8_t> bytes;
    if (recovery::readFile(path, &bytes) != recovery::LoadError::Ok)
        bytes.clear();
    return bytes;
}

/** Spawn `ssdcheck run` without waiting, stdout redirected to
 *  @p logPath (the telemetry port line is grepped from there).
 *  @return the child pid, or -1 on failure. */
pid_t
spawnRunAsync(const std::string &cli,
              const std::vector<std::string> &args,
              const std::string &logPath)
{
    std::vector<std::string> full = {cli, "run"};
    full.insert(full.end(), args.begin(), args.end());
    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        return -1;
    }
    if (pid == 0) {
        if (FILE *sink = std::fopen(logPath.c_str(), "w")) {
            dup2(fileno(sink), STDOUT_FILENO);
            std::fclose(sink);
        }
        std::vector<char *> argv;
        argv.reserve(full.size() + 1);
        for (std::string &s : full)
            argv.push_back(s.data());
        argv.push_back(nullptr);
        execv(cli.c_str(), argv.data());
        std::perror("execv");
        _exit(127);
    }
    return pid;
}

/** Poll @p logPath for the "telemetry: http://127.0.0.1:PORT" line the
 *  CLI prints (and flushes) once its exporter is listening.
 *  @return the port, or 0 on timeout. */
uint16_t
waitForTelemetryPort(const std::string &logPath, int timeoutMs)
{
    for (int waited = 0; waited < timeoutMs; waited += 50) {
        std::ifstream is(logPath);
        std::string line;
        while (std::getline(is, line)) {
            const std::string needle = "http://127.0.0.1:";
            const size_t at = line.find(needle);
            if (at == std::string::npos)
                continue;
            const int port =
                std::atoi(line.c_str() + at + needle.size());
            if (port > 0 && port <= 65535)
                return static_cast<uint16_t>(port);
        }
        usleep(50 * 1000);
    }
    return 0;
}

/**
 * Telemetry probe: park a child run mid-workload with a live exporter,
 * scrape its endpoints, and assert the staleness watchdog notices that
 * the run stopped publishing. This is the operator-facing contract of
 * a wedged run: /metrics and /runz keep serving the last snapshot
 * (for post-mortem scraping) while /healthz flips to 503.
 */
bool
probeTelemetry(const std::string &cli, const std::string &dir)
{
    const std::string log = dir + "/telemetry.log";
    const pid_t pid = spawnRunAsync(
        cli,
        {"--device", "A", "--workload", "RW Mixed", "--scale", "0.02",
         "--listen", "0", "--stale-ms", "300", "--publish-every", "64",
         "--hang-after-requests", "256"},
        log);
    if (pid < 0)
        return false;

    bool ok = false;
    const uint16_t port = waitForTelemetryPort(log, 5000);
    if (port == 0) {
        std::fprintf(stderr,
                     "FAIL: telemetry child never printed its port "
                     "(see %s)\n",
                     log.c_str());
    } else {
        int status = 0;
        std::string body;
        // The server comes up before the run publishes its first
        // snapshot (device diagnosis runs in between), so poll until
        // /metrics stops answering 503 "no snapshot published yet".
        bool metricsOk = false;
        for (int waited = 0; waited < 10000; waited += 100) {
            if (obs::httpGet(port, "/metrics", &status, &body) &&
                status == 200) {
                metricsOk =
                    body.find("# TYPE") != std::string::npos &&
                    body.find("ssdcheck_") != std::string::npos;
                break;
            }
            usleep(100 * 1000);
        }
        if (!metricsOk)
            std::fprintf(stderr,
                         "FAIL: /metrics scrape on a hung run "
                         "(status %d, %zu bytes)\n",
                         status, body.size());
        const bool runzOk =
            obs::httpGet(port, "/runz", &status, &body) &&
            status == 200 &&
            body.find("\"sequence\"") != std::string::npos &&
            body.find("\"phase\"") != std::string::npos;
        if (!runzOk)
            std::fprintf(stderr,
                         "FAIL: /runz scrape on a hung run "
                         "(status %d, %zu bytes)\n",
                         status, body.size());
        // The child parked after 256 requests and will never publish
        // again; with --stale-ms 300 the watchdog must flip within a
        // few polls.
        bool staleOk = false;
        for (int waited = 0; waited < 10000; waited += 100) {
            if (obs::httpGet(port, "/healthz", &status, &body) &&
                status == 503) {
                staleOk = true;
                break;
            }
            usleep(100 * 1000);
        }
        if (!staleOk)
            std::fprintf(stderr,
                         "FAIL: /healthz never flipped to 503 after "
                         "the run stopped publishing (last status "
                         "%d)\n",
                         status);
        ok = metricsOk && runzOk && staleOk;
    }

    kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    if (ok)
        std::printf("telemetry probe: scraped /metrics and /runz on a "
                    "hung run; /healthz flipped to 503\n");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.has("help")) {
        std::printf(
            "ssdcheck_soak [--cli PATH] [--cycles N] [--device X]\n"
            "              [--workload NAME] [--scale F] [--faults P]\n"
            "              [--supervisor] [--checkpoint-every N]\n"
            "              [--torn-every K] [--seed S] [--dir D]\n"
            "              [--no-telemetry-probe]\n");
        return 1;
    }

    recovery::RunParams params;
    params.device = args.get("device", "A");
    params.faults = args.get("faults", "hostile");
    params.workload = args.get("workload", "RW Mixed");
    params.scale = std::stod(args.get("scale", "0.02"));
    params.supervisor = args.has("supervisor");
    params.timelineMs = std::stoll(args.get("timeline-ms", "0"));

    const std::string cli = args.get("cli", selfDir() + "/ssdcheck");
    const uint64_t cycles = std::stoull(args.get("cycles", "50"));
    const uint64_t ckptEvery =
        std::stoull(args.get("checkpoint-every", "64"));
    const uint64_t tornEvery = std::stoull(args.get("torn-every", "5"));
    const uint64_t seed = std::stoull(args.get("seed", "1"));
    const std::string dir = args.get("dir", "soak-work");
    if (!fileExists(cli)) {
        std::fprintf(stderr, "cannot find ssdcheck CLI at %s "
                             "(pass --cli)\n",
                     cli.c_str());
        return 2;
    }
    if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
        std::perror(dir.c_str());
        return 2;
    }
    const std::string ckpt = dir + "/chaos.ckpt";
    const std::string finalOut = dir + "/final.ckpt";
    std::remove(ckpt.c_str());
    std::remove((ckpt + ".tmp").c_str());
    std::remove(finalOut.c_str());

    // -- golden run: uninterrupted, in-process ---------------------------
    std::printf("golden run: %s\n", params.canonical().c_str());
    std::string err;
    auto golden = recovery::CheckpointableRun::create(params, false, &err);
    if (!golden) {
        std::fprintf(stderr, "cannot build golden run: %s\n", err.c_str());
        return 2;
    }
    while (!golden->done())
        golden->step();
    const std::vector<uint8_t> goldenBytes =
        golden->checkpoint().serialize();
    const uint64_t traceSize = golden->trace().size();
    {
        const auto violations = recovery::checkInvariants(*golden);
        for (const std::string &v : violations)
            std::fprintf(stderr, "FAIL: golden-run invariant: %s\n",
                         v.c_str());
        if (!violations.empty())
            return 1;
    }
    std::printf("golden: %llu requests, final state %zu bytes\n",
                static_cast<unsigned long long>(traceSize),
                goldenBytes.size());

    const std::vector<std::string> base = {
        "--device",   params.device,
        "--faults",   params.faults,
        "--workload", params.workload,
        "--scale",    args.get("scale", "0.02"),
    };
    auto withCommon = [&](std::vector<std::string> extra) {
        std::vector<std::string> full = base;
        if (params.supervisor)
            full.push_back("--supervisor");
        if (params.timelineMs > 0) {
            full.push_back("--timeline-ms");
            full.push_back(std::to_string(params.timelineMs));
        }
        full.insert(full.end(), extra.begin(), extra.end());
        return full;
    };

    // -- chaos cycles ----------------------------------------------------
    std::mt19937_64 rng(seed);
    uint64_t lastCursor = 0;
    uint64_t kills = 0;
    uint64_t tornWrites = 0;
    uint64_t completions = 0;
    // Kill within a window past the last checkpoint so progress per
    // cycle is ~traceSize/cycles and the campaign lands close to its
    // cycle budget before any child reaches the end of the trace.
    const uint64_t killSpan =
        std::max<uint64_t>(2 * traceSize / std::max<uint64_t>(cycles, 1),
                           2);
    for (uint64_t cycle = 0; cycle < cycles; ++cycle) {
        const bool haveCkpt = fileExists(ckpt);
        const uint64_t killAt = lastCursor + 1 + rng() % killSpan;
        const bool torn =
            tornEvery > 0 && cycle % tornEvery == tornEvery - 1;

        std::vector<std::string> extra = {
            "--checkpoint-every", std::to_string(ckptEvery),
            "--checkpoint-out",   ckpt,
            "--final-state-out",  finalOut,
            "--kill-after-requests", std::to_string(killAt),
        };
        if (torn)
            extra.push_back("--kill-in-checkpoint");
        if (haveCkpt) {
            extra.push_back("--resume");
            extra.push_back(ckpt);
        }
        const int status = spawnRun(cli, withCommon(extra));
        if (status < 0)
            return 2;
        const bool childCompleted =
            WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (childCompleted) {
            ++completions;
            std::printf("cycle %llu: completed (kill point %llu past "
                        "end)\n",
                        static_cast<unsigned long long>(cycle),
                        static_cast<unsigned long long>(killAt));
        } else if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
            ++kills;
            tornWrites += torn ? 1 : 0;
        } else {
            std::fprintf(stderr,
                         "FAIL: cycle %llu child died unexpectedly "
                         "(status 0x%x)\n",
                         static_cast<unsigned long long>(cycle), status);
            return 1;
        }

        if (!fileExists(ckpt)) {
            // Killed before the first checkpoint; nothing to verify.
            continue;
        }
        const uint64_t cursor = verifyCheckpoint(params, ckpt);
        if (cursor == UINT64_MAX)
            return 1;
        if (cursor < lastCursor) {
            std::fprintf(stderr,
                         "FAIL: checkpoint cursor went backwards "
                         "(%llu -> %llu)\n",
                         static_cast<unsigned long long>(lastCursor),
                         static_cast<unsigned long long>(cursor));
            return 1;
        }
        lastCursor = cursor;
        if (!childCompleted)
            std::printf("cycle %llu: %s at request %llu, checkpoint at "
                        "%llu verified\n",
                        static_cast<unsigned long long>(cycle),
                        torn ? "torn-write kill" : "kill",
                        static_cast<unsigned long long>(killAt),
                        static_cast<unsigned long long>(cursor));
        if (childCompleted && cursor >= traceSize)
            break;
    }

    // -- final uninterrupted cycle + bit-identical comparison ------------
    if (!fileExists(finalOut)) {
        std::vector<std::string> extra = {
            "--checkpoint-every", std::to_string(ckptEvery),
            "--checkpoint-out",   ckpt,
            "--final-state-out",  finalOut,
            "--check-invariants",
        };
        if (fileExists(ckpt)) {
            extra.push_back("--resume");
            extra.push_back(ckpt);
        }
        const int status = spawnRun(cli, withCommon(extra));
        if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
            std::fprintf(stderr,
                         "FAIL: final cycle did not complete "
                         "(status 0x%x)\n",
                         status);
            return 1;
        }
        ++completions;
    }
    const std::vector<uint8_t> finalBytes = readAll(finalOut);
    if (finalBytes != goldenBytes) {
        std::fprintf(stderr,
                     "FAIL: resumed final state (%zu bytes) differs "
                     "from the uninterrupted golden run (%zu bytes)\n",
                     finalBytes.size(), goldenBytes.size());
        return 1;
    }

    // -- telemetry probe: live scrape of a hung child ---------------------
    if (!args.has("no-telemetry-probe") && !probeTelemetry(cli, dir))
        return 1;

    std::printf("PASS: %llu kills (%llu mid-checkpoint-write), %llu "
                "completions; resumed final state is bit-identical to "
                "the golden run (%zu bytes)\n",
                static_cast<unsigned long long>(kills),
                static_cast<unsigned long long>(tornWrites),
                static_cast<unsigned long long>(completions),
                goldenBytes.size());
    return 0;
}
