/**
 * @file
 * Unit tests of the binary trace format (obs/trace_binary.h): JSON
 * byte-identity through the offline converter, retained-vs-spill
 * stream identity, bounded live memory while spilling, and sticky
 * rejection of malformed streams.
 */
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_binary.h"
#include "obs/trace_recorder.h"
#include "sim/sim_time.h"

namespace ssdcheck::obs {
namespace {

/** Deterministic mixed-shape event feed shared by the tests. */
void
record(TraceRecorder &tr, size_t events)
{
    tr.setProcessName(kHostPid, "host");
    tr.setProcessName(kDevicePid, "device \"A\"");
    tr.setThreadName({kHostPid, kHostModelTid}, "model");
    tr.setThreadName({kDevicePid, kDeviceInterfaceTid}, "bus");
    for (size_t i = 0; i < events; ++i) {
        const sim::SimTime t{static_cast<int64_t>(i) * 1000 + 500};
        switch (i % 4) {
          case 0:
            tr.complete("dev", "dev.request",
                        {kDevicePid, kDeviceInterfaceTid}, t, 2000,
                        {{"lba", static_cast<int64_t>(i)},
                         {"write", 1},
                         {"pages", 4},
                         {"status", 0}});
            break;
          case 1:
            tr.instant("wb", "wb.enqueue", {kDevicePid, 0}, t,
                       {{"fill", static_cast<int64_t>(i % 33)}});
            break;
          case 2:
            tr.counter("queue", {kHostPid, kHostWorkloadTid}, t, "depth",
                       static_cast<int64_t>(i % 7));
            break;
          default:
            // Over-long arg list exercises the kMaxArgs clamp, and a
            // negative timestamp the sign handling.
            tr.complete("gc", "gc.run", {kDevicePid, 1}, sim::SimTime{-t.ns()},
                        1,
                        {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}});
            break;
        }
    }
}

std::string
binaryOf(const TraceRecorder &tr)
{
    std::ostringstream os;
    writeTraceBinary(tr, os);
    return os.str();
}

TEST(TraceBinary, ConverterEmitsByteIdenticalJson)
{
    TraceRecorder tr;
    record(tr, 257);

    std::istringstream in(binaryOf(tr));
    std::ostringstream out;
    std::string error;
    ASSERT_TRUE(convertTraceBinaryToJson(in, out, &error)) << error;
    EXPECT_EQ(out.str(), tr.toChromeJson());
}

TEST(TraceBinary, BinaryIsSmallerThanJson)
{
    TraceRecorder tr;
    record(tr, 1000);
    EXPECT_LT(binaryOf(tr).size(), tr.toChromeJson().size() / 2);
}

TEST(TraceBinary, EmptyRecorderRoundTrips)
{
    TraceRecorder tr;
    std::istringstream in(binaryOf(tr));
    std::ostringstream out;
    ASSERT_TRUE(convertTraceBinaryToJson(in, out, nullptr));
    EXPECT_EQ(out.str(), tr.toChromeJson());
}

TEST(TraceBinary, SpillStreamMatchesRetainedStream)
{
    // Enough events to drain the live window several times over
    // (kChunkEvents = 1024, live window = 4 chunks).
    constexpr size_t kEvents = 10000;

    TraceRecorder retained;
    record(retained, kEvents);

    std::ostringstream spillOs;
    TraceRecorder spilling;
    spilling.spillTo(spillOs);
    record(spilling, kEvents);
    spilling.finishSpill();

    EXPECT_EQ(spilling.events(), kEvents);
    EXPECT_EQ(spilling.firstLiveEvent(), kEvents);
    EXPECT_EQ(spillOs.str(), binaryOf(retained));

    // And the converted JSON equals what the retained recorder
    // renders directly.
    std::istringstream in(spillOs.str());
    std::ostringstream json;
    std::string error;
    ASSERT_TRUE(convertTraceBinaryToJson(in, json, &error)) << error;
    EXPECT_EQ(json.str(), retained.toChromeJson());
}

TEST(TraceBinary, SpillKeepsLiveWindowBounded)
{
    std::ostringstream os;
    TraceRecorder tr;
    tr.spillTo(os);
    record(tr, 50000);
    // Live events never exceed the ring window.
    EXPECT_LE(tr.events() - tr.firstLiveEvent(),
              TraceRecorder::kChunkEvents * 4);
    tr.finishSpill();
}

TEST(TraceBinary, RejectsMalformedStreams)
{
    TraceRecorder tr;
    record(tr, 16);
    const std::string good = binaryOf(tr);

    const auto rejects = [](std::string bytes, const char *what) {
        std::istringstream in(bytes);
        std::ostringstream out;
        std::string error;
        EXPECT_FALSE(convertTraceBinaryToJson(in, out, &error)) << what;
        EXPECT_FALSE(error.empty()) << what;
    };

    std::string badMagic = good;
    badMagic[0] = 'X';
    rejects(badMagic, "bad magic");

    std::string badVersion = good;
    badVersion[8] = static_cast<char>(0xEE);
    rejects(badVersion, "bad version");

    rejects(good.substr(0, good.size() - 1), "truncated");
    rejects(good.substr(0, good.size() / 2), "half stream");
    rejects(good + "x", "trailing bytes");

    std::string noEnd = good.substr(0, good.size() - 1);
    rejects(noEnd, "missing End");
}

} // namespace
} // namespace ssdcheck::obs
