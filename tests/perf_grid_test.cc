/**
 * @file
 * Tests for perf/thread_pool.h and perf/grid.h: pool semantics, the
 * timed-batch engine, the BENCH_grid.json writer/reader pair, and the
 * golden determinism guarantees (same results at any job count, same
 * results run-to-run).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "perf/grid.h"
#include "perf/thread_pool.h"
#include "ssd/ssd_device.h"
#include "usecases/runner.h"
#include "workload/snia_synth.h"

namespace ssdcheck::perf {
namespace {

TEST(ThreadPoolTest, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran]() { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException)
{
    ThreadPool pool(2);
    pool.submit([]() { throw std::runtime_error("task boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, UsableAgainAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&ran]() { ran.fetch_add(1); });
    pool.wait();
    pool.submit([&ran]() { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, hits.size(),
                [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TimedBatchTest, KeepsSubmissionOrderAndCounts)
{
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    for (int i = 0; i < 8; ++i)
        tasks.emplace_back("task" + std::to_string(i),
                           [i]() { return static_cast<uint64_t>(i); });
    const BatchTiming timing = runTimedBatch(tasks, 3);
    ASSERT_EQ(timing.tasks.size(), 8u);
    EXPECT_EQ(timing.jobs, 3u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(timing.tasks[i].label, "task" + std::to_string(i));
        EXPECT_EQ(timing.tasks[i].simulatedIos,
                  static_cast<uint64_t>(i));
    }
    EXPECT_EQ(timing.simulatedIos(), 0u + 1 + 2 + 3 + 4 + 5 + 6 + 7);
    EXPECT_GE(timing.wallSeconds, 0.0);
}

TEST(BenchGridJsonTest, WriterAndBaselineReaderRoundTrip)
{
    BatchTiming timing;
    timing.jobs = 2;
    timing.wallSeconds = 2.0;
    timing.tasks.push_back(TaskTiming{"a", 1.0, 1000});
    timing.tasks.push_back(TaskTiming{"b", 1.0, 3000});

    const std::string path = ::testing::TempDir() + "bench_grid_rt.json";
    ASSERT_TRUE(writeBenchGridJson(path, "unit", timing));
    const auto back = readBaselineIosPerSec(path);
    ASSERT_TRUE(back.has_value());
    // Aggregate: 4000 IOs over 2.0s wall — not a per-task value.
    EXPECT_NEAR(*back, 2000.0, 1e-3);
    std::remove(path.c_str());
}

TEST(BenchGridJsonTest, MissingBaselineFileIsEmpty)
{
    EXPECT_FALSE(
        readBaselineIosPerSec("/nonexistent/bench.json").has_value());
}

/** Small two-device grid used by the determinism tests. */
GridSpec
smallSpec()
{
    GridSpec s;
    s.models = {ssd::SsdModel::A, ssd::SsdModel::D};
    s.workloads = {workload::SniaWorkload::TPCE,
                   workload::SniaWorkload::Build};
    s.scale = 0.005;
    return s;
}

void
expectCellsIdentical(const GridResult &a, const GridResult &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (size_t i = 0; i < a.cells.size(); ++i) {
        const GridCell &x = a.cells[i];
        const GridCell &y = b.cells[i];
        EXPECT_EQ(x.model, y.model) << "cell " << i;
        EXPECT_EQ(x.workload, y.workload) << "cell " << i;
        EXPECT_EQ(x.seed, y.seed) << "cell " << i;
        EXPECT_EQ(x.requests, y.requests) << "cell " << i;
        // Integer counters make "bit-identical" checkable exactly.
        EXPECT_EQ(x.accuracy.nlTotal, y.accuracy.nlTotal) << "cell " << i;
        EXPECT_EQ(x.accuracy.nlCorrect, y.accuracy.nlCorrect)
            << "cell " << i;
        EXPECT_EQ(x.accuracy.hlTotal, y.accuracy.hlTotal) << "cell " << i;
        EXPECT_EQ(x.accuracy.hlCorrect, y.accuracy.hlCorrect)
            << "cell " << i;
        EXPECT_EQ(x.accuracy.faulted, y.accuracy.faulted) << "cell " << i;
        EXPECT_EQ(x.simEnd, y.simEnd) << "cell " << i;
    }
}

TEST(GridDeterminismTest, CellsInGridOrderWithExpectedCoordinates)
{
    const GridResult r = runGrid(smallSpec(), 2);
    ASSERT_EQ(r.cells.size(), 4u);
    EXPECT_EQ(r.cells[0].model, ssd::SsdModel::A);
    EXPECT_EQ(r.cells[0].workload, workload::SniaWorkload::TPCE);
    EXPECT_EQ(r.cells[1].model, ssd::SsdModel::A);
    EXPECT_EQ(r.cells[1].workload, workload::SniaWorkload::Build);
    EXPECT_EQ(r.cells[2].model, ssd::SsdModel::D);
    EXPECT_EQ(r.cells[3].model, ssd::SsdModel::D);
    ASSERT_EQ(r.timing.tasks.size(), 2u); // one shard per device
    EXPECT_GT(r.cells[0].requests, 0u);
    EXPECT_EQ(r.timing.simulatedIos(), r.cells[0].requests +
                                           r.cells[1].requests +
                                           r.cells[2].requests +
                                           r.cells[3].requests);
}

TEST(GridDeterminismTest, SerialAndParallelRunsAreBitIdentical)
{
    const GridResult serial = runGrid(smallSpec(), 1);
    const GridResult parallel = runGrid(smallSpec(), 4);
    expectCellsIdentical(serial, parallel);
}

TEST(GridDeterminismTest, RepeatedRunsAreBitIdentical)
{
    const GridResult first = runGrid(smallSpec(), 2);
    const GridResult second = runGrid(smallSpec(), 2);
    expectCellsIdentical(first, second);
}

TEST(GridDeterminismTest, SeedsProduceDistinctShards)
{
    GridSpec s = smallSpec();
    s.models = {ssd::SsdModel::A};
    s.seeds = {0, 1};
    const GridResult r = runGrid(s, 2);
    ASSERT_EQ(r.cells.size(), 4u);
    EXPECT_EQ(r.cells[0].seed, 0u);
    EXPECT_EQ(r.cells[2].seed, 1u);
    EXPECT_EQ(r.timing.tasks.size(), 2u);
    EXPECT_NE(r.timing.tasks[1].label.find("seed1"), std::string::npos);
}

/**
 * Golden determinism at the replay level: the exact same closed-loop
 * run gives the exact same latency timeline and GC counters. This is
 * the property the bucketed victim selection must not disturb.
 */
TEST(GoldenDeterminismTest, ClosedLoopReplayIsExactlyRepeatable)
{
    auto once = [](std::vector<sim::SimDuration> *latencies,
                   ssd::VolumeCounters *counters) {
        ssd::SsdDevice dev(ssd::makePreset(ssd::SsdModel::A));
        dev.precondition();
        const auto trace = workload::buildSniaTrace(
            workload::SniaWorkload::Homes, dev.capacityPages(), 0.05, 99);
        const auto res =
            usecases::runClosedLoop(dev, trace, 1, 0, sim::SimTime{0});
        *latencies = res.latency.sorted();
        *counters = dev.totalCounters();
    };
    std::vector<sim::SimDuration> lat1, lat2;
    ssd::VolumeCounters c1, c2;
    once(&lat1, &c1);
    once(&lat2, &c2);

    ASSERT_FALSE(lat1.empty());
    ASSERT_EQ(lat1.size(), lat2.size());
    EXPECT_EQ(lat1, lat2);
    EXPECT_GT(c1.gcInvocations, 0u);
    EXPECT_EQ(c1.gcInvocations, c2.gcInvocations);
    EXPECT_EQ(c1.gcBlocksErased, c2.gcBlocksErased);
    EXPECT_EQ(c1.gcPagesMoved, c2.gcPagesMoved);
    EXPECT_EQ(c1.writes, c2.writes);
    EXPECT_EQ(c1.flushes, c2.flushes);
}

} // namespace
} // namespace ssdcheck::perf
