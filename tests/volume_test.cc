/** @file Unit tests for ssd/volume.h (the per-volume timing engine). */
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "ssd/volume.h"

namespace ssdcheck::ssd {
namespace {

using core::Lpn;
using sim::kTimeZero;
using sim::microseconds;
using sim::SimTime;

/** Small, deterministic volume: 8-page buffer, 4 planes, no noise. */
SsdConfig
smallCfg()
{
    SsdConfig c;
    c.userCapacityPages = 8192;
    c.bufferBytes = 8 * 4096;
    c.planesPerVolume = 4;
    c.pagesPerBlock = 8;
    c.opRatio = 0.3;
    c.gcLowBlocks = 3;
    c.gcHighBlocks = 6;
    c.jitterSigma = 0.0;
    c.hiccupProbability = 0.0;
    return c;
}

TEST(VolumeTest, NormalWriteLatencyIsAckTime)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    IoDetail d;
    const SimTime done = v.serveWrite(kTimeZero, Lpn{100}, 42, &d);
    EXPECT_EQ(done, kTimeZero + cfg.writeAckTime);
    EXPECT_FALSE(d.triggeredFlush);
    EXPECT_EQ(d.cause(), IoDetail::Cause::Others);
}

TEST(VolumeTest, WriteGateSerializesWrites)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    const SimTime a1 = v.serveWrite(kTimeZero, Lpn{1}, 0, nullptr);
    const SimTime a2 = v.serveWrite(kTimeZero, Lpn{2}, 0, nullptr);
    EXPECT_EQ(a2 - a1, cfg.writeCpuTime);
}

TEST(VolumeTest, BufferFillTriggersFlushAtCapacity)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    IoDetail d;
    for (uint32_t i = 0; i < cfg.bufferPages() - 1; ++i) {
        d = IoDetail{};
        v.serveWrite(kTimeZero, Lpn{i}, i, &d);
        EXPECT_FALSE(d.triggeredFlush) << "write " << i;
    }
    d = IoDetail{};
    v.serveWrite(kTimeZero, Lpn{99}, 99, &d);
    EXPECT_TRUE(d.triggeredFlush);
    EXPECT_GT(d.flushTime, 0);
    EXPECT_GT(v.nandBusyUntil(), kTimeZero);
    EXPECT_EQ(v.counters().flushes, 1u);
    EXPECT_EQ(v.bufferFill(), 0u);
}

TEST(VolumeTest, BackTypeTriggerWriteAcksFast)
{
    const SsdConfig cfg = smallCfg(); // back by default
    Volume v(cfg, 0, sim::Rng(1));
    SimTime last;
    for (uint32_t i = 0; i < cfg.bufferPages(); ++i)
        last = v.serveWrite(last, Lpn{i}, i, nullptr);
    // The flush runs in background: the triggering ack stays small.
    EXPECT_LT(last, kTimeZero + microseconds(800));
    EXPECT_GT(v.nandBusyUntil(), last);
}

TEST(VolumeTest, ForeTypeTriggerWriteWaitsForFlush)
{
    SsdConfig cfg = smallCfg();
    cfg.bufferType = BufferType::Fore;
    Volume v(cfg, 0, sim::Rng(1));
    SimTime last;
    for (uint32_t i = 0; i < cfg.bufferPages(); ++i)
        last = v.serveWrite(last, Lpn{i}, i, nullptr);
    EXPECT_GE(last, v.nandBusyUntil());
    EXPECT_GT(last, kTimeZero + sim::milliseconds(1));
}

TEST(VolumeTest, ReadBlockedDuringFlush)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    v.prefill(0);
    SimTime t;
    for (uint32_t i = 0; i < cfg.bufferPages(); ++i)
        t = v.serveWrite(t, Lpn{i}, i, nullptr);
    // Read an address not in the buffer: must wait out the flush.
    IoDetail d;
    const SimTime done = v.serveRead(t, Lpn{5000}, nullptr, &d);
    EXPECT_TRUE(d.blockedByBusy);
    EXPECT_GE(done, v.nandBusyUntil());
    EXPECT_EQ(d.cause(), IoDetail::Cause::WriteBuffer);
}

TEST(VolumeTest, ReadAfterFlushCompletesIsNormal)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    v.prefill(0);
    SimTime t;
    for (uint32_t i = 0; i < cfg.bufferPages(); ++i)
        t = v.serveWrite(t, Lpn{i}, i, nullptr);
    const SimTime idle = v.nandBusyUntil() + microseconds(10);
    IoDetail d;
    const SimTime done = v.serveRead(idle, Lpn{5000}, nullptr, &d);
    EXPECT_FALSE(d.blockedByBusy);
    EXPECT_EQ(done - idle,
              cfg.readOverheadTime + cfg.nandTiming.readLatency);
}

TEST(VolumeTest, BufferHitReadIsFast)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    v.serveWrite(kTimeZero, Lpn{77}, 4242, nullptr);
    IoDetail d;
    uint64_t payload = 0;
    const SimTime start = kTimeZero + microseconds(100);
    const SimTime done = v.serveRead(start, Lpn{77}, &payload, &d);
    EXPECT_TRUE(d.bufferHit);
    EXPECT_EQ(payload, 4242u);
    EXPECT_EQ(done - start, cfg.bufferReadTime);
}

TEST(VolumeTest, BackpressureWhenFlushesOverlap)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    // Two buffer fills back-to-back: the second flush must wait for
    // the first and backpressures its trigger write.
    SimTime t;
    IoDetail last;
    for (uint32_t i = 0; i < 2 * cfg.bufferPages(); ++i) {
        last = IoDetail{};
        t = v.serveWrite(t, Lpn{i % 100}, i, &last);
    }
    EXPECT_TRUE(last.triggeredFlush);
    EXPECT_TRUE(last.backpressured);
    EXPECT_GT(last.waitTime, 0);
    EXPECT_EQ(v.counters().backpressureStalls, 1u);
}

TEST(VolumeTest, ReadTriggerFlushBlocksRead)
{
    SsdConfig cfg = smallCfg();
    cfg.bufferType = BufferType::Fore;
    cfg.readTriggerFlush = true;
    Volume v(cfg, 0, sim::Rng(1));
    v.prefill(0);
    // A single buffered write, then a read: the read must flush.
    const SimTime t = v.serveWrite(kTimeZero, Lpn{1}, 1, nullptr);
    IoDetail d;
    const SimTime done = v.serveRead(t, Lpn{5000}, nullptr, &d);
    EXPECT_TRUE(d.readTriggeredFlush);
    EXPECT_GT(done - t, sim::milliseconds(1));
    EXPECT_EQ(v.bufferFill(), 0u);
    // Next read with an empty buffer is normal.
    IoDetail d2;
    const SimTime t2 = done + microseconds(10);
    v.serveRead(t2, Lpn{5001}, nullptr, &d2);
    EXPECT_FALSE(d2.readTriggeredFlush);
}

TEST(VolumeTest, GcEventuallyRunsAndBlocksLonger)
{
    SsdConfig cfg = smallCfg();
    cfg.userCapacityPages = 2048; // small so GC engages quickly
    Volume v(cfg, 0, sim::Rng(1));
    v.prefill(0);
    SimTime t;
    sim::Rng rng(7);
    bool sawGc = false;
    for (int i = 0; i < 20000 && !sawGc; ++i) {
        IoDetail d;
        t = v.serveWrite(t, Lpn{rng.nextBelow(2048)}, i, &d);
        if (d.gcRan) {
            sawGc = true;
            EXPECT_GT(d.gcTime, sim::milliseconds(1));
            EXPECT_EQ(d.cause(), IoDetail::Cause::GarbageCollection);
        }
    }
    EXPECT_TRUE(sawGc);
    EXPECT_GT(v.counters().gcInvocations, 0u);
    EXPECT_GT(v.counters().gcBlocksErased, 0u);
}

TEST(VolumeTest, PrefillMakesEveryPageReadable)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    v.prefill(1ULL << 32);
    uint64_t payload = 0;
    ASSERT_TRUE(v.peek(Lpn{0}, &payload));
    EXPECT_EQ(payload, 1ULL << 32);
    ASSERT_TRUE(v.peek(Lpn{4321}, &payload));
    EXPECT_EQ(payload, (1ULL << 32) + 4321);
}

TEST(VolumeTest, PeekSeesBufferedData)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    v.serveWrite(kTimeZero, Lpn{9}, 900, nullptr);
    uint64_t payload = 0;
    ASSERT_TRUE(v.peek(Lpn{9}, &payload));
    EXPECT_EQ(payload, 900u);
}

TEST(VolumeTest, ResetClearsState)
{
    const SsdConfig cfg = smallCfg();
    Volume v(cfg, 0, sim::Rng(1));
    v.prefill(0);
    for (uint32_t i = 0; i < cfg.bufferPages(); ++i)
        v.serveWrite(kTimeZero + sim::microseconds(i), Lpn{i}, i, nullptr);
    v.reset();
    EXPECT_EQ(v.bufferFill(), 0u);
    EXPECT_EQ(v.nandBusyUntil(), kTimeZero);
    uint64_t payload = 0;
    EXPECT_FALSE(v.peek(Lpn{0}, &payload));
    EXPECT_EQ(v.mapper().totalValid(), 0u);
}

TEST(VolumeTest, SlcCacheMigrationEventuallyFires)
{
    SsdConfig cfg = smallCfg();
    cfg.slcCache = true;
    cfg.slcCapacityPages = 64;
    cfg.slcMigrateChunkPages = 32;
    cfg.slcCapacityVariation = 0.2;
    Volume v(cfg, 0, sim::Rng(3));
    SimTime t;
    for (int i = 0; i < 400; ++i)
        t = v.serveWrite(t, Lpn{static_cast<uint64_t>(i % 1000)}, i, nullptr);
    EXPECT_GT(v.counters().slcMigrations, 0u);
}

TEST(VolumeTest, JitterPerturbsLatencies)
{
    SsdConfig cfg = smallCfg();
    cfg.jitterSigma = 0.2;
    Volume v(cfg, 0, sim::Rng(5));
    const SimTime a = v.serveWrite(kTimeZero, Lpn{1}, 0, nullptr);
    const SimTime b =
        v.serveWrite(kTimeZero + sim::milliseconds(1), Lpn{2}, 0, nullptr) -
        sim::milliseconds(1);
    EXPECT_NE(a, b); // same nominal service time, different jitter
}

} // namespace
} // namespace ssdcheck::ssd
