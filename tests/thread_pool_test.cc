/**
 * @file
 * ThreadPool unit + stress tests. The stress cases are the ones the
 * CI TSan job runs: N producers hammering submit() while workers
 * throw and complete concurrently, plus teardown with a full queue.
 */
#include <atomic>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "perf/grid.h"
#include "perf/thread_pool.h"

namespace perf = ssdcheck::perf;

TEST(ThreadPool, DefaultJobsIsAtLeastOne)
{
    // hardware_concurrency() may legally return 0 ("unknown"); a
    // zero-worker pool would deadlock every submit/wait.
    EXPECT_GE(perf::ThreadPool::defaultJobs(), 1u);
}

TEST(ThreadPool, ZeroRequestedThreadsClampedToOne)
{
    perf::ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    perf::ThreadPool pool(4);
    constexpr int kTasks = 2000;
    std::vector<std::atomic<int>> hits(kTasks);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, StressProducersWithThrowingTasks)
{
    // 6 producer threads × 300 tasks racing 4 workers; roughly one
    // task in five throws (deterministically, from per-producer
    // seeded RNGs). Every task must run exactly once, wait() must
    // rethrow exactly one of the thrown exceptions, and a second
    // wait() must come back clean.
    constexpr int kProducers = 6;
    constexpr int kPerProducer = 300;
    perf::ThreadPool pool(4);
    std::atomic<int> completed{0};
    std::atomic<int> thrown{0};

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            std::mt19937 rng(0xC0FFEE + static_cast<unsigned>(p));
            for (int t = 0; t < kPerProducer; ++t) {
                const bool throws = rng() % 5 == 0;
                pool.submit([&, throws] {
                    if (throws) {
                        ++thrown;
                        throw std::runtime_error("planted task failure");
                    }
                    ++completed;
                });
            }
        });
    for (auto &p : producers)
        p.join();

    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(completed.load() + thrown.load(), kProducers * kPerProducer);
    EXPECT_GT(thrown.load(), 0);

    // Rethrow-once: the error slot was consumed by the first wait().
    EXPECT_NO_THROW(pool.wait());

    // The pool stays serviceable after task exceptions.
    std::atomic<int> after{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&] { ++after; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    // Destroy the pool while most tasks are still queued: the workers
    // must finish the backlog before joining (documented contract).
    std::atomic<int> ran{0};
    constexpr int kTasks = 500;
    {
        perf::ThreadPool pool(2);
        for (int i = 0; i < kTasks; ++i)
            pool.submit([&] { ++ran; });
    }
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    perf::ThreadPool pool(3);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    perf::parallelFor(pool, kN, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, BatchTimingReportsActualWorkerCount)
{
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    tasks.emplace_back("one", [] { return uint64_t{7}; });
    const perf::BatchTiming t = perf::runTimedBatch(tasks, 3);
    EXPECT_EQ(t.jobs, 3u);
    EXPECT_EQ(t.workerThreads, 3u);
    EXPECT_EQ(t.simulatedIos(), 7u);

    // Jobs 0 is clamped exactly like the pool clamps it.
    const perf::BatchTiming t0 = perf::runTimedBatch(tasks, 0);
    EXPECT_EQ(t0.jobs, 1u);
    EXPECT_EQ(t0.workerThreads, 1u);
}

TEST(ThreadPool, BenchGridJsonCarriesWorkerThreads)
{
    std::vector<std::pair<std::string, std::function<uint64_t()>>> tasks;
    tasks.emplace_back("cell", [] { return uint64_t{11}; });
    const perf::BatchTiming t = perf::runTimedBatch(tasks, 2);

    const std::string path =
        testing::TempDir() + "/ssdcheck_worker_threads.json";
    ASSERT_TRUE(perf::writeBenchGridJson(path, "unit", t));
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    EXPECT_NE(ss.str().find("\"worker_threads\": 2"), std::string::npos)
        << ss.str();
    std::remove(path.c_str());
}
