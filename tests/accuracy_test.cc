/**
 * @file Integration tests: prediction accuracy floors per device
 * (Fig. 11 regression guards).
 */
#include <gtest/gtest.h>

#include "core/accuracy.h"
#include "core/ssdcheck.h"
#include "ssd/presets.h"
#include "ssd/ssd_device.h"
#include "workload/snia_synth.h"
#include "workload/synthetic.h"

namespace ssdcheck::core {
namespace {

using ssd::makePreset;
using ssd::SsdDevice;
using ssd::SsdModel;

struct Floors
{
    SsdModel model;
    double nlFloor;
    double hlFloor;
};

class AccuracyFloorTest : public ::testing::TestWithParam<Floors>
{
};

TEST_P(AccuracyFloorTest, RwMixedMeetsFloors)
{
    const Floors f = GetParam();
    SsdDevice dev(makePreset(f.model));
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();
    ASSERT_TRUE(fs.bufferModelUsable());
    SsdCheck check(fs);
    const auto trace = workload::buildRwMixedTrace(
        120000, dev.capacityPages(), 77);
    const AccuracyResult acc =
        evaluatePredictionAccuracy(dev, check, trace, runner.now());
    EXPECT_GT(acc.nlAccuracy(), f.nlFloor) << ssd::toString(f.model);
    EXPECT_GT(acc.hlAccuracy(), f.hlFloor) << ssd::toString(f.model);
    EXPECT_GT(acc.hlTotal, 100u); // the workload must exercise HL paths
}

// Floors sit safely below the measured values (see EXPERIMENTS.md)
// while still catching regressions of the model.
INSTANTIATE_TEST_SUITE_P(
    Fig11, AccuracyFloorTest,
    ::testing::Values(Floors{SsdModel::A, 0.99, 0.70},
                      Floors{SsdModel::B, 0.99, 0.70},
                      Floors{SsdModel::C, 0.99, 0.55},
                      Floors{SsdModel::D, 0.98, 0.45},
                      Floors{SsdModel::E, 0.98, 0.25},
                      Floors{SsdModel::F, 0.95, 0.90},
                      Floors{SsdModel::G, 0.95, 0.90}),
    [](const auto &info) { return "SSD_" + ssd::toString(info.param.model); });

TEST(AccuracyTest, DisabledCheckPredictsEverythingNl)
{
    SsdDevice dev(makePreset(SsdModel::A));
    dev.precondition();
    FeatureSet empty; // no usable buffer model
    SsdCheck check(empty);
    EXPECT_FALSE(check.enabled());
    const auto trace =
        workload::buildRwMixedTrace(20000, dev.capacityPages(), 3);
    const AccuracyResult acc =
        evaluatePredictionAccuracy(dev, check, trace, sim::kTimeZero);
    // Harmless: NL perfect, HL entirely missed.
    EXPECT_DOUBLE_EQ(acc.nlAccuracy(), 1.0);
    EXPECT_DOUBLE_EQ(acc.hlAccuracy(), 0.0);
}

TEST(AccuracyTest, ResultArithmetic)
{
    AccuracyResult r;
    r.nlTotal = 90;
    r.nlCorrect = 81;
    r.hlTotal = 10;
    r.hlCorrect = 7;
    EXPECT_DOUBLE_EQ(r.nlAccuracy(), 0.9);
    EXPECT_DOUBLE_EQ(r.hlAccuracy(), 0.7);
    EXPECT_DOUBLE_EQ(r.hlFraction(), 0.1);
    const AccuracyResult empty;
    EXPECT_DOUBLE_EQ(empty.nlAccuracy(), 1.0);
    EXPECT_DOUBLE_EQ(empty.hlAccuracy(), 1.0);
    EXPECT_DOUBLE_EQ(empty.hlFraction(), 0.0);
}

TEST(AccuracyTest, WriteIntensiveTraceKeepsNlHigh)
{
    SsdDevice dev(makePreset(SsdModel::A));
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();
    SsdCheck check(fs);
    const auto trace = workload::buildSniaTrace(
        workload::SniaWorkload::Web, dev.capacityPages(), 0.03);
    const AccuracyResult acc =
        evaluatePredictionAccuracy(dev, check, trace, runner.now());
    EXPECT_GT(acc.nlAccuracy(), 0.98);
}

TEST(AccuracyTest, NvmBackedSsdPredictable)
{
    // Paper §VI claim, end to end: diagnosis + model on the
    // NVM-medium device reach useful accuracy.
    SsdDevice dev(ssd::makeNvmBackedSsd());
    DiagnosisRunner runner(dev, DiagnosisConfig{});
    const FeatureSet fs = runner.extractFeatures();
    ASSERT_TRUE(fs.bufferModelUsable());
    SsdCheck check(fs);
    const auto trace =
        workload::buildRwMixedTrace(80000, dev.capacityPages(), 13);
    const AccuracyResult acc =
        evaluatePredictionAccuracy(dev, check, trace, runner.now());
    EXPECT_GT(acc.nlAccuracy(), 0.98);
    EXPECT_GT(acc.hlAccuracy(), 0.5);
    EXPECT_GT(acc.hlTotal, 50u);
}

TEST(AccuracyTest, EndTimeReported)
{
    SsdDevice dev(makePreset(SsdModel::A));
    dev.precondition();
    FeatureSet fs;
    fs.bufferBytes = 248 * 1024;
    fs.bufferType = BufferTypeFeature::Back;
    fs.flushAlgorithms.fullTrigger = true;
    SsdCheck check(fs);
    const auto trace =
        workload::buildRandomWriteTrace(1000, dev.capacityPages(), 5);
    sim::SimTime end;
    evaluatePredictionAccuracy(dev, check, trace,
                               sim::kTimeZero + sim::seconds(1), &end);
    EXPECT_GT(end, sim::kTimeZero + sim::seconds(1));
}

} // namespace
} // namespace ssdcheck::core
