/** @file Unit tests for stats/table_printer.h. */
#include <gtest/gtest.h>

#include <sstream>

#include "stats/table_printer.h"

namespace ssdcheck::stats {
namespace {

TEST(TablePrinterTest, AlignsColumns)
{
    TablePrinter t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Separator line present after header.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, RowCount)
{
    TablePrinter t;
    t.row({"x"});
    t.row(std::vector<std::string>{"y", "z"});
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TablePrinterTest, NumFormatsDecimals)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::num(-1.5, 1), "-1.5");
}

TEST(TablePrinterTest, PctFormatsFractions)
{
    EXPECT_EQ(TablePrinter::pct(0.5, 1), "50.0%");
    EXPECT_EQ(TablePrinter::pct(0.9996, 2), "99.96%");
}

TEST(TablePrinterTest, BannerContainsTitle)
{
    std::ostringstream os;
    printBanner(os, "Table I");
    EXPECT_NE(os.str().find("=== Table I ==="), std::string::npos);
}

TEST(TablePrinterTest, RaggedRowsDoNotCrash)
{
    TablePrinter t;
    t.header({"a", "b", "c"});
    t.row({"1"});
    t.row({"1", "2", "3", "4"});
    std::ostringstream os;
    t.print(os);
    EXPECT_FALSE(os.str().empty());
}

} // namespace
} // namespace ssdcheck::stats
