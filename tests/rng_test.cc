/** @file Unit and statistical tests for sim/rng.h. */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "recovery/state_io.h"
#include "sim/rng.h"

namespace ssdcheck::sim {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDifferentStreams)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextBelowCoversRange)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds)
{
    Rng rng(3);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(RngTest, Uniform01InUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.uniform01();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability)
{
    Rng rng(9);
    const int n = 50000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard)
{
    Rng rng(13);
    const int n = 50000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, LognormalFactorMedianNearOne)
{
    Rng rng(17);
    const int n = 20001;
    std::vector<double> vals;
    vals.reserve(n);
    for (int i = 0; i < n; ++i)
        vals.push_back(rng.lognormalFactor(0.2));
    std::sort(vals.begin(), vals.end());
    EXPECT_NEAR(vals[n / 2], 1.0, 0.05);
    for (double v : vals)
        EXPECT_GT(v, 0.0);
}

TEST(RngTest, LognormalSigmaZeroIsIdentity)
{
    Rng rng(19);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(rng.lognormalFactor(0.0), 1.0);
}

TEST(RngTest, ForkedStreamsAreIndependent)
{
    Rng parent(23);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (c1.next() == c2.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsDeterministicGivenParentState)
{
    Rng p1(31), p2(31);
    Rng c1 = p1.fork(5);
    Rng c2 = p2.fork(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(c1.next(), c2.next());
}

/** Property sweep: nextBelow stays unbiased across bounds. */
class RngBoundSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngBoundSweep, MeanNearHalfBound)
{
    const uint64_t bound = GetParam();
    Rng rng(bound * 977 + 1);
    const int n = 30000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextBelow(bound));
    const double expected = (static_cast<double>(bound) - 1.0) / 2.0;
    EXPECT_NEAR(sum / n, expected, static_cast<double>(bound) * 0.02 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 10, 100, 4096, 1000000));

// -- snapshot/replay equivalence (recovery subsystem contract) ----------

TEST(RngSnapshotTest, DrawsCounterCountsRawDraws)
{
    Rng rng(99);
    EXPECT_EQ(rng.draws(), 0u);
    EXPECT_EQ(rng.seed(), 99u);
    rng.next();
    rng.next();
    EXPECT_EQ(rng.draws(), 2u);
    rng.uniform01(); // one raw draw
    EXPECT_EQ(rng.draws(), 3u);
}

TEST(RngSnapshotTest, SaveLoadResumesBitIdenticalStream)
{
    Rng a(0xfeedULL);
    for (int i = 0; i < 1000; ++i)
        a.next();
    recovery::StateWriter w;
    a.saveState(w);
    Rng b(1); // any state; loadState overwrites completely
    recovery::StateReader r(w.bytes().data(), w.bytes().size());
    ASSERT_TRUE(b.loadState(r));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(b.seed(), a.seed());
    EXPECT_EQ(b.draws(), a.draws());
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngSnapshotTest, ReplayToMatchesRestoredState)
{
    // The O(1) restore and the O(draws) replay land on the same
    // stream position: (seed, draws) fully describes a stream.
    Rng a(0xabcdULL);
    for (int i = 0; i < 137; ++i)
        a.next();
    Rng replayed = Rng::replayTo(a.seed(), a.draws());
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(replayed.stateWord(i), a.stateWord(i));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(replayed.next(), a.next());
}

TEST(RngSnapshotTest, RestoreFromWordsIsExact)
{
    Rng a(7);
    for (int i = 0; i < 42; ++i)
        a.next();
    const uint64_t words[4] = {a.stateWord(0), a.stateWord(1),
                               a.stateWord(2), a.stateWord(3)};
    Rng b(1234);
    b.restore(a.seed(), a.draws(), words);
    EXPECT_EQ(b.draws(), 42u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngSnapshotTest, LoadStateFailsOnTruncation)
{
    Rng a(5);
    a.next();
    recovery::StateWriter w;
    a.saveState(w);
    for (size_t cut = 0; cut < w.size(); ++cut) {
        Rng b(6);
        recovery::StateReader r(w.bytes().data(), cut);
        EXPECT_FALSE(b.loadState(r)) << "cut at " << cut;
    }
}

} // namespace
} // namespace ssdcheck::sim
