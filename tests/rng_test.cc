/** @file Unit and statistical tests for sim/rng.h. */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/rng.h"

namespace ssdcheck::sim {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDifferentStreams)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextBelowCoversRange)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds)
{
    Rng rng(3);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(RngTest, Uniform01InUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.uniform01();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability)
{
    Rng rng(9);
    const int n = 50000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard)
{
    Rng rng(13);
    const int n = 50000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, LognormalFactorMedianNearOne)
{
    Rng rng(17);
    const int n = 20001;
    std::vector<double> vals;
    vals.reserve(n);
    for (int i = 0; i < n; ++i)
        vals.push_back(rng.lognormalFactor(0.2));
    std::sort(vals.begin(), vals.end());
    EXPECT_NEAR(vals[n / 2], 1.0, 0.05);
    for (double v : vals)
        EXPECT_GT(v, 0.0);
}

TEST(RngTest, LognormalSigmaZeroIsIdentity)
{
    Rng rng(19);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(rng.lognormalFactor(0.0), 1.0);
}

TEST(RngTest, ForkedStreamsAreIndependent)
{
    Rng parent(23);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (c1.next() == c2.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsDeterministicGivenParentState)
{
    Rng p1(31), p2(31);
    Rng c1 = p1.fork(5);
    Rng c2 = p2.fork(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(c1.next(), c2.next());
}

/** Property sweep: nextBelow stays unbiased across bounds. */
class RngBoundSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngBoundSweep, MeanNearHalfBound)
{
    const uint64_t bound = GetParam();
    Rng rng(bound * 977 + 1);
    const int n = 30000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextBelow(bound));
    const double expected = (static_cast<double>(bound) - 1.0) / 2.0;
    EXPECT_NEAR(sum / n, expected, static_cast<double>(bound) * 0.02 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 10, 100, 4096, 1000000));

} // namespace
} // namespace ssdcheck::sim
